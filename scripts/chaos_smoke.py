"""Chaos smoke: the campaign survives worker kills, process kills, and
cache corruption, and ``--resume`` reproduces the reference results.

The drill (run from the repo root with ``PYTHONPATH=src``):

1. A reference campaign runs uninterrupted and writes its coverage
   artefact.
2. The same campaign runs again with a checkpoint and a result cache.
   Both runs take the default lane-batched fault evaluator — a
   preflight asserts the config resolves to it, and the drill scrubs
   ``REPRO_CAMPAIGN_BATCH``/``REPRO_CAMPAIGN_FULL_RUNS`` from the
   environment — so the crash and the resume both land on batched
   state.  Mid-sweep — and, since the dispatch layer chunks the ~31 ms
   chunk tasks into multi-task batches, mid-*batch* — one worker
   process is SIGKILLed (the runner must absorb the broken pool with the whole
   batch in flight), and then the campaign process itself is SIGKILLed
   (a hard crash with a partial checkpoint on disk).
3. One result-cache entry is truncated — the corruption the integrity
   check must catch rather than serve.
4. One cached background-trajectory entry (the snapshot chain the
   forked fault evaluator restores from, persisted under
   ``<cache-dir>/trajectories`` by the CLI) is truncated too — the
   checksum-on-read must log the corruption, discard the entry, and
   rebuild it from simulation rather than fork from bogus state.
5. The campaign is re-run with ``--resume``.  It must exit cleanly,
   report the trajectory corruption on stderr, leave a valid rebuilt
   trajectory entry behind, and its coverage reports must be
   byte-identical to the reference.

A second drill covers the soak mode:

1. A reference soak runs uninterrupted for a fixed number of rounds and
   its journal is kept as the byte-exact target.
2. The same soak runs open-ended (no stop condition) with a state
   checkpoint.  Mid-stream one worker is SIGKILLed (the exec layer must
   absorb it), then the driver itself is SIGKILLed.
3. The journal's last record is truncated — the torn-tail shape a crash
   can leave, which also strands the checkpoint *ahead* of the journal
   (the reconciliation path: the journal must win).
4. The soak resumes to the reference round count.  The journal must be
   byte-identical to the uninterrupted reference.

A third drill covers stale-run detection in the live event stream:

1. A soak runs open-ended with ``--events`` and a short heartbeat.
2. ``repro-timber monitor --once --json`` must report the run as
   ``running`` and not stale while the driver is alive.
3. The driver is SIGKILLed — no ``run_end`` is ever written.
4. One heartbeat interval later the monitor must report ``stale``:
   the liveness contract a dashboard's "is it dead?" badge relies on.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

SCHEME = "timber-ff"
FAULTS = 1000
CYCLES = 3000
CHUNK = 10
SEED = 99

#: Checkpoint flushes every 8 records; wait for at least one flush so
#: the kill provably lands mid-sweep with progress on disk.
MIN_CHECKPOINTED = 8
KILL_DEADLINE_S = 120.0


def _cli(workdir: pathlib.Path, *extra: str) -> list[str]:
    return [
        sys.executable, "-m", "repro.cli", "campaign",
        "--schemes", SCHEME, "--target", "pipeline",
        "--faults", str(FAULTS), "--cycles", str(CYCLES),
        "--chunk", str(CHUNK), "--seed", str(SEED),
        "--workers", "2", *extra,
    ]


def _env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (f"{src}{os.pathsep}{existing}"
                         if existing else src)
    # The drill must exercise the default lane-batched evaluator: an
    # escape hatch inherited from the caller's shell would silently
    # demote every run to the forked or full-run path and the crash
    # would never land on batched state.
    env.pop("REPRO_CAMPAIGN_BATCH", None)
    env.pop("REPRO_CAMPAIGN_FULL_RUNS", None)
    return env


def _assert_batched_runner() -> None:
    """Preflight: the drill's config must take the lane-batched path.

    Checked in-process before any subprocess runs so a quietly demoted
    evaluator (scalar kernels, missing numpy, a future selection bug)
    fails the drill loudly instead of green-lighting a crash/resume
    test that never touched batched state.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    os.environ.pop("REPRO_CAMPAIGN_BATCH", None)
    os.environ.pop("REPRO_CAMPAIGN_FULL_RUNS", None)
    from repro.campaign import CampaignConfig, fault_runner
    from repro.campaign.engine import _BatchedEvaluator

    config = CampaignConfig(
        target="pipeline", scheme=SCHEME, num_faults=FAULTS,
        num_cycles=CYCLES, faults_per_task=CHUNK, seed=SEED)
    runner = fault_runner(config)
    assert isinstance(runner, _BatchedEvaluator), (
        f"chaos drill config resolved to {type(runner).__name__}, "
        "not the lane-batched evaluator")


#: Soak drill geometry: the reference runs SOAK_ROUNDS rounds; the
#: chaos run is killed once SOAK_KILL_AT rounds are journaled, leaving
#: plenty of headroom below the reference count.
SOAK_ROUNDS = 12
SOAK_KILL_AT = 3


def _soak_cli(journal: pathlib.Path, *extra: str) -> list[str]:
    return [
        sys.executable, "-m", "repro.cli", "soak",
        "--target", "pipeline", "--scheme", SCHEME,
        "--cycles", "1500", "--chunk", "10",
        "--faults-per-round", "60", "--magnitude-bins", "2",
        "--seed", str(SEED), "--workers", "2",
        "--journal", str(journal), "--quiet", *extra,
    ]


def _worker_pids(pid: int) -> list[int]:
    """Direct children of ``pid``, minus multiprocessing bookkeeping."""
    workers = []
    task_dir = pathlib.Path(f"/proc/{pid}/task")
    try:
        tids = list(task_dir.iterdir())
    except OSError:
        return []
    for tid in tids:
        try:
            children = (tid / "children").read_text().split()
        except OSError:  # thread exited mid-scan
            continue
        workers.extend(int(child) for child in children)
    real = []
    for child in workers:
        try:
            cmdline = pathlib.Path(
                f"/proc/{child}/cmdline").read_bytes()
        except OSError:
            continue
        if b"resource_tracker" not in cmdline:
            real.append(child)
    return real


def _completed_records(checkpoint: pathlib.Path) -> int:
    try:
        return len(json.loads(
            checkpoint.read_text(encoding="utf-8"))["completed"])
    except (OSError, ValueError, KeyError):
        return 0


def _journal_rounds(journal: pathlib.Path) -> int:
    """Complete round records currently on disk (header excluded)."""
    try:
        raw = journal.read_bytes()
    except OSError:
        return 0
    return max(0, len(raw.split(b"\n")[:-1]) - 1)


def _soak_drill(workdir: pathlib.Path, env: dict) -> None:
    reference = workdir / "soak-reference.jsonl"
    journal = workdir / "soak.jsonl"
    checkpoint = workdir / "soak-cp.json"

    print("[soak 1/4] reference soak (uninterrupted)")
    subprocess.run(
        _soak_cli(reference, "--rounds", str(SOAK_ROUNDS)),
        cwd=REPO_ROOT, env=env, check=True,
        stdout=subprocess.DEVNULL)
    reference_bytes = reference.read_bytes()

    print("[soak 2/4] chaos soak: SIGKILL a worker, then the driver")
    proc = subprocess.Popen(
        _soak_cli(journal, "--checkpoint", str(checkpoint)),
        cwd=REPO_ROOT, env=env, stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + KILL_DEADLINE_S
    worker_killed = False
    interrupted = False
    orphans: list[int] = []
    while time.monotonic() < deadline and proc.poll() is None:
        rounds = _journal_rounds(journal)
        if rounds >= 1 and not worker_killed:
            for worker in _worker_pids(proc.pid)[:1]:
                try:
                    os.kill(worker, signal.SIGKILL)
                    worker_killed = True
                    print(f"      killed worker {worker}")
                except OSError:
                    pass
        if rounds >= SOAK_KILL_AT:
            orphans = _worker_pids(proc.pid)
            proc.kill()
            interrupted = True
            print(f"      killed soak driver {proc.pid} after "
                  f"{rounds} journaled round(s)")
            break
        time.sleep(0.02)
    proc.wait()
    for orphan in orphans:
        try:
            os.kill(orphan, signal.SIGKILL)
        except OSError:
            pass
    assert interrupted, "soak never journaled enough rounds to kill"
    if not worker_killed:
        print("      WARNING: no soak worker was killed")
    survived = _journal_rounds(journal)
    assert survived >= 1, "no journaled soak progress survived"
    assert survived < SOAK_ROUNDS, \
        "soak outran the kill; raise SOAK_ROUNDS"

    print("[soak 3/4] truncating the journal's last record")
    lines = journal.read_bytes().splitlines(keepends=True)
    journal.write_bytes(b"".join(lines[:-1]))
    # The checkpoint may now cover more rounds than the journal holds
    # — resume must notice and let the journal win.

    print("[soak 4/4] resume and verify byte-identity")
    subprocess.run(
        _soak_cli(journal, "--checkpoint", str(checkpoint),
                  "--resume", "--rounds", str(SOAK_ROUNDS)),
        cwd=REPO_ROOT, env=env, check=True,
        stdout=subprocess.DEVNULL)
    resumed_bytes = journal.read_bytes()
    assert resumed_bytes == reference_bytes, (
        "resumed soak journal diverged from the reference "
        f"({_journal_rounds(journal)} vs {SOAK_ROUNDS} rounds)")
    print("      resumed soak journal byte-identical to reference")


#: Stale-drill heartbeat: short, so the drill completes in seconds.
STALE_HEARTBEAT_S = 1.0


def _monitor_health(spool: pathlib.Path, env: dict) -> dict:
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "monitor", str(spool),
         "--once", "--json"],
        cwd=REPO_ROOT, env=env, check=True, capture_output=True)
    return json.loads(result.stdout)


def _stale_drill(workdir: pathlib.Path, env: dict) -> None:
    spool = workdir / "stale-events.jsonl"
    journal = workdir / "stale.jsonl"

    print("[stale 1/3] open-ended soak with a live event stream")
    proc = subprocess.Popen(
        _soak_cli(journal, "--events", str(spool),
                  "--heartbeat", str(STALE_HEARTBEAT_S)),
        cwd=REPO_ROOT, env=env, stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL)
    try:
        deadline = time.monotonic() + KILL_DEADLINE_S
        health = None
        while time.monotonic() < deadline and proc.poll() is None:
            if spool.exists():
                health = _monitor_health(spool, env)
                if health["status"] == "running":
                    break
            time.sleep(0.1)
        assert proc.poll() is None, "soak died before the drill"
        assert health is not None and health["status"] == "running", \
            f"monitor never saw the run go live (last: {health})"
        assert not health["stale"], health
        print(f"      monitor: status={health['status']} "
              f"heartbeat={health['heartbeat_s']}s")

        print("[stale 2/3] SIGKILL the driver (no run_end written)")
        orphans = _worker_pids(proc.pid)
        killed_at = time.monotonic()
        proc.kill()
        proc.wait()
        for orphan in orphans:
            try:
                os.kill(orphan, signal.SIGKILL)
            except OSError:
                pass

        print("[stale 3/3] one heartbeat later the run must be stale")
        time.sleep(max(0.0, killed_at + STALE_HEARTBEAT_S + 0.3
                       - time.monotonic()))
        health = _monitor_health(spool, env)
        assert health["stale"] and health["status"] == "stale", (
            "monitor did not flag the dead run as stale within one "
            f"heartbeat interval: {health['status']!r}, "
            f"age {health['last_event_age_s']}s")
        assert "stalled_heartbeat" in health["flags"], health["flags"]
        assert health["lifecycle"] == "running", health["lifecycle"]
        print(f"      monitor: status={health['status']} "
              f"(last event {health['last_event_age_s']:.2f}s ago)")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def main() -> int:
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="chaos-smoke-"))
    env = _env()
    cache_dir = workdir / "cache"
    checkpoint_base = workdir / "cp.json"
    # The CLI derives one checkpoint file per scheme from the base path.
    checkpoint = workdir / f"cp-{SCHEME}.json"
    ref_out = workdir / "reference.json"
    resumed_out = workdir / "resumed.json"
    try:
        print("[0/5] preflight: config resolves to the batched runner")
        _assert_batched_runner()

        print("[1/5] reference campaign (uninterrupted)")
        subprocess.run(
            _cli(workdir, "--no-cache", "--out", str(ref_out)),
            cwd=REPO_ROOT, env=env, check=True,
            stdout=subprocess.DEVNULL)

        print("[2/5] chaos campaign: SIGKILL a worker, then the run")
        # Devnull stderr too: pool workers orphaned by the SIGKILL
        # below inherit it, and an inherited pipe end would wedge any
        # harness waiting for this script's output to hit EOF.
        proc = subprocess.Popen(
            _cli(workdir, "--cache-dir", str(cache_dir),
                 "--checkpoint", str(checkpoint_base)),
            cwd=REPO_ROOT, env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        deadline = time.monotonic() + KILL_DEADLINE_S
        interrupted = False
        worker_killed = False
        orphans: list[int] = []
        while time.monotonic() < deadline and proc.poll() is None:
            if _completed_records(checkpoint) >= MIN_CHECKPOINTED:
                for _ in range(20):  # workers may be between tasks
                    for worker in _worker_pids(proc.pid)[:1]:
                        try:
                            os.kill(worker, signal.SIGKILL)
                            worker_killed = True
                            print(f"      killed worker {worker}")
                        except OSError:
                            pass
                    if worker_killed or proc.poll() is not None:
                        break
                    time.sleep(0.01)
                time.sleep(0.1)
                if proc.poll() is None:
                    # Workers get reparented to init by the SIGKILL and
                    # block forever on the dead pool's call queue (every
                    # fork worker holds a write end, so no reader ever
                    # sees EOF) — snapshot them first so we can reap.
                    orphans = _worker_pids(proc.pid)
                    proc.kill()
                    interrupted = True
                    print(f"      killed campaign process {proc.pid}")
                break
            time.sleep(0.01)
        proc.wait()
        for orphan in orphans:
            try:
                os.kill(orphan, signal.SIGKILL)
            except OSError:
                pass
        if not interrupted:
            print("      WARNING: campaign finished before the kill "
                  "landed; resume will be a full replay")
        if not worker_killed:
            print("      WARNING: no worker was killed")
        assert _completed_records(checkpoint) >= MIN_CHECKPOINTED, \
            "no checkpointed progress survived the crash"

        print("[3/5] corrupting one result-cache entry")
        entries = sorted(cache_dir.glob("*.json"))
        assert entries, "crashed run left no cache entries"
        entries[0].write_bytes(
            entries[0].read_bytes()[:20])
        print(f"      truncated {entries[0].name}")

        print("[4/5] corrupting one cached trajectory entry")
        # The CLI points REPRO_TRAJECTORY_CACHE_DIR here whenever
        # --cache-dir is given; the crashed run's workers persisted the
        # background snapshots before the kill landed.
        trajectory_dir = cache_dir / "trajectories"
        trajectory_entries = sorted(trajectory_dir.glob("*.json"))
        assert trajectory_entries, \
            "crashed run left no cached trajectory (snapshots not warm)"
        trajectory_entry = trajectory_entries[0]
        trajectory_entry.write_bytes(
            trajectory_entry.read_bytes()[:40])
        print(f"      truncated {trajectory_entry.name}")

        print("[5/5] resume and verify")
        resume = subprocess.run(
            _cli(workdir, "--cache-dir", str(cache_dir),
                 "--checkpoint", str(checkpoint_base), "--resume",
                 "--out", str(resumed_out)),
            cwd=REPO_ROOT, env=env, check=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
        stderr = resume.stderr.decode("utf-8", errors="replace")

        reference = json.loads(ref_out.read_text(encoding="utf-8"))
        resumed = json.loads(resumed_out.read_text(encoding="utf-8"))
        # The drill only proves mid-batch resilience if batching was
        # actually in play on both sides of the crash.
        assert reference["telemetry"]["batches"] >= 1, \
            reference["telemetry"]
        assert resumed["telemetry"]["batches"] >= 1, \
            resumed["telemetry"]
        assert json.dumps(resumed["reports"], sort_keys=True) == \
            json.dumps(reference["reports"], sort_keys=True), (
                "resumed campaign diverged from the reference:\n"
                f"reference: {reference['reports']}\n"
                f"resumed:   {resumed['reports']}")
        if interrupted:
            assert resumed["telemetry"]["resumed_tasks"] > 0, \
                resumed["telemetry"]
            print(f"      {resumed['telemetry']['resumed_tasks']} "
                  "task(s) replayed from the checkpoint")
            # The replayed tasks needed the trajectory we corrupted:
            # the checksum-on-read must have flagged it and fallen
            # through to a rebuild, not forked from bogus state.
            assert "corrupted" in stderr, (
                "resume never reported the corrupted trajectory entry "
                f"(stderr was: {stderr[-500:]!r})")
            print("      trajectory corruption detected and logged")
        rebuilt = json.loads(
            trajectory_entry.read_text(encoding="utf-8"))
        assert {"version", "result", "checksum"} <= set(rebuilt), \
            "corrupted trajectory entry was not rebuilt"
        print("      trajectory entry rebuilt with a valid checksum")

        _soak_drill(workdir, env)
        _stale_drill(workdir, env)
        print("chaos smoke PASSED: resumed results byte-identical, "
              "dead run detected as stale")
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
