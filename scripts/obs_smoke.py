#!/usr/bin/env python
"""Observability smoke test: exports parse, counters agree across modes.

Three checks, exercising the full ``--obs-out`` path end to end:

1. Run a tiny fault campaign through the real CLI with ``--obs-out``
   and validate the artefacts: the Chrome trace is JSON with well-formed
   ``traceEvents`` (Perfetto-loadable), and the Prometheus text parses
   line by line and contains the expected counter families.
2. Merge the trace through ``repro-timber obs --chrome`` and validate
   the merged output too.
3. Run the same campaign in-process under vectorized and scalar kernels
   and assert :func:`repro.obs.semantic_snapshot` is bit-identical —
   the determinism contract the property suite pins, checked here on
   every CI push without hypothesis in the loop.
4. Lint every metric family the campaign registered
   (:func:`repro.obs.exporters.lint_metric_names`) — counters must end
   in ``_total``, histograms must declare a unit suffix, every family
   needs help text.
5. Run a live sweep with the event stream enabled, then fold it back
   through ``repro-timber monitor --once --json`` and validate the
   RunHealth schema: the stream the dashboards trust must round-trip
   through the real CLI.

    PYTHONPATH=src python scripts/obs_smoke.py
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

CAMPAIGN_ARGS = ("--faults", "40", "--cycles", "300", "--chunk", "10",
                 "--seed", "2010", "--no-cache")

EXPECTED_FAMILIES = (
    "repro_campaign_outcomes_total",
    "repro_pipeline_outcomes_total",
    "repro_exec_tasks_total",
    "repro_sim_events_total",
)

#: One Prometheus exposition line: comment, or ``name{labels} value``.
_PROM_LINE = re.compile(
    r"^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+)$")


def _cli(*args: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_OBS", None)
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, env=env, timeout=600)
    if result.returncode != 0:
        raise SystemExit(
            f"CLI failed ({result.returncode}): {' '.join(args)}\n"
            f"{result.stdout}\n{result.stderr}")
    return result.stdout


def _check_chrome_trace(path: pathlib.Path) -> int:
    doc = json.loads(path.read_text(encoding="utf-8"))
    events = doc.get("traceEvents")
    if not events:
        raise SystemExit(f"{path}: no traceEvents")
    for event in events:
        missing = {"name", "ph", "ts", "dur", "pid", "tid"} - set(event)
        if missing:
            raise SystemExit(f"{path}: event missing keys {missing}")
        if event["ph"] != "X" or event["ts"] < 0 or event["dur"] < 0:
            raise SystemExit(f"{path}: malformed event {event}")
    return len(events)


def _check_prometheus(path: pathlib.Path) -> int:
    text = path.read_text(encoding="utf-8")
    families = set()
    for line in text.splitlines():
        if not _PROM_LINE.match(line):
            raise SystemExit(f"{path}: unparseable line {line!r}")
        if line.startswith("# TYPE "):
            families.add(line.split()[2])
    missing = [name for name in EXPECTED_FAMILIES
               if name not in families]
    if missing:
        raise SystemExit(f"{path}: missing metric families {missing}")
    return len(families)


def _semantic_snapshot_identity() -> int:
    from repro import obs
    from repro.campaign import CampaignConfig, run_campaign
    from repro.kernels import SCALAR_ENV

    config = CampaignConfig(num_faults=40, num_cycles=300,
                            faults_per_task=10, seed=2010)
    snapshots = {}
    for mode in ("vector", "scalar"):
        if mode == "scalar":
            os.environ[SCALAR_ENV] = "1"
        else:
            os.environ.pop(SCALAR_ENV, None)
        obs.reset()
        obs.enable()
        run_campaign(config)
        snapshots[mode] = json.dumps(obs.semantic_snapshot(),
                                     sort_keys=True)
    os.environ.pop(SCALAR_ENV, None)
    obs.reset()
    obs.disable()
    if snapshots["vector"] != snapshots["scalar"]:
        raise SystemExit(
            "semantic snapshot differs between kernel modes")
    return len(json.loads(snapshots["vector"]))


def _lint_live_registry() -> int:
    from repro import obs
    from repro.obs.exporters import lint_metric_names

    # The campaign above ran in a subprocess; register the same
    # families here by importing every instrumented module.
    import repro.core.relay   # noqa: F401
    import repro.exec.runner  # noqa: F401
    import repro.soak.driver  # noqa: F401

    problems = lint_metric_names(obs.REGISTRY)
    if problems:
        raise SystemExit("metric naming lint failed:\n  "
                         + "\n  ".join(problems))
    return len(list(obs.REGISTRY.families()))


#: Keys scripts and dashboards rely on; removing or renaming one is a
#: breaking change and must bump the health schema version.
HEALTH_KEYS = (
    "schema", "run_id", "kind", "lifecycle", "status", "stale",
    "flags", "heartbeat_s", "unit", "total", "done", "executed",
    "cached", "retries", "crashes", "poisoned", "workers",
    "utilization", "cache_hit_rate", "throughput", "eta_s",
    "faults_classified", "faults_per_second",
    "last_event_age_s", "soak",
)


def _check_monitor_roundtrip(tmp: pathlib.Path) -> None:
    spool = tmp / "events.jsonl"
    _cli("sweep", "fig1", "--cycles", "300", "--no-cache",
         "--events", str(spool))
    if not spool.exists():
        raise SystemExit(f"{spool}: sweep wrote no event stream")
    out = _cli("monitor", str(spool), "--once", "--json")
    health = json.loads(out)
    missing = [key for key in HEALTH_KEYS if key not in health]
    if missing:
        raise SystemExit(f"monitor JSON missing keys {missing}")
    if health["schema"] != 2:
        raise SystemExit(f"unexpected health schema {health['schema']}")
    if health["status"] != "done" or health["stale"]:
        raise SystemExit(
            f"finished sweep reports status={health['status']!r} "
            f"stale={health['stale']!r}")
    if health["done"] != health["total"] or not health["done"]:
        raise SystemExit(
            f"monitor counted {health['done']}/{health['total']} tasks")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="obs-smoke-") as tmp:
        obs_dir = pathlib.Path(tmp) / "obs"
        _cli("campaign", *CAMPAIGN_ARGS, "--obs-out", str(obs_dir))
        events = _check_chrome_trace(obs_dir / "trace.json")
        families = _check_prometheus(obs_dir / "metrics.prom")

        merged = pathlib.Path(tmp) / "merged.json"
        out = _cli("obs", str(obs_dir / "trace.jsonl"),
                   "--chrome", str(merged), "--flame")
        _check_chrome_trace(merged)
        if "campaign.run" not in out:
            raise SystemExit("flame summary missing campaign.run span")

        _check_monitor_roundtrip(pathlib.Path(tmp))

    linted = _lint_live_registry()
    metrics = _semantic_snapshot_identity()
    print(f"obs smoke OK: {events} trace event(s), "
          f"{families} metric families, {linted} families lint-clean, "
          f"monitor round-trip validated, "
          f"{metrics} semantic metrics identical across kernel modes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
