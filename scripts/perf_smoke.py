#!/usr/bin/env python
"""Perf smoke test: scalar vs vectorized kernels on one small sweep.

Runs the same (small) resilience sweep in one process — once with
``REPRO_SCALAR_KERNELS=1``, once on the default vectorized kernels, and
once vectorized with observability enabled — asserts all three produce
field-for-field identical results, and records the timings to
``BENCH_perf_smoke.json`` and ``BENCH_obs_overhead.json`` (schema v1,
DESIGN.md).  A dispatch-overhead gate then pits batched against
per-task dispatch on a many-tiny-tasks sweep (batched must be >= 3x
tasks/s), checks the warm compile cache actually hits on a real
pipeline sweep, and records both runs to ``BENCH_dispatch.json``.
A Fig. 8 relay gate then times the pre-index scan-per-endpoint relay
analysis against the memoized criticality index on a reduced grid
(must be >= 20x, with a warm-cache hit on a second graph instance)
and merges the result into ``BENCH_fig8_relay.json``.  A campaign
fork gate finally pits snapshot-forked fault evaluation against the
full-run reference on an X12-scale graph campaign (byte-identical
outcomes required, forked must be >= 5x faults/s, scalar baseline
recorded) and merges the result into ``BENCH_x12_campaign_perf.json``,
followed by a batch gate that requires fault-lane batched evaluation
(the default path) to beat per-fault forking by >= 3x faults/s on the
same campaign, again byte-identical and warm-cache-served.
A soak gate runs a 10-second bounded soak against a batched campaign
on the same config (streamed throughput must hold >= 0.8x of the batch
rate) and an adaptive-vs-uniform arm on a fixed round budget (adaptive
must end with a strictly narrower widest CI, with compatible overall
estimates), writing ``BENCH_soak.json``.  An event-stream gate finally
re-times the sweep with a live ``EventPublisher`` spooling to disk
(min-of-repeats both arms; the stream must cost < 2% of sweep wall
time), writing ``BENCH_monitor.json``.  CI runs this on every push;
it is also a convenient local sanity check:

    PYTHONPATH=src python scripts/perf_smoke.py

The observability checks guard the "free when off" contract two ways:
a structural microbenchmark pins the disabled ``Counter.inc`` no-op
path to well under a microsecond per call, and the disabled-vs-enabled
sweep timings are gated at a generous bound that absorbs CI timer
noise (the committed BENCH artefact records the exact numbers; the
PR-3 baseline itself is machine-dependent, so it is not re-measured
here — the disabled run *is* the baseline configuration).
"""

from __future__ import annotations

import dataclasses
import datetime
import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

TECHNIQUES = ("plain", "timber-ff", "timber-latch", "razor", "canary")
AMPLITUDES = (0.0, 0.08)
NUM_CYCLES = 4_000

#: Allowed enabled-vs-disabled overhead on the sweep.  The ISSUE target
#: is <5% for the *disabled* path vs the pre-obs baseline — which the
#: microbench pins structurally; this end-to-end gate bounds the
#: *enabled* path loosely enough to survive shared-runner timer noise.
OBS_OVERHEAD_LIMIT_PERCENT = 25.0
#: Disabled ``Counter.inc`` budget per call (structural no-op check).
NOOP_BUDGET_US = 1.0
NOOP_CALLS = 200_000

#: Dispatch-overhead gate: many tiny tasks, where the process-pool
#: round-trip dominates the work itself.  Batched dispatch must beat
#: one-future-per-task dispatch by at least this factor in tasks/s.
DISPATCH_TASKS = 600
DISPATCH_WORKERS = 2
DISPATCH_SPEEDUP_FLOOR = 3.0

#: Fig. 8 relay-analysis gate: criticality queries through the memoized
#: index must beat the pre-index scan-per-endpoint pattern by at least
#: this factor on a reduced grid (one performance point, two checking
#: percents), and the second graph instance must hit the warm cache.
FIG8_PERCENTS = (10.0, 20.0)
FIG8_SPEEDUP_FLOOR = 20.0

#: Campaign fork gate: snapshot-forked evaluation must beat the
#: full-run reference (every fault re-simulated from cycle 0) by at
#: least this factor at X12 scale, with byte-identical outcomes.  The
#: measured advantage is ~10x at 4000 cycles; the floor absorbs CI
#: noise.  The scalar baseline is recorded (on a subset — it is two
#: orders of magnitude slower) but not gated.
CAMPAIGN_CYCLES = 4_000
CAMPAIGN_FAULTS = 200
CAMPAIGN_SCALAR_FAULTS = 20
CAMPAIGN_SPEEDUP_FLOOR = 5.0

#: Batch gate: fault-lane batched evaluation (the default) must beat
#: the per-fault forked evaluator by at least this factor on the same
#: X12-scale campaign, with byte-identical outcomes and the second
#: runner served from the warm trajectory cache.
BATCH_SPEEDUP_FLOOR = 3.0

#: Soak gate: a 10-second bounded soak must sustain at least this
#: fraction of the batched campaign's faults/s on the same config (the
#: round loop, ring, estimator, and fsync-per-round journal are the
#: only additions), and on a fixed round budget the adaptive sampler
#: must leave a strictly narrower widest CI than uniform sampling while
#: the two overall estimates stay statistically compatible (the
#: uniform-stratum combination is unbiased under any allocation).
SOAK_CYCLES = 2_000
SOAK_BATCH_FAULTS = 400
SOAK_RUNTIME_S = 10.0
SOAK_THROUGHPUT_FLOOR = 0.8
SOAK_CI_CYCLES = 800
SOAK_CI_ROUNDS = 20
SOAK_CI_FAULTS_PER_ROUND = 100

#: Event-stream overhead gate: the same sweep with and without a live
#: ``EventPublisher`` spooling to disk, min-of-repeats each (the min is
#: the least-noisy location statistic on a shared runner); the stream
#: must cost under this percent of sweep wall time.
MONITOR_REPEATS = 3
MONITOR_OVERHEAD_LIMIT_PERCENT = 2.0


def _run_sweep():
    from repro.analysis.experiments import resilience_sweep
    from repro.exec.runner import SweepRunner

    # Serial and uncached so both modes execute in this process and
    # measure pure kernel time.
    runner = SweepRunner(workers=1, cache=None)
    return resilience_sweep(
        techniques=TECHNIQUES,
        droop_amplitudes=AMPLITUDES,
        num_cycles=NUM_CYCLES,
        runner=runner,
    )


def _measure(mode: str, *, observability: bool = False):
    from repro import obs
    from repro.kernels import SCALAR_ENV, kernel_mode

    if mode == "scalar":
        os.environ[SCALAR_ENV] = "1"
    else:
        os.environ.pop(SCALAR_ENV, None)
    active = kernel_mode()
    if active != mode:
        raise SystemExit(
            f"kernel mode is {active!r}, wanted {mode!r} "
            "(is numpy importable?)")
    obs.reset()
    if observability:
        obs.enable()
    else:
        obs.disable()
    start = time.perf_counter()
    points = _run_sweep()
    wall = time.perf_counter() - start
    obs.disable()
    obs.reset()
    return points, wall


def _noop_inc_microbench() -> float:
    """Average disabled ``Counter.inc`` cost, in microseconds."""
    from repro.obs.registry import MetricsRegistry

    counter = MetricsRegistry().counter("bench_noop_total").labels()
    start = time.perf_counter()
    for _ in range(NOOP_CALLS):
        counter.inc()
    wall = time.perf_counter() - start
    if counter.value != 0:
        raise SystemExit("disabled counter accumulated — no-op broken")
    return wall / NOOP_CALLS * 1e6


def _dispatch_bench(now: str) -> tuple[dict | None, str | None]:
    """Tiny-task microbench: per-task vs batched dispatch on one pool.

    Returns ``(bench_payload, failure_message)``; the payload records
    both runs so ``BENCH_dispatch.json`` keeps the before/after
    trajectory even on a failing gate.
    """
    from repro.exec import SweepRunner, expand_grid

    tasks = expand_grid("repro.exec.testing:square_task",
                        {"x": tuple(range(DISPATCH_TASKS))},
                        root_seed=5)
    expected = [x * x for x in range(DISPATCH_TASKS)]
    runs = []
    walls = {}
    for label, target_s in (("per_task", 0.0), ("batched", 0.25)):
        with SweepRunner(workers=DISPATCH_WORKERS, cache=None,
                         batch_target_s=target_s) as runner:
            runner.run(tasks[:DISPATCH_WORKERS * 4])  # warm the pool
            start = time.perf_counter()
            run = runner.run(tasks)
            wall = time.perf_counter() - start
        if run.values != expected:
            return None, f"dispatch bench ({label}) computed wrong values"
        walls[label] = wall
        summary = run.summary
        runs.append({
            "dispatch": label,
            "recorded_at": now,
            "wall_time_s": round(wall, 4),
            "tasks": DISPATCH_TASKS,
            "tasks_per_second": round(DISPATCH_TASKS / wall, 1),
            "workers": DISPATCH_WORKERS,
            "batches": summary["batches"],
            "mean_batch_tasks": round(
                summary["batch_tasks"]["mean"], 2),
        })
    speedup = (walls["per_task"] / walls["batched"]
               if walls["batched"] > 0 else float("inf"))

    # Warm compile-cache check: a real (pipeline) sweep through the
    # same dispatch layer must reuse compiled stage arrays across
    # tasks and batches inside the workers.
    from repro.analysis.experiments import resilience_sweep

    with SweepRunner(workers=DISPATCH_WORKERS, cache=None) as runner:
        resilience_sweep(
            techniques=("plain", "timber-ff"),
            droop_amplitudes=(0.0, 0.04, 0.08), num_cycles=500,
            runner=runner)
        assert runner.last_run is not None
        warm = runner.last_run.summary["warm_cache"]

    payload = {
        "bench": "dispatch",
        "schema_version": 1,
        "speedup": round(speedup, 2),
        "speedup_floor": DISPATCH_SPEEDUP_FLOOR,
        "warm_cache": warm,
        "runs": runs,
    }
    if speedup < DISPATCH_SPEEDUP_FLOOR:
        return payload, (
            f"batched dispatch only {speedup:.2f}x faster than "
            f"per-task dispatch (floor {DISPATCH_SPEEDUP_FLOOR:.0f}x; "
            f"per-task {walls['per_task']:.3f}s, "
            f"batched {walls['batched']:.3f}s)")
    compiled = warm.get("compiled", {"hits": 0})
    if compiled["hits"] <= 0:
        return payload, (
            "warm compile cache recorded no hits on the pipeline "
            f"sweep (warm stats: {warm})")
    return payload, None


def _fig8_relay_bench(now: str) -> tuple[dict | None, str | None]:
    """Criticality-index gate on a reduced Fig. 8 grid.

    Times the pre-index relay analysis (``naive_relay_inputs``, one
    full through-set recomputation per endpoint — the pattern behind
    the recorded 142 s scalar baseline) against ``relay_cost`` through
    the memoized index, on the medium performance point at two checking
    percents.  A second, content-identical graph instance must be
    served from the warm cache.  Returns ``(gate_payload,
    failure_message)``; the payload is merged into
    ``BENCH_fig8_relay.json`` alongside the full-grid trajectory.
    """
    from repro.core.relay import relay_cost
    from repro.exec.worker import WARM
    from repro.processor.generator import generate_processor
    from repro.processor.perfpoints import MEDIUM_PERFORMANCE
    from repro.timing.criticality import naive_relay_inputs

    graphs = [generate_processor(MEDIUM_PERFORMANCE, seed=2010)
              for _ in range(2)]

    start = time.perf_counter()
    naive = {percent: naive_relay_inputs(graphs[0], percent)
             for percent in FIG8_PERCENTS}
    naive_wall = time.perf_counter() - start

    before = WARM.counters()
    start = time.perf_counter()
    cold = {percent: relay_cost(graphs[0], percent)
            for percent in FIG8_PERCENTS}
    cold_wall = time.perf_counter() - start
    start = time.perf_counter()
    warm = {percent: relay_cost(graphs[1], percent)
            for percent in FIG8_PERCENTS}
    warm_wall = time.perf_counter() - start
    delta = WARM.stats_delta(before)

    for percent in FIG8_PERCENTS:
        fanins = naive[percent]
        for cost in (cold[percent], warm[percent]):
            if (cost.num_protected_ffs != len(fanins)
                    or cost.num_relayed_inputs != sum(fanins.values())):
                return None, (
                    f"indexed relay_cost diverged from the naive scan "
                    f"at {percent}% checking")

    speedup = naive_wall / cold_wall if cold_wall > 0 else float("inf")
    payload = {
        "recorded_at": now,
        "point": MEDIUM_PERFORMANCE.name,
        "checking_percents": list(FIG8_PERCENTS),
        "edges": graphs[0].num_edges,
        "naive_wall_s": round(naive_wall, 4),
        "indexed_wall_s": round(cold_wall, 4),
        "indexed_warm_wall_s": round(warm_wall, 6),
        "speedup": round(speedup, 1),
        "speedup_floor": FIG8_SPEEDUP_FLOOR,
        "warm_cache": delta,
    }
    if speedup < FIG8_SPEEDUP_FLOOR:
        return payload, (
            f"criticality index only {speedup:.1f}x faster than the "
            f"naive relay scan (floor {FIG8_SPEEDUP_FLOOR:.0f}x; naive "
            f"{naive_wall:.3f}s, indexed {cold_wall:.3f}s)")
    hits = delta.get("criticality", [0, 0])[0]
    if hits < 1:
        return payload, (
            "second graph instance did not hit the warm criticality "
            f"cache (warm stats delta: {delta})")
    return payload, None


def _campaign_fork_bench(now: str) -> tuple[dict | None, str | None]:
    """Snapshot-forking gate on an X12-scale graph campaign.

    Evaluates the same seeded population three ways — scalar full runs
    (subset, recorded as the baseline), vectorized full runs (the
    executable spec), and the forked evaluator (nearest background
    snapshot + fault window only) — asserts the encoded outcomes are
    byte-identical, then gates forked against full-run throughput.  A
    second evaluator for the same config must be served from the warm
    trajectory cache.  Returns ``(gate_payload, failure_message)``;
    the payload is merged into ``BENCH_x12_campaign_perf.json``
    alongside the campaign-shootout trajectory.
    """
    from repro.campaign import CampaignConfig
    from repro.campaign.engine import (FULL_RUN_TARGETS,
                                       _ForkedEvaluator)
    from repro.exec.cache import encode_result
    from repro.exec.worker import WARM
    from repro.kernels import SCALAR_ENV

    config = CampaignConfig(
        target="graph", scheme="timber-ff",
        num_faults=CAMPAIGN_FAULTS, num_cycles=CAMPAIGN_CYCLES)
    population = list(config.iter_population())
    reference = FULL_RUN_TARGETS[config.target]

    def encoded(outcomes):
        return json.dumps(encode_result(outcomes), sort_keys=True)

    saved = os.environ.get(SCALAR_ENV)
    os.environ[SCALAR_ENV] = "1"
    try:
        start = time.perf_counter()
        scalar = [reference(config, spec)[0]
                  for spec in population[:CAMPAIGN_SCALAR_FAULTS]]
        scalar_wall = time.perf_counter() - start
    finally:
        if saved is None:
            os.environ.pop(SCALAR_ENV, None)
        else:
            os.environ[SCALAR_ENV] = saved

    start = time.perf_counter()
    full = [reference(config, spec)[0] for spec in population]
    full_wall = time.perf_counter() - start

    before = WARM.counters()
    start = time.perf_counter()
    # Pinned to the per-fault forked evaluator: this gate measures the
    # fork itself; the batch gate below measures lane batching on top.
    runner = _ForkedEvaluator(config)
    forked: list = [None] * len(population)
    for index in runner.evaluation_order(population):
        forked[index] = runner.evaluate(population[index])[0]
    forked_wall = time.perf_counter() - start
    _ForkedEvaluator(config)  # same config: must hit the warm cache
    delta = WARM.stats_delta(before)

    if encoded(scalar) != encoded(full[:CAMPAIGN_SCALAR_FAULTS]):
        return None, ("scalar and vectorized full-run campaign "
                      "outcomes diverged")
    if encoded(full) != encoded(forked):
        return None, ("snapshot-forked campaign outcomes diverged "
                      "from the full-run reference")

    speedup = full_wall / forked_wall if forked_wall > 0 else float("inf")
    runs = []
    for label, wall, faults in (
            ("scalar_full_run", scalar_wall, CAMPAIGN_SCALAR_FAULTS),
            ("vector_full_run", full_wall, CAMPAIGN_FAULTS),
            ("vector_forked", forked_wall, CAMPAIGN_FAULTS)):
        runs.append({
            "evaluation": label,
            "recorded_at": now,
            "wall_time_s": round(wall, 4),
            "faults": faults,
            "num_cycles": CAMPAIGN_CYCLES,
            "faults_per_second": round(faults / wall, 1),
        })
    payload = {
        "recorded_at": now,
        "target": config.target,
        "scheme": config.scheme,
        "snapshot_stride": config.snapshot_stride,
        "speedup": round(speedup, 1),
        "speedup_floor": CAMPAIGN_SPEEDUP_FLOOR,
        "warm_cache": delta,
        "runs": runs,
    }
    if speedup < CAMPAIGN_SPEEDUP_FLOOR:
        return payload, (
            f"forked campaign evaluation only {speedup:.1f}x faster "
            f"than full runs (floor {CAMPAIGN_SPEEDUP_FLOOR:.0f}x; "
            f"full {full_wall:.3f}s, forked {forked_wall:.3f}s)")
    hits = delta.get("trajectory", [0, 0])[0]
    if hits < 1:
        return payload, (
            "second evaluator did not hit the warm trajectory cache "
            f"(warm stats delta: {delta})")
    return payload, None


def _campaign_batch_bench(now: str) -> tuple[dict | None, str | None]:
    """Fault-lane batching gate on the same X12-scale campaign.

    Times one chunk of the seeded population through the per-fault
    forked evaluator and through the lane-batched default
    (``fault_runner``), asserts the encoded outcome streams are
    byte-identical, and gates batched against forked faults/s.  The
    batched runner must actually be the batched evaluator, must batch
    (not replay) the overwhelming share of its lanes, and a second
    ``fault_runner`` call must be served from the warm trajectory
    cache.  The payload lands next to the fork gate in
    ``BENCH_x12_campaign_perf.json``.
    """
    from repro.campaign import CampaignConfig, fault_runner
    from repro.campaign.engine import (_BatchedEvaluator,
                                       _ForkedEvaluator)
    from repro.exec.cache import encode_result
    from repro.exec.worker import WARM

    config = CampaignConfig(
        target="graph", scheme="timber-ff",
        num_faults=CAMPAIGN_FAULTS, num_cycles=CAMPAIGN_CYCLES)
    population = list(config.iter_population())

    def encoded(outcomes):
        return json.dumps(encode_result(outcomes), sort_keys=True)

    start = time.perf_counter()
    forked_outcomes, _work = (
        _ForkedEvaluator(config).evaluate_chunk(population))
    forked_wall = time.perf_counter() - start

    before = WARM.counters()
    runner = fault_runner(config)
    if not isinstance(runner, _BatchedEvaluator):
        return None, (
            "fault_runner did not return the batched evaluator "
            f"(got {type(runner).__name__})")
    start = time.perf_counter()
    batched_outcomes, _work = runner.evaluate_chunk(population)
    batched_wall = time.perf_counter() - start
    fault_runner(config)  # same config again: must hit the warm cache
    delta = WARM.stats_delta(before)

    if encoded(batched_outcomes) != encoded(forked_outcomes):
        return None, ("lane-batched campaign outcomes diverged from "
                      "the forked evaluator")

    speedup = (forked_wall / batched_wall if batched_wall > 0
               else float("inf"))
    runs = []
    for label, wall in (("vector_forked", forked_wall),
                        ("vector_batched", batched_wall)):
        runs.append({
            "evaluation": label,
            "recorded_at": now,
            "wall_time_s": round(wall, 4),
            "faults": CAMPAIGN_FAULTS,
            "num_cycles": CAMPAIGN_CYCLES,
            "faults_per_second": round(CAMPAIGN_FAULTS / wall, 1),
        })
    payload = {
        "recorded_at": now,
        "target": config.target,
        "scheme": config.scheme,
        "snapshot_stride": config.snapshot_stride,
        "speedup": round(speedup, 1),
        "speedup_floor": BATCH_SPEEDUP_FLOOR,
        "lanes_batched": runner.lanes_batched,
        "lanes_replayed": runner.lanes_replayed,
        "warm_cache": delta,
        "runs": runs,
    }
    if runner.lanes_batched < runner.lanes_replayed:
        return payload, (
            f"batched evaluator replayed more lanes than it batched "
            f"({runner.lanes_replayed} replayed vs "
            f"{runner.lanes_batched} batched)")
    if speedup < BATCH_SPEEDUP_FLOOR:
        return payload, (
            f"lane-batched evaluation only {speedup:.1f}x faster than "
            f"per-fault forking (floor {BATCH_SPEEDUP_FLOOR:.0f}x; "
            f"forked {forked_wall:.3f}s, batched {batched_wall:.3f}s)")
    hits = delta.get("trajectory", [0, 0])[0]
    if hits < 1:
        return payload, (
            "second batched runner did not hit the warm trajectory "
            f"cache (warm stats delta: {delta})")
    return payload, None


def _soak_bench(now: str) -> tuple[dict | None, str | None]:
    """Soak-mode gates: streaming throughput and adaptive CI narrowing.

    Arm one times a batched campaign and a 10-second bounded soak on
    the same target/scheme/cycle config (both serial and in-process, so
    the comparison isolates the soak loop's overhead) and gates soak
    throughput at ``SOAK_THROUGHPUT_FLOOR`` of the batch rate.  Arm two
    runs an adaptive and a uniform soak on an identical fixed round
    budget: the adaptive run's widest per-stratum Wilson CI must end
    strictly narrower, and the two overall escape-rate estimates must
    agree within their combined half-widths (adaptive allocation shifts
    variance between strata, never the estimate's center).  Returns
    ``(bench_payload, failure_message)`` for ``BENCH_soak.json``.
    """
    import tempfile

    from repro.campaign import CampaignConfig, run_campaign
    from repro.exec import SweepRunner
    from repro.soak import SoakConfig, run_soak

    campaign = CampaignConfig(
        target="graph", scheme="timber-ff",
        num_faults=SOAK_BATCH_FAULTS, num_cycles=SOAK_CYCLES)
    with SweepRunner(workers=1, cache=None) as runner:
        start = time.perf_counter()
        run_campaign(campaign, runner=runner)
        batch_wall = time.perf_counter() - start
    batch_rate = SOAK_BATCH_FAULTS / batch_wall

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="soak-bench-"))
    try:
        soak = SoakConfig(campaign=campaign,
                          faults_per_round=SOAK_BATCH_FAULTS // 2)
        with SweepRunner(workers=1, cache=None) as runner:
            streamed = run_soak(
                soak, journal_path=workdir / "throughput.jsonl",
                runner=runner, max_runtime_s=SOAK_RUNTIME_S)
        soak_rate = streamed.faults_per_second

        ci_campaign = CampaignConfig(
            target="graph", scheme="timber-ff", num_faults=1,
            num_cycles=SOAK_CI_CYCLES)
        arms = {}
        for label, adaptive in (("adaptive", True), ("uniform", False)):
            arm = SoakConfig(
                campaign=ci_campaign, adaptive=adaptive,
                faults_per_round=SOAK_CI_FAULTS_PER_ROUND)
            with SweepRunner(workers=1, cache=None) as runner:
                arms[label] = run_soak(
                    arm, journal_path=workdir / f"{label}.jsonl",
                    runner=runner, max_rounds=SOAK_CI_ROUNDS)
        adaptive_result, uniform_result = (arms["adaptive"],
                                           arms["uniform"])
    finally:
        import shutil

        shutil.rmtree(workdir, ignore_errors=True)

    ratio = soak_rate / batch_rate if batch_rate > 0 else float("inf")
    adaptive_widest = adaptive_result.widest["ci_width"]
    uniform_widest = uniform_result.widest["ci_width"]
    overall_gap = abs(adaptive_result.overall["escape_rate"]
                      - uniform_result.overall["escape_rate"])
    compatible_within = (adaptive_result.overall["ci_half_width"]
                         + uniform_result.overall["ci_half_width"])
    payload = {
        "bench": "soak",
        "schema_version": 1,
        "recorded_at": now,
        "target": campaign.target,
        "scheme": campaign.scheme,
        "throughput": {
            "num_cycles": SOAK_CYCLES,
            "batch_faults": SOAK_BATCH_FAULTS,
            "batch_wall_s": round(batch_wall, 4),
            "batch_faults_per_second": round(batch_rate, 1),
            "soak_runtime_s": SOAK_RUNTIME_S,
            "soak_faults": streamed.total_faults,
            "soak_rounds": streamed.rounds,
            "soak_faults_per_second": round(soak_rate, 1),
            "ratio": round(ratio, 3),
            "ratio_floor": SOAK_THROUGHPUT_FLOOR,
        },
        "adaptive_gate": {
            "num_cycles": SOAK_CI_CYCLES,
            "rounds": SOAK_CI_ROUNDS,
            "faults_per_round": SOAK_CI_FAULTS_PER_ROUND,
            "adaptive_widest_ci": round(adaptive_widest, 6),
            "uniform_widest_ci": round(uniform_widest, 6),
            "adaptive_overall": adaptive_result.overall,
            "uniform_overall": uniform_result.overall,
            "overall_gap": round(overall_gap, 6),
            "compatible_within": round(compatible_within, 6),
        },
    }
    if ratio < SOAK_THROUGHPUT_FLOOR:
        return payload, (
            f"soak sustained only {ratio:.2f}x of the batched campaign "
            f"rate (floor {SOAK_THROUGHPUT_FLOOR:.2f}; batch "
            f"{batch_rate:.1f} f/s, soak {soak_rate:.1f} f/s)")
    if not adaptive_widest < uniform_widest:
        return payload, (
            f"adaptive sampling did not narrow the widest CI below "
            f"uniform on {SOAK_CI_ROUNDS} rounds (adaptive "
            f"{adaptive_widest:.4f}, uniform {uniform_widest:.4f})")
    if overall_gap > compatible_within:
        return payload, (
            f"adaptive and uniform overall escape-rate estimates "
            f"diverged beyond their combined CI half-widths "
            f"({overall_gap:.4f} > {compatible_within:.4f}) — "
            "reweighting looks biased")
    return payload, None


def _monitor_bench(now: str) -> tuple[dict | None, str | None]:
    """Event-stream overhead gate on the perf-smoke sweep.

    Runs the standard resilience sweep ``MONITOR_REPEATS`` times bare
    and ``MONITOR_REPEATS`` times with a live :class:`EventPublisher`
    attached to the runner's telemetry and spooling to a real file
    (flush per event, heartbeat thread running — the exact ``--events``
    configuration), compares the per-arm minima, and gates the stream's
    cost at ``MONITOR_OVERHEAD_LIMIT_PERCENT`` of sweep wall time.
    Returns ``(bench_payload, failure_message)`` for
    ``BENCH_monitor.json``.
    """
    import tempfile

    from repro.analysis.experiments import resilience_sweep
    from repro.exec.runner import SweepRunner
    from repro.obs.stream import EventPublisher

    def run_once(spool: pathlib.Path | None) -> float:
        with SweepRunner(workers=1, cache=None) as runner:
            publisher = None
            if spool is not None:
                publisher = EventPublisher(spool, kind="sweep")
                publisher.attach(runner.telemetry)
                publisher.open()
                publisher.run_start(unit="tasks")
            start = time.perf_counter()
            resilience_sweep(
                techniques=TECHNIQUES,
                droop_amplitudes=AMPLITUDES,
                num_cycles=NUM_CYCLES,
                runner=runner,
            )
            wall = time.perf_counter() - start
            if publisher is not None:
                publisher.run_end("ok")
                publisher.close()
        return wall

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="monitor-bench-"))
    try:
        bare = [run_once(None) for _ in range(MONITOR_REPEATS)]
        streamed = [run_once(workdir / f"events-{i}.jsonl")
                    for i in range(MONITOR_REPEATS)]
        spool_bytes = max((workdir / f"events-{i}.jsonl").stat().st_size
                          for i in range(MONITOR_REPEATS))
    finally:
        import shutil

        shutil.rmtree(workdir, ignore_errors=True)

    bare_min, streamed_min = min(bare), min(streamed)
    overhead = (100.0 * (streamed_min - bare_min) / bare_min
                if bare_min > 0 else 0.0)
    payload = {
        "bench": "monitor",
        "schema_version": 1,
        "recorded_at": now,
        "overhead_percent": round(overhead, 3),
        "overhead_limit_percent": MONITOR_OVERHEAD_LIMIT_PERCENT,
        "repeats": MONITOR_REPEATS,
        "spool_bytes": spool_bytes,
        "runs": [
            {"events": False, "wall_time_s": [round(w, 4) for w in bare],
             "min_wall_s": round(bare_min, 4)},
            {"events": True,
             "wall_time_s": [round(w, 4) for w in streamed],
             "min_wall_s": round(streamed_min, 4)},
        ],
    }
    if overhead > MONITOR_OVERHEAD_LIMIT_PERCENT:
        return payload, (
            f"event stream costs {overhead:.2f}% of sweep wall time "
            f"(limit {MONITOR_OVERHEAD_LIMIT_PERCENT:.0f}%; bare "
            f"{bare_min:.3f}s, streamed {streamed_min:.3f}s)")
    return payload, None


def main() -> int:
    scalar_points, scalar_wall = _measure("scalar")
    vector_points, vector_wall = _measure("vector")
    obs_points, obs_wall = _measure("vector", observability=True)

    mismatches = []
    for scalar, vector, observed in zip(scalar_points, vector_points,
                                        obs_points):
        if not (dataclasses.asdict(scalar) == dataclasses.asdict(vector)
                == dataclasses.asdict(observed)):
            mismatches.append((dataclasses.asdict(scalar),
                               dataclasses.asdict(vector)))
    if mismatches:
        for scalar, vector in mismatches:
            print("MISMATCH")
            print("  scalar:", scalar)
            print("  vector:", vector)
        return 1

    cycles = len(scalar_points) * NUM_CYCLES
    now = datetime.datetime.now(
        datetime.timezone.utc).isoformat(timespec="seconds")
    runs = []
    for mode, wall in (("scalar", scalar_wall), ("vector", vector_wall)):
        runs.append({
            "kernel_mode": mode,
            "recorded_at": now,
            "wall_time_s": round(wall, 4),
            "simulated_cycles": cycles,
            "cycles_per_second": round(cycles / wall, 1),
            "workers": 1,
            "cache_hits": 0,
            "cache_misses": len(scalar_points),
            "grid_points": len(scalar_points),
        })
    path = REPO_ROOT / "BENCH_perf_smoke.json"
    path.write_text(json.dumps(
        {"bench": "perf_smoke", "schema_version": 1, "runs": runs},
        indent=2) + "\n", encoding="utf-8")

    # -- observability overhead gates -----------------------------------
    noop_us = _noop_inc_microbench()
    if noop_us > NOOP_BUDGET_US:
        print(f"FAIL: disabled Counter.inc averages {noop_us:.3f}us "
              f"per call (budget {NOOP_BUDGET_US}us) — the no-op path "
              "is not free")
        return 1
    overhead = (100.0 * (obs_wall - vector_wall) / vector_wall
                if vector_wall > 0 else 0.0)
    if overhead > OBS_OVERHEAD_LIMIT_PERCENT:
        print(f"FAIL: observability overhead {overhead:.1f}% exceeds "
              f"{OBS_OVERHEAD_LIMIT_PERCENT:.0f}% "
              f"(disabled {vector_wall:.3f}s, enabled {obs_wall:.3f}s)")
        return 1
    obs_runs = []
    for label, wall in (("obs_disabled", vector_wall),
                        ("obs_enabled", obs_wall)):
        obs_runs.append({
            "kernel_mode": "vector",
            "observability": label == "obs_enabled",
            "recorded_at": now,
            "wall_time_s": round(wall, 4),
            "simulated_cycles": cycles,
            "cycles_per_second": round(cycles / wall, 1),
            "workers": 1,
            "cache_hits": 0,
            "cache_misses": len(scalar_points),
            "grid_points": len(scalar_points),
        })
    obs_path = REPO_ROOT / "BENCH_obs_overhead.json"
    obs_path.write_text(json.dumps({
        "bench": "obs_overhead",
        "schema_version": 1,
        "overhead_percent": round(overhead, 2),
        "noop_inc_us": round(noop_us, 4),
        "runs": obs_runs,
    }, indent=2) + "\n", encoding="utf-8")

    # -- dispatch-overhead gate ------------------------------------------
    dispatch, dispatch_failure = _dispatch_bench(now)
    if dispatch is not None:
        dispatch_path = REPO_ROOT / "BENCH_dispatch.json"
        dispatch_path.write_text(
            json.dumps(dispatch, indent=2) + "\n", encoding="utf-8")
    if dispatch_failure is not None:
        print(f"FAIL: {dispatch_failure}")
        return 1
    assert dispatch is not None

    # -- Fig. 8 relay-analysis (criticality index) gate ------------------
    fig8, fig8_failure = _fig8_relay_bench(now)
    if fig8 is not None:
        fig8_path = REPO_ROOT / "BENCH_fig8_relay.json"
        if fig8_path.exists():
            fig8_doc = json.loads(fig8_path.read_text(encoding="utf-8"))
        else:
            fig8_doc = {"bench": "fig8_relay", "schema_version": 1,
                        "runs": []}
        fig8_doc["criticality_gate"] = fig8
        fig8_path.write_text(json.dumps(fig8_doc, indent=2) + "\n",
                             encoding="utf-8")
    if fig8_failure is not None:
        print(f"FAIL: {fig8_failure}")
        return 1
    assert fig8 is not None

    # -- campaign snapshot-forking gate ----------------------------------
    campaign, campaign_failure = _campaign_fork_bench(now)
    if campaign is not None:
        campaign_path = REPO_ROOT / "BENCH_x12_campaign_perf.json"
        if campaign_path.exists():
            campaign_doc = json.loads(
                campaign_path.read_text(encoding="utf-8"))
        else:
            campaign_doc = {"bench": "x12_campaign_perf",
                            "schema_version": 1, "runs": []}
        campaign_doc["fork_gate"] = campaign
        campaign_path.write_text(
            json.dumps(campaign_doc, indent=2) + "\n", encoding="utf-8")
    if campaign_failure is not None:
        print(f"FAIL: {campaign_failure}")
        return 1
    assert campaign is not None

    # -- campaign fault-lane batching gate -------------------------------
    batch, batch_failure = _campaign_batch_bench(now)
    if batch is not None:
        campaign_path = REPO_ROOT / "BENCH_x12_campaign_perf.json"
        campaign_doc = json.loads(
            campaign_path.read_text(encoding="utf-8"))
        campaign_doc["batch_gate"] = batch
        campaign_path.write_text(
            json.dumps(campaign_doc, indent=2) + "\n", encoding="utf-8")
    if batch_failure is not None:
        print(f"FAIL: {batch_failure}")
        return 1
    assert batch is not None

    # -- soak throughput + adaptive-sampling gate ------------------------
    soak, soak_failure = _soak_bench(now)
    if soak is not None:
        soak_path = REPO_ROOT / "BENCH_soak.json"
        soak_path.write_text(json.dumps(soak, indent=2) + "\n",
                             encoding="utf-8")
    if soak_failure is not None:
        print(f"FAIL: {soak_failure}")
        return 1
    assert soak is not None

    # -- event-stream overhead gate --------------------------------------
    monitor, monitor_failure = _monitor_bench(now)
    if monitor is not None:
        monitor_path = REPO_ROOT / "BENCH_monitor.json"
        monitor_path.write_text(json.dumps(monitor, indent=2) + "\n",
                                encoding="utf-8")
    if monitor_failure is not None:
        print(f"FAIL: {monitor_failure}")
        return 1
    assert monitor is not None

    speedup = scalar_wall / vector_wall if vector_wall > 0 else float("inf")
    print(f"perf smoke OK: {len(scalar_points)} grid points x "
          f"{NUM_CYCLES} cycles identical in both kernel modes "
          "(obs on and off)")
    print(f"  scalar: {scalar_wall:.3f}s   vector: {vector_wall:.3f}s   "
          f"speedup: {speedup:.1f}x")
    print(f"  obs enabled: {obs_wall:.3f}s ({overhead:+.1f}%)   "
          f"disabled inc(): {noop_us:.3f}us/call")
    batched = next(r for r in dispatch["runs"]
                   if r["dispatch"] == "batched")
    per_task = next(r for r in dispatch["runs"]
                    if r["dispatch"] == "per_task")
    print(f"  dispatch: {per_task['tasks_per_second']:.0f} -> "
          f"{batched['tasks_per_second']:.0f} tasks/s "
          f"({dispatch['speedup']:.1f}x batched, mean batch "
          f"{batched['mean_batch_tasks']:.1f} tasks)")
    print(f"  fig8 relay: naive {fig8['naive_wall_s']:.3f}s -> indexed "
          f"{fig8['indexed_wall_s']:.3f}s ({fig8['speedup']:.0f}x, warm "
          f"repeat {fig8['indexed_warm_wall_s'] * 1e3:.1f}ms)")
    forked_run = next(r for r in campaign["runs"]
                      if r["evaluation"] == "vector_forked")
    full_run = next(r for r in campaign["runs"]
                    if r["evaluation"] == "vector_full_run")
    print(f"  campaign: {full_run['faults_per_second']:.0f} -> "
          f"{forked_run['faults_per_second']:.0f} faults/s forked "
          f"({campaign['speedup']:.1f}x at {CAMPAIGN_CYCLES} cycles, "
          "outcomes byte-identical)")
    batched_run = next(r for r in batch["runs"]
                       if r["evaluation"] == "vector_batched")
    batch_forked_run = next(r for r in batch["runs"]
                            if r["evaluation"] == "vector_forked")
    print(f"  lane batching: {batch_forked_run['faults_per_second']:.0f}"
          f" -> {batched_run['faults_per_second']:.0f} faults/s batched "
          f"({batch['speedup']:.1f}x, floor {BATCH_SPEEDUP_FLOOR:.0f}x; "
          f"{batch['lanes_batched']} lanes batched, "
          f"{batch['lanes_replayed']} replayed)")
    throughput = soak["throughput"]
    gate = soak["adaptive_gate"]
    print(f"  soak: {throughput['batch_faults_per_second']:.0f} f/s "
          f"batched vs {throughput['soak_faults_per_second']:.0f} f/s "
          f"streamed ({throughput['ratio']:.2f}x, floor "
          f"{SOAK_THROUGHPUT_FLOOR:.2f}); widest CI "
          f"{gate['uniform_widest_ci']:.4f} uniform -> "
          f"{gate['adaptive_widest_ci']:.4f} adaptive on "
          f"{SOAK_CI_ROUNDS} rounds")
    print(f"  event stream: {monitor['overhead_percent']:+.2f}% sweep "
          f"overhead (limit {MONITOR_OVERHEAD_LIMIT_PERCENT:.0f}%, "
          f"min of {MONITOR_REPEATS}, spool "
          f"{monitor['spool_bytes']} bytes)")
    print(f"  trajectories written to {path.name}, {obs_path.name}, "
          "BENCH_dispatch.json, BENCH_fig8_relay.json, "
          "BENCH_x12_campaign_perf.json, BENCH_soak.json and "
          "BENCH_monitor.json")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
