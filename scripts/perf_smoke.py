#!/usr/bin/env python
"""Perf smoke test: scalar vs vectorized kernels on one small sweep.

Runs the same (small) resilience sweep twice in one process — once with
``REPRO_SCALAR_KERNELS=1`` and once on the default vectorized kernels —
asserts the results are field-for-field identical, and records both
timings to ``BENCH_perf_smoke.json`` (schema v1, DESIGN.md).  CI runs
this on every push; it is also a convenient local sanity check:

    PYTHONPATH=src python scripts/perf_smoke.py
"""

from __future__ import annotations

import dataclasses
import datetime
import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

TECHNIQUES = ("plain", "timber-ff", "timber-latch", "razor", "canary")
AMPLITUDES = (0.0, 0.08)
NUM_CYCLES = 4_000


def _run_sweep():
    from repro.analysis.experiments import resilience_sweep
    from repro.exec.runner import SweepRunner

    # Serial and uncached so both modes execute in this process and
    # measure pure kernel time.
    runner = SweepRunner(workers=1, cache=None)
    return resilience_sweep(
        techniques=TECHNIQUES,
        droop_amplitudes=AMPLITUDES,
        num_cycles=NUM_CYCLES,
        runner=runner,
    )


def _measure(mode: str):
    from repro.kernels import SCALAR_ENV, kernel_mode

    if mode == "scalar":
        os.environ[SCALAR_ENV] = "1"
    else:
        os.environ.pop(SCALAR_ENV, None)
    active = kernel_mode()
    if active != mode:
        raise SystemExit(
            f"kernel mode is {active!r}, wanted {mode!r} "
            "(is numpy importable?)")
    start = time.perf_counter()
    points = _run_sweep()
    wall = time.perf_counter() - start
    return points, wall


def main() -> int:
    scalar_points, scalar_wall = _measure("scalar")
    vector_points, vector_wall = _measure("vector")

    mismatches = []
    for scalar, vector in zip(scalar_points, vector_points):
        if dataclasses.asdict(scalar) != dataclasses.asdict(vector):
            mismatches.append((dataclasses.asdict(scalar),
                               dataclasses.asdict(vector)))
    if mismatches:
        for scalar, vector in mismatches:
            print("MISMATCH")
            print("  scalar:", scalar)
            print("  vector:", vector)
        return 1

    cycles = len(scalar_points) * NUM_CYCLES
    now = datetime.datetime.now(
        datetime.timezone.utc).isoformat(timespec="seconds")
    runs = []
    for mode, wall in (("scalar", scalar_wall), ("vector", vector_wall)):
        runs.append({
            "kernel_mode": mode,
            "recorded_at": now,
            "wall_time_s": round(wall, 4),
            "simulated_cycles": cycles,
            "cycles_per_second": round(cycles / wall, 1),
            "workers": 1,
            "cache_hits": 0,
            "cache_misses": len(scalar_points),
            "grid_points": len(scalar_points),
        })
    path = REPO_ROOT / "BENCH_perf_smoke.json"
    path.write_text(json.dumps(
        {"bench": "perf_smoke", "schema_version": 1, "runs": runs},
        indent=2) + "\n", encoding="utf-8")

    speedup = scalar_wall / vector_wall if vector_wall > 0 else float("inf")
    print(f"perf smoke OK: {len(scalar_points)} grid points x "
          f"{NUM_CYCLES} cycles identical in both kernel modes")
    print(f"  scalar: {scalar_wall:.3f}s   vector: {vector_wall:.3f}s   "
          f"speedup: {speedup:.1f}x")
    print(f"  trajectory written to {path.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
