#!/usr/bin/env python
"""Perf smoke test: scalar vs vectorized kernels on one small sweep.

Runs the same (small) resilience sweep in one process — once with
``REPRO_SCALAR_KERNELS=1``, once on the default vectorized kernels, and
once vectorized with observability enabled — asserts all three produce
field-for-field identical results, and records the timings to
``BENCH_perf_smoke.json`` and ``BENCH_obs_overhead.json`` (schema v1,
DESIGN.md).  A dispatch-overhead gate then pits batched against
per-task dispatch on a many-tiny-tasks sweep (batched must be >= 3x
tasks/s), checks the warm compile cache actually hits on a real
pipeline sweep, and records both runs to ``BENCH_dispatch.json``.
A Fig. 8 relay gate then times the pre-index scan-per-endpoint relay
analysis against the memoized criticality index on a reduced grid
(must be >= 20x, with a warm-cache hit on a second graph instance)
and merges the result into ``BENCH_fig8_relay.json``.  A campaign
fork gate finally pits snapshot-forked fault evaluation against the
full-run reference on an X12-scale graph campaign (byte-identical
outcomes required, forked must be >= 5x faults/s, scalar baseline
recorded) and merges the result into ``BENCH_x12_campaign_perf.json``.
CI runs this on every push; it is also a convenient local sanity
check:

    PYTHONPATH=src python scripts/perf_smoke.py

The observability checks guard the "free when off" contract two ways:
a structural microbenchmark pins the disabled ``Counter.inc`` no-op
path to well under a microsecond per call, and the disabled-vs-enabled
sweep timings are gated at a generous bound that absorbs CI timer
noise (the committed BENCH artefact records the exact numbers; the
PR-3 baseline itself is machine-dependent, so it is not re-measured
here — the disabled run *is* the baseline configuration).
"""

from __future__ import annotations

import dataclasses
import datetime
import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

TECHNIQUES = ("plain", "timber-ff", "timber-latch", "razor", "canary")
AMPLITUDES = (0.0, 0.08)
NUM_CYCLES = 4_000

#: Allowed enabled-vs-disabled overhead on the sweep.  The ISSUE target
#: is <5% for the *disabled* path vs the pre-obs baseline — which the
#: microbench pins structurally; this end-to-end gate bounds the
#: *enabled* path loosely enough to survive shared-runner timer noise.
OBS_OVERHEAD_LIMIT_PERCENT = 25.0
#: Disabled ``Counter.inc`` budget per call (structural no-op check).
NOOP_BUDGET_US = 1.0
NOOP_CALLS = 200_000

#: Dispatch-overhead gate: many tiny tasks, where the process-pool
#: round-trip dominates the work itself.  Batched dispatch must beat
#: one-future-per-task dispatch by at least this factor in tasks/s.
DISPATCH_TASKS = 600
DISPATCH_WORKERS = 2
DISPATCH_SPEEDUP_FLOOR = 3.0

#: Fig. 8 relay-analysis gate: criticality queries through the memoized
#: index must beat the pre-index scan-per-endpoint pattern by at least
#: this factor on a reduced grid (one performance point, two checking
#: percents), and the second graph instance must hit the warm cache.
FIG8_PERCENTS = (10.0, 20.0)
FIG8_SPEEDUP_FLOOR = 20.0

#: Campaign fork gate: snapshot-forked evaluation must beat the
#: full-run reference (every fault re-simulated from cycle 0) by at
#: least this factor at X12 scale, with byte-identical outcomes.  The
#: measured advantage is ~10x at 4000 cycles; the floor absorbs CI
#: noise.  The scalar baseline is recorded (on a subset — it is two
#: orders of magnitude slower) but not gated.
CAMPAIGN_CYCLES = 4_000
CAMPAIGN_FAULTS = 200
CAMPAIGN_SCALAR_FAULTS = 20
CAMPAIGN_SPEEDUP_FLOOR = 5.0


def _run_sweep():
    from repro.analysis.experiments import resilience_sweep
    from repro.exec.runner import SweepRunner

    # Serial and uncached so both modes execute in this process and
    # measure pure kernel time.
    runner = SweepRunner(workers=1, cache=None)
    return resilience_sweep(
        techniques=TECHNIQUES,
        droop_amplitudes=AMPLITUDES,
        num_cycles=NUM_CYCLES,
        runner=runner,
    )


def _measure(mode: str, *, observability: bool = False):
    from repro import obs
    from repro.kernels import SCALAR_ENV, kernel_mode

    if mode == "scalar":
        os.environ[SCALAR_ENV] = "1"
    else:
        os.environ.pop(SCALAR_ENV, None)
    active = kernel_mode()
    if active != mode:
        raise SystemExit(
            f"kernel mode is {active!r}, wanted {mode!r} "
            "(is numpy importable?)")
    obs.reset()
    if observability:
        obs.enable()
    else:
        obs.disable()
    start = time.perf_counter()
    points = _run_sweep()
    wall = time.perf_counter() - start
    obs.disable()
    obs.reset()
    return points, wall


def _noop_inc_microbench() -> float:
    """Average disabled ``Counter.inc`` cost, in microseconds."""
    from repro.obs.registry import MetricsRegistry

    counter = MetricsRegistry().counter("bench_noop_total").labels()
    start = time.perf_counter()
    for _ in range(NOOP_CALLS):
        counter.inc()
    wall = time.perf_counter() - start
    if counter.value != 0:
        raise SystemExit("disabled counter accumulated — no-op broken")
    return wall / NOOP_CALLS * 1e6


def _dispatch_bench(now: str) -> tuple[dict | None, str | None]:
    """Tiny-task microbench: per-task vs batched dispatch on one pool.

    Returns ``(bench_payload, failure_message)``; the payload records
    both runs so ``BENCH_dispatch.json`` keeps the before/after
    trajectory even on a failing gate.
    """
    from repro.exec import SweepRunner, expand_grid

    tasks = expand_grid("repro.exec.testing:square_task",
                        {"x": tuple(range(DISPATCH_TASKS))},
                        root_seed=5)
    expected = [x * x for x in range(DISPATCH_TASKS)]
    runs = []
    walls = {}
    for label, target_s in (("per_task", 0.0), ("batched", 0.25)):
        with SweepRunner(workers=DISPATCH_WORKERS, cache=None,
                         batch_target_s=target_s) as runner:
            runner.run(tasks[:DISPATCH_WORKERS * 4])  # warm the pool
            start = time.perf_counter()
            run = runner.run(tasks)
            wall = time.perf_counter() - start
        if run.values != expected:
            return None, f"dispatch bench ({label}) computed wrong values"
        walls[label] = wall
        summary = run.summary
        runs.append({
            "dispatch": label,
            "recorded_at": now,
            "wall_time_s": round(wall, 4),
            "tasks": DISPATCH_TASKS,
            "tasks_per_second": round(DISPATCH_TASKS / wall, 1),
            "workers": DISPATCH_WORKERS,
            "batches": summary["batches"],
            "mean_batch_tasks": round(
                summary["batch_tasks"]["mean"], 2),
        })
    speedup = (walls["per_task"] / walls["batched"]
               if walls["batched"] > 0 else float("inf"))

    # Warm compile-cache check: a real (pipeline) sweep through the
    # same dispatch layer must reuse compiled stage arrays across
    # tasks and batches inside the workers.
    from repro.analysis.experiments import resilience_sweep

    with SweepRunner(workers=DISPATCH_WORKERS, cache=None) as runner:
        resilience_sweep(
            techniques=("plain", "timber-ff"),
            droop_amplitudes=(0.0, 0.04, 0.08), num_cycles=500,
            runner=runner)
        assert runner.last_run is not None
        warm = runner.last_run.summary["warm_cache"]

    payload = {
        "bench": "dispatch",
        "schema_version": 1,
        "speedup": round(speedup, 2),
        "speedup_floor": DISPATCH_SPEEDUP_FLOOR,
        "warm_cache": warm,
        "runs": runs,
    }
    if speedup < DISPATCH_SPEEDUP_FLOOR:
        return payload, (
            f"batched dispatch only {speedup:.2f}x faster than "
            f"per-task dispatch (floor {DISPATCH_SPEEDUP_FLOOR:.0f}x; "
            f"per-task {walls['per_task']:.3f}s, "
            f"batched {walls['batched']:.3f}s)")
    compiled = warm.get("compiled", {"hits": 0})
    if compiled["hits"] <= 0:
        return payload, (
            "warm compile cache recorded no hits on the pipeline "
            f"sweep (warm stats: {warm})")
    return payload, None


def _fig8_relay_bench(now: str) -> tuple[dict | None, str | None]:
    """Criticality-index gate on a reduced Fig. 8 grid.

    Times the pre-index relay analysis (``naive_relay_inputs``, one
    full through-set recomputation per endpoint — the pattern behind
    the recorded 142 s scalar baseline) against ``relay_cost`` through
    the memoized index, on the medium performance point at two checking
    percents.  A second, content-identical graph instance must be
    served from the warm cache.  Returns ``(gate_payload,
    failure_message)``; the payload is merged into
    ``BENCH_fig8_relay.json`` alongside the full-grid trajectory.
    """
    from repro.core.relay import relay_cost
    from repro.exec.worker import WARM
    from repro.processor.generator import generate_processor
    from repro.processor.perfpoints import MEDIUM_PERFORMANCE
    from repro.timing.criticality import naive_relay_inputs

    graphs = [generate_processor(MEDIUM_PERFORMANCE, seed=2010)
              for _ in range(2)]

    start = time.perf_counter()
    naive = {percent: naive_relay_inputs(graphs[0], percent)
             for percent in FIG8_PERCENTS}
    naive_wall = time.perf_counter() - start

    before = WARM.counters()
    start = time.perf_counter()
    cold = {percent: relay_cost(graphs[0], percent)
            for percent in FIG8_PERCENTS}
    cold_wall = time.perf_counter() - start
    start = time.perf_counter()
    warm = {percent: relay_cost(graphs[1], percent)
            for percent in FIG8_PERCENTS}
    warm_wall = time.perf_counter() - start
    delta = WARM.stats_delta(before)

    for percent in FIG8_PERCENTS:
        fanins = naive[percent]
        for cost in (cold[percent], warm[percent]):
            if (cost.num_protected_ffs != len(fanins)
                    or cost.num_relayed_inputs != sum(fanins.values())):
                return None, (
                    f"indexed relay_cost diverged from the naive scan "
                    f"at {percent}% checking")

    speedup = naive_wall / cold_wall if cold_wall > 0 else float("inf")
    payload = {
        "recorded_at": now,
        "point": MEDIUM_PERFORMANCE.name,
        "checking_percents": list(FIG8_PERCENTS),
        "edges": graphs[0].num_edges,
        "naive_wall_s": round(naive_wall, 4),
        "indexed_wall_s": round(cold_wall, 4),
        "indexed_warm_wall_s": round(warm_wall, 6),
        "speedup": round(speedup, 1),
        "speedup_floor": FIG8_SPEEDUP_FLOOR,
        "warm_cache": delta,
    }
    if speedup < FIG8_SPEEDUP_FLOOR:
        return payload, (
            f"criticality index only {speedup:.1f}x faster than the "
            f"naive relay scan (floor {FIG8_SPEEDUP_FLOOR:.0f}x; naive "
            f"{naive_wall:.3f}s, indexed {cold_wall:.3f}s)")
    hits = delta.get("criticality", [0, 0])[0]
    if hits < 1:
        return payload, (
            "second graph instance did not hit the warm criticality "
            f"cache (warm stats delta: {delta})")
    return payload, None


def _campaign_fork_bench(now: str) -> tuple[dict | None, str | None]:
    """Snapshot-forking gate on an X12-scale graph campaign.

    Evaluates the same seeded population three ways — scalar full runs
    (subset, recorded as the baseline), vectorized full runs (the
    executable spec), and the forked evaluator (nearest background
    snapshot + fault window only) — asserts the encoded outcomes are
    byte-identical, then gates forked against full-run throughput.  A
    second evaluator for the same config must be served from the warm
    trajectory cache.  Returns ``(gate_payload, failure_message)``;
    the payload is merged into ``BENCH_x12_campaign_perf.json``
    alongside the campaign-shootout trajectory.
    """
    from repro.campaign import CampaignConfig, fault_runner
    from repro.campaign.engine import FULL_RUN_TARGETS
    from repro.exec.cache import encode_result
    from repro.exec.worker import WARM
    from repro.kernels import SCALAR_ENV

    config = CampaignConfig(
        target="graph", scheme="timber-ff",
        num_faults=CAMPAIGN_FAULTS, num_cycles=CAMPAIGN_CYCLES)
    population = list(config.iter_population())
    reference = FULL_RUN_TARGETS[config.target]

    def encoded(outcomes):
        return json.dumps(encode_result(outcomes), sort_keys=True)

    saved = os.environ.get(SCALAR_ENV)
    os.environ[SCALAR_ENV] = "1"
    try:
        start = time.perf_counter()
        scalar = [reference(config, spec)[0]
                  for spec in population[:CAMPAIGN_SCALAR_FAULTS]]
        scalar_wall = time.perf_counter() - start
    finally:
        if saved is None:
            os.environ.pop(SCALAR_ENV, None)
        else:
            os.environ[SCALAR_ENV] = saved

    start = time.perf_counter()
    full = [reference(config, spec)[0] for spec in population]
    full_wall = time.perf_counter() - start

    before = WARM.counters()
    start = time.perf_counter()
    runner = fault_runner(config)
    forked: list = [None] * len(population)
    for index in runner.evaluation_order(population):
        forked[index] = runner.evaluate(population[index])[0]
    forked_wall = time.perf_counter() - start
    fault_runner(config)  # same config again: must hit the warm cache
    delta = WARM.stats_delta(before)

    if encoded(scalar) != encoded(full[:CAMPAIGN_SCALAR_FAULTS]):
        return None, ("scalar and vectorized full-run campaign "
                      "outcomes diverged")
    if encoded(full) != encoded(forked):
        return None, ("snapshot-forked campaign outcomes diverged "
                      "from the full-run reference")

    speedup = full_wall / forked_wall if forked_wall > 0 else float("inf")
    runs = []
    for label, wall, faults in (
            ("scalar_full_run", scalar_wall, CAMPAIGN_SCALAR_FAULTS),
            ("vector_full_run", full_wall, CAMPAIGN_FAULTS),
            ("vector_forked", forked_wall, CAMPAIGN_FAULTS)):
        runs.append({
            "evaluation": label,
            "recorded_at": now,
            "wall_time_s": round(wall, 4),
            "faults": faults,
            "num_cycles": CAMPAIGN_CYCLES,
            "faults_per_second": round(faults / wall, 1),
        })
    payload = {
        "recorded_at": now,
        "target": config.target,
        "scheme": config.scheme,
        "snapshot_stride": config.snapshot_stride,
        "speedup": round(speedup, 1),
        "speedup_floor": CAMPAIGN_SPEEDUP_FLOOR,
        "warm_cache": delta,
        "runs": runs,
    }
    if speedup < CAMPAIGN_SPEEDUP_FLOOR:
        return payload, (
            f"forked campaign evaluation only {speedup:.1f}x faster "
            f"than full runs (floor {CAMPAIGN_SPEEDUP_FLOOR:.0f}x; "
            f"full {full_wall:.3f}s, forked {forked_wall:.3f}s)")
    hits = delta.get("trajectory", [0, 0])[0]
    if hits < 1:
        return payload, (
            "second evaluator did not hit the warm trajectory cache "
            f"(warm stats delta: {delta})")
    return payload, None


def main() -> int:
    scalar_points, scalar_wall = _measure("scalar")
    vector_points, vector_wall = _measure("vector")
    obs_points, obs_wall = _measure("vector", observability=True)

    mismatches = []
    for scalar, vector, observed in zip(scalar_points, vector_points,
                                        obs_points):
        if not (dataclasses.asdict(scalar) == dataclasses.asdict(vector)
                == dataclasses.asdict(observed)):
            mismatches.append((dataclasses.asdict(scalar),
                               dataclasses.asdict(vector)))
    if mismatches:
        for scalar, vector in mismatches:
            print("MISMATCH")
            print("  scalar:", scalar)
            print("  vector:", vector)
        return 1

    cycles = len(scalar_points) * NUM_CYCLES
    now = datetime.datetime.now(
        datetime.timezone.utc).isoformat(timespec="seconds")
    runs = []
    for mode, wall in (("scalar", scalar_wall), ("vector", vector_wall)):
        runs.append({
            "kernel_mode": mode,
            "recorded_at": now,
            "wall_time_s": round(wall, 4),
            "simulated_cycles": cycles,
            "cycles_per_second": round(cycles / wall, 1),
            "workers": 1,
            "cache_hits": 0,
            "cache_misses": len(scalar_points),
            "grid_points": len(scalar_points),
        })
    path = REPO_ROOT / "BENCH_perf_smoke.json"
    path.write_text(json.dumps(
        {"bench": "perf_smoke", "schema_version": 1, "runs": runs},
        indent=2) + "\n", encoding="utf-8")

    # -- observability overhead gates -----------------------------------
    noop_us = _noop_inc_microbench()
    if noop_us > NOOP_BUDGET_US:
        print(f"FAIL: disabled Counter.inc averages {noop_us:.3f}us "
              f"per call (budget {NOOP_BUDGET_US}us) — the no-op path "
              "is not free")
        return 1
    overhead = (100.0 * (obs_wall - vector_wall) / vector_wall
                if vector_wall > 0 else 0.0)
    if overhead > OBS_OVERHEAD_LIMIT_PERCENT:
        print(f"FAIL: observability overhead {overhead:.1f}% exceeds "
              f"{OBS_OVERHEAD_LIMIT_PERCENT:.0f}% "
              f"(disabled {vector_wall:.3f}s, enabled {obs_wall:.3f}s)")
        return 1
    obs_runs = []
    for label, wall in (("obs_disabled", vector_wall),
                        ("obs_enabled", obs_wall)):
        obs_runs.append({
            "kernel_mode": "vector",
            "observability": label == "obs_enabled",
            "recorded_at": now,
            "wall_time_s": round(wall, 4),
            "simulated_cycles": cycles,
            "cycles_per_second": round(cycles / wall, 1),
            "workers": 1,
            "cache_hits": 0,
            "cache_misses": len(scalar_points),
            "grid_points": len(scalar_points),
        })
    obs_path = REPO_ROOT / "BENCH_obs_overhead.json"
    obs_path.write_text(json.dumps({
        "bench": "obs_overhead",
        "schema_version": 1,
        "overhead_percent": round(overhead, 2),
        "noop_inc_us": round(noop_us, 4),
        "runs": obs_runs,
    }, indent=2) + "\n", encoding="utf-8")

    # -- dispatch-overhead gate ------------------------------------------
    dispatch, dispatch_failure = _dispatch_bench(now)
    if dispatch is not None:
        dispatch_path = REPO_ROOT / "BENCH_dispatch.json"
        dispatch_path.write_text(
            json.dumps(dispatch, indent=2) + "\n", encoding="utf-8")
    if dispatch_failure is not None:
        print(f"FAIL: {dispatch_failure}")
        return 1
    assert dispatch is not None

    # -- Fig. 8 relay-analysis (criticality index) gate ------------------
    fig8, fig8_failure = _fig8_relay_bench(now)
    if fig8 is not None:
        fig8_path = REPO_ROOT / "BENCH_fig8_relay.json"
        if fig8_path.exists():
            fig8_doc = json.loads(fig8_path.read_text(encoding="utf-8"))
        else:
            fig8_doc = {"bench": "fig8_relay", "schema_version": 1,
                        "runs": []}
        fig8_doc["criticality_gate"] = fig8
        fig8_path.write_text(json.dumps(fig8_doc, indent=2) + "\n",
                             encoding="utf-8")
    if fig8_failure is not None:
        print(f"FAIL: {fig8_failure}")
        return 1
    assert fig8 is not None

    # -- campaign snapshot-forking gate ----------------------------------
    campaign, campaign_failure = _campaign_fork_bench(now)
    if campaign is not None:
        campaign_path = REPO_ROOT / "BENCH_x12_campaign_perf.json"
        if campaign_path.exists():
            campaign_doc = json.loads(
                campaign_path.read_text(encoding="utf-8"))
        else:
            campaign_doc = {"bench": "x12_campaign_perf",
                            "schema_version": 1, "runs": []}
        campaign_doc["fork_gate"] = campaign
        campaign_path.write_text(
            json.dumps(campaign_doc, indent=2) + "\n", encoding="utf-8")
    if campaign_failure is not None:
        print(f"FAIL: {campaign_failure}")
        return 1
    assert campaign is not None

    speedup = scalar_wall / vector_wall if vector_wall > 0 else float("inf")
    print(f"perf smoke OK: {len(scalar_points)} grid points x "
          f"{NUM_CYCLES} cycles identical in both kernel modes "
          "(obs on and off)")
    print(f"  scalar: {scalar_wall:.3f}s   vector: {vector_wall:.3f}s   "
          f"speedup: {speedup:.1f}x")
    print(f"  obs enabled: {obs_wall:.3f}s ({overhead:+.1f}%)   "
          f"disabled inc(): {noop_us:.3f}us/call")
    batched = next(r for r in dispatch["runs"]
                   if r["dispatch"] == "batched")
    per_task = next(r for r in dispatch["runs"]
                    if r["dispatch"] == "per_task")
    print(f"  dispatch: {per_task['tasks_per_second']:.0f} -> "
          f"{batched['tasks_per_second']:.0f} tasks/s "
          f"({dispatch['speedup']:.1f}x batched, mean batch "
          f"{batched['mean_batch_tasks']:.1f} tasks)")
    print(f"  fig8 relay: naive {fig8['naive_wall_s']:.3f}s -> indexed "
          f"{fig8['indexed_wall_s']:.3f}s ({fig8['speedup']:.0f}x, warm "
          f"repeat {fig8['indexed_warm_wall_s'] * 1e3:.1f}ms)")
    forked_run = next(r for r in campaign["runs"]
                      if r["evaluation"] == "vector_forked")
    full_run = next(r for r in campaign["runs"]
                    if r["evaluation"] == "vector_full_run")
    print(f"  campaign: {full_run['faults_per_second']:.0f} -> "
          f"{forked_run['faults_per_second']:.0f} faults/s forked "
          f"({campaign['speedup']:.1f}x at {CAMPAIGN_CYCLES} cycles, "
          "outcomes byte-identical)")
    print(f"  trajectories written to {path.name}, {obs_path.name}, "
          "BENCH_dispatch.json, BENCH_fig8_relay.json and "
          "BENCH_x12_campaign_perf.json")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
