"""repro — reproduction of TIMBER (DATE 2010).

TIMBER masks online timing errors by borrowing time from successive
pipeline stages, relaying error information between TIMBER flip-flops so
multi-stage errors stay masked while a central controller temporarily
reduces the clock frequency.

Public API tour:

* ``repro.core`` — checking-period arithmetic, capture/masking
  semantics, error relay, TIMBER deployment on a design, structural
  (latch-level) TIMBER circuits.
* ``repro.sequential`` — behavioural TIMBER flip-flop/latch plus Razor,
  canary, and delay-compensation baselines for the event-driven
  simulator.
* ``repro.sim`` — deterministic event-driven simulator, clock
  generators, waveform capture.
* ``repro.circuit`` / ``repro.timing`` — netlists, cell library, STA,
  path enumeration, hold-fix planning, critical-path distributions.
* ``repro.pipeline`` — cycle-level pipeline simulation with capture
  policies and the central error controller.
* ``repro.processor`` — synthetic industrial-processor timing graphs
  calibrated to the paper's Fig. 1.
* ``repro.variability`` — local / fast-global / slow-global / static
  variability models.
* ``repro.power`` — cost models and deployment overheads (Fig. 8).
* ``repro.baselines`` — Table-1 taxonomy and architecture models.
* ``repro.analysis`` — experiment runners and report rendering.

Quickstart::

    from repro.core import CheckingPeriod, TimberDesign, TimberStyle
    from repro.processor import MEDIUM_PERFORMANCE, generate_processor

    graph = generate_processor(MEDIUM_PERFORMANCE)
    design = TimberDesign(graph=graph, style=TimberStyle.FLIP_FLOP,
                          percent_checking=30.0)
    print(design.summary())
"""

from repro.core.architecture import TimberDesign, TimberStyle
from repro.core.checking_period import CheckingPeriod, IntervalKind

__version__ = "1.0.0"

__all__ = [
    "CheckingPeriod",
    "IntervalKind",
    "TimberDesign",
    "TimberStyle",
    "__version__",
]
