"""Conventional master-slave D flip-flop."""

from __future__ import annotations

from repro.circuit.logic import Logic
from repro.sequential.base import ClockedElement, TimingCheck
from repro.sim.engine import Simulator


class DFlipFlop(ClockedElement):
    """Edge-triggered D flip-flop with setup/hold metastability modelling.

    Samples D on the rising clock edge.  If D changes within the setup
    aperture before the edge, the sampled value is ``X``; if D changes
    within the hold window after the edge, the already-driven output is
    corrupted to ``X`` retroactively (scheduled at the violation instant),
    which is the pessimistic digital abstraction of a master latch losing
    its captured value.
    """

    def __init__(
        self,
        simulator: Simulator,
        *,
        name: str,
        d: str,
        clk: str,
        q: str,
        clk_to_q_ps: int = 45,
        timing: TimingCheck | None = None,
    ) -> None:
        super().__init__(
            simulator, name=name, d=d, clk=clk, q=q,
            clk_to_q_ps=clk_to_q_ps,
            timing=timing or TimingCheck(setup_ps=30, hold_ps=15),
        )
        self.sample_history: list[tuple[int, Logic]] = []
        self._hold_deadline: int | None = None

    def on_rising(self, time_ps: int) -> None:
        value = self._sample_with_checks(time_ps)
        self.sample_history.append((time_ps, value))
        self._hold_deadline = time_ps + self.timing.hold_ps
        self.drive_q(value, time_ps + self.clk_to_q_ps)

    def on_data_change(self, time_ps: int, _value: Logic) -> None:
        deadline = self._hold_deadline
        if deadline is not None and time_ps <= deadline:
            edge_ps = deadline - self.timing.hold_ps
            if time_ps > edge_ps:
                # Hold violation: the master's captured value is suspect.
                self.sample_history[-1] = (edge_ps, Logic.X)
                self.drive_q(Logic.X, edge_ps + self.clk_to_q_ps)

    def last_sample(self) -> Logic:
        return self.sample_history[-1][1] if self.sample_history else Logic.X
