"""Behavioural TIMBER flip-flop (paper Sec. 5.1).

A TIMBER flip-flop has two master latches sharing one slave:

* **M0** samples D on the rising edge of CLK and immediately drives Q —
  identical to a conventional master-slave flip-flop.
* **M1** samples D on the rising edge of a *delayed* clock, ``delta``
  after the edge, where ``delta = (select + 1) * interval`` is set by the
  2-bit select input S1S0.  After ``delta``, M1 drives the slave.

If no timing error occurred, M0 and M1 sample the same value and the
element behaves like a plain flip-flop.  If the data arrived late (but
within ``delta``), M1 catches the corrected value and *masks* the error by
borrowing ``delta`` from the next stage — in discrete interval units, so
the edge-sampling property is preserved.

Select bookkeeping implements the paper's error relay contract:

* ``select_out = 0`` when no error occurred this cycle;
* ``select_out = select_in + 1`` when an error was masked, so a
  downstream TIMBER flip-flop can borrow one *additional* interval;
* the error is **flagged** (latched on the falling clock edge) only when
  the newly borrowed interval is an ED-type interval, i.e. when
  ``select_in + 1 > num_tb_intervals``.

The element also demonstrates the paper's metastability claim: a data
transition violating M0's setup aperture makes M0 sample ``X``, but M1's
delayed sample resolves the output to the correct value.
"""

from __future__ import annotations

import dataclasses

from repro.circuit.logic import Logic
from repro.errors import ConfigurationError, SimulationError
from repro.sequential.base import ClockedElement, TimingCheck
from repro.sim.engine import Simulator


@dataclasses.dataclass(frozen=True)
class MaskingEvent:
    """Record of one masked timing error at a TIMBER flip-flop."""

    cycle_edge_ps: int
    m0_value: Logic
    m1_value: Logic
    select_in: int
    borrowed_intervals: int
    borrowed_ps: int
    flagged: bool


class TimberFlipFlop(ClockedElement):
    """Discrete-time-borrowing TIMBER flip-flop."""

    def __init__(
        self,
        simulator: Simulator,
        *,
        name: str,
        d: str,
        clk: str,
        q: str,
        err: str,
        interval_ps: int,
        num_intervals: int = 3,
        num_tb_intervals: int = 1,
        enabled: bool = True,
        clk_to_q_ps: int = 50,
        mux_delay_ps: int = 10,
        timing: TimingCheck | None = None,
    ) -> None:
        if interval_ps <= 0:
            raise ConfigurationError(f"{name}: interval must be > 0 ps")
        if num_intervals < 1:
            raise ConfigurationError(f"{name}: need >= 1 interval")
        if not 0 <= num_tb_intervals <= num_intervals:
            raise ConfigurationError(
                f"{name}: num_tb_intervals must be within "
                f"[0, {num_intervals}]"
            )
        super().__init__(
            simulator, name=name, d=d, clk=clk, q=q,
            clk_to_q_ps=clk_to_q_ps,
            timing=timing or TimingCheck(setup_ps=30, hold_ps=15),
        )
        self.err = err
        self.interval_ps = interval_ps
        self.num_intervals = num_intervals
        self.num_tb_intervals = num_tb_intervals
        self.enabled = enabled
        self.mux_delay_ps = mux_delay_ps
        self.select_in = 0
        self.select_out = 0
        self.events: list[MaskingEvent] = []
        self._m0_value: Logic = Logic.X
        self._edge_ps: int | None = None
        self._flag_pending = False
        simulator.set_initial(err, Logic.ZERO)

    # -- external control -----------------------------------------------
    def set_select(self, select: int) -> None:
        """Set the select input (normally driven by the error relay).

        Values are clamped to the encodable range ``[0, num_intervals-1]``
        — the hardware select is a 2-bit field, so a relay requesting more
        borrowing than the checking period allows saturates, exactly the
        condition under which the system must already have flagged and be
        slowing its clock.
        """
        if select < 0:
            raise ConfigurationError(f"{self.name}: negative select")
        self.select_in = min(select, self.num_intervals - 1)

    def clear_error(self, time_ps: int | None = None) -> None:
        """De-assert the latched error flag (central controller acks)."""
        when = self.simulator.now if time_ps is None else time_ps
        self.simulator.drive(self.err, Logic.ZERO, when,
                             label=f"{self.name}.err.clear")

    # -- clocked behaviour ----------------------------------------------
    def on_rising(self, time_ps: int) -> None:
        self._edge_ps = time_ps
        self.select_out = 0
        self._m0_value = self._sample_with_checks(time_ps)
        self.drive_q(self._m0_value, time_ps + self.clk_to_q_ps)
        if not self.enabled:
            return
        delta = (self.select_in + 1) * self.interval_ps
        if self.select_in + 1 > self.num_intervals:
            raise SimulationError(
                f"{self.name}: select {self.select_in} exceeds the "
                f"checking period ({self.num_intervals} intervals)"
            )
        self.simulator.at(time_ps + delta, self._m1_sample,
                          label=f"{self.name}.m1")

    def _m1_sample(self, sim: Simulator) -> None:
        assert self._edge_ps is not None
        m1_value = self.data_value()
        if m1_value is self._m0_value:
            self.select_out = 0
            return
        # Timing error: M1 masks it by driving the slave with the late
        # (correct) value.  This also resolves an X (metastable) M0.
        borrowed = self.select_in + 1
        flagged = borrowed > self.num_tb_intervals
        self.drive_q(m1_value, sim.now + self.mux_delay_ps)
        self.select_out = borrowed
        self._flag_pending = self._flag_pending or flagged
        self.events.append(MaskingEvent(
            cycle_edge_ps=self._edge_ps,
            m0_value=self._m0_value,
            m1_value=m1_value,
            select_in=self.select_in,
            borrowed_intervals=borrowed,
            borrowed_ps=borrowed * self.interval_ps,
            flagged=flagged,
        ))

    def on_falling(self, time_ps: int) -> None:
        if self._flag_pending:
            # The error signal is latched on the falling edge (paper
            # Sec. 4), buying the OR-tree an extra half cycle.
            self.simulator.drive(self.err, Logic.ONE, time_ps,
                                 label=f"{self.name}.err")
            self._flag_pending = False

    # -- introspection -----------------------------------------------------
    @property
    def masked_count(self) -> int:
        return len(self.events)

    @property
    def flagged_count(self) -> int:
        return sum(1 for event in self.events if event.flagged)
