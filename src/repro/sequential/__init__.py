"""Behavioural sequential elements for the event-driven simulator.

Each element attaches to a :class:`~repro.sim.engine.Simulator`, watches a
clock and a data signal, and drives an output (plus error signals where
the element detects timing errors).  The TIMBER elements implement the
paper's Sec. 5 semantics; Razor, canary, and delay-compensation flip-flops
implement the baselines of Table 1.
"""

from repro.sequential.base import ClockedElement, TimingCheck
from repro.sequential.flipflop import DFlipFlop
from repro.sequential.latch import DLatch, PulseGatedLatch
from repro.sequential.timber_ff import TimberFlipFlop
from repro.sequential.timber_latch import TimberLatch
from repro.sequential.razor import RazorFlipFlop
from repro.sequential.canary import CanaryFlipFlop
from repro.sequential.dcf import DelayCompensationFlipFlop
from repro.sequential.softedge import SoftEdgeFlipFlop

__all__ = [
    "ClockedElement",
    "TimingCheck",
    "DFlipFlop",
    "DLatch",
    "PulseGatedLatch",
    "TimberFlipFlop",
    "TimberLatch",
    "RazorFlipFlop",
    "CanaryFlipFlop",
    "DelayCompensationFlipFlop",
    "SoftEdgeFlipFlop",
]
