"""Canary flip-flop baseline (error *prediction*; Sato et al., ISQED'07).

A canary flip-flop samples the data path twice on the same clock edge: the
main flip-flop samples ``D`` directly, while the canary flip-flop samples
``D`` through a delay element of ``guard_ps``.  If the data transitioned
within the guard band before the edge, the two samples disagree and a
timing error is *predicted* — the state is still correct (the main sample
made it), but the system must immediately back off (slow down / raise
voltage) because the next violation would be real.

Because the guard band must stay in front of the clock edge permanently,
prediction can never recover the dynamic-variability margin — the key
disadvantage in the paper's Table 1.
"""

from __future__ import annotations

import bisect
import dataclasses

from repro.circuit.logic import Logic
from repro.errors import ConfigurationError
from repro.sequential.base import ClockedElement, TimingCheck
from repro.sim.engine import Simulator


@dataclasses.dataclass(frozen=True)
class CanaryWarning:
    """Record of one canary prediction."""

    cycle_edge_ps: int
    main_value: Logic
    canary_value: Logic


class CanaryFlipFlop(ClockedElement):
    """Main flip-flop + guard-band delayed canary flip-flop."""

    def __init__(
        self,
        simulator: Simulator,
        *,
        name: str,
        d: str,
        clk: str,
        q: str,
        warn: str,
        guard_ps: int,
        clk_to_q_ps: int = 45,
        timing: TimingCheck | None = None,
    ) -> None:
        if guard_ps <= 0:
            raise ConfigurationError(f"{name}: guard band must be > 0 ps")
        super().__init__(
            simulator, name=name, d=d, clk=clk, q=q,
            clk_to_q_ps=clk_to_q_ps,
            timing=timing or TimingCheck(setup_ps=30, hold_ps=15),
        )
        self.warn = warn
        self.guard_ps = guard_ps
        self.warnings: list[CanaryWarning] = []
        # History of D changes so the delayed (canary) view of the data
        # path can be reconstructed at sampling time.  Seed with the
        # current value so the delayed view is defined before the first
        # recorded transition.
        self._d_times: list[int] = [simulator.now - guard_ps]
        self._d_values: list[Logic] = [simulator.value(d)]
        simulator.set_initial(warn, Logic.ZERO)

    def on_data_change(self, time_ps: int, value: Logic) -> None:
        self._d_times.append(time_ps)
        self._d_values.append(value)

    def _d_value_at(self, time_ps: int) -> Logic:
        index = bisect.bisect_right(self._d_times, time_ps) - 1
        if index < 0:
            return Logic.X
        return self._d_values[index]

    def on_rising(self, time_ps: int) -> None:
        main = self._sample_with_checks(time_ps)
        # The canary sees the data path through a guard_ps delay element,
        # i.e. the value D held guard_ps ago.
        canary = self._d_value_at(time_ps - self.guard_ps)
        self.drive_q(main, time_ps + self.clk_to_q_ps)
        if main is not canary:
            self.warnings.append(CanaryWarning(
                cycle_edge_ps=time_ps, main_value=main, canary_value=canary,
            ))
            self.simulator.drive(self.warn, Logic.ONE, time_ps,
                                 label=f"{self.name}.warn")

    def clear_warning(self, time_ps: int | None = None) -> None:
        when = self.simulator.now if time_ps is None else time_ps
        self.simulator.drive(self.warn, Logic.ZERO, when,
                             label=f"{self.name}.warn.clear")

    @property
    def warning_count(self) -> int:
        return len(self.warnings)
