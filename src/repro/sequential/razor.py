"""Razor flip-flop baseline (error *detection*; Ernst et al., MICRO'03).

A Razor flip-flop augments the main flip-flop with a shadow latch clocked
``window_ps`` after the main edge.  If the shadow disagrees with the main
sample, a timing error *occurred* — the architectural state is already
corrupted, so the surrounding architecture must recover with a rollback or
local instruction replay (modelled in
:mod:`repro.baselines.razor_arch`).  The flip-flop itself restores the
correct value into the pipeline from the shadow latch.
"""

from __future__ import annotations

import dataclasses

from repro.circuit.logic import Logic
from repro.errors import ConfigurationError
from repro.sequential.base import ClockedElement, TimingCheck
from repro.sim.engine import Simulator


@dataclasses.dataclass(frozen=True)
class RazorDetection:
    """Record of one Razor error detection."""

    cycle_edge_ps: int
    main_value: Logic
    shadow_value: Logic


class RazorFlipFlop(ClockedElement):
    """Main flip-flop + shadow latch error detector."""

    def __init__(
        self,
        simulator: Simulator,
        *,
        name: str,
        d: str,
        clk: str,
        q: str,
        err: str,
        window_ps: int,
        clk_to_q_ps: int = 45,
        mux_delay_ps: int = 10,
        timing: TimingCheck | None = None,
    ) -> None:
        if window_ps <= 0:
            raise ConfigurationError(f"{name}: window must be > 0 ps")
        super().__init__(
            simulator, name=name, d=d, clk=clk, q=q,
            clk_to_q_ps=clk_to_q_ps,
            timing=timing or TimingCheck(setup_ps=30, hold_ps=15),
        )
        self.err = err
        self.window_ps = window_ps
        self.mux_delay_ps = mux_delay_ps
        self.detections: list[RazorDetection] = []
        self._main_value: Logic = Logic.X
        self._edge_ps: int | None = None
        simulator.set_initial(err, Logic.ZERO)

    def clear_error(self, time_ps: int | None = None) -> None:
        when = self.simulator.now if time_ps is None else time_ps
        self.simulator.drive(self.err, Logic.ZERO, when,
                             label=f"{self.name}.err.clear")

    def on_rising(self, time_ps: int) -> None:
        self._edge_ps = time_ps
        # Unlike TIMBER, the main sample is architecturally consumed
        # immediately; a late arrival means downstream logic already saw
        # the wrong value for part of a cycle.
        self._main_value = self._sample_with_checks(time_ps)
        self.drive_q(self._main_value, time_ps + self.clk_to_q_ps)
        self.simulator.at(time_ps + self.window_ps, self._shadow_sample,
                          label=f"{self.name}.shadow")

    def _shadow_sample(self, sim: Simulator) -> None:
        assert self._edge_ps is not None
        shadow = self.data_value()
        if shadow is self._main_value:
            return
        self.detections.append(RazorDetection(
            cycle_edge_ps=self._edge_ps,
            main_value=self._main_value,
            shadow_value=shadow,
        ))
        # Razor restores the correct value and raises the error signal at
        # detection time — state was corrupted, so recovery (replay or
        # rollback) is the architecture's job, not this cell's.
        self.drive_q(shadow, sim.now + self.mux_delay_ps)
        sim.drive(self.err, Logic.ONE, sim.now, label=f"{self.name}.err")

    @property
    def detection_count(self) -> int:
        return len(self.detections)
