"""Shared plumbing for clocked behavioural elements."""

from __future__ import annotations

import dataclasses

from repro.circuit.logic import Logic
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator


@dataclasses.dataclass(frozen=True)
class TimingCheck:
    """Setup/hold window parameters for a sampling element."""

    setup_ps: int = 0
    hold_ps: int = 0

    def __post_init__(self) -> None:
        if self.setup_ps < 0 or self.hold_ps < 0:
            raise ConfigurationError("setup/hold must be >= 0")

    def violated(self, last_data_change_ps: int | None,
                 sample_ps: int) -> bool:
        """True if a data change falls inside the aperture around
        ``sample_ps``.

        Only *past* changes can be known at sampling time; hold-side
        violations are checked by the caller re-testing after the hold
        window (see :meth:`ClockedElement._sample_with_checks`).
        """
        if last_data_change_ps is None:
            return False
        return sample_ps - self.setup_ps < last_data_change_ps <= sample_ps


class ClockedElement:
    """Base class for clock-edge driven elements.

    Subclasses override :meth:`on_rising` / :meth:`on_falling`.  The base
    class tracks the data signal's last change time so elements can apply
    setup checks, and offers :meth:`_sample_with_checks`, which returns
    ``X`` (metastability) when the aperture is violated.
    """

    def __init__(
        self,
        simulator: Simulator,
        *,
        name: str,
        d: str,
        clk: str,
        q: str,
        clk_to_q_ps: int = 0,
        timing: TimingCheck | None = None,
    ) -> None:
        if clk_to_q_ps < 0:
            raise ConfigurationError(f"{name}: clk_to_q must be >= 0")
        self.simulator = simulator
        self.name = name
        self.d = d
        self.clk = clk
        self.q = q
        self.clk_to_q_ps = clk_to_q_ps
        self.timing = timing or TimingCheck()
        self._last_d_change: int | None = None
        simulator.on_change(d, self._track_data)
        simulator.on_change(clk, self._track_clock)

    # -- hooks ---------------------------------------------------------------
    def on_rising(self, time_ps: int) -> None:
        """Called at every rising clock edge."""

    def on_falling(self, time_ps: int) -> None:
        """Called at every falling clock edge."""

    def on_data_change(self, time_ps: int, value: Logic) -> None:
        """Called whenever the data input changes."""

    # -- helpers -----------------------------------------------------------
    def data_value(self) -> Logic:
        return self.simulator.value(self.d)

    def drive_q(self, value: Logic, time_ps: int) -> None:
        self.simulator.drive(self.q, value, time_ps, label=f"{self.name}.q")

    def _sample_with_checks(self, sample_ps: int) -> Logic:
        """Sample D, returning X if the setup aperture was violated.

        Hold violations (a change shortly *after* the edge) cannot be seen
        at the sampling instant; subclasses that care (the conventional
        flip-flop) schedule a re-check at ``sample_ps + hold_ps``.
        """
        if self.timing.violated(self._last_d_change, sample_ps):
            return Logic.X
        return self.data_value()

    # -- internal listeners -------------------------------------------------
    def _track_data(self, _sim: Simulator, _signal: str, value: Logic,
                    time_ps: int) -> None:
        self._last_d_change = time_ps
        self.on_data_change(time_ps, value)

    def _track_clock(self, _sim: Simulator, _signal: str, value: Logic,
                     time_ps: int) -> None:
        if value is Logic.ONE:
            self.on_rising(time_ps)
        elif value is Logic.ZERO:
            self.on_falling(time_ps)
