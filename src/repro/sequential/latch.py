"""Level-sensitive and pulse-gated latches."""

from __future__ import annotations

from repro.circuit.logic import Logic
from repro.errors import ConfigurationError
from repro.sequential.base import ClockedElement, TimingCheck
from repro.sim.engine import Simulator


class DLatch(ClockedElement):
    """Transparent-high (or low) level-sensitive latch.

    While the enable (clock) level matches ``transparent_level``, Q
    follows D after ``d_to_q_ps``; on the closing edge the current D value
    is held (with a setup aperture producing ``X`` on violation).
    """

    def __init__(
        self,
        simulator: Simulator,
        *,
        name: str,
        d: str,
        clk: str,
        q: str,
        transparent_level: Logic = Logic.ONE,
        d_to_q_ps: int = 35,
        timing: TimingCheck | None = None,
    ) -> None:
        if transparent_level not in (Logic.ZERO, Logic.ONE):
            raise ConfigurationError("transparent_level must be 0 or 1")
        super().__init__(
            simulator, name=name, d=d, clk=clk, q=q, clk_to_q_ps=d_to_q_ps,
            timing=timing or TimingCheck(setup_ps=20, hold_ps=10),
        )
        self.transparent_level = transparent_level
        self.held_value: Logic = Logic.X

    @property
    def transparent(self) -> bool:
        return self.simulator.value(self.clk) is self.transparent_level

    def on_rising(self, time_ps: int) -> None:
        if self.transparent_level is Logic.ONE:
            self._open(time_ps)
        else:
            self._close(time_ps)

    def on_falling(self, time_ps: int) -> None:
        if self.transparent_level is Logic.ONE:
            self._close(time_ps)
        else:
            self._open(time_ps)

    def on_data_change(self, time_ps: int, value: Logic) -> None:
        if self.transparent:
            self.drive_q(value, time_ps + self.clk_to_q_ps)

    def _open(self, time_ps: int) -> None:
        self.drive_q(self.data_value(), time_ps + self.clk_to_q_ps)

    def _close(self, time_ps: int) -> None:
        self.held_value = self._sample_with_checks(time_ps)

    def value(self) -> Logic:
        """The latch's current content (follows D while transparent)."""
        return self.data_value() if self.transparent else self.held_value


class PulseGatedLatch(DLatch):
    """A latch made transparent by an externally generated pulse window.

    Instead of following the raw clock level, the latch is transparent in
    explicit windows opened with :meth:`open_window`.  The TIMBER latch's
    clock control (paper Fig. 6(b)) opens such windows: the master for the
    TB interval, the slave for the entire checking period.
    """

    def __init__(
        self,
        simulator: Simulator,
        *,
        name: str,
        d: str,
        q: str,
        d_to_q_ps: int = 35,
        timing: TimingCheck | None = None,
    ) -> None:
        gate_signal = f"{name}.gate"
        simulator.set_initial(gate_signal, Logic.ZERO)
        super().__init__(
            simulator, name=name, d=d, clk=gate_signal, q=q,
            transparent_level=Logic.ONE, d_to_q_ps=d_to_q_ps, timing=timing,
        )
        self.gate_signal = gate_signal

    def open_window(self, start_ps: int, end_ps: int) -> None:
        """Make the latch transparent during [start_ps, end_ps)."""
        if end_ps <= start_ps:
            raise ConfigurationError(
                f"{self.name}: empty transparency window "
                f"[{start_ps}, {end_ps})"
            )
        self.simulator.drive(self.gate_signal, Logic.ONE, start_ps,
                             label=f"{self.name}.open")
        self.simulator.drive(self.gate_signal, Logic.ZERO, end_ps,
                             label=f"{self.name}.close")
