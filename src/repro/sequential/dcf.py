"""Delay-compensation flip-flop baseline (Hirose et al., JJAP'08).

An edge detector watches for data transitions in a window around the
clock edge; when one is seen, the flip-flop resamples the data with a
delayed clock, borrowing time from the next stage.  The paper (Sec. 2)
criticises this scheme on two grounds that this model makes observable:

* the borrowed time is assumed to be absorbed by a non-critical path in
  the next stage — nothing enforces it (no relay, no multi-stage story);
* the edge detector depends on accurate absolute delays, so process
  variation forces extra margining.

The model exposes ``borrow_events`` so architecture-level comparisons can
check whether consecutive-stage borrowing went unaccounted.
"""

from __future__ import annotations

import dataclasses

from repro.circuit.logic import Logic
from repro.errors import ConfigurationError
from repro.sequential.base import ClockedElement, TimingCheck
from repro.sim.engine import Simulator


@dataclasses.dataclass(frozen=True)
class BorrowEvent:
    """Record of one delay-compensated (resampled) capture."""

    cycle_edge_ps: int
    resample_ps: int
    original_value: Logic
    resampled_value: Logic


class DelayCompensationFlipFlop(ClockedElement):
    """Edge-detector triggered resampling flip-flop."""

    def __init__(
        self,
        simulator: Simulator,
        *,
        name: str,
        d: str,
        clk: str,
        q: str,
        detect_window_ps: int,
        resample_delay_ps: int,
        clk_to_q_ps: int = 45,
        mux_delay_ps: int = 10,
        timing: TimingCheck | None = None,
    ) -> None:
        if detect_window_ps <= 0 or resample_delay_ps <= 0:
            raise ConfigurationError(
                f"{name}: detector window and resample delay must be > 0"
            )
        super().__init__(
            simulator, name=name, d=d, clk=clk, q=q,
            clk_to_q_ps=clk_to_q_ps,
            timing=timing or TimingCheck(setup_ps=30, hold_ps=15),
        )
        self.detect_window_ps = detect_window_ps
        self.resample_delay_ps = resample_delay_ps
        self.mux_delay_ps = mux_delay_ps
        self.borrow_events: list[BorrowEvent] = []
        self._edge_ps: int | None = None
        self._main_value: Logic = Logic.X
        self._resample_scheduled = False

    def on_rising(self, time_ps: int) -> None:
        self._edge_ps = time_ps
        self._resample_scheduled = False
        self._main_value = self._sample_with_checks(time_ps)
        self.drive_q(self._main_value, time_ps + self.clk_to_q_ps)
        # Detector half-window before the edge.
        last = self._last_d_change
        if last is not None and time_ps - self.detect_window_ps < last <= time_ps:
            self._schedule_resample()

    def on_data_change(self, time_ps: int, _value: Logic) -> None:
        # Detector half-window after the edge.
        if self._edge_ps is None or self._resample_scheduled:
            return
        if self._edge_ps < time_ps <= self._edge_ps + self.detect_window_ps:
            self._schedule_resample()

    def _schedule_resample(self) -> None:
        assert self._edge_ps is not None
        self._resample_scheduled = True
        self.simulator.at(self._edge_ps + self.resample_delay_ps,
                          self._resample, label=f"{self.name}.resample")

    def _resample(self, sim: Simulator) -> None:
        assert self._edge_ps is not None
        value = self.data_value()
        if value is not self._main_value:
            self.drive_q(value, sim.now + self.mux_delay_ps)
        self.borrow_events.append(BorrowEvent(
            cycle_edge_ps=self._edge_ps,
            resample_ps=sim.now,
            original_value=self._main_value,
            resampled_value=value,
        ))
