"""Soft-edge flip-flop baseline (design-time; Wieckowski et al., CICC'08).

A soft-edge flip-flop keeps its master latch transparent for a small
fixed window after the clock edge, providing *static* time borrowing:
late data inside the window passes silently.  The paper cites this as a
design-time technique for static variability — the crucial difference
from TIMBER being **observability**: there is no comparison, no error
signal, and therefore no way to notice that the window is being consumed
by a slow drift (aging, temperature) until data finally misses the
window and corrupts state silently.
"""

from __future__ import annotations

import dataclasses

from repro.circuit.logic import Logic
from repro.errors import ConfigurationError
from repro.sequential.base import ClockedElement, TimingCheck
from repro.sim.engine import Simulator


@dataclasses.dataclass(frozen=True)
class SoftEdgeCapture:
    """Record of one soft-edge capture that used the window."""

    cycle_edge_ps: int
    borrowed_ps: int


class SoftEdgeFlipFlop(ClockedElement):
    """Flip-flop with a fixed post-edge transparency window."""

    def __init__(
        self,
        simulator: Simulator,
        *,
        name: str,
        d: str,
        clk: str,
        q: str,
        window_ps: int,
        d_to_q_ps: int = 35,
        timing: TimingCheck | None = None,
    ) -> None:
        if window_ps <= 0:
            raise ConfigurationError(f"{name}: window must be > 0 ps")
        super().__init__(
            simulator, name=name, d=d, clk=clk, q=q,
            clk_to_q_ps=d_to_q_ps,
            timing=timing or TimingCheck(setup_ps=0, hold_ps=0),
        )
        self.window_ps = window_ps
        self.borrows: list[SoftEdgeCapture] = []
        self._edge_ps: int | None = None

    def on_rising(self, time_ps: int) -> None:
        self._edge_ps = time_ps
        self.drive_q(self.data_value(), time_ps + self.clk_to_q_ps)
        self.simulator.at(time_ps + self.window_ps, self._close,
                          label=f"{self.name}.close")

    def on_data_change(self, time_ps: int, value: Logic) -> None:
        edge = self._edge_ps
        if edge is None:
            return
        if edge <= time_ps <= edge + self.window_ps:
            # Transparent window: the late value flows through.  Nothing
            # records that this was an error — that is the point.
            self.drive_q(value, time_ps + self.clk_to_q_ps)
            self.borrows.append(SoftEdgeCapture(
                cycle_edge_ps=edge, borrowed_ps=time_ps - edge))

    def _close(self, _sim: Simulator) -> None:
        """Master closes; later arrivals are silently lost."""

    @property
    def borrow_count(self) -> int:
        return len(self.borrows)
