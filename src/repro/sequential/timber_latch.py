"""Behavioural TIMBER latch (paper Sec. 5.2).

The TIMBER latch replaces the flip-flop's discrete delayed sampling with
*continuous* time borrowing:

* the **slave** latch is transparent for the entire checking period, so
  any transition arriving inside the checking period flows straight to Q
  — borrowing exactly as much time as the data was late (and propagating
  glitches, as the paper notes);
* the **master** latch is transparent only for the TB interval;
* on the falling clock edge the master and slave contents are compared:
  a mismatch means the data arrived in the ED portion of the checking
  period, and the error is flagged.  Arrivals inside the TB interval load
  both latches identically, so single-stage errors are masked silently —
  and, crucially, the element can never flag a *false* error.

No error-relay logic is needed because borrowing is continuous: a
two-stage error simply arrives later within the next stage's checking
period.
"""

from __future__ import annotations

import dataclasses

from repro.circuit.logic import Logic
from repro.errors import ConfigurationError
from repro.sequential.base import ClockedElement, TimingCheck
from repro.sim.engine import Simulator


@dataclasses.dataclass(frozen=True)
class LatchCycleRecord:
    """Per-cycle capture record for a TIMBER latch."""

    cycle_edge_ps: int
    master_value: Logic
    slave_value: Logic
    borrowed_ps: int
    flagged: bool


class TimberLatch(ClockedElement):
    """Continuous-time-borrowing TIMBER latch."""

    def __init__(
        self,
        simulator: Simulator,
        *,
        name: str,
        d: str,
        clk: str,
        q: str,
        err: str,
        tb_ps: int,
        checking_ps: int,
        enabled: bool = True,
        d_to_q_ps: int = 35,
        timing: TimingCheck | None = None,
    ) -> None:
        if tb_ps <= 0:
            raise ConfigurationError(f"{name}: TB interval must be > 0 ps")
        if checking_ps < tb_ps:
            raise ConfigurationError(
                f"{name}: checking period ({checking_ps} ps) must be >= "
                f"TB interval ({tb_ps} ps)"
            )
        super().__init__(
            simulator, name=name, d=d, clk=clk, q=q, clk_to_q_ps=d_to_q_ps,
            timing=timing or TimingCheck(setup_ps=0, hold_ps=0),
        )
        self.err = err
        self.tb_ps = tb_ps
        self.checking_ps = checking_ps
        self.enabled = enabled
        self.records: list[LatchCycleRecord] = []
        self._edge_ps: int | None = None
        self._master_value: Logic = Logic.X
        self._slave_value: Logic = Logic.X
        self._last_borrow_ps = 0
        simulator.set_initial(err, Logic.ZERO)

    # -- external control -----------------------------------------------
    def clear_error(self, time_ps: int | None = None) -> None:
        when = self.simulator.now if time_ps is None else time_ps
        self.simulator.drive(self.err, Logic.ZERO, when,
                             label=f"{self.name}.err.clear")

    # -- transparency ----------------------------------------------------
    def _in_checking_window(self, time_ps: int) -> bool:
        if self._edge_ps is None:
            return False
        window = self.checking_ps if self.enabled else 0
        return self._edge_ps <= time_ps <= self._edge_ps + window

    def on_rising(self, time_ps: int) -> None:
        self._edge_ps = time_ps
        self._last_borrow_ps = 0
        # The slave opens at the edge: Q takes the current D value.
        self.drive_q(self.data_value(), time_ps + self.clk_to_q_ps)
        if not self.enabled:
            self._master_value = self.data_value()
            self._slave_value = self._master_value
            return
        self.simulator.at(time_ps + self.tb_ps, self._close_master,
                          label=f"{self.name}.master.close")
        self.simulator.at(time_ps + self.checking_ps, self._close_slave,
                          label=f"{self.name}.slave.close")

    def on_data_change(self, time_ps: int, value: Logic) -> None:
        # Continuous borrowing: while the slave is transparent, D flows to
        # Q (including glitches — the paper accepts this as the cost of
        # eliminating the relay logic).
        if self._in_checking_window(time_ps):
            self.drive_q(value, time_ps + self.clk_to_q_ps)
            assert self._edge_ps is not None
            self._last_borrow_ps = time_ps - self._edge_ps

    def _close_master(self, _sim: Simulator) -> None:
        self._master_value = self.data_value()

    def _close_slave(self, _sim: Simulator) -> None:
        self._slave_value = self.data_value()

    def on_falling(self, time_ps: int) -> None:
        if self._edge_ps is None or not self.enabled:
            return
        # Level-sensitive sampling means neither latch can go metastable
        # on a late arrival; the comparison is of two settled values.
        flagged = (
            self._master_value is not self._slave_value
        )
        self.records.append(LatchCycleRecord(
            cycle_edge_ps=self._edge_ps,
            master_value=self._master_value,
            slave_value=self._slave_value,
            borrowed_ps=self._last_borrow_ps,
            flagged=flagged,
        ))
        if flagged:
            self.simulator.drive(self.err, Logic.ONE, time_ps,
                                 label=f"{self.name}.err")

    # -- introspection -----------------------------------------------------
    @property
    def flagged_count(self) -> int:
        return sum(1 for record in self.records if record.flagged)

    @property
    def borrow_events(self) -> list[LatchCycleRecord]:
        return [r for r in self.records if r.borrowed_ps > 0]
