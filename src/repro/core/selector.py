"""Endpoint-selection policies for TIMBER deployment.

The paper's rule is simple: for a checking period of ``c``% of the clock
period, replace every flip-flop terminating a top-``c``% critical path.
Real deployments often face a budget instead — "spend at most X% extra
power" — so this module adds budgeted greedy selection and a coverage
metric to quantify what partial protection buys.

Coverage here is *violation-weighted*: each endpoint contributes the
amount of near-critical path delay mass terminating at it, which is
proportional to how often dynamic variability will push it past the
edge under the linear-in-criticality sensitization model of
:mod:`repro.processor.workload`.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.power.models import DesignCostModel
from repro.timing.graph import TimingGraph


@dataclasses.dataclass(frozen=True)
class SelectionResult:
    """Outcome of an endpoint-selection policy."""

    policy: str
    percent_checking: float
    selected: frozenset[str]
    coverage: float
    power_overhead_percent: float

    @property
    def num_selected(self) -> int:
        return len(self.selected)


def endpoint_weights(graph: TimingGraph,
                     percent_checking: float) -> dict[str, float]:
    """Violation-weighted importance of each critical endpoint.

    Weight = sum over critical in-edges of the edge's *exposure*: how
    far its delay sits into the checking window, normalised by the
    window width.  An endpoint fed by paths right at the clock edge
    weighs ~1 per path; one barely inside the window weighs ~0.
    """
    threshold = graph.critical_threshold_ps(percent_checking)
    window = graph.period_ps - threshold
    if window <= 0:
        raise ConfigurationError("empty criticality window")
    weights: dict[str, float] = {}
    for edge in graph.critical_edges(percent_checking):
        exposure = (edge.delay_ps - threshold) / window
        weights[edge.dst] = weights.get(edge.dst, 0.0) + exposure
    return weights


def _overhead_for(graph: TimingGraph, count: int, element_cell: str,
                  model: DesignCostModel) -> float:
    baseline = model.baseline_costs(graph).total_power
    delta = model.sequential_delta("DFF", element_cell, count).total_power
    return 100.0 * delta / baseline


def select_all_critical(
    graph: TimingGraph,
    percent_checking: float,
    *,
    element_cell: str = "TIMBER_FF",
    cost_model: DesignCostModel | None = None,
) -> SelectionResult:
    """The paper's policy: protect every critical endpoint."""
    model = cost_model or DesignCostModel()
    weights = endpoint_weights(graph, percent_checking)
    selected = frozenset(weights)
    return SelectionResult(
        policy="all-critical",
        percent_checking=percent_checking,
        selected=selected,
        coverage=1.0 if weights else 0.0,
        power_overhead_percent=_overhead_for(
            graph, len(selected), element_cell, model),
    )


def select_budgeted(
    graph: TimingGraph,
    percent_checking: float,
    *,
    power_budget_percent: float,
    element_cell: str = "TIMBER_FF",
    cost_model: DesignCostModel | None = None,
) -> SelectionResult:
    """Greedy selection under a power budget.

    Endpoints are taken in decreasing violation weight until the next
    element would exceed ``power_budget_percent`` extra power.  Since
    every element costs the same, greedy-by-weight is optimal for this
    knapsack.
    """
    if power_budget_percent < 0:
        raise ConfigurationError("budget must be >= 0")
    model = cost_model or DesignCostModel()
    weights = endpoint_weights(graph, percent_checking)
    total_weight = sum(weights.values())
    baseline = model.baseline_costs(graph).total_power
    per_element = model.sequential_delta(
        "DFF", element_cell, 1).total_power
    max_count = (
        int(power_budget_percent / 100.0 * baseline / per_element)
        if per_element > 0 else len(weights)
    )
    ranked = sorted(weights, key=lambda ff: -weights[ff])
    chosen = ranked[:max_count]
    covered = sum(weights[ff] for ff in chosen)
    return SelectionResult(
        policy="budgeted-greedy",
        percent_checking=percent_checking,
        selected=frozenset(chosen),
        coverage=covered / total_weight if total_weight else 0.0,
        power_overhead_percent=_overhead_for(
            graph, len(chosen), element_cell, model),
    )


def coverage_curve(
    graph: TimingGraph,
    percent_checking: float,
    budgets: tuple[float, ...],
    *,
    element_cell: str = "TIMBER_FF",
    cost_model: DesignCostModel | None = None,
) -> list[SelectionResult]:
    """Coverage-vs-budget sweep (ablation for partial protection)."""
    return [
        select_budgeted(graph, percent_checking,
                        power_budget_percent=budget,
                        element_cell=element_cell,
                        cost_model=cost_model)
        for budget in budgets
    ]
