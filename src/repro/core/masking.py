"""Capture-outcome semantics for every resilience scheme.

These pure functions are the analytic counterparts of the behavioural
elements in :mod:`repro.sequential`: given how *late* the data arrived at
a capture element (relative to the clock edge), they report what happens —
masked / detected / flagged / failed — and how much time the element
borrowed from the next stage.  The cycle-level pipeline simulator and the
architecture-level comparisons are built on them.

Lateness convention: ``lateness_ps <= 0`` means the data met setup;
``lateness_ps > 0`` is a timing violation of that size.
"""

from __future__ import annotations

import dataclasses

from repro.core.checking_period import CheckingPeriod
from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class CaptureOutcome:
    """What happened at a capture element on one clock edge.

    Attributes:
        correct_state: The architecturally visible state is correct after
            this capture (True for masking/prediction schemes and clean
            captures; False when detection fired after corruption or when
            the capture failed outright).
        masked: A violation occurred and was absorbed by time borrowing.
        detected: An error-detection mechanism observed the violation
            (after the fact — Razor style).
        predicted: A warning fired before any violation (canary style).
        flagged: The element raised its error output to the central
            controller.
        failed: The violation exceeded what the scheme tolerates; state
            is silently or fatally corrupt.
        borrowed_ps: Time by which the element's output (and therefore
            the next stage's launch) is delayed.
        borrowed_intervals: Discrete intervals borrowed (TIMBER FF only).
    """

    correct_state: bool
    masked: bool = False
    detected: bool = False
    predicted: bool = False
    flagged: bool = False
    failed: bool = False
    borrowed_ps: int = 0
    borrowed_intervals: int = 0


#: A clean capture shared by every scheme.
CLEAN = CaptureOutcome(correct_state=True)


def timber_ff_capture(
    lateness_ps: int,
    select_in: int,
    cp: CheckingPeriod,
) -> CaptureOutcome:
    """TIMBER flip-flop capture (discrete borrowing, paper Sec. 5.1).

    M1 samples ``delta = (select_in + 1) * t`` after the edge.  A
    violation within ``delta`` is masked by borrowing exactly ``delta``
    (discrete units — the edge-sampling property is preserved, at the
    price of rounding the borrow up to a full interval).  A violation
    beyond ``delta`` means M1 *also* sampled the stale value: the error
    is silently missed — the architecture must keep ``select_in`` large
    enough (via the error relay) for this never to happen.
    """
    if select_in < 0:
        raise ConfigurationError("select_in must be >= 0")
    effective_select = min(select_in, cp.num_intervals - 1)
    if lateness_ps <= 0:
        return CLEAN
    delta_ps = (effective_select + 1) * cp.interval_ps
    if lateness_ps <= delta_ps:
        borrowed = effective_select + 1
        return CaptureOutcome(
            correct_state=True,
            masked=True,
            flagged=cp.flags_on_interval(borrowed),
            borrowed_ps=delta_ps,
            borrowed_intervals=borrowed,
        )
    # M1 sampled before the late transition arrived: silent corruption.
    return CaptureOutcome(correct_state=False, failed=True)


def timber_latch_capture(
    lateness_ps: int,
    cp: CheckingPeriod,
) -> CaptureOutcome:
    """TIMBER latch capture (continuous borrowing, paper Sec. 5.2).

    The slave is transparent for the whole checking period, so any
    arrival within it is masked, borrowing exactly the lateness (no
    rounding, no relay).  The error is flagged when the arrival falls in
    the ED portion (master and slave disagree on the falling edge).
    """
    if lateness_ps <= 0:
        return CLEAN
    if lateness_ps <= cp.checking_ps:
        return CaptureOutcome(
            correct_state=True,
            masked=True,
            flagged=lateness_ps > cp.tb_ps,
            borrowed_ps=lateness_ps,
        )
    # Arrived after the slave closed: missed, and nothing compared
    # differently on the falling edge only if it also missed the master -
    # the master closed even earlier, so this *is* detected as a flag,
    # but the state is corrupt.
    return CaptureOutcome(correct_state=False, failed=True, flagged=True)


def plain_ff_capture(lateness_ps: int) -> CaptureOutcome:
    """A conventional flip-flop: any violation is silent corruption."""
    if lateness_ps <= 0:
        return CLEAN
    return CaptureOutcome(correct_state=False, failed=True)


def razor_capture(lateness_ps: int, window_ps: int) -> CaptureOutcome:
    """Razor flip-flop: detect after the fact, recover by replay.

    A violation within the shadow window is detected; the architectural
    state was corrupted for part of a cycle, so ``correct_state`` is
    False and the architecture model charges a rollback/replay penalty.
    Beyond the window even Razor misses it.
    """
    if window_ps <= 0:
        raise ConfigurationError("razor window must be > 0")
    if lateness_ps <= 0:
        return CLEAN
    if lateness_ps <= window_ps:
        return CaptureOutcome(
            correct_state=False, detected=True, flagged=True,
        )
    return CaptureOutcome(correct_state=False, failed=True)


def canary_capture(lateness_ps: int, guard_ps: int) -> CaptureOutcome:
    """Canary flip-flop: predict inside the guard band, never borrow.

    An arrival inside the guard band *before* the edge raises a
    prediction (state still correct).  An actual violation means the
    prediction mechanism was too slow to save the system — failure.
    """
    if guard_ps <= 0:
        raise ConfigurationError("canary guard band must be > 0")
    if lateness_ps > 0:
        return CaptureOutcome(correct_state=False, failed=True)
    if lateness_ps > -guard_ps:
        return CaptureOutcome(
            correct_state=True, predicted=True, flagged=True,
        )
    return CLEAN


def clock_stall_capture(lateness_ps: int, window_ps: int,
                        consolidation_fits: bool) -> CaptureOutcome:
    """Clock-stall temporal masking (Sec. 2's ref. [16] style).

    A detector sees the late transition inside ``window_ps`` and stalls
    the clock for one cycle so the state is never consumed corrupted.
    The paper's criticism is the precondition: stalling must happen
    *before the next edge*, which requires consolidating error signals
    from every flip-flop within one cycle — hard at high frequency.
    ``consolidation_fits`` models that feasibility check: when it does
    not fit, the late capture corrupts state before the stall lands.
    """
    if window_ps <= 0:
        raise ConfigurationError("stall detection window must be > 0")
    if lateness_ps <= 0:
        return CLEAN
    if lateness_ps <= window_ps:
        if consolidation_fits:
            # Stalled in time: masked at the cost of one dead cycle
            # (charged by the policy as a stall penalty).
            return CaptureOutcome(
                correct_state=True, masked=True, detected=True,
                flagged=True,
            )
        return CaptureOutcome(
            correct_state=False, detected=True, flagged=True,
            failed=True,
        )
    return CaptureOutcome(correct_state=False, failed=True)


def soft_edge_capture(lateness_ps: int, window_ps: int) -> CaptureOutcome:
    """Soft-edge flip-flop: static window, silent borrowing, no flag.

    Masks any violation within the fixed transparency window — but never
    detects, never flags, never relays.  A violation beyond the window
    is silent corruption, and nothing upstream ever learns the window
    was being eaten by drift (the observability gap vs. TIMBER)."""
    if window_ps <= 0:
        raise ConfigurationError("soft-edge window must be > 0")
    if lateness_ps <= 0:
        return CLEAN
    if lateness_ps <= window_ps:
        return CaptureOutcome(
            correct_state=True, masked=True, borrowed_ps=lateness_ps,
        )
    return CaptureOutcome(correct_state=False, failed=True)


def dcf_capture(lateness_ps: int, detect_window_ps: int,
                resample_delay_ps: int) -> CaptureOutcome:
    """Delay-compensation FF: resample once, borrow a fixed delay.

    Masks violations up to ``resample_delay_ps`` but has no relay — a
    second consecutive-stage violation on top of the borrowed time is
    invisible to it (the paper's criticism)."""
    if detect_window_ps <= 0 or resample_delay_ps <= 0:
        raise ConfigurationError("dcf windows must be > 0")
    if lateness_ps <= 0:
        return CLEAN
    if lateness_ps <= resample_delay_ps and lateness_ps <= detect_window_ps:
        return CaptureOutcome(
            correct_state=True, masked=True,
            borrowed_ps=resample_delay_ps,
        )
    return CaptureOutcome(correct_state=False, failed=True)
