"""Error-consolidation OR-tree (paper Sec. 4).

The error outputs of all TIMBER elements are consolidated by an OR-tree
whose root feeds the central error-control unit.  The paper attributes
the error-consolidation latency "mainly to the latency of the OR-tree"
and budgets 1.5 clock cycles for it; this module models the tree
explicitly — depth, delay, area, leakage — so the budget check is
grounded in structure instead of a free parameter.
"""

from __future__ import annotations

import dataclasses
import math

from repro.circuit.cells import CellLibrary, default_library
from repro.core.checking_period import CheckingPeriod
from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class OrTree:
    """A balanced OR-tree over ``num_inputs`` error signals.

    Attributes:
        num_inputs: Error sources consolidated (one per TIMBER element).
        fanin: OR-gate fanin used at every level.
        num_gates: Total OR gates in the tree.
        depth: Gate levels from any leaf to the root.
        gate_delay_ps: Per-level propagation delay.
        wire_delay_per_level_ps: Repeater/wire delay added per level —
            the tree spans the whole die, so wire delay dominates for
            large designs.
    """

    num_inputs: int
    fanin: int
    num_gates: int
    depth: int
    gate_delay_ps: int
    wire_delay_per_level_ps: int
    gate_area: float
    gate_leakage: float

    @property
    def latency_ps(self) -> int:
        """Leaf-to-root consolidation latency."""
        return self.depth * (self.gate_delay_ps
                             + self.wire_delay_per_level_ps)

    @property
    def area(self) -> float:
        return self.num_gates * self.gate_area

    @property
    def leakage(self) -> float:
        """The tree's inputs are all-zero in error-free operation, so
        its power contribution is essentially static."""
        return self.num_gates * self.gate_leakage

    def fits_budget(self, cp: CheckingPeriod,
                    controller_decision_ps: int = 0) -> bool:
        """Whether tree latency + controller decision time fits the
        checking period's consolidation budget."""
        if controller_decision_ps < 0:
            raise ConfigurationError("decision time must be >= 0")
        total = self.latency_ps + controller_decision_ps
        return total <= cp.consolidation_budget_ps()


def build_or_tree(
    num_inputs: int,
    *,
    fanin: int = 4,
    library: CellLibrary | None = None,
    wire_delay_per_level_ps: int = 60,
) -> OrTree:
    """Construct a balanced OR-tree over ``num_inputs`` error signals.

    Uses NOR/NAND-style OR gates priced from the library's ``OR2`` cell
    scaled to the requested fanin (area and delay grow roughly linearly
    with fanin within a level).
    """
    if num_inputs < 1:
        raise ConfigurationError("need at least one error source")
    if fanin < 2:
        raise ConfigurationError("fanin must be >= 2")
    lib = library or default_library()
    or2 = lib["OR2"]
    scale = fanin / 2.0

    num_gates = 0
    width = num_inputs
    depth = 0
    while width > 1:
        level_gates = math.ceil(width / fanin)
        num_gates += level_gates
        width = level_gates
        depth += 1
    return OrTree(
        num_inputs=num_inputs,
        fanin=fanin,
        num_gates=num_gates,
        depth=depth,
        gate_delay_ps=int(round(or2.delay_ps * scale)),
        wire_delay_per_level_ps=wire_delay_per_level_ps,
        gate_area=or2.area * scale,
        gate_leakage=or2.leakage * scale,
    )


def consolidation_latency_ps(
    num_elements: int,
    *,
    fanin: int = 4,
    wire_delay_per_level_ps: int = 60,
    controller_decision_ps: int = 120,
) -> int:
    """End-to-end consolidation latency for ``num_elements`` sources.

    Convenience wrapper: OR-tree latency plus the control unit's
    decision time — the number the paper bounds by 1.5 clock cycles.
    """
    tree = build_or_tree(num_elements, fanin=fanin,
                         wire_delay_per_level_ps=wire_delay_per_level_ps)
    return tree.latency_ps + controller_decision_ps
