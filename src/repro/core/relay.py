"""Error-relay logic: behaviour and cost (paper Secs. 5.1 and 6).

The TIMBER flip-flop borrows *discrete* intervals, so a downstream
flip-flop must be told how many intervals its fanin already borrowed.
The relay contract:

* each TIMBER flip-flop ``g`` produces ``select_out = 0`` if it saw no
  error this cycle, else ``select_in(g) + 1``;
* each TIMBER flip-flop ``f`` receives
  ``select_in(f) = max(select_out(g_1), ..., select_out(g_m))`` over the
  TIMBER flip-flops in its fanin cone;
* the relay must settle between the falling clock edge (when all M1
  samples of the cycle are complete) and the next rising edge — half a
  clock period.

Only fanin flip-flops that are both start- *and* end-points of critical
paths can ever present a non-zero select, so the max-tree at ``f`` only
needs those inputs — the structural reason the relay is cheap (Fig. 8(i)).

:class:`ErrorRelay` implements the behaviour for event-driven simulation;
:func:`relay_cost` prices the relay network for a
:class:`~repro.timing.graph.TimingGraph`.
"""

from __future__ import annotations

import collections
import dataclasses
import math

from repro import obs
from repro.circuit.logic import Logic
from repro.errors import ConfigurationError
from repro.sequential.timber_ff import TimberFlipFlop
from repro.sim.engine import Simulator
from repro.timing.graph import TimingGraph
from repro.units import as_percent

# Event-driven relay activity (deterministic: the simulator is).  Only
# non-zero selects count — an idle relay applying zeros is the
# error-free common case and would swamp the signal.
_OBS_SELECTS = obs.REGISTRY.counter(
    "repro_relay_selects_applied_total",
    "Non-zero selects applied by the event-driven error relay").labels()
_OBS_SELECT_DEPTH = obs.REGISTRY.histogram(
    "repro_relay_select_depth_intervals",
    "Select values applied by the event-driven relay (non-zero only)",
    buckets=(1, 2, 3, 4, 6, 8)).labels()

#: Gate-equivalents of one 2-bit max node (comparator + 2:1 muxes).
MAX_NODE_AREA = 7.0
#: Gate-equivalents of the select-increment logic at one through-FF.
INCREMENT_AREA = 4.0
#: Gate-equivalents of the per-FF error latch & flag logic.
FLAG_AREA = 3.0
#: Propagation delay of one 2-bit max node (two gate levels).
MAX_NODE_DELAY_PS = 40
#: Delay of the select-increment logic.
INCREMENT_DELAY_PS = 30
#: Leakage per gate-equivalent of relay logic, in the same abstract power
#: units as the cell library.  Relay inputs are all-zero in error-free
#: operation, so the relay contributes (almost) only static power.
RELAY_LEAKAGE_PER_AREA = 1.0


class ErrorRelay:
    """Event-driven select relay between TIMBER flip-flops.

    ``connections`` maps each destination flip-flop to the list of TIMBER
    flip-flops in its fanin cone.  On every falling clock edge the relay
    samples the sources' ``select_out`` values and, ``relay_delay_ps``
    later, applies the max to each destination's ``select_in``.

    ``applied`` keeps the most recent ``history_limit`` applications as
    ``(time_ps, dst_name, select)`` entries.  The bound exists because
    the relay applies one entry per destination per falling edge — an
    unbounded log is a memory leak over soak-length runs; pass ``None``
    to opt in to a full history, or ``0`` to keep none.
    """

    #: Default number of ``applied`` entries retained.
    DEFAULT_HISTORY_LIMIT = 1024

    def __init__(
        self,
        simulator: Simulator,
        clk: str,
        connections: dict[TimberFlipFlop, list[TimberFlipFlop]],
        *,
        relay_delay_ps: int = 100,
        history_limit: int | None = DEFAULT_HISTORY_LIMIT,
    ) -> None:
        if relay_delay_ps < 0:
            raise ConfigurationError("relay delay must be >= 0")
        if history_limit is not None and history_limit < 0:
            raise ConfigurationError("history limit must be >= 0 or None")
        self.simulator = simulator
        self.connections = connections
        self.relay_delay_ps = relay_delay_ps
        self.applied: "collections.deque[tuple[int, str, int]]" = (
            collections.deque(maxlen=history_limit))
        simulator.on_change(clk, self._on_clk)

    def _on_clk(self, sim: Simulator, _signal: str, value: Logic,
                _time_ps: int) -> None:
        if value is not Logic.ZERO:
            return
        # Sample at the falling edge; apply after the relay logic delay.
        snapshot = {
            dst: max((src.select_out for src in srcs), default=0)
            for dst, srcs in self.connections.items()
        }

        def apply(sim_inner: Simulator) -> None:
            for dst, select in snapshot.items():
                dst.set_select(select)
                self.applied.append((sim_inner.now, dst.name, select))
                if select:
                    _OBS_SELECTS.inc()
                    _OBS_SELECT_DEPTH.observe(select)

        sim.after(self.relay_delay_ps, apply, label="relay.apply")


@dataclasses.dataclass(frozen=True)
class RelayCost:
    """Cost summary of the relay network for one deployment."""

    percent_threshold: float
    num_protected_ffs: int
    num_through_ffs: int
    num_relayed_inputs: int
    num_max_nodes: int
    area: float
    leakage: float
    worst_fanin: int
    worst_depth_levels: int
    worst_delay_ps: int

    def timing_slack_percent(self, period_ps: int) -> float:
        """Relay slack as % of its half-clock-period budget (Fig. 8(i-b))."""
        budget = period_ps // 2
        return as_percent(budget - self.worst_delay_ps, budget)

    def meets_budget(self, period_ps: int) -> bool:
        return self.worst_delay_ps <= period_ps // 2


def relay_cost(graph: TimingGraph, percent: float) -> RelayCost:
    """Price the relay network when protecting top-``percent``% endpoints.

    Every critical endpoint gets a TIMBER flip-flop (flag logic).  Only
    endpoints with critical fanin launched by *through* FFs need a
    max-tree; through FFs additionally carry increment logic.  All
    counts come from the graph's memoized criticality view — one index
    build per graph instead of the former two full edge scans per
    endpoint.
    """
    view = graph.criticality().view(percent)
    endpoints = view.endpoints
    through = view.through

    num_max_nodes = 0
    num_relayed = 0
    worst_fanin = 0
    for ff in endpoints:
        fanin = view.fanin_count(ff)
        num_relayed += fanin
        if fanin > 1:
            num_max_nodes += fanin - 1
        worst_fanin = max(worst_fanin, fanin)

    area = (
        num_max_nodes * MAX_NODE_AREA
        + len(through) * INCREMENT_AREA
        + len(endpoints) * FLAG_AREA
    )
    worst_depth = math.ceil(math.log2(worst_fanin)) if worst_fanin > 1 else 0
    worst_delay = worst_depth * MAX_NODE_DELAY_PS + (
        INCREMENT_DELAY_PS if worst_fanin > 0 else 0
    )
    return RelayCost(
        percent_threshold=percent,
        num_protected_ffs=len(endpoints),
        num_through_ffs=len(through),
        num_relayed_inputs=num_relayed,
        num_max_nodes=num_max_nodes,
        area=area,
        leakage=area * RELAY_LEAKAGE_PER_AREA,
        worst_fanin=worst_fanin,
        worst_depth_levels=worst_depth,
        worst_delay_ps=worst_delay,
    )
