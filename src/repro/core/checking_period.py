"""Checking-period arithmetic (paper Secs. 3-4).

The checking period ``c`` — a fixed fraction of the clock period — is
divided into ``k`` equal intervals of duration ``t`` (``c = k*t``).  The
first ``num_tb`` intervals are *time-borrowing* (TB: mask silently), the
remaining ``k - num_tb`` are *error-detection* (ED: mask and flag).  The
recovered timing margin is ``t``: the largest single-stage dynamic
violation the scheme absorbs per stage.

Two configurations matter for the paper's results:

* **without a TB interval** (``k = 2, num_tb = 0``): margin ``c/2``, every
  masked error is flagged immediately;
* **with one TB interval** (``k = 3, num_tb = 1``): margin ``c/3``,
  single-stage errors are masked silently and only multi-stage errors
  reach the central controller.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import ConfigurationError
from repro.units import percent_of


class IntervalKind(enum.Enum):
    """Classification of a checking-period interval."""

    TB = "time-borrowing"
    ED = "error-detection"


@dataclasses.dataclass(frozen=True)
class CheckingPeriod:
    """A fully resolved checking-period configuration.

    Attributes:
        period_ps: Clock period.
        percent: Checking period as a percentage of the clock period.
        num_intervals: ``k`` — total intervals in the checking period.
        num_tb: ``k0`` — leading TB intervals (``0 <= num_tb < k``).
    """

    period_ps: int
    percent: float
    num_intervals: int = 3
    num_tb: int = 1

    def __post_init__(self) -> None:
        if self.period_ps <= 0:
            raise ConfigurationError("clock period must be > 0")
        if not 0 < self.percent <= 50:
            raise ConfigurationError(
                "checking period must be in (0, 50]% of the clock period: "
                "the error flag is latched on the falling edge, so the "
                "checking period cannot extend past it"
            )
        if self.num_intervals < 1:
            raise ConfigurationError("need at least one interval")
        if not 0 <= self.num_tb < self.num_intervals:
            raise ConfigurationError(
                "num_tb must leave at least one ED interval "
                f"(got num_tb={self.num_tb}, k={self.num_intervals})"
            )
        if self.interval_ps <= 0:
            raise ConfigurationError(
                f"{self.percent}% of {self.period_ps} ps split into "
                f"{self.num_intervals} intervals leaves a zero-width "
                f"interval"
            )

    # -- durations -----------------------------------------------------------
    @property
    def checking_ps(self) -> int:
        """Total checking-period duration ``c``."""
        return percent_of(self.period_ps, self.percent)

    @property
    def interval_ps(self) -> int:
        """Single interval duration ``t = c / k``."""
        return self.checking_ps // self.num_intervals

    @property
    def tb_ps(self) -> int:
        """Duration of the TB portion (``num_tb * t``)."""
        return self.num_tb * self.interval_ps

    @property
    def ed_ps(self) -> int:
        """Duration of the ED portion."""
        return (self.num_intervals - self.num_tb) * self.interval_ps

    @property
    def recovered_margin_ps(self) -> int:
        """The dynamic-variability margin recovered per stage (``t``)."""
        return self.interval_ps

    @property
    def recovered_margin_percent(self) -> float:
        """Recovered margin as a percentage of the clock period.

        ``c/2``% without a TB interval (k=2), ``c/3``% with one (k=3).
        """
        return self.percent / self.num_intervals

    # -- classification --------------------------------------------------------
    def interval_kind(self, index: int) -> IntervalKind:
        """Kind of the 1-based ``index``-th interval."""
        if not 1 <= index <= self.num_intervals:
            raise ConfigurationError(
                f"interval index {index} outside [1, {self.num_intervals}]"
            )
        return IntervalKind.TB if index <= self.num_tb else IntervalKind.ED

    def flags_on_interval(self, index: int) -> bool:
        """Whether borrowing the 1-based ``index``-th interval flags."""
        return self.interval_kind(index) is IntervalKind.ED

    @property
    def max_maskable_stages(self) -> int:
        """Longest multi-stage error the checking period can absorb."""
        return self.num_intervals

    @property
    def stages_masked_after_flag(self) -> int:
        """Cycles guaranteed error-free after the first flag (Sec. 4):
        the ED intervals beyond the first keep masking while the
        controller consolidates and reacts."""
        return self.num_intervals - self.num_tb - 1

    def consolidation_budget_ps(self) -> int:
        """Time available to the OR-tree/controller before state loss.

        The error latches on the falling edge (half a period after the
        capture edge) and ``stages_masked_after_flag`` further cycles stay
        masked, giving ``(stages_masked_after_flag + 0.5)`` periods — the
        paper's "1.5 clock cycles" for the 1 TB + 2 ED configuration.
        """
        return (self.stages_masked_after_flag * self.period_ps
                + self.period_ps // 2)

    # -- constraints -------------------------------------------------------------
    def min_short_path_delay_ps(self, hold_ps: int) -> int:
        """Hold constraint: short paths must exceed hold + checking."""
        if hold_ps < 0:
            raise ConfigurationError("hold must be >= 0")
        return hold_ps + self.checking_ps

    # -- convenience constructors -------------------------------------------------
    @classmethod
    def without_tb(cls, period_ps: int, percent: float) -> "CheckingPeriod":
        """The paper's 'without ED... interval' case: 2 ED intervals,
        margin c/2, single-stage errors flagged immediately."""
        return cls(period_ps, percent, num_intervals=2, num_tb=0)

    @classmethod
    def with_tb(cls, period_ps: int, percent: float) -> "CheckingPeriod":
        """The paper's deferred-flagging case: 1 TB + 2 ED intervals,
        margin c/3, single-stage errors masked silently."""
        return cls(period_ps, percent, num_intervals=3, num_tb=1)
