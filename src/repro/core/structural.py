"""Structural (latch-level) TIMBER circuits — paper Figs. 3 and 6.

These models assemble TIMBER elements from the same primitives the
paper's schematics use — level-sensitive latches, transmission-gate
muxing, and derived clocks — and run on the event-driven simulator.
They stand in for the paper's SPICE validation: the waveform experiments
(Figs. 5 and 7) are produced by driving these circuits, and integration
tests check they agree with the behavioural models in
:mod:`repro.sequential`.

Signal naming: every internal signal is prefixed with the element name,
e.g. ``f1.m0q`` for flip-flop ``f1``'s M0 master-latch output.
"""

from __future__ import annotations

from repro.circuit.logic import Logic, logic_mux
from repro.errors import ConfigurationError
from repro.sequential.latch import DLatch, PulseGatedLatch
from repro.sim.engine import Simulator

#: Mux (transmission gate pair) propagation delay.
_MUX_DELAY_PS = 10
#: XOR comparator delay for the error flag.
_XOR_DELAY_PS = 30


class StructuralTimberFF:
    """Latch-level TIMBER flip-flop (paper Fig. 3).

    Structure:

    * master latch **M0** — transparent while CLK is low, so it samples D
      on the rising edge of CLK;
    * master latch **M1** — transparent while CLKD (= CLK delayed by
      ``delta = (select+1) * interval``) is low, so it samples D on the
      rising edge of CLKD;
    * transmission gates **P0/P1** — M0 drives the slave from the rising
      edge of CLK until the rising edge of CLKD, then M1 takes over
      (modelled as a mux selected by ``CLK AND CLKD``);
    * common **slave latch** — transparent while CLK is high;
    * **error flag** — XOR of the master outputs, latched on the falling
      edge of CLK when the borrowed interval is ED-type;
    * **select logic** — ``select_out = select_in + 1`` on error, else 0.

    Setting ``enabled=False`` freezes CLKD onto CLK so the element
    degenerates into a conventional master-slave flip-flop (the EN gate
    of Fig. 3(b)).
    """

    def __init__(
        self,
        simulator: Simulator,
        *,
        name: str,
        d: str,
        clk: str,
        q: str,
        err: str,
        interval_ps: int,
        num_intervals: int = 3,
        num_tb_intervals: int = 1,
        enabled: bool = True,
    ) -> None:
        if interval_ps <= 0:
            raise ConfigurationError(f"{name}: interval must be > 0")
        if not 0 <= num_tb_intervals < num_intervals:
            raise ConfigurationError(
                f"{name}: need 0 <= num_tb < num_intervals"
            )
        self.simulator = simulator
        self.name = name
        self.d = d
        self.clk = clk
        self.q = q
        self.err = err
        self.interval_ps = interval_ps
        self.num_intervals = num_intervals
        self.num_tb_intervals = num_tb_intervals
        self.enabled = enabled
        self.select_in = 0
        self.select_out = 0

        self.clkd = f"{name}.clkd"
        self.m0q = f"{name}.m0q"
        self.m1q = f"{name}.m1q"
        self._slave_d = f"{name}.slaved"

        simulator.set_initial(self.clkd, simulator.value(clk))
        simulator.set_initial(err, Logic.ZERO)
        # Master latches: transparent while their clock is LOW.
        self.m0 = DLatch(simulator, name=f"{name}.m0", d=d, clk=clk,
                         q=self.m0q, transparent_level=Logic.ZERO,
                         d_to_q_ps=5)
        self.m1 = DLatch(simulator, name=f"{name}.m1", d=d, clk=self.clkd,
                         q=self.m1q, transparent_level=Logic.ZERO,
                         d_to_q_ps=5)
        # Slave: transparent while CLK is HIGH, driven by the P0/P1 mux.
        self.slave = DLatch(simulator, name=f"{name}.slave",
                            d=self._slave_d, clk=clk, q=q,
                            transparent_level=Logic.ONE, d_to_q_ps=5)
        # Mux select follows CLK AND CLKD (P1 conducts only once both are
        # high, i.e. after the delayed rising edge).
        for signal in (clk, self.clkd, self.m0q, self.m1q):
            simulator.on_change(signal, self._update_mux)
        simulator.on_change(clk, self._clock_control)

    # -- wiring ------------------------------------------------------------
    def _mux_select(self) -> Logic:
        clk = self.simulator.value(self.clk)
        clkd = self.simulator.value(self.clkd)
        if clk is Logic.ONE and clkd is Logic.ONE:
            return Logic.ONE
        if clk is Logic.X or clkd is Logic.X:
            return Logic.X
        return Logic.ZERO

    def _update_mux(self, sim: Simulator, _signal: str, _value: Logic,
                    time_ps: int) -> None:
        value = logic_mux(self._mux_select(), sim.value(self.m0q),
                          sim.value(self.m1q))
        sim.drive(self._slave_d, value, time_ps + _MUX_DELAY_PS,
                  label=f"{self.name}.mux")

    def _clock_control(self, sim: Simulator, _signal: str, value: Logic,
                       time_ps: int) -> None:
        if value is Logic.ONE:
            # Generate this cycle's delayed rising edge for M1/P1.
            delta = self._delta_ps()
            sim.drive(self.clkd, Logic.ONE, time_ps + delta,
                      label=f"{self.name}.clkd^")
        elif value is Logic.ZERO:
            delta = self._delta_ps()
            sim.drive(self.clkd, Logic.ZERO, time_ps + delta,
                      label=f"{self.name}.clkdv")
            # Evaluate the error comparison on the falling edge; by now
            # both masters hold their sampled values.
            self._evaluate_error(sim, time_ps)

    def _delta_ps(self) -> int:
        if not self.enabled:
            return 0
        return (min(self.select_in, self.num_intervals - 1) + 1) \
            * self.interval_ps

    def _evaluate_error(self, sim: Simulator, time_ps: int) -> None:
        m0 = sim.value(self.m0q)
        m1 = sim.value(self.m1q)
        mismatch = m0 is not m1
        borrowed = min(self.select_in, self.num_intervals - 1) + 1
        self.select_out = borrowed if mismatch else 0
        if mismatch and borrowed > self.num_tb_intervals:
            sim.drive(self.err, Logic.ONE, time_ps + _XOR_DELAY_PS,
                      label=f"{self.name}.err")

    # -- external control -----------------------------------------------
    def set_select(self, select: int) -> None:
        if select < 0:
            raise ConfigurationError(f"{self.name}: negative select")
        self.select_in = min(select, self.num_intervals - 1)

    def clear_error(self, time_ps: int | None = None) -> None:
        when = self.simulator.now if time_ps is None else time_ps
        self.simulator.drive(self.err, Logic.ZERO, when,
                             label=f"{self.name}.err.clear")


class StructuralTimberLatch:
    """Latch-level TIMBER latch (paper Fig. 6).

    Structure:

    * pulse-gated **master** latch — transparent for the TB interval
      after each rising clock edge;
    * pulse-gated **slave** latch — transparent for the whole checking
      period, driving Q (continuous time borrowing, glitches included);
    * **error flag** — master XOR slave, latched on the falling edge.

    With ``enabled=False`` the windows collapse to a conventional
    master-slave hand-off (the F transmission gate of Fig. 6(a)).
    """

    def __init__(
        self,
        simulator: Simulator,
        *,
        name: str,
        d: str,
        clk: str,
        q: str,
        err: str,
        tb_ps: int,
        checking_ps: int,
        enabled: bool = True,
    ) -> None:
        if tb_ps <= 0 or checking_ps < tb_ps:
            raise ConfigurationError(
                f"{name}: need 0 < tb_ps <= checking_ps"
            )
        self.simulator = simulator
        self.name = name
        self.d = d
        self.clk = clk
        self.q = q
        self.err = err
        self.tb_ps = tb_ps
        self.checking_ps = checking_ps
        self.enabled = enabled

        self.masterq = f"{name}.masterq"
        simulator.set_initial(err, Logic.ZERO)
        self.master = PulseGatedLatch(simulator, name=f"{name}.master",
                                      d=d, q=self.masterq, d_to_q_ps=5)
        self.slave = PulseGatedLatch(simulator, name=f"{name}.slave",
                                     d=d, q=q, d_to_q_ps=5)
        simulator.on_change(clk, self._clock_control)

    def _clock_control(self, sim: Simulator, _signal: str, value: Logic,
                       time_ps: int) -> None:
        if value is Logic.ONE:
            tb = self.tb_ps if self.enabled else 1
            check = self.checking_ps if self.enabled else 1
            self.master.open_window(time_ps, time_ps + tb)
            self.slave.open_window(time_ps, time_ps + check)
        elif value is Logic.ZERO:
            master = self.master.value()
            slave = self.slave.value()
            if master is not slave:
                sim.drive(self.err, Logic.ONE, time_ps + _XOR_DELAY_PS,
                          label=f"{self.name}.err")

    def clear_error(self, time_ps: int | None = None) -> None:
        when = self.simulator.now if time_ps is None else time_ps
        self.simulator.drive(self.err, Logic.ZERO, when,
                             label=f"{self.name}.err.clear")
