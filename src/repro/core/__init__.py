"""TIMBER core: the paper's primary contribution.

* :mod:`repro.core.checking_period` — TB/ED interval arithmetic.
* :mod:`repro.core.masking` — capture-outcome semantics for every scheme.
* :mod:`repro.core.relay` — error-relay behaviour and cost model.
* :mod:`repro.core.architecture` — applying TIMBER to a design.
* :mod:`repro.core.structural` — gate/latch-level TIMBER circuits.
"""

from repro.core.checking_period import CheckingPeriod, IntervalKind
from repro.core.masking import (
    CaptureOutcome,
    canary_capture,
    clock_stall_capture,
    plain_ff_capture,
    razor_capture,
    soft_edge_capture,
    timber_ff_capture,
    timber_latch_capture,
)
from repro.core.relay import ErrorRelay, RelayCost, relay_cost
from repro.core.architecture import TimberDesign, TimberStyle
from repro.core.ortree import OrTree, build_or_tree, consolidation_latency_ps
from repro.core.testbench import TimberTestbench, build_timber_testbench
from repro.core.selector import (
    SelectionResult,
    coverage_curve,
    endpoint_weights,
    select_all_critical,
    select_budgeted,
)

__all__ = [
    "CheckingPeriod",
    "IntervalKind",
    "CaptureOutcome",
    "timber_ff_capture",
    "timber_latch_capture",
    "plain_ff_capture",
    "razor_capture",
    "canary_capture",
    "soft_edge_capture",
    "clock_stall_capture",
    "ErrorRelay",
    "RelayCost",
    "relay_cost",
    "TimberDesign",
    "TimberStyle",
    "OrTree",
    "build_or_tree",
    "consolidation_latency_ps",
    "SelectionResult",
    "coverage_curve",
    "endpoint_weights",
    "select_all_critical",
    "select_budgeted",
    "TimberTestbench",
    "build_timber_testbench",
]
