"""Applying TIMBER to a design (paper Sec. 6's case-study machinery).

A :class:`TimberDesign` binds together a flip-flop-level timing graph, a
checking-period configuration, and a TIMBER element style, and answers
the case-study questions: which flip-flops are replaced, what the relay
network costs, what power/area overhead the deployment carries, and how
much dynamic-variability margin it recovers.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.core.checking_period import CheckingPeriod
from repro.core.relay import RelayCost, relay_cost
from repro.errors import ConfigurationError
from repro.power.models import DesignCostModel
from repro.power.overhead import DeploymentOverhead, deployment_overhead
from repro.timing.graph import TimingGraph


class TimberStyle(enum.Enum):
    """Which TIMBER sequential element protects the endpoints."""

    FLIP_FLOP = "ff"
    LATCH = "latch"


@dataclasses.dataclass
class TimberDesign:
    """A TIMBER deployment on a concrete design.

    Attributes:
        graph: Register-to-register timing graph of the base design.
        style: TIMBER element used at protected endpoints.
        percent_checking: Checking period as % of the clock period; also
            the criticality threshold selecting which endpoints to
            protect (paper Sec. 6).
        with_tb_interval: True for the 1 TB + 2 ED configuration
            (deferred flagging, margin c/3); False for 2 ED intervals
            (immediate flagging, margin c/2).
        cost_model: Area/power model for overhead accounting.
    """

    graph: TimingGraph
    style: TimberStyle
    percent_checking: float
    with_tb_interval: bool = True
    cost_model: DesignCostModel = dataclasses.field(
        default_factory=DesignCostModel)

    def __post_init__(self) -> None:
        if not 0 < self.percent_checking <= 50:
            raise ConfigurationError(
                "checking period must be in (0, 50]% of the clock period"
            )

    # -- configuration ----------------------------------------------------
    @property
    def checking_period(self) -> CheckingPeriod:
        if self.with_tb_interval:
            return CheckingPeriod.with_tb(self.graph.period_ps,
                                          self.percent_checking)
        return CheckingPeriod.without_tb(self.graph.period_ps,
                                         self.percent_checking)

    @property
    def recovered_margin_percent(self) -> float:
        """Recovered timing margin as % of the clock period."""
        return self.checking_period.recovered_margin_percent

    @property
    def recovered_margin_ps(self) -> int:
        return self.checking_period.recovered_margin_ps

    # -- deployment ------------------------------------------------------
    @property
    def _criticality_view(self):
        """The memoized criticality view at the checking threshold."""
        return self.graph.criticality().view(self.percent_checking)

    @property
    def protected_ffs(self) -> set[str]:
        """Flip-flops replaced by TIMBER elements."""
        return set(self._criticality_view.endpoints)

    @property
    def through_ffs(self) -> set[str]:
        """Protected FFs susceptible to multi-stage errors."""
        return set(self._criticality_view.through)

    def relay(self) -> RelayCost | None:
        """Relay network cost (None for the latch style)."""
        if self.style is TimberStyle.LATCH:
            return None
        return relay_cost(self.graph, self.percent_checking)

    def relay_meets_timing(self) -> bool:
        """Whether the relay settles within its half-cycle budget.

        Latch-style designs trivially pass (no relay)."""
        cost = self.relay()
        return cost is None or cost.meets_budget(self.graph.period_ps)

    def overhead(self, *, include_hold_buffers: bool = False,
                 ) -> DeploymentOverhead:
        return deployment_overhead(
            self.graph,
            percent_checking=self.percent_checking,
            style=self.style.value,
            cost_model=self.cost_model,
            include_hold_buffers=include_hold_buffers,
        )

    # -- summary ------------------------------------------------------------
    def summary(self) -> dict[str, float]:
        """Key figures for reporting (benchmarks use this)."""
        over = self.overhead()
        cost = self.relay()
        return {
            "checking_percent": self.percent_checking,
            "margin_percent": self.recovered_margin_percent,
            "ffs_total": float(self.graph.num_ffs),
            "ffs_replaced": float(over.num_replaced),
            "power_overhead_percent": over.power_overhead_percent,
            "area_overhead_percent": over.area_overhead_percent,
            "relay_area_overhead_percent": over.relay_area_overhead_percent,
            "relay_slack_percent": (
                cost.timing_slack_percent(self.graph.period_ps)
                if cost is not None else 100.0
            ),
        }
