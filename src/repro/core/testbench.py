"""Event-driven TIMBER testbench over a real netlist.

Everything else in :mod:`repro.core` reasons about TIMBER analytically;
this module *builds the circuit*: it takes a combinational netlist,
instantiates launch registers at its inputs and TIMBER elements (or
conventional flip-flops) at its capture points, wires the error relay
from the netlist's actual fanin cones, and drives it all on the
event-driven simulator — the closest thing to taping out a TIMBER
design this library offers.

Typical use (see ``tests/integration/test_testbench.py``)::

    bench = build_timber_testbench(netlist, cp, style="ff")
    bench.apply_stimulus({"a": 1, "b": 0}, at_cycle=3)
    bench.run_cycles(6)
    assert bench.flagged_elements() == set()
"""

from __future__ import annotations

import dataclasses

from repro.circuit.logic import Logic
from repro.circuit.netlist import Netlist
from repro.core.checking_period import CheckingPeriod
from repro.core.relay import ErrorRelay
from repro.errors import ConfigurationError
from repro.sequential.timber_ff import TimberFlipFlop
from repro.sequential.timber_latch import TimberLatch
from repro.sim.clocks import ClockGenerator
from repro.sim.engine import Simulator
from repro.sim.waveform import WaveformRecorder
from repro.timing.constraints import apply_hold_padding, hold_padding_plan
from repro.timing.sta import register_to_register_delays


@dataclasses.dataclass
class TimberTestbench:
    """A built testbench (returned by :func:`build_timber_testbench`)."""

    simulator: Simulator
    netlist: Netlist
    cp: CheckingPeriod
    style: str
    clock: ClockGenerator
    elements: dict[str, TimberFlipFlop | TimberLatch]
    relay: ErrorRelay | None
    recorder: WaveformRecorder
    launch_nets: list[str]
    _cycles_run: int = 0

    # -- stimulus ----------------------------------------------------------
    def apply_stimulus(self, values: dict[str, int | Logic],
                       at_cycle: int, *, skew_ps: int = 5) -> None:
        """Drive launch nets shortly after the ``at_cycle`` rising edge.

        ``skew_ps`` models the launching registers' clk-to-Q.
        """
        when = at_cycle * self.cp.period_ps + skew_ps
        for net, value in values.items():
            if net not in self.launch_nets:
                raise ConfigurationError(f"{net!r} is not a launch net")
            self.simulator.drive(net, Logic.from_value(value), when,
                                 label=f"stim:{net}")

    def inject_late_stimulus(self, net: str, value: int | Logic,
                             at_cycle: int, lateness_ps: int) -> None:
        """Drive a launch net *late* relative to a capture edge.

        The transition lands ``lateness_ps`` minus the net's downstream
        combinational delay before the edge closing ``at_cycle`` —
        i.e. the capture element sees it ``lateness_ps`` after its
        sampling edge.  Used to provoke controlled timing errors.
        """
        delays = register_to_register_delays(self.netlist, clk_to_q_ps=0)
        downstream = [d for (launch, _cap), d in delays.items()
                      if launch == net]
        if not downstream:
            raise ConfigurationError(
                f"{net!r} reaches no capture point")
        path_delay = max(downstream)
        edge = (at_cycle + 1) * self.cp.period_ps
        when = edge + lateness_ps - path_delay
        self.simulator.drive(net, Logic.from_value(value), when,
                             label=f"late:{net}")

    # -- execution ----------------------------------------------------------
    def run_cycles(self, cycles: int) -> None:
        if cycles < 1:
            raise ConfigurationError("run at least one cycle")
        self._cycles_run += cycles
        self.simulator.run(self._cycles_run * self.cp.period_ps
                           + self.cp.period_ps // 2)

    def clear_statistics(self) -> None:
        """Discard masking/flag records (used after the settle cycle:
        X-initialisation transients register as masked events)."""
        for element in self.elements.values():
            if isinstance(element, TimberFlipFlop):
                element.events.clear()
                element.select_out = 0
            else:
                element.records.clear()
            element.clear_error()

    # -- observation --------------------------------------------------------
    def output_value(self, capture_net: str) -> Logic:
        return self.simulator.value(f"q:{capture_net}")

    def flagged_elements(self) -> set[str]:
        """Capture nets whose error output is currently asserted."""
        return {
            net for net, element in self.elements.items()
            if self.simulator.value(element.err) is Logic.ONE
        }

    def masked_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for net, element in self.elements.items():
            if isinstance(element, TimberFlipFlop):
                counts[net] = element.masked_count
            else:
                counts[net] = len(element.borrow_events)
        return counts


def build_timber_testbench(
    netlist: Netlist,
    cp: CheckingPeriod,
    *,
    style: str = "ff",
    relay_delay_ps: int = 100,
    record_signals: bool = True,
    auto_hold_fix: bool = True,
    launch_skew_ps: int = 5,
    settle_cycles: int = 1,
) -> TimberTestbench:
    """Instantiate TIMBER elements on every capture point of ``netlist``.

    Args:
        netlist: Combinational design (validated; launch/capture marked).
            Modified in place when hold fixing inserts buffers.
        cp: Checking period; ``cp.period_ps`` sets the clock.
        style: ``"ff"`` (with error relay wired from real fanin cones)
            or ``"latch"``.
        relay_delay_ps: Relay logic settling time after the falling edge.
        record_signals: Attach a waveform recorder to clk/outputs/errors.
        auto_hold_fix: Apply the paper's short-path rule before building:
            every path into a protected capture is padded past
            ``hold + checking period``, otherwise newly launched data
            races into the *previous* edge's still-open checking window.
        launch_skew_ps: Modelled clk-to-Q of the launching registers
            (stimulus lands this long after the edge).
        settle_cycles: Cycles simulated (and statistics discarded)
            before the bench is handed over — X-initialisation
            transients otherwise register as masked events.
    """
    if style not in ("ff", "latch"):
        raise ConfigurationError("style must be 'ff' or 'latch'")
    netlist.validate()
    if not netlist.capture_nets:
        raise ConfigurationError("netlist has no capture points")
    if auto_hold_fix:
        plan = hold_padding_plan(
            netlist, hold_ps=10, checking_ps=cp.checking_ps,
            clk_to_q_ps=launch_skew_ps,
        )
        apply_hold_padding(netlist, plan)

    sim = Simulator()
    clock = ClockGenerator(sim, "clk", cp.period_ps)
    for net in netlist.launch_nets:
        sim.set_initial(net, Logic.ZERO)
    sim.add_netlist(netlist)

    elements: dict[str, TimberFlipFlop | TimberLatch] = {}
    for capture in netlist.capture_nets:
        if style == "ff":
            elements[capture] = TimberFlipFlop(
                sim, name=f"tff:{capture}", d=capture, clk="clk",
                q=f"q:{capture}", err=f"err:{capture}",
                interval_ps=cp.interval_ps,
                num_intervals=cp.num_intervals,
                num_tb_intervals=cp.num_tb,
            )
        else:
            elements[capture] = TimberLatch(
                sim, name=f"tl:{capture}", d=capture, clk="clk",
                q=f"q:{capture}", err=f"err:{capture}",
                tb_ps=cp.tb_ps, checking_ps=cp.checking_ps,
            )

    relay: ErrorRelay | None = None
    if style == "ff":
        # Wire the relay from the netlist's actual register-to-register
        # connectivity: element at capture c listens to the elements
        # whose launch nets reach c.  In a closed pipeline the launch
        # registers *are* the capture elements of the previous stage;
        # in this open testbench we conservatively relay from every
        # capture element that shares a fanin cone.
        delays = register_to_register_delays(netlist, clk_to_q_ps=0)
        reachable: dict[str, set[str]] = {}
        for (launch, capture) in delays:
            reachable.setdefault(capture, set()).add(launch)
        connections: dict[TimberFlipFlop, list[TimberFlipFlop]] = {}
        for capture, element in elements.items():
            sources = [
                elements[other] for other in elements
                if other != capture
                and reachable.get(capture, set())
                & reachable.get(other, set())
            ]
            connections[element] = sources  # type: ignore[index]
        relay = ErrorRelay(sim, "clk", connections,
                           relay_delay_ps=relay_delay_ps)

    signals = ["clk"]
    signals += [f"q:{c}" for c in netlist.capture_nets]
    signals += [f"err:{c}" for c in netlist.capture_nets]
    recorder = WaveformRecorder(signals if record_signals else [])
    recorder.attach(sim)

    bench = TimberTestbench(
        simulator=sim, netlist=netlist, cp=cp, style=style, clock=clock,
        elements=elements, relay=relay, recorder=recorder,
        launch_nets=netlist.launch_nets,
    )
    if settle_cycles:
        bench.run_cycles(settle_cycles)
        bench.clear_statistics()
    return bench
