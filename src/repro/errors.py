"""Exception hierarchy for the TIMBER reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """An object was configured with inconsistent or invalid parameters."""


class SimulationError(ReproError):
    """The event-driven or cycle-level simulation reached an invalid state."""


class TimingViolationError(SimulationError):
    """An unmaskable timing violation corrupted architectural state.

    Raised by the pipeline simulator when a data signal arrives later than
    the end of the checking period (or later than the clock edge, for
    designs without any resilience scheme) and the configured policy is to
    treat state corruption as fatal.
    """


class ExecutionError(ReproError):
    """A sweep task failed (after retries) or the runner misbehaved."""


class NetlistError(ReproError):
    """A netlist is malformed (dangling nets, combinational loops, ...)."""


class AnalysisError(ReproError):
    """A timing/power analysis could not be completed."""
