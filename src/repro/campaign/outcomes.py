"""Outcome taxonomy for fault campaigns.

Every injected fault is classified by what the deployed scheme did with
it, mapped onto the paper's checking-period semantics (``c = k*t``,
leading TB intervals mask silently, trailing ED intervals mask *and*
flag, the error relay widens the downstream capture window):

* ``masked_tb`` — absorbed silently in a time-borrowing interval: the
  violation fit within the first borrowed interval and never reached
  the central error-control unit (paper Sec. 4, the common case TIMBER
  optimises for).
* ``masked_ed`` — absorbed and flagged: the borrow reached an
  error-detection interval (or a detection scheme like Razor caught and
  recovered it), so the controller heard about it.
* ``relayed`` — masked using a select *incremented downstream* per the
  error-relay rules: the capture borrowed two or more intervals, which
  only happens when an upstream element warned it in advance
  (``select_out = select_in + 1``, paper Sec. 5.1).
* ``escaped`` — silent data corruption: the violation exceeded what the
  scheme tolerates and no flag was raised in time (a plain flip-flop's
  only non-clean outcome).
* ``false_positive`` — the scheme flagged or predicted without any
  actual violation (canary guard bands do this by design).
* ``benign`` — the fault had no architecturally visible effect at all
  (landed on a path no data traversed, or too small to matter).

Precedence is severity-ordered: one escaped capture poisons the whole
fault regardless of how many others were masked.
"""

from __future__ import annotations

import dataclasses
import typing

MASKED_TB = "masked_tb"
MASKED_ED = "masked_ed"
RELAYED = "relayed"
ESCAPED = "escaped"
FALSE_POSITIVE = "false_positive"
BENIGN = "benign"

#: Report ordering: most desirable first, severity last.
OUTCOME_CLASSES = (MASKED_TB, MASKED_ED, RELAYED, ESCAPED,
                   FALSE_POSITIVE, BENIGN)


@dataclasses.dataclass(frozen=True)
class CaptureEvent:
    """One non-clean capture observed during a fault's run.

    A flattened, JSON-able projection of
    :class:`repro.core.masking.CaptureOutcome` plus where/when it
    happened — the raw material :func:`classify_events` consumes.
    """

    cycle: int
    site: str
    lateness_ps: int
    masked: bool = False
    detected: bool = False
    predicted: bool = False
    flagged: bool = False
    failed: bool = False
    borrowed_intervals: int = 0


@dataclasses.dataclass(frozen=True)
class FaultOutcome:
    """Classification of one injected fault."""

    fault_id: int
    kind: str
    site: str
    cycle: int
    magnitude_ps: int
    classification: str
    events: int = 0
    worst_lateness_ps: int = 0
    max_borrowed_intervals: int = 0


def classify_flags(*, any_failed: bool, any_relayed: bool,
                   any_masked_ed: bool, any_masked: bool,
                   any_warned: bool) -> str:
    """Severity-ordered classification from pre-folded event flags.

    The precedence ladder shared by the per-event stream
    (:func:`classify_events`) and the batched lane machines
    (:mod:`repro.kernels.fault_batch`), which fold the same flags out
    of arrays: ``escaped`` dominates (any silent corruption is fatal),
    then ``relayed`` (a >= 2-interval borrow proves the relay fired),
    then the flagged/silent masking split, then pure warnings."""
    if any_failed:
        return ESCAPED
    if any_relayed:
        return RELAYED
    if any_masked_ed:
        return MASKED_ED
    if any_masked:
        return MASKED_TB
    if any_warned:
        return FALSE_POSITIVE
    return BENIGN


def classify_events(events: typing.Sequence[CaptureEvent]) -> str:
    """Collapse a fault's capture events into one taxonomy class."""
    return classify_flags(
        any_failed=any(event.failed for event in events),
        any_relayed=any(event.masked and event.borrowed_intervals >= 2
                        for event in events),
        any_masked_ed=any((event.masked and event.flagged)
                          or event.detected for event in events),
        any_masked=any(event.masked for event in events),
        any_warned=any(event.predicted or event.flagged
                       for event in events),
    )


def outcome_from_events(spec: typing.Any,
                        events: typing.Sequence[CaptureEvent],
                        ) -> FaultOutcome:
    """Build the :class:`FaultOutcome` record for ``spec``."""
    return FaultOutcome(
        fault_id=spec.fault_id,
        kind=spec.kind,
        site=spec.site,
        cycle=spec.cycle,
        magnitude_ps=spec.magnitude_ps,
        classification=classify_events(events),
        events=len(events),
        worst_lateness_ps=max(
            (event.lateness_ps for event in events), default=0),
        max_borrowed_intervals=max(
            (event.borrowed_intervals for event in events), default=0),
    )
