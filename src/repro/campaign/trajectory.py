"""Fault-free background trajectories for snapshot-forked campaigns.

Every fault in a campaign population perturbs the *same* fault-free
background: the simulators' draws are all position-addressed by absolute
cycle (counter-based RNG), and a fault overlay adds zero delay before
``spec.cycle``.  So the carried simulator state at any cycle ``c`` of a
faulty run with ``spec.cycle >= c`` is exactly the fault-free state at
``c`` — which this module computes **once** per background
configuration and checkpoints at stride boundaries.

A :class:`BackgroundTrajectory` is just the stride plus the snapshot
tuple; evaluating a fault then means restoring the nearest snapshot at
or before ``spec.cycle`` and simulating only the fault's influence
window instead of re-running the whole prefix from cycle 0.  The
prefix advance itself reuses the vectorized block screen (the builder
simply calls ``sim.run`` stride by stride), so reaching snapshot
points costs a handful of numpy calls per stride.

Trajectories are shared two ways, both content-addressed by a
``stable_key`` over every parameter the background depends on:

* in-process via the warm worker cache (kind ``"trajectory"``, same
  invalidation discipline as ``"criticality"`` — a changed config
  hashes to a new key, so stale entries can never alias);
* optionally on disk through :class:`repro.exec.cache.ResultCache`
  when ``REPRO_TRAJECTORY_CACHE_DIR`` is set (the campaign CLI sets it
  under ``--cache-dir``), with the cache's checksum-on-read corruption
  handling: a tampered or truncated entry is logged, deleted, and
  rebuilt from simulation.
"""

from __future__ import annotations

import dataclasses
import logging
import os
import typing

from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache, stable_key
from repro.exec.worker import WARM

logger = logging.getLogger("repro.campaign.trajectory")

#: Environment variable naming a directory for the on-disk trajectory
#: cache (unset = in-process warm cache only).  Pool workers inherit it
#: from the parent's environment.
TRAJECTORY_CACHE_ENV = "REPRO_TRAJECTORY_CACHE_DIR"


@dataclasses.dataclass(frozen=True)
class BackgroundTrajectory:
    """Stride-spaced snapshots of one fault-free background run.

    ``snapshots[i]`` is the simulator's carried state *entering* cycle
    ``i * stride`` — ``snapshots[0]`` is the idle initial state.  Only
    boundaries strictly below ``num_cycles`` are kept; a fork never
    needs a snapshot past the last cycle a fault can land on.
    """

    stride: int
    num_cycles: int
    snapshots: tuple

    def fork_point(self, cycle: int) -> "tuple[int, typing.Any]":
        """``(start_cycle, state)`` of the nearest snapshot <= ``cycle``."""
        if cycle < 0:
            raise ConfigurationError(f"cycle must be >= 0, got {cycle}")
        index = min(cycle // self.stride, len(self.snapshots) - 1)
        return index * self.stride, self.snapshots[index]

    @property
    def num_snapshots(self) -> int:
        return len(self.snapshots)


def fork_window_groups(trajectory: BackgroundTrajectory,
                       cycles: "typing.Sequence[int]",
                       ) -> "list[list[int]]":
    """Group indices of ``cycles`` by the fork snapshot they share.

    Every cycle in one group has the same :meth:`fork_point` (the
    last-snapshot clamp included), so the group's faults can be
    evaluated as one lane batch over one restored background.  Groups
    come back in ascending snapshot order with indices ascending inside
    each group — the exact visit order ``evaluation_order`` produces,
    so batched and per-fault evaluation touch faults in the same
    sequence.
    """
    last = trajectory.num_snapshots - 1
    groups: dict[int, list[int]] = {}
    for index, cycle in enumerate(cycles):
        groups.setdefault(min(cycle // trajectory.stride, last),
                          []).append(index)
    return [groups[key] for key in sorted(groups)]


def build_trajectory(make_sim: "typing.Callable[[], typing.Any]", *,
                     num_cycles: int, stride: int) -> BackgroundTrajectory:
    """Run the fault-free background once, snapshotting every stride.

    ``make_sim`` must build a fresh simulator with **no fault overlay
    and no observer** — the trajectory is the shared prefix of every
    faulty run.  Each stride advances through the simulator's normal
    ``run`` entry point, so the vectorized block screen does the heavy
    lifting and the snapshots are bit-identical to scalar-mode ones.
    """
    if stride < 1:
        raise ConfigurationError(f"stride must be >= 1, got {stride}")
    if num_cycles < 1:
        raise ConfigurationError(
            f"num_cycles must be >= 1, got {num_cycles}")
    sim = make_sim()
    if getattr(sim, "faults", None) is not None:
        raise ConfigurationError(
            "background trajectories must be fault-free")
    snapshots = [sim.snapshot()]
    for boundary in range(stride, num_cycles, stride):
        sim.run(boundary, start_cycle=boundary - stride)
        snapshots.append(sim.snapshot())
    return BackgroundTrajectory(stride=stride, num_cycles=num_cycles,
                                snapshots=tuple(snapshots))


def trajectory_key(params: "typing.Mapping[str, typing.Any]") -> str:
    """Content hash of everything a background trajectory depends on."""
    return stable_key("campaign-trajectory", dict(params))


def _disk_cache() -> "ResultCache | None":
    directory = os.environ.get(TRAJECTORY_CACHE_ENV, "")
    if not directory:
        return None
    return ResultCache(directory)


def trajectory_for(
    params: "typing.Mapping[str, typing.Any]",
    builder: "typing.Callable[[], BackgroundTrajectory]",
) -> BackgroundTrajectory:
    """The trajectory for ``params``, via warm (and optional disk) cache.

    Lookup order: per-process warm cache, then the on-disk cache named
    by ``REPRO_TRAJECTORY_CACHE_ENV`` (checksum-verified on read — a
    corrupted entry logs a warning, is deleted, and falls through to a
    rebuild), then ``builder()``.  Fresh builds are written back to the
    disk cache best-effort.
    """
    key = trajectory_key(params)

    def load_or_build() -> BackgroundTrajectory:
        disk = _disk_cache()
        if disk is not None:
            hit, value = disk.get(key)
            if hit and isinstance(value, BackgroundTrajectory):
                return value
        trajectory = builder()
        if disk is not None:
            try:
                disk.put(key, trajectory, experiment="campaign-trajectory",
                         meta={"stride": trajectory.stride,
                               "num_cycles": trajectory.num_cycles})
            except OSError as error:  # best-effort persistence
                logger.warning("could not persist trajectory %s: %s",
                               key[:12], error)
        return trajectory

    return WARM.get_or_build("trajectory", key, load_or_build)


def trajectory_rows_for(
    params: "typing.Mapping[str, typing.Any]",
    builder: "typing.Callable[[], typing.Any]",
) -> "typing.Any":
    """Precomputed background rows for ``params``, via the warm cache.

    Same content-addressed kind (``"trajectory"``) and invalidation
    discipline as the snapshots, distinct salt so the two entries never
    collide.  Rows are immutable numpy arrays rebuilt by one cheap
    vectorized pass, so they stay in-process only — unlike the
    snapshots they are never persisted to disk.
    """
    key = stable_key("campaign-trajectory-rows", dict(params))
    return WARM.get_or_build("trajectory", key, builder)
