"""Seeded fault populations and the simulator-facing overlay.

A campaign is defined by a *population* of :class:`FaultSpec` records,
generated deterministically from a root seed with the same counter-based
mixer the simulators use (:mod:`repro.kernels.rng`): fault ``i``'s shape
depends only on ``(seed, i)``, so slicing the population into chunks for
the exec layer — or regenerating it inside a worker process — always
yields the same faults.

Four fault kinds cover the dynamic-error sources the TIMBER paper and
the fault-campaign literature care about:

* ``seu`` — a single-cycle transient at one site (particle strike);
* ``delay`` — a multi-cycle slowdown of one site (crosstalk, resistive
  defect, local heating);
* ``droop`` — a multi-cycle slowdown of *every* site (supply droop);
* ``correlated`` — a multi-cycle slowdown spanning several consecutive
  sites, the pattern that exercises TIMBER's error relay.

:class:`FaultOverlay` translates a population slice into the narrow
interface the cycle-level simulators consume (see
:mod:`repro.pipeline.hooks`): extra delay per (cycle, site), plus an
active-cycle mask so the vector kernels force injected cycles onto the
scalar replay path.
"""

from __future__ import annotations

import bisect
import dataclasses
import typing

from repro.errors import ConfigurationError
from repro.kernels.rng import key_id, mix32, split64

FAULT_KINDS = ("seu", "delay", "droop", "correlated")

#: Domain-separation salt for the population stream.
_POPULATION_SALT = key_id("campaign-population")

#: Per-field lanes, so every attribute of a fault draws independently.
_FIELD_KIND = 1
_FIELD_SITE = 2
_FIELD_CYCLE = 3
_FIELD_DURATION = 4
_FIELD_MAGNITUDE = 5
_FIELD_SPAN = 6


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One injected fault of a campaign population.

    Attributes:
        fault_id: Position in the population (also the draw counter).
        kind: One of :data:`FAULT_KINDS`.
        site: Primary injection site (stage name, flip-flop name, or
            signal, depending on the campaign target).
        cycle: First affected cycle.
        duration_cycles: Number of consecutive affected cycles.
        magnitude_ps: Extra delay (or pulse width) injected.
        span: Number of consecutive sites affected (``correlated``
            only; 1 elsewhere — ``droop`` hits every site regardless).
    """

    fault_id: int
    kind: str
    site: str
    cycle: int
    duration_cycles: int
    magnitude_ps: int
    span: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if self.cycle < 0 or self.duration_cycles < 1:
            raise ConfigurationError(
                f"fault {self.fault_id}: bad cycle window "
                f"({self.cycle}, {self.duration_cycles})")
        if self.magnitude_ps <= 0:
            raise ConfigurationError(
                f"fault {self.fault_id}: magnitude must be > 0")

    @property
    def last_cycle(self) -> int:
        return self.cycle + self.duration_cycles - 1

    def sites_affected(self, sites: typing.Sequence[str]) -> list[str]:
        """The site names this fault perturbs, given the target's sites."""
        if self.kind == "droop":
            return list(sites)
        if self.kind == "correlated":
            start = sites.index(self.site)
            return list(sites[start:start + self.span])
        return [self.site]


def _draw(seed_lanes: tuple[int, int], fault_id: int, field: int) -> int:
    lo, hi = seed_lanes
    return mix32(_POPULATION_SALT, lo, hi, fault_id, field)


def iter_population(
    *,
    num_faults: int,
    sites: typing.Sequence[str],
    num_cycles: int,
    seed: int,
    kinds: typing.Sequence[str] = FAULT_KINDS,
    magnitude_range_ps: tuple[int, int] = (20, 220),
    max_duration_cycles: int = 3,
    max_span: int = 3,
    start: int = 0,
) -> typing.Iterator[FaultSpec]:
    """Stream faults ``[start, num_faults)`` of a deterministic population.

    Faults land on cycles ``[1, num_cycles - max_duration_cycles)`` so
    every injection window fits inside the run.  All draws are
    counter-based: fault ``i`` is a pure function of ``(seed, i)``,
    independent of every other fault and of the order — or the chunking
    — of generation, so a stream starting at ``start`` is byte-identical
    to the same slice of the full population.  Streaming keeps
    soak-scale populations out of memory: workers materialize only the
    chunk they are classifying.

    Arguments are validated eagerly (this is a plain function returning
    a generator), so a bad configuration raises at call time.
    """
    if num_faults < 1:
        raise ConfigurationError("need at least one fault")
    if not 0 <= start <= num_faults:
        raise ConfigurationError(
            f"start {start} outside [0, {num_faults}]")
    if not sites:
        raise ConfigurationError("need at least one injection site")
    for kind in kinds:
        if kind not in FAULT_KINDS:
            raise ConfigurationError(f"unknown fault kind {kind!r}")
    lo_ps, hi_ps = magnitude_range_ps
    if not 0 < lo_ps <= hi_ps:
        raise ConfigurationError("bad magnitude range")
    last_start = num_cycles - max_duration_cycles
    if last_start < 2:
        raise ConfigurationError(
            f"{num_cycles} cycles leave no room for a "
            f"{max_duration_cycles}-cycle fault window")
    lanes = split64(seed)

    def generate() -> typing.Iterator[FaultSpec]:
        for fault_id in range(start, num_faults):
            yield draw_spec(
                lanes, fault_id, sites=sites, kinds=kinds,
                lo_ps=lo_ps, hi_ps=hi_ps, last_start=last_start,
                max_duration_cycles=max_duration_cycles,
                max_span=max_span)

    return generate()


def draw_spec(
    lanes: tuple[int, int],
    draw_index: int,
    *,
    sites: typing.Sequence[str],
    kinds: typing.Sequence[str],
    lo_ps: int,
    hi_ps: int,
    last_start: int,
    max_duration_cycles: int,
    max_span: int,
    fault_id: int | None = None,
) -> FaultSpec:
    """Draw one fault — pure in ``(lanes, draw_index)``.

    ``fault_id`` defaults to ``draw_index`` (the population case, where
    the position in the population is also the draw counter).  Streaming
    stratified sources (:mod:`repro.soak.generator`) separate the two:
    each stratum keeps its own draw counter (so a stratum's stream is
    independent of how rounds interleave strata) while ``fault_id``
    carries the global injection sequence number.
    """
    kind = kinds[_draw(lanes, draw_index, _FIELD_KIND) % len(kinds)]
    span = 1
    if kind == "correlated" and len(sites) > 1:
        span = 2 + _draw(lanes, draw_index, _FIELD_SPAN) % (max_span - 1)
        span = min(span, len(sites))
    # Correlated faults need `span` consecutive sites after the
    # primary one, so clamp the start index accordingly.
    site_slots = len(sites) - span + 1
    site = sites[_draw(lanes, draw_index, _FIELD_SITE) % site_slots]
    if kind == "seu":
        duration = 1
    else:
        duration = 1 + (_draw(lanes, draw_index, _FIELD_DURATION)
                        % max_duration_cycles)
    cycle = 1 + _draw(lanes, draw_index, _FIELD_CYCLE) % (last_start - 1)
    magnitude = lo_ps + (_draw(lanes, draw_index, _FIELD_MAGNITUDE)
                         % (hi_ps - lo_ps + 1))
    return FaultSpec(
        fault_id=draw_index if fault_id is None else fault_id,
        kind=kind, site=site, cycle=cycle,
        duration_cycles=duration, magnitude_ps=magnitude, span=span,
    )


def generate_population(
    *,
    num_faults: int,
    sites: typing.Sequence[str],
    num_cycles: int,
    seed: int,
    kinds: typing.Sequence[str] = FAULT_KINDS,
    magnitude_range_ps: tuple[int, int] = (20, 220),
    max_duration_cycles: int = 3,
    max_span: int = 3,
) -> list[FaultSpec]:
    """Materialize the full population (see :func:`iter_population`)."""
    return list(iter_population(
        num_faults=num_faults, sites=sites, num_cycles=num_cycles,
        seed=seed, kinds=kinds, magnitude_range_ps=magnitude_range_ps,
        max_duration_cycles=max_duration_cycles, max_span=max_span,
    ))


class FaultOverlay:
    """Extra-delay overlay for one or more faults on a simulator.

    Implements the :class:`repro.pipeline.hooks.FaultOverlayLike`
    protocol: per-(cycle, site) extra delay for the scalar state
    machine, and a per-block active mask so the vector kernels always
    replay injected cycles (their screens see only fault-free delays).
    Overlapping faults add up, like independent physical mechanisms.
    """

    def __init__(self, specs: typing.Sequence[FaultSpec],
                 sites: typing.Sequence[str]) -> None:
        self.specs = list(specs)
        self._by_cycle: dict[int, dict[str, int]] = {}
        for spec in self.specs:
            affected = spec.sites_affected(sites)
            for cycle in range(spec.cycle, spec.cycle
                               + spec.duration_cycles):
                row = self._by_cycle.setdefault(cycle, {})
                for site in affected:
                    row[site] = row.get(site, 0) + spec.magnitude_ps
        self._active = sorted(self._by_cycle)
        self._active_array = None

    def extra_delay_ps(self, cycle: int, key: str) -> int:
        row = self._by_cycle.get(cycle)
        if row is None:
            return 0
        return row.get(key, 0)

    def active_cycles(self) -> list[int]:
        return list(self._active)

    def active_cycles_between(self, start: int, stop: int) -> list[int]:
        """Active cycles in ``[start, stop)``, for window replays.

        Fork windows for late faults mostly contain *no* active cycle;
        answering that in O(log n) lets ``_run_rows`` skip its
        copy-and-scan of the interesting screen entirely."""
        lo = bisect.bisect_left(self._active, start)
        hi = bisect.bisect_left(self._active, stop, lo)
        return self._active[lo:hi]

    def active_mask(self, cycles):  # noqa: ANN001 — numpy-optional
        import numpy as np

        if self._active_array is None:
            self._active_array = np.asarray(self._active, dtype=np.int64)
        return np.isin(cycles, self._active_array)
