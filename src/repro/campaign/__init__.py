"""Randomized fault-campaign engine (paper-scale resilience studies).

``repro.campaign`` answers the paper's headline question at scale: *what
fraction of dynamic timing errors does each scheme mask, detect, or let
escape?*  It generates seeded populations of faults — SEUs, delay
faults, droop pulses, multi-stage correlated slowdowns — injects them
into the cycle-level simulators (linear pipeline and whole graph) and
the event-driven netlist simulator, runs the population through the
exec layer, and classifies every outcome into the TB/ED taxonomy of
:mod:`repro.campaign.outcomes`, producing per-scheme coverage reports
keyed to the recovered timing margin ``c/k``.
"""

from repro.campaign.engine import (
    CAMPAIGN_TASK,
    FULL_RUN_TARGETS,
    CampaignConfig,
    CampaignResult,
    batching_disabled,
    campaign_chunk_task,
    evaluate_fault,
    fault_runner,
    full_runs_forced,
    run_campaign,
)
from repro.campaign.faults import (
    FAULT_KINDS,
    FaultOverlay,
    FaultSpec,
    draw_spec,
    generate_population,
    iter_population,
)
from repro.campaign.trajectory import (
    BackgroundTrajectory,
    build_trajectory,
    fork_window_groups,
    trajectory_for,
)
from repro.campaign.outcomes import (
    BENIGN,
    ESCAPED,
    FALSE_POSITIVE,
    MASKED_ED,
    MASKED_TB,
    OUTCOME_CLASSES,
    RELAYED,
    CaptureEvent,
    FaultOutcome,
    classify_events,
    classify_flags,
)
from repro.campaign.report import (
    CoverageReport,
    build_report,
    render_reports,
    write_campaign_bench,
)

__all__ = [
    "CAMPAIGN_TASK",
    "FULL_RUN_TARGETS",
    "CampaignConfig",
    "CampaignResult",
    "batching_disabled",
    "campaign_chunk_task",
    "evaluate_fault",
    "fault_runner",
    "full_runs_forced",
    "run_campaign",
    "FAULT_KINDS",
    "FaultOverlay",
    "FaultSpec",
    "draw_spec",
    "generate_population",
    "iter_population",
    "BackgroundTrajectory",
    "build_trajectory",
    "fork_window_groups",
    "trajectory_for",
    "BENIGN",
    "ESCAPED",
    "FALSE_POSITIVE",
    "MASKED_ED",
    "MASKED_TB",
    "OUTCOME_CLASSES",
    "RELAYED",
    "CaptureEvent",
    "FaultOutcome",
    "classify_events",
    "classify_flags",
    "CoverageReport",
    "build_report",
    "render_reports",
    "write_campaign_bench",
]
