"""Campaign execution: per-fault simulation plus exec-layer fan-out.

A campaign slices its seeded fault population into chunks, wraps every
chunk as a :class:`~repro.exec.runner.SweepTask` (so it flows through
the cache / retry / checkpoint machinery like any other sweep), and
each worker re-generates the population deterministically, runs one
simulation per fault, and classifies the observed capture events.

Three targets are supported:

* ``pipeline`` — :class:`~repro.pipeline.pipeline.PipelineSimulation`
  with any registered architecture (``plain``, ``timber-ff``,
  ``razor``, ``canary``, ...);
* ``graph`` — :class:`~repro.pipeline.graph_sim.
  GraphPipelineSimulation` on a synthetic near-critical chain
  (``plain`` / ``timber-ff`` / ``timber-latch``);
* ``netlist`` — the event-driven simulator with behavioural elements
  (:class:`~repro.sequential.timber_ff.TimberFlipFlop` vs
  :class:`~repro.sequential.flipflop.DFlipFlop`) and real
  :class:`~repro.sim.faults.FaultInjector` pulses (``seu`` / ``delay``
  kinds only — droop and correlated slowdowns are cycle-level notions).

Every fault runs in its own simulation with variability pinned to 1.0,
so the only violations (canary's intentional guard-band predictions
aside) are the injected ones — attribution is exact, and the per-fault
event stream is bit-identical between the scalar and vector kernel
paths because injected cycles always replay through the scalar state
machine (see :mod:`repro.pipeline.hooks`).
"""

from __future__ import annotations

import dataclasses
import time
import typing

from repro import obs
from repro.baselines.architectures import architecture_by_key
from repro.campaign.faults import (
    FAULT_KINDS,
    FaultOverlay,
    FaultSpec,
    generate_population,
)
from repro.campaign.outcomes import (
    CaptureEvent,
    FaultOutcome,
    outcome_from_events,
)
from repro.core.checking_period import CheckingPeriod
from repro.errors import ConfigurationError
from repro.exec.runner import (
    SweepRunner,
    SweepTask,
    TaskPayload,
    derive_seed,
    task_key,
)
from repro.variability.base import ConstantVariation

#: Dotted task-function name (module-level, worker-importable).
CAMPAIGN_TASK = "repro.campaign.engine:campaign_chunk_task"

_TARGETS = ("pipeline", "graph", "netlist")

#: Kinds with an event-driven (pulse/transition) realisation.
_NETLIST_KINDS = ("seu", "delay")

# Per-fault observability.  The outcome counter is semantic (classes
# are a pure function of the seeded population and the simulators);
# the latency histogram is wall-clock, hence the ``_seconds`` suffix
# that excludes it from determinism checks.
_OBS_OUTCOMES = obs.REGISTRY.counter(
    "repro_campaign_outcomes_total",
    "Classified fault outcomes",
    labelnames=("target", "scheme", "classification"))
_OBS_FAULT_SECONDS = obs.REGISTRY.histogram(
    "repro_campaign_fault_seconds",
    "Wall time to simulate and classify one fault",
    buckets=(0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
             0.25, 0.5, 1.0)).labels()


@dataclasses.dataclass(frozen=True)
class CampaignConfig:
    """Everything that defines one campaign (JSON-able, seed included).

    ``num_cycles`` bounds the cycle range faults land in; every fault
    simulates only up to its own window end, so the per-fault cost is
    independent of the population spread.
    """

    target: str = "pipeline"
    scheme: str = "timber-ff"
    num_faults: int = 1000
    num_cycles: int = 2000
    period_ps: int = 1000
    checking_percent: float = 30.0
    num_stages: int = 5
    sensitization_prob: float = 0.4
    seed: int = 2010
    faults_per_task: int = 25
    kinds: tuple[str, ...] = FAULT_KINDS
    magnitude_range_ps: tuple[int, int] = (20, 220)
    relay_horizon: int = 4

    def __post_init__(self) -> None:
        if self.target not in _TARGETS:
            raise ConfigurationError(
                f"target must be one of {_TARGETS}, got {self.target!r}")
        if self.num_faults < 1:
            raise ConfigurationError("need at least one fault")
        if self.faults_per_task < 1:
            raise ConfigurationError("faults_per_task must be >= 1")
        if self.num_stages < 2:
            raise ConfigurationError("need at least two stages")
        if self.relay_horizon < 1:
            raise ConfigurationError("relay_horizon must be >= 1")
        if self.target == "pipeline":
            try:
                architecture_by_key(self.scheme)
            except KeyError as error:
                raise ConfigurationError(str(error)) from error
        elif self.target == "graph":
            if self.scheme not in ("plain", "timber-ff", "timber-latch"):
                raise ConfigurationError(
                    f"graph campaigns support plain/timber-ff/"
                    f"timber-latch, got {self.scheme!r}")
        elif self.scheme not in ("plain", "timber-ff"):
            raise ConfigurationError(
                f"netlist campaigns support plain/timber-ff, "
                f"got {self.scheme!r}")

    # -- derived ---------------------------------------------------------
    @property
    def checking_period(self) -> CheckingPeriod:
        return CheckingPeriod.with_tb(self.period_ps,
                                      self.checking_percent)

    @property
    def margin_ps(self) -> int:
        """The recovered margin ``t = c/k`` the report is keyed to."""
        return self.checking_period.interval_ps

    def sites(self) -> list[str]:
        """Ordered injection sites of this campaign's target."""
        if self.target == "pipeline":
            return [f"cs{i}" for i in range(self.num_stages)]
        if self.target == "graph":
            # g0 only launches; faults land on capturing flip-flops.
            return [f"g{i}" for i in range(1, self.num_stages + 1)]
        return ["d"]

    def effective_kinds(self) -> tuple[str, ...]:
        if self.target != "netlist":
            return tuple(self.kinds)
        allowed = tuple(k for k in self.kinds if k in _NETLIST_KINDS)
        return allowed or _NETLIST_KINDS

    def population(self) -> list[FaultSpec]:
        return generate_population(
            num_faults=self.num_faults,
            sites=self.sites(),
            num_cycles=self.num_cycles,
            seed=self.seed,
            kinds=self.effective_kinds(),
            magnitude_range_ps=self.magnitude_range_ps,
        )

    # -- (de)serialisation ----------------------------------------------
    def to_params(self) -> dict:
        params = dataclasses.asdict(self)
        params["kinds"] = list(self.kinds)
        params["magnitude_range_ps"] = list(self.magnitude_range_ps)
        return params

    @classmethod
    def from_params(cls, params: typing.Mapping) -> "CampaignConfig":
        fields = dict(params)
        fields["kinds"] = tuple(fields["kinds"])
        fields["magnitude_range_ps"] = tuple(
            fields["magnitude_range_ps"])
        return cls(**fields)


# ---------------------------------------------------------------------------
# Per-fault simulation, one function per target
# ---------------------------------------------------------------------------

def _window_end(config: CampaignConfig, spec: FaultSpec) -> int:
    """Last cycle attributable to ``spec`` (relay effects included)."""
    return min(config.num_cycles - 1,
               spec.last_cycle + config.relay_horizon)


def _collecting_observer(
    config: CampaignConfig,
    spec: FaultSpec,
    events: list[CaptureEvent],
    site_names: list[str] | None,
) -> typing.Callable:
    """Observer recording events inside the fault's influence window."""
    end = _window_end(config, spec)

    def observe(cycle: int, site: typing.Any, outcome: typing.Any,
                lateness_ps: int) -> None:
        if not spec.cycle <= cycle <= end:
            return
        name = site_names[site] if site_names is not None else str(site)
        events.append(CaptureEvent(
            cycle=cycle, site=name, lateness_ps=lateness_ps,
            masked=outcome.masked, detected=outcome.detected,
            predicted=outcome.predicted, flagged=outcome.flagged,
            failed=outcome.failed,
            borrowed_intervals=outcome.borrowed_intervals,
        ))

    return observe


def _run_pipeline_fault(config: CampaignConfig,
                        spec: FaultSpec) -> tuple[FaultOutcome, int]:
    from repro.pipeline.pipeline import PipelineSimulation
    from repro.pipeline.stage import PipelineStage

    sites = config.sites()
    stages = [
        PipelineStage(
            name=site,
            critical_delay_ps=int(config.period_ps * 0.95),
            typical_delay_ps=int(config.period_ps * 0.70),
            sensitization_prob=config.sensitization_prob,
            seed=config.seed + index,
        )
        for index, site in enumerate(sites)
    ]
    policy = architecture_by_key(config.scheme).build_policy(
        config.num_stages, config.period_ps, config.checking_percent)
    events: list[CaptureEvent] = []
    simulation = PipelineSimulation(
        stages, policy,
        period_ps=config.period_ps,
        variability=ConstantVariation(1.0),
        faults=FaultOverlay([spec], sites),
        capture_observer=_collecting_observer(config, spec, events,
                                              sites),
    )
    result = simulation.run(_window_end(config, spec) + 1)
    return outcome_from_events(spec, events), result.captures


def _run_graph_fault(config: CampaignConfig,
                     spec: FaultSpec) -> tuple[FaultOutcome, int]:
    from repro.pipeline.graph_sim import GraphPipelineSimulation
    from repro.timing.graph import TimingGraph

    graph = TimingGraph("campaign-chain", config.period_ps)
    graph.add_ff("g0")
    for index in range(1, config.num_stages + 1):
        graph.add_ff(f"g{index}")
        graph.add_edge(f"g{index - 1}", f"g{index}",
                       int(config.period_ps * 0.9))
    sites = config.sites()
    events: list[CaptureEvent] = []
    simulation = GraphPipelineSimulation(
        graph,
        scheme=config.scheme,
        percent_checking=config.checking_percent,
        sensitization_prob=config.sensitization_prob,
        variability=ConstantVariation(1.0),
        seed=config.seed,
        faults=FaultOverlay([spec], sites),
        capture_observer=_collecting_observer(config, spec, events,
                                              None),
    )
    result = simulation.run(_window_end(config, spec) + 1)
    return (outcome_from_events(spec, events),
            result.cycles * result.num_ffs)


def _run_netlist_fault(config: CampaignConfig,
                       spec: FaultSpec) -> tuple[FaultOutcome, int]:
    from repro.circuit.logic import Logic
    from repro.sequential.flipflop import DFlipFlop
    from repro.sequential.timber_ff import TimberFlipFlop
    from repro.sim.clocks import ClockGenerator
    from repro.sim.engine import Simulator
    from repro.sim.faults import FaultInjector

    period = config.period_ps
    cp = config.checking_period
    end = _window_end(config, spec)
    sim = Simulator()
    ClockGenerator(sim, "clk", period)
    sim.set_initial("d", 0)
    if config.scheme == "timber-ff":
        element: typing.Any = TimberFlipFlop(
            sim, name="u1", d="d", clk="clk", q="q", err="err",
            interval_ps=cp.interval_ps, num_intervals=cp.num_intervals,
            num_tb_intervals=cp.num_tb,
        )
    else:
        element = DFlipFlop(sim, name="u1", d="d", clk="clk", q="q")

    # Functional stimulus: capture edge n (at n*period) samples the
    # alternating value n & 1, normally driven a quarter period early.
    # A delay fault postpones the affected cycles' arrivals past the
    # edge instead; an SEU rides a pulse straddling the target edge.
    lead = period // 4
    faulty_cycles = (set(range(spec.cycle, spec.cycle
                               + spec.duration_cycles))
                     if spec.kind == "delay" else set())
    for n in range(1, end + 2):
        arrival = (n * period + spec.magnitude_ps if n in faulty_cycles
                   else n * period - lead)
        sim.drive("d", n & 1, arrival, label=f"stim:{n}")
    injector = FaultInjector(sim)
    if spec.kind == "seu":
        edge = spec.cycle * period
        injector.inject_seu("d", at_ps=edge - spec.magnitude_ps // 2,
                            width_ps=spec.magnitude_ps)

    # Sample Q after the whole capture window (M1 + mux, falling-edge
    # error latch) has settled but before the next stimulus arrives.
    checks: dict[int, Logic] = {}

    def make_check(n: int) -> typing.Callable:
        def check(inner: Simulator) -> None:
            checks[n] = inner.value("q")
        return check

    for n in range(max(1, spec.cycle), end + 1):
        sim.at(n * period + period // 2 + 100, make_check(n),
               label=f"check:{n}")
    sim.run((end + 1) * period)

    events: list[CaptureEvent] = []
    for n in sorted(checks):
        if checks[n] is not Logic.from_value(n & 1):
            events.append(CaptureEvent(
                cycle=n, site=spec.site,
                lateness_ps=spec.magnitude_ps, failed=True))
    if config.scheme == "timber-ff":
        for masking in element.events:
            cycle = masking.cycle_edge_ps // period
            if spec.cycle <= cycle <= end:
                events.append(CaptureEvent(
                    cycle=cycle, site=spec.site,
                    lateness_ps=spec.magnitude_ps, masked=True,
                    flagged=masking.flagged,
                    borrowed_intervals=masking.borrowed_intervals,
                ))
    return outcome_from_events(spec, events), sim.events_processed


_TARGET_RUNNERS = {
    "pipeline": _run_pipeline_fault,
    "graph": _run_graph_fault,
    "netlist": _run_netlist_fault,
}


def run_one_fault(config: CampaignConfig,
                  spec: FaultSpec) -> tuple[FaultOutcome, int]:
    """Simulate one fault; returns (outcome, simulated-work units)."""
    if not obs.REGISTRY.enabled:
        return _TARGET_RUNNERS[config.target](config, spec)
    started = time.perf_counter()
    outcome, units = _TARGET_RUNNERS[config.target](config, spec)
    _OBS_FAULT_SECONDS.observe(time.perf_counter() - started)
    _OBS_OUTCOMES.labels(
        target=config.target, scheme=config.scheme,
        classification=outcome.classification,
    ).inc()
    return outcome, units


# ---------------------------------------------------------------------------
# Exec-layer integration
# ---------------------------------------------------------------------------

def _warm_population(config_params: dict, config: CampaignConfig) -> list:
    """The config's fault population, via the process warm cache.

    Population expansion is pure in the config and the specs are frozen,
    so every chunk task of a campaign shares one expansion per worker
    instead of regenerating the full population per chunk.
    """
    from repro.exec.cache import stable_key
    from repro.exec.worker import WARM

    return WARM.get_or_build(
        "population", stable_key("campaign-population", config_params),
        config.population)


def campaign_chunk_task(params: dict) -> TaskPayload:
    """Sweep task: classify one contiguous chunk of the population."""
    config = CampaignConfig.from_params(params["config"])
    population = _warm_population(params["config"], config)
    outcomes: list[FaultOutcome] = []
    work = 0
    with obs.trace_span("campaign.chunk", target=config.target,
                        scheme=config.scheme, start=params["start"],
                        stop=params["stop"]):
        for spec in population[params["start"]:params["stop"]]:
            outcome, units = run_one_fault(config, spec)
            outcomes.append(outcome)
            work += units
    return TaskPayload(value=outcomes, events_processed=work)


def campaign_tasks(config: CampaignConfig) -> list[SweepTask]:
    """Wrap the population chunks as exec-layer sweep tasks."""
    tasks: list[SweepTask] = []
    config_params = config.to_params()
    for index, start in enumerate(range(0, config.num_faults,
                                        config.faults_per_task)):
        stop = min(start + config.faults_per_task, config.num_faults)
        tasks.append(SweepTask(
            experiment=CAMPAIGN_TASK,
            params={"config": config_params, "start": start,
                    "stop": stop},
            index=index,
            seed=derive_seed(config.seed, CAMPAIGN_TASK, start, stop),
            key=task_key(CAMPAIGN_TASK, {
                "target": config.target, "scheme": config.scheme,
                "chunk": index,
            }),
        ))
    return tasks


@dataclasses.dataclass
class CampaignResult:
    """Classified population plus the coverage report and run summary."""

    config: CampaignConfig
    outcomes: list[FaultOutcome]
    report: "typing.Any"
    summary: dict


def run_campaign(config: CampaignConfig, *,
                 runner: SweepRunner | None = None) -> CampaignResult:
    """Run the full campaign through the exec layer and classify it."""
    from repro.campaign.report import build_report

    runner = runner or SweepRunner()
    with obs.trace_span("campaign.run", target=config.target,
                        scheme=config.scheme,
                        faults=config.num_faults):
        run = runner.run(campaign_tasks(config))
    outcomes: list[FaultOutcome] = []
    for value in run.values:
        if value is not None:  # None = chunk quarantined as poisoned
            outcomes.extend(value)
    return CampaignResult(
        config=config,
        outcomes=outcomes,
        report=build_report(config, outcomes),
        summary=run.summary,
    )
