"""Campaign execution: per-fault simulation plus exec-layer fan-out.

A campaign slices its seeded fault population into chunks, wraps every
chunk as a :class:`~repro.exec.runner.SweepTask` (so it flows through
the cache / retry / checkpoint machinery like any other sweep), and
each worker re-generates the population deterministically, runs one
simulation per fault, and classifies the observed capture events.

Three targets are supported:

* ``pipeline`` — :class:`~repro.pipeline.pipeline.PipelineSimulation`
  with any registered architecture (``plain``, ``timber-ff``,
  ``razor``, ``canary``, ...);
* ``graph`` — :class:`~repro.pipeline.graph_sim.
  GraphPipelineSimulation` on a synthetic near-critical chain
  (``plain`` / ``timber-ff`` / ``timber-latch``);
* ``netlist`` — the event-driven simulator with behavioural elements
  (:class:`~repro.sequential.timber_ff.TimberFlipFlop` vs
  :class:`~repro.sequential.flipflop.DFlipFlop`) and real
  :class:`~repro.sim.faults.FaultInjector` pulses (``seu`` / ``delay``
  kinds only — droop and correlated slowdowns are cycle-level notions).

Every fault runs with variability pinned to 1.0, so the only
violations (canary's intentional guard-band predictions aside) are the
injected ones — attribution is exact, and the per-fault event stream
is bit-identical between the scalar and vector kernel paths because
injected cycles always replay through the scalar state machine (see
:mod:`repro.pipeline.hooks`).

Cycle-level targets evaluate faults by **snapshot forking**: the
fault-free background trajectory is simulated once per configuration
(:mod:`repro.campaign.trajectory`, warm-cache kind ``"trajectory"``),
and each fault restores the nearest stride snapshot at or before its
injection cycle and simulates only ``[snapshot, window_end]`` instead
of the whole prefix from cycle 0 — O(window) per fault instead of
O(num_cycles).  The full-run evaluators are preserved as an executable
spec (``full_run_pipeline_fault`` / ``full_run_graph_fault``), pinned
against the forked path by hypothesis properties and a golden campaign
capture; ``REPRO_CAMPAIGN_FULL_RUNS=1`` forces them everywhere.  The
netlist target has no cycle-level carried-state snapshot and always
takes the full-run path (its stimulus is rebuilt per fault anyway).
"""

from __future__ import annotations

import dataclasses
import os
import time
import typing

from repro import obs
from repro.baselines.architectures import architecture_by_key
from repro.campaign.faults import (
    FAULT_KINDS,
    FaultOverlay,
    FaultSpec,
    iter_population,
)
from repro.campaign.trajectory import (
    build_trajectory,
    fork_window_groups,
    trajectory_for,
    trajectory_rows_for,
)
from repro.campaign.outcomes import (
    CaptureEvent,
    FaultOutcome,
    outcome_from_events,
)
from repro.core.checking_period import CheckingPeriod
from repro.errors import ConfigurationError
from repro.exec.runner import (
    SweepRunner,
    SweepTask,
    TaskPayload,
    derive_seed,
    task_key,
)
from repro.variability.base import ConstantVariation

#: Dotted task-function name (module-level, worker-importable).
CAMPAIGN_TASK = "repro.campaign.engine:campaign_chunk_task"

_TARGETS = ("pipeline", "graph", "netlist")

#: Kinds with an event-driven (pulse/transition) realisation.
_NETLIST_KINDS = ("seu", "delay")

#: Environment variable forcing the full-run reference evaluators
#: (fresh simulation from cycle 0 per fault) instead of snapshot
#: forking — the executable spec the forked path is pinned against.
FULL_RUNS_ENV = "REPRO_CAMPAIGN_FULL_RUNS"


def full_runs_forced() -> bool:
    """Is the full-run reference path forced via the environment?"""
    return os.environ.get(FULL_RUNS_ENV, "") not in ("", "0")


#: Environment variable disabling fault-lane batching
#: (``REPRO_CAMPAIGN_BATCH=0``): campaigns evaluate per fault through
#: the forked path the batch is pinned against.  ``FULL_RUNS_ENV``
#: disables batching too — the full-run reference stays the spec.
BATCH_ENV = "REPRO_CAMPAIGN_BATCH"


def batching_disabled() -> bool:
    """Is fault-lane batching disabled via the environment?"""
    return os.environ.get(BATCH_ENV, "1") == "0"

# Per-fault observability.  The outcome counter is semantic (classes
# are a pure function of the seeded population and the simulators);
# the latency histogram is wall-clock, hence the ``_seconds`` suffix
# that excludes it from determinism checks.
_OBS_OUTCOMES = obs.REGISTRY.counter(
    "repro_campaign_outcomes_total",
    "Classified fault outcomes",
    labelnames=("target", "scheme", "classification"))
_OBS_FAULT_SECONDS = obs.REGISTRY.histogram(
    "repro_campaign_fault_seconds",
    "Wall time to simulate and classify one fault",
    buckets=(0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
             0.25, 0.5, 1.0)).labels()
# Snapshot-fork effectiveness: prefix cycles the fork skipped (the
# work the full-run path would have re-simulated) and the length of
# each actually-simulated fork window.
_OBS_PREFIX_SAVED = obs.REGISTRY.counter(
    "repro_campaign_prefix_cycles_saved_total",
    "Fault-free prefix cycles skipped by forking from a trajectory "
    "snapshot").labels()
_OBS_FORK_WINDOW = obs.REGISTRY.histogram(
    "repro_campaign_fork_window_cycles",
    "Cycles simulated per snapshot-forked fault evaluation",
    buckets=(8, 16, 32, 64, 128, 256, 512, 1024, 2048)).labels()


@dataclasses.dataclass(frozen=True)
class CampaignConfig:
    """Everything that defines one campaign (JSON-able, seed included).

    ``num_cycles`` bounds the cycle range faults land in; every fault
    simulates only up to its own window end, so the per-fault cost is
    independent of the population spread.
    """

    target: str = "pipeline"
    scheme: str = "timber-ff"
    num_faults: int = 1000
    num_cycles: int = 2000
    period_ps: int = 1000
    checking_percent: float = 30.0
    num_stages: int = 5
    sensitization_prob: float = 0.4
    seed: int = 2010
    faults_per_task: int = 25
    kinds: tuple[str, ...] = FAULT_KINDS
    magnitude_range_ps: tuple[int, int] = (20, 220)
    relay_horizon: int = 4
    #: Cycle distance between the background trajectory's snapshots.
    #: Smaller strides shorten fork windows but cost more snapshot
    #: memory; the default keeps windows a few hundred cycles.
    snapshot_stride: int = 256

    def __post_init__(self) -> None:
        if self.target not in _TARGETS:
            raise ConfigurationError(
                f"target must be one of {_TARGETS}, got {self.target!r}")
        if self.num_faults < 1:
            raise ConfigurationError("need at least one fault")
        if self.faults_per_task < 1:
            raise ConfigurationError("faults_per_task must be >= 1")
        if self.num_stages < 2:
            raise ConfigurationError("need at least two stages")
        if self.relay_horizon < 1:
            raise ConfigurationError("relay_horizon must be >= 1")
        if self.snapshot_stride < 1:
            raise ConfigurationError("snapshot_stride must be >= 1")
        if self.target == "pipeline":
            try:
                architecture_by_key(self.scheme)
            except KeyError as error:
                raise ConfigurationError(str(error)) from error
        elif self.target == "graph":
            if self.scheme not in ("plain", "timber-ff", "timber-latch"):
                raise ConfigurationError(
                    f"graph campaigns support plain/timber-ff/"
                    f"timber-latch, got {self.scheme!r}")
        elif self.scheme not in ("plain", "timber-ff"):
            raise ConfigurationError(
                f"netlist campaigns support plain/timber-ff, "
                f"got {self.scheme!r}")

    # -- derived ---------------------------------------------------------
    @property
    def checking_period(self) -> CheckingPeriod:
        return CheckingPeriod.with_tb(self.period_ps,
                                      self.checking_percent)

    @property
    def margin_ps(self) -> int:
        """The recovered margin ``t = c/k`` the report is keyed to."""
        return self.checking_period.interval_ps

    def sites(self) -> list[str]:
        """Ordered injection sites of this campaign's target."""
        if self.target == "pipeline":
            return [f"cs{i}" for i in range(self.num_stages)]
        if self.target == "graph":
            # g0 only launches; faults land on capturing flip-flops.
            return [f"g{i}" for i in range(1, self.num_stages + 1)]
        return ["d"]

    def effective_kinds(self) -> tuple[str, ...]:
        if self.target != "netlist":
            return tuple(self.kinds)
        allowed = tuple(k for k in self.kinds if k in _NETLIST_KINDS)
        return allowed or _NETLIST_KINDS

    def iter_population(self, start: int = 0,
                        stop: int | None = None
                        ) -> typing.Iterator[FaultSpec]:
        """Stream faults ``[start, stop)`` — counter-based, so any
        slice is byte-identical to the same range of the full
        population, and workers never materialize more than their own
        chunk."""
        stop = self.num_faults if stop is None else stop
        if stop > self.num_faults:
            raise ConfigurationError(
                f"stop {stop} past population end {self.num_faults}")
        return iter_population(
            num_faults=stop,
            sites=self.sites(),
            num_cycles=self.num_cycles,
            seed=self.seed,
            kinds=self.effective_kinds(),
            magnitude_range_ps=self.magnitude_range_ps,
            start=start,
        )

    def population(self) -> list[FaultSpec]:
        return list(self.iter_population())

    def background_params(self) -> dict:
        """Everything the fault-free background trajectory depends on.

        The content-hash key of warm-cache kind ``"trajectory"`` (and
        the on-disk trajectory cache) — any change to these parameters
        hashes to a new key, so stale trajectories can never alias.
        Fault and chunking parameters are deliberately absent: the
        background is fault-free and shared by the whole population.
        """
        return {
            "target": self.target,
            "scheme": self.scheme,
            "num_cycles": self.num_cycles,
            "period_ps": self.period_ps,
            "checking_percent": self.checking_percent,
            "num_stages": self.num_stages,
            "sensitization_prob": self.sensitization_prob,
            "seed": self.seed,
            "snapshot_stride": self.snapshot_stride,
        }

    # -- (de)serialisation ----------------------------------------------
    def to_params(self) -> dict:
        params = dataclasses.asdict(self)
        params["kinds"] = list(self.kinds)
        params["magnitude_range_ps"] = list(self.magnitude_range_ps)
        return params

    @classmethod
    def from_params(cls, params: typing.Mapping) -> "CampaignConfig":
        fields = dict(params)
        fields["kinds"] = tuple(fields["kinds"])
        fields["magnitude_range_ps"] = tuple(
            fields["magnitude_range_ps"])
        return cls(**fields)


# ---------------------------------------------------------------------------
# Per-fault simulation, one function per target
# ---------------------------------------------------------------------------

def _window_end(config: CampaignConfig, spec: FaultSpec) -> int:
    """Last cycle attributable to ``spec`` (relay effects included)."""
    return min(config.num_cycles - 1,
               spec.last_cycle + config.relay_horizon)


def _collecting_observer(
    config: CampaignConfig,
    spec: FaultSpec,
    events: list[CaptureEvent],
    site_names: list[str] | None,
) -> typing.Callable:
    """Observer recording events inside the fault's influence window."""
    end = _window_end(config, spec)

    def observe(cycle: int, site: typing.Any, outcome: typing.Any,
                lateness_ps: int) -> None:
        if not spec.cycle <= cycle <= end:
            return
        name = site_names[site] if site_names is not None else str(site)
        events.append(CaptureEvent(
            cycle=cycle, site=name, lateness_ps=lateness_ps,
            masked=outcome.masked, detected=outcome.detected,
            predicted=outcome.predicted, flagged=outcome.flagged,
            failed=outcome.failed,
            borrowed_intervals=outcome.borrowed_intervals,
        ))

    return observe


def _build_pipeline_sim(config: CampaignConfig, *,
                        faults: "FaultOverlay | None" = None,
                        capture_observer: typing.Callable | None = None):
    """A fresh linear-pipeline simulation for this campaign config."""
    from repro.pipeline.pipeline import PipelineSimulation
    from repro.pipeline.stage import PipelineStage

    stages = [
        PipelineStage(
            name=site,
            critical_delay_ps=int(config.period_ps * 0.95),
            typical_delay_ps=int(config.period_ps * 0.70),
            sensitization_prob=config.sensitization_prob,
            seed=config.seed + index,
        )
        for index, site in enumerate(config.sites())
    ]
    policy = architecture_by_key(config.scheme).build_policy(
        config.num_stages, config.period_ps, config.checking_percent)
    return PipelineSimulation(
        stages, policy,
        period_ps=config.period_ps,
        variability=ConstantVariation(1.0),
        faults=faults,
        capture_observer=capture_observer,
    )


def _build_graph_sim(config: CampaignConfig, *,
                     faults: "FaultOverlay | None" = None,
                     capture_observer: typing.Callable | None = None):
    """A fresh whole-graph simulation on the synthetic chain."""
    from repro.pipeline.graph_sim import GraphPipelineSimulation
    from repro.timing.graph import TimingGraph

    graph = TimingGraph("campaign-chain", config.period_ps)
    graph.add_ff("g0")
    for index in range(1, config.num_stages + 1):
        graph.add_ff(f"g{index}")
        graph.add_edge(f"g{index - 1}", f"g{index}",
                       int(config.period_ps * 0.9))
    return GraphPipelineSimulation(
        graph,
        scheme=config.scheme,
        percent_checking=config.checking_percent,
        sensitization_prob=config.sensitization_prob,
        variability=ConstantVariation(1.0),
        seed=config.seed,
        faults=faults,
        capture_observer=capture_observer,
    )


_SIM_BUILDERS = {
    "pipeline": _build_pipeline_sim,
    "graph": _build_graph_sim,
}


def full_run_pipeline_fault(config: CampaignConfig,
                            spec: FaultSpec) -> tuple[FaultOutcome, int]:
    """Full-run reference: fresh simulation from cycle 0 (spec)."""
    sites = config.sites()
    events: list[CaptureEvent] = []
    simulation = _build_pipeline_sim(
        config,
        faults=FaultOverlay([spec], sites),
        capture_observer=_collecting_observer(config, spec, events,
                                              sites),
    )
    result = simulation.run(_window_end(config, spec) + 1)
    return outcome_from_events(spec, events), result.captures


def full_run_graph_fault(config: CampaignConfig,
                         spec: FaultSpec) -> tuple[FaultOutcome, int]:
    """Full-run reference: fresh simulation from cycle 0 (spec)."""
    events: list[CaptureEvent] = []
    simulation = _build_graph_sim(
        config,
        faults=FaultOverlay([spec], config.sites()),
        capture_observer=_collecting_observer(config, spec, events,
                                              None),
    )
    result = simulation.run(_window_end(config, spec) + 1)
    return (outcome_from_events(spec, events),
            result.cycles * result.num_ffs)


def full_run_netlist_fault(config: CampaignConfig,
                           spec: FaultSpec) -> tuple[FaultOutcome, int]:
    from repro.circuit.logic import Logic
    from repro.sequential.flipflop import DFlipFlop
    from repro.sequential.timber_ff import TimberFlipFlop
    from repro.sim.clocks import ClockGenerator
    from repro.sim.engine import Simulator
    from repro.sim.faults import FaultInjector

    period = config.period_ps
    cp = config.checking_period
    end = _window_end(config, spec)
    sim = Simulator()
    ClockGenerator(sim, "clk", period)
    sim.set_initial("d", 0)
    if config.scheme == "timber-ff":
        element: typing.Any = TimberFlipFlop(
            sim, name="u1", d="d", clk="clk", q="q", err="err",
            interval_ps=cp.interval_ps, num_intervals=cp.num_intervals,
            num_tb_intervals=cp.num_tb,
        )
    else:
        element = DFlipFlop(sim, name="u1", d="d", clk="clk", q="q")

    # Functional stimulus: capture edge n (at n*period) samples the
    # alternating value n & 1, normally driven a quarter period early.
    # A delay fault postpones the affected cycles' arrivals past the
    # edge instead; an SEU rides a pulse straddling the target edge.
    lead = period // 4
    faulty_cycles = (set(range(spec.cycle, spec.cycle
                               + spec.duration_cycles))
                     if spec.kind == "delay" else set())
    for n in range(1, end + 2):
        arrival = (n * period + spec.magnitude_ps if n in faulty_cycles
                   else n * period - lead)
        sim.drive("d", n & 1, arrival, label=f"stim:{n}")
    injector = FaultInjector(sim)
    if spec.kind == "seu":
        edge = spec.cycle * period
        injector.inject_seu("d", at_ps=edge - spec.magnitude_ps // 2,
                            width_ps=spec.magnitude_ps)

    # Sample Q after the whole capture window (M1 + mux, falling-edge
    # error latch) has settled but before the next stimulus arrives.
    checks: dict[int, Logic] = {}

    def make_check(n: int) -> typing.Callable:
        def check(inner: Simulator) -> None:
            checks[n] = inner.value("q")
        return check

    for n in range(max(1, spec.cycle), end + 1):
        sim.at(n * period + period // 2 + 100, make_check(n),
               label=f"check:{n}")
    sim.run((end + 1) * period)

    events: list[CaptureEvent] = []
    for n in sorted(checks):
        if checks[n] is not Logic.from_value(n & 1):
            events.append(CaptureEvent(
                cycle=n, site=spec.site,
                lateness_ps=spec.magnitude_ps, failed=True))
    if config.scheme == "timber-ff":
        for masking in element.events:
            cycle = masking.cycle_edge_ps // period
            if spec.cycle <= cycle <= end:
                events.append(CaptureEvent(
                    cycle=cycle, site=spec.site,
                    lateness_ps=spec.magnitude_ps, masked=True,
                    flagged=masking.flagged,
                    borrowed_intervals=masking.borrowed_intervals,
                ))
    return outcome_from_events(spec, events), sim.events_processed


#: The preserved full-run evaluators — the executable spec the
#: snapshot-forked path is pinned against (hypothesis properties and a
#: golden campaign capture compare the two streams byte-for-byte).
FULL_RUN_TARGETS = {
    "pipeline": full_run_pipeline_fault,
    "graph": full_run_graph_fault,
    "netlist": full_run_netlist_fault,
}


class _EvaluatorBase:
    """Shared chunk walk: visit, classify, scatter back.

    ``evaluate_chunk`` is the one entry point chunk-shaped callers
    (campaign tasks, soak rounds) use, so every evaluator — including
    the group-batched one, which overrides it — produces outcomes in
    population order with identical per-fault obs accounting.
    """

    forked = False
    batched = False
    config: "CampaignConfig"

    def evaluate(self, spec: FaultSpec) -> tuple[FaultOutcome, int]:
        raise NotImplementedError

    def evaluation_order(
            self, specs: typing.Sequence[FaultSpec],
    ) -> "typing.Sequence[int]":
        return range(len(specs))

    def evaluate_chunk(
            self, specs: typing.Sequence[FaultSpec],
    ) -> "tuple[list[FaultOutcome], int]":
        """Classify ``specs``; outcomes in population order + work."""
        outcomes: list[FaultOutcome | None] = [None] * len(specs)
        work = 0
        for index in self.evaluation_order(specs):
            outcome, units = _classify(self.config, self, specs[index])
            outcomes[index] = outcome
            work += units
        return typing.cast("list[FaultOutcome]", outcomes), work


class _FullRunEvaluator(_EvaluatorBase):
    """Per-fault evaluation through the full-run reference functions."""

    def __init__(self, config: CampaignConfig) -> None:
        self.config = config
        self._fn = FULL_RUN_TARGETS[config.target]

    def evaluate(self, spec: FaultSpec) -> tuple[FaultOutcome, int]:
        return self._fn(self.config, spec)


class _ForkedEvaluator(_EvaluatorBase):
    """Per-fault evaluation forked from the background trajectory.

    One long-lived simulation per evaluator: each fault swaps in its
    own overlay and observer (plain attributes on the simulators),
    restores the nearest snapshot at or before ``spec.cycle``, and
    simulates only ``[snapshot, window_end]``.  The overlay adds zero
    delay before ``spec.cycle`` and every draw is addressed by
    absolute cycle, so the captured event stream is byte-identical to
    the full-run reference's.
    """

    forked = True

    def __init__(self, config: CampaignConfig) -> None:
        self.config = config
        self.sites = config.sites()
        self.site_names = (self.sites if config.target == "pipeline"
                           else None)
        build = _SIM_BUILDERS[config.target]
        self.sim = build(config)
        self.trajectory = trajectory_for(
            config.background_params(),
            lambda: build_trajectory(
                lambda: build(config),
                num_cycles=config.num_cycles,
                stride=config.snapshot_stride,
            ),
        )
        # Shared fault-free background rows (delay/sensitization plus
        # the screen's verdicts) so forks index precomputed arrays
        # instead of re-running the block kernel per fault.  Scalar
        # mode skips them: the reference path stays row-free.
        from repro import kernels
        self.rows = (trajectory_rows_for(
            config.background_params(),
            lambda: self.sim.background_rows(config.num_cycles))
            if kernels.vectorized_enabled() else None)

    def evaluate(self, spec: FaultSpec) -> tuple[FaultOutcome, int]:
        config = self.config
        end = _window_end(config, spec)
        start, state = self.trajectory.fork_point(spec.cycle)
        events: list[CaptureEvent] = []
        sim = self.sim
        sim.faults = FaultOverlay([spec], self.sites)
        sim.capture_observer = _collecting_observer(
            config, spec, events, self.site_names)
        sim.restore(state)
        result = sim.run(end + 1, start_cycle=start, rows=self.rows)
        if obs.REGISTRY.enabled:
            _OBS_PREFIX_SAVED.inc(start)
            _OBS_FORK_WINDOW.observe(end + 1 - start)
        units = (result.captures if config.target == "pipeline"
                 else result.cycles * result.num_ffs)
        return outcome_from_events(spec, events), units

    def evaluation_order(
            self, specs: typing.Sequence[FaultSpec]) -> list[int]:
        """Visit faults grouped by fork snapshot (chunk-local).

        Faults sharing a snapshot stride run back to back so restores
        stay cache-warm; ties keep population order.  The caller
        scatters results back to population positions, so the visible
        outcome stream is order-independent.
        """
        stride = self.trajectory.stride
        return sorted(range(len(specs)),
                      key=lambda i: (specs[i].cycle // stride, i))


class _BatchedEvaluator(_ForkedEvaluator):
    """Fault-lane batched evaluation over shared fork windows.

    Faults sharing a fork snapshot are near-identical perturbations of
    one background, so :func:`fork_window_groups` decides *eligibility*
    per shared snapshot (idle fork state, quiet prefix) and every lane
    that qualifies — across all of a chunk's groups — runs as one numpy
    batch: per-lane disturbance deltas on the shared background rows, a
    vectorized borrow/select/relay machine advancing every lane per
    cycle (:mod:`repro.kernels.fault_batch`), per-lane outcome folds
    feeding :class:`FaultOutcome` directly.  Lanes carry absolute cycle
    indices into the one background, so merging groups into a single
    machine call changes arithmetic batch shape only, never lane
    semantics — and amortizes the per-call setup that dominates at
    realistic stride/window sizes.

    A lane batches only when equivalence to the forked path is provable
    — idle fork snapshot, background quiet up to the injection cycle,
    window within the lane cap, and a capture policy with pure array
    semantics.  Everything else (and every lane, when the machine
    cannot be built at all) drops to :meth:`_ForkedEvaluator.evaluate`,
    the preserved executable spec.  ``lanes_batched``/``lanes_replayed``
    mirror the obs lane counters for in-process callers.
    """

    batched = True

    def __init__(self, config: CampaignConfig) -> None:
        super().__init__(config)
        from repro.kernels import fault_batch

        self._fault_batch = fault_batch
        self.machine = (fault_batch.pipeline_machine(self.sim)
                        if config.target == "pipeline"
                        else fault_batch.graph_machine(self.sim))
        self._units_per_cycle = (len(self.sim.stages)
                                 if config.target == "pipeline"
                                 else self.sim.graph.num_ffs)
        self.lanes_batched = 0
        self.lanes_replayed = 0
        #: (kind, site, span) -> machine column tuple.  The affected
        #: sites are a pure function of those three spec fields (plus
        #: the fixed site list), and populations draw from a handful of
        #: combinations — memoizing skips the per-lane name lookups.
        self._lane_cols: dict = {}

    def _lane_columns(self, spec: FaultSpec) -> "tuple[int, ...]":
        key = (spec.kind, spec.site, spec.span)
        cols = self._lane_cols.get(key)
        if cols is None:
            cols = self._lane_cols[key] = self.machine.lane_columns(
                spec.sites_affected(self.sites))
        return cols

    def evaluate(self, spec: FaultSpec) -> tuple[FaultOutcome, int]:
        return self._evaluate_merged([spec], [[0]])[0]

    def evaluate_chunk(
            self, specs: typing.Sequence[FaultSpec],
    ) -> "tuple[list[FaultOutcome], int]":
        started = time.perf_counter()
        results = self._evaluate_merged(
            specs, fork_window_groups(
                self.trajectory, [spec.cycle for spec in specs]))
        if obs.REGISTRY.enabled and specs:
            # The chunk shares one wall clock; per-fault latency is the
            # amortized share.  The outcome counter increments exactly
            # as the per-fault walk would have.
            elapsed = (time.perf_counter() - started) / len(specs)
            for outcome, _ in results:
                _OBS_FAULT_SECONDS.observe(elapsed)
                _OBS_OUTCOMES.labels(
                    target=self.config.target,
                    scheme=self.config.scheme,
                    classification=outcome.classification,
                ).inc()
        return [outcome for outcome, _ in results], sum(
            units for _, units in results)

    def _evaluate_merged(
            self, specs: typing.Sequence[FaultSpec],
            groups: "typing.Iterable[typing.Sequence[int]]",
    ) -> "list[tuple[FaultOutcome, int]]":
        """Batch every eligible lane across ``groups`` in one machine call.

        Eligibility is judged per group (shared fork snapshot, quiet
        prefix) but evaluation merges all eligible lanes into a single
        :meth:`evaluate` on the lane machine: each lane addresses the
        one shared background by absolute cycle, so group identity
        affects only which lanes qualify, never what a lane computes —
        and one big batch amortizes per-call setup that per-group
        batches pay once per snapshot.
        """
        machine = self.machine
        results: list[tuple[FaultOutcome, int] | None] = (
            [None] * len(specs))
        lanes: list = []
        lane_meta: list[tuple[int, int, int]] = []
        replay: list[int] = []
        for group in groups:
            self._plan_group(specs, group, lanes, lane_meta, replay)
        if lanes:
            lane_outcomes = machine.evaluate(lanes, self.rows)
            obs_on = obs.REGISTRY.enabled
            for (index, start, end), lane_outcome in zip(lane_meta,
                                                         lane_outcomes):
                spec = specs[index]
                if obs_on:
                    _OBS_PREFIX_SAVED.inc(start)
                    _OBS_FORK_WINDOW.observe(end + 1 - start)
                outcome = FaultOutcome(
                    fault_id=spec.fault_id,
                    kind=spec.kind,
                    site=spec.site,
                    cycle=spec.cycle,
                    magnitude_ps=spec.magnitude_ps,
                    classification=lane_outcome.classification,
                    events=lane_outcome.events,
                    worst_lateness_ps=lane_outcome.worst_lateness_ps,
                    max_borrowed_intervals=(
                        lane_outcome.max_borrowed_intervals),
                )
                results[index] = (
                    outcome, (end + 1 - start) * self._units_per_cycle)
            self.lanes_batched += len(lanes)
        if replay:
            if machine is not None:
                machine.note_replayed(len(replay))
            self.lanes_replayed += len(replay)
            for index in replay:
                results[index] = super().evaluate(specs[index])
        return typing.cast("list[tuple[FaultOutcome, int]]", results)

    def _plan_group(self, specs: typing.Sequence[FaultSpec],
                    group: typing.Sequence[int], lanes: list,
                    lane_meta: "list[tuple[int, int, int]]",
                    replay: "list[int]") -> None:
        """Sort one shared-fork-window group into lanes vs. replays."""
        import numpy as np

        fault_batch = self._fault_batch
        machine = self.machine
        start, state = self.trajectory.fork_point(specs[group[0]].cycle)
        if (machine is None or self.rows is None
                or not machine.state_is_idle(state)):
            replay.extend(group)
            return
        # A lane is provably equivalent to its forked replay when the
        # background screen shows nothing interesting between the fork
        # start and its injection cycle: the fork enters the window
        # idle, with zero prior events or counter increments.
        # Interesting background cycles *inside* the window are fine —
        # the machine models the real rows and those events belong to
        # the outcome on every path.
        interesting = self.rows[-1]
        max_cycle = max(specs[index].cycle for index in group)
        ahead = np.flatnonzero(interesting[start:max_cycle])
        quiet_until = (start + int(ahead[0]) if ahead.size
                       else max_cycle)
        for index in group:
            spec = specs[index]
            end = _window_end(self.config, spec)
            steps = end + 1 - spec.cycle
            if (spec.cycle <= quiet_until
                    and steps <= fault_batch.MAX_LANE_WINDOW):
                lane_meta.append((index, start, end))
                lanes.append(fault_batch.Lane(
                    cycle=spec.cycle,
                    steps=steps,
                    duration=spec.duration_cycles,
                    magnitude_ps=spec.magnitude_ps,
                    cols=self._lane_columns(spec),
                ))
            else:
                replay.append(index)


def fault_runner(config: CampaignConfig) -> "_EvaluatorBase":
    """The per-fault evaluator for ``config``.

    Cycle-level targets fork from the shared background trajectory —
    lane-batched over shared fork windows when the vector kernels are
    on and ``REPRO_CAMPAIGN_BATCH`` is not ``0``.  The netlist target —
    and everything when ``REPRO_CAMPAIGN_FULL_RUNS`` is set — takes
    the preserved full-run reference path behind the same interface
    (full runs also disable batching: the reference stays the spec).
    """
    if config.target == "netlist" or full_runs_forced():
        return _FullRunEvaluator(config)
    from repro import kernels
    if kernels.vectorized_enabled() and not batching_disabled():
        return _BatchedEvaluator(config)
    return _ForkedEvaluator(config)


def _classify(config: CampaignConfig,
              runner: "_FullRunEvaluator | _ForkedEvaluator",
              spec: FaultSpec) -> tuple[FaultOutcome, int]:
    """Evaluate one fault through ``runner`` with obs accounting."""
    if not obs.REGISTRY.enabled:
        return runner.evaluate(spec)
    started = time.perf_counter()
    outcome, units = runner.evaluate(spec)
    _OBS_FAULT_SECONDS.observe(time.perf_counter() - started)
    _OBS_OUTCOMES.labels(
        target=config.target, scheme=config.scheme,
        classification=outcome.classification,
    ).inc()
    return outcome, units


def evaluate_fault(config: CampaignConfig,
                   runner: "_FullRunEvaluator | _ForkedEvaluator",
                   spec: FaultSpec) -> tuple[FaultOutcome, int]:
    """Classify one fault through an existing evaluator (obs included).

    The public face of :func:`_classify` for callers that keep one
    evaluator alive across many faults — the soak driver's chunk task
    evaluates stratified draws through exactly this path, so a soak
    outcome is bit-identical to a batch campaign outcome for the same
    spec and configuration.
    """
    return _classify(config, runner, spec)


def run_one_fault(config: CampaignConfig,
                  spec: FaultSpec) -> tuple[FaultOutcome, int]:
    """Simulate one fault; returns (outcome, simulated-work units)."""
    return _classify(config, fault_runner(config), spec)


# ---------------------------------------------------------------------------
# Exec-layer integration
# ---------------------------------------------------------------------------

def _warm_population_slice(config: CampaignConfig, start: int,
                           stop: int) -> list:
    """Faults ``[start, stop)`` of the population, via the warm cache.

    Generation is pure in the population parameters and the specs are
    frozen, so re-dispatched chunks — and chunks of *other schemes*
    sharing the same target — reuse one expansion per worker.  Only
    population-relevant parameters enter the key (the scheme, for one,
    does not change the draws), and only the slice is materialized:
    soak-scale populations never exist in memory at once.
    """
    from repro.exec.cache import stable_key
    from repro.exec.worker import WARM

    key = stable_key("campaign-population", {
        "sites": config.sites(),
        "num_cycles": config.num_cycles,
        "seed": config.seed,
        "kinds": list(config.effective_kinds()),
        "magnitude_range_ps": list(config.magnitude_range_ps),
    }, start, stop)
    return WARM.get_or_build(
        "population", key,
        lambda: list(config.iter_population(start, stop)))


def campaign_chunk_task(params: dict) -> TaskPayload:
    """Sweep task: classify one contiguous chunk of the population.

    Forked evaluators visit the chunk grouped by snapshot stride (see
    :meth:`_ForkedEvaluator.evaluation_order`) and scatter results
    back, so the payload's outcome order always matches the population
    order regardless of evaluation path.
    """
    config = CampaignConfig.from_params(params["config"])
    specs = _warm_population_slice(config, params["start"],
                                   params["stop"])
    runner = fault_runner(config)
    with obs.trace_span("campaign.chunk", target=config.target,
                        scheme=config.scheme, start=params["start"],
                        stop=params["stop"]):
        outcomes, work = runner.evaluate_chunk(specs)
    return TaskPayload(value=outcomes, events_processed=work)


def campaign_tasks(config: CampaignConfig) -> list[SweepTask]:
    """Wrap the population chunks as exec-layer sweep tasks."""
    tasks: list[SweepTask] = []
    config_params = config.to_params()
    for index, start in enumerate(range(0, config.num_faults,
                                        config.faults_per_task)):
        stop = min(start + config.faults_per_task, config.num_faults)
        tasks.append(SweepTask(
            experiment=CAMPAIGN_TASK,
            params={"config": config_params, "start": start,
                    "stop": stop},
            index=index,
            seed=derive_seed(config.seed, CAMPAIGN_TASK, start, stop),
            key=task_key(CAMPAIGN_TASK, {
                "target": config.target, "scheme": config.scheme,
                "chunk": index,
            }),
        ))
    return tasks


@dataclasses.dataclass
class CampaignResult:
    """Classified population plus the coverage report and run summary."""

    config: CampaignConfig
    outcomes: list[FaultOutcome]
    report: "typing.Any"
    summary: dict


def run_campaign(config: CampaignConfig, *,
                 runner: SweepRunner | None = None,
                 publisher: typing.Any = None) -> CampaignResult:
    """Run the full campaign through the exec layer and classify it.

    ``publisher`` (an opened, telemetry-attached
    :class:`~repro.obs.stream.EventPublisher`) gets the scheme named as
    the current phase, so the ``phase_start``/``phase_end`` events the
    runner's telemetry emits are labelled with the scheme boundary a
    multi-scheme campaign is crossing.
    """
    from repro.campaign.report import build_report

    runner = runner or SweepRunner()
    if publisher is not None:
        publisher.set_phase(config.scheme)
    with obs.trace_span("campaign.run", target=config.target,
                        scheme=config.scheme,
                        faults=config.num_faults):
        run = runner.run(campaign_tasks(config))
    outcomes: list[FaultOutcome] = []
    for value in run.values:
        if value is not None:  # None = chunk quarantined as poisoned
            outcomes.extend(value)
    return CampaignResult(
        config=config,
        outcomes=outcomes,
        report=build_report(config, outcomes),
        summary=run.summary,
    )
