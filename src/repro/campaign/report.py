"""Per-scheme coverage reports for fault campaigns.

A :class:`CoverageReport` aggregates one campaign's classified faults
into the paper-facing numbers: how many violations each scheme masked
(silently, flagged, or via the relay), how many escaped as silent data
corruption, and how many flags were spurious — all keyed to the
recovered timing margin ``t = c/k`` the scheme is configured for.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import typing

from repro.campaign.outcomes import (
    ESCAPED,
    FALSE_POSITIVE,
    MASKED_ED,
    MASKED_TB,
    OUTCOME_CLASSES,
    RELAYED,
)

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.campaign.engine import CampaignConfig
    from repro.campaign.outcomes import FaultOutcome

#: Schema version of ``BENCH_campaign.json`` (documented in DESIGN.md).
CAMPAIGN_BENCH_SCHEMA = 1


@dataclasses.dataclass(frozen=True)
class CoverageReport:
    """Aggregated taxonomy counts for one (target, scheme) campaign."""

    target: str
    scheme: str
    period_ps: int
    checking_percent: float
    margin_ps: int
    num_faults: int
    counts: dict[str, int]

    @property
    def violations(self) -> int:
        """Faults that produced an actual timing violation."""
        return (self.counts[MASKED_TB] + self.counts[MASKED_ED]
                + self.counts[RELAYED] + self.counts[ESCAPED])

    @property
    def masked_total(self) -> int:
        return (self.counts[MASKED_TB] + self.counts[MASKED_ED]
                + self.counts[RELAYED])

    @property
    def coverage(self) -> float:
        """Fraction of actual violations the scheme absorbed."""
        if self.violations == 0:
            return 1.0
        return self.masked_total / self.violations

    @property
    def escape_rate(self) -> float:
        if self.violations == 0:
            return 0.0
        return self.counts[ESCAPED] / self.violations

    @property
    def false_positive_rate(self) -> float:
        if self.num_faults == 0:
            return 0.0
        return self.counts[FALSE_POSITIVE] / self.num_faults

    def to_json(self) -> dict:
        """Stable JSON form (counts plus the derived rates)."""
        return {
            "target": self.target,
            "scheme": self.scheme,
            "period_ps": self.period_ps,
            "checking_percent": self.checking_percent,
            "margin_ps": self.margin_ps,
            "num_faults": self.num_faults,
            "counts": {name: self.counts[name]
                       for name in OUTCOME_CLASSES},
            "violations": self.violations,
            "coverage": self.coverage,
            "escape_rate": self.escape_rate,
            "false_positive_rate": self.false_positive_rate,
        }


def build_report(config: "CampaignConfig",
                 outcomes: "typing.Sequence[FaultOutcome]",
                 ) -> CoverageReport:
    """Aggregate classified faults into the campaign's coverage report."""
    counts = {name: 0 for name in OUTCOME_CLASSES}
    for outcome in outcomes:
        counts[outcome.classification] += 1
    return CoverageReport(
        target=config.target,
        scheme=config.scheme,
        period_ps=config.period_ps,
        checking_percent=config.checking_percent,
        margin_ps=config.margin_ps,
        num_faults=len(outcomes),
        counts=counts,
    )


def render_reports(reports: typing.Sequence[CoverageReport]) -> str:
    """Terminal table: one row per scheme, taxonomy columns + rates."""
    header = (["target", "scheme", "margin"] + list(OUTCOME_CLASSES)
              + ["coverage", "escape"])
    rows = [header]
    for report in reports:
        rows.append(
            [report.target, report.scheme, f"{report.margin_ps}ps"]
            + [str(report.counts[name]) for name in OUTCOME_CLASSES]
            + [f"{100.0 * report.coverage:.1f}%",
               f"{100.0 * report.escape_rate:.1f}%"])
    widths = [max(len(row[col]) for row in rows)
              for col in range(len(header))]
    return "\n".join(
        "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        for row in rows)


def write_campaign_bench(
    path: str | os.PathLike,
    reports: typing.Sequence[CoverageReport],
    *,
    config: "CampaignConfig | None" = None,
    telemetry: dict | None = None,
) -> pathlib.Path:
    """Write the ``BENCH_campaign.json``-schema coverage artefact.

    Layout (schema documented in DESIGN.md / EXPERIMENTS.md)::

        {"bench": "campaign", "schema_version": 1,
         "config": {...} | null,
         "reports": [<CoverageReport.to_json()>, ...],
         "telemetry": {"wall_time_s": ..., "tasks": ...} | null}
    """
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    data: dict = {
        "bench": "campaign",
        "schema_version": CAMPAIGN_BENCH_SCHEMA,
        "config": dict(config.to_params()) if config is not None else None,
        "reports": [report.to_json() for report in reports],
        "telemetry": None,
    }
    if telemetry is not None:
        data["telemetry"] = {
            "wall_time_s": telemetry.get("wall_time_s"),
            "tasks": telemetry.get("tasks"),
            "workers": telemetry.get("workers"),
            "kernel_mode": telemetry.get("kernel_mode"),
            "cache_hits": telemetry.get("cache_hits"),
            "cache_misses": telemetry.get("cache_misses"),
            "retries": len(telemetry.get("retries", [])),
            "resumed_tasks": telemetry.get("resumed_tasks", 0),
            "poisoned": len(telemetry.get("poisoned", [])),
            "batches": telemetry.get("batches", 0),
            "warm_cache": telemetry.get("warm_cache", {}),
        }
    target.write_text(json.dumps(data, indent=2, sort_keys=False) + "\n",
                      encoding="utf-8")
    return target
