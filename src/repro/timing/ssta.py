"""Monte-Carlo statistical timing analysis.

Deterministic corner STA (:mod:`repro.timing.sta`) answers "does the
design meet timing at sign-off"; this module answers the question TIMBER
is built around: *under dynamic variability, how often and by how much
does each endpoint actually violate?*  It re-runs arrival propagation
over a netlist with per-gate delay factors drawn from a variability
model, one trial per simulated cycle, and aggregates per-endpoint
violation statistics.

When numpy is available (and ``REPRO_SCALAR_KERNELS`` is unset) the
netlist is levelized once and a ``(trials, nets)`` arrival matrix is
propagated level by level through
:mod:`repro.kernels.ssta`; the scalar per-trial loop remains as the
bit-identical reference implementation.
"""

from __future__ import annotations

import dataclasses

from repro import kernels
from repro.circuit.netlist import Netlist
from repro.errors import AnalysisError
from repro.variability.base import VariabilityModel, supports_batch


@dataclasses.dataclass
class EndpointStatistics:
    """Violation statistics for one capture net."""

    capture_net: str
    trials: int
    violations: int
    max_lateness_ps: int
    lateness_sum_ps: int

    @property
    def violation_probability(self) -> float:
        return self.violations / self.trials if self.trials else 0.0

    @property
    def mean_lateness_ps(self) -> float:
        """Mean lateness over violating trials (0 if none)."""
        if self.violations == 0:
            return 0.0
        return self.lateness_sum_ps / self.violations


@dataclasses.dataclass
class SstaResult:
    """Aggregate of a statistical STA run."""

    netlist_name: str
    period_ps: int
    trials: int
    endpoints: dict[str, EndpointStatistics]

    @property
    def any_violation_probability(self) -> float:
        """Fraction of trials in which at least one endpoint violated."""
        return self._any_violations / self.trials if self.trials else 0.0

    _any_violations: int = 0

    def worst_endpoint(self) -> EndpointStatistics:
        if not self.endpoints:
            raise AnalysisError("no endpoints analysed")
        return max(self.endpoints.values(),
                   key=lambda s: (s.violation_probability,
                                  s.max_lateness_ps))

    def required_margin_ps(self, coverage: float = 1.0) -> int:
        """Margin needed to mask a ``coverage`` fraction of observed
        violations — the empirical version of the paper's 'recovered
        timing margin' sizing rule.

        ``coverage=1.0`` returns the worst observed lateness.
        """
        if not 0 < coverage <= 1:
            raise AnalysisError("coverage must be in (0, 1]")
        latenesses = sorted(
            stats.max_lateness_ps for stats in self.endpoints.values()
            if stats.violations
        )
        if not latenesses:
            return 0
        if coverage >= 1.0:
            return latenesses[-1]
        index = max(0, int(round(coverage * len(latenesses))) - 1)
        return latenesses[index]


def run_ssta(
    netlist: Netlist,
    period_ps: int,
    variability: VariabilityModel,
    *,
    trials: int = 1000,
    setup_ps: int = 30,
    clk_to_q_ps: int = 45,
) -> SstaResult:
    """Monte-Carlo arrival propagation under ``variability``.

    Each trial is one simulated cycle: gate ``g``'s delay is scaled by
    ``variability.factor(trial, g.name)`` and arrivals are propagated
    topologically; lateness per endpoint is ``arrival - (period -
    setup)``.
    """
    if trials < 1:
        raise AnalysisError("need at least one trial")
    if period_ps <= 0:
        raise AnalysisError("period must be > 0")
    order = netlist.topological_gates()
    launch = set(netlist.launch_nets)
    captures = netlist.capture_nets
    stats = {
        net: EndpointStatistics(net, trials, 0, 0, 0) for net in captures
    }
    deadline = period_ps - setup_ps
    any_violations = 0
    if kernels.vectorized_enabled() and supports_batch(variability):
        from repro.kernels.ssta import CompiledNetlist

        compiled = CompiledNetlist(netlist)
        totals = compiled.propagate(
            variability, trials,
            clk_to_q_ps=clk_to_q_ps, deadline_ps=deadline,
        )
        for position, net in enumerate(captures):
            entry = stats[net]
            entry.violations += int(totals.violations[position])
            entry.lateness_sum_ps += int(totals.lateness_sum[position])
            entry.max_lateness_ps = max(
                entry.max_lateness_ps, int(totals.max_lateness[position]))
        result = SstaResult(
            netlist_name=netlist.name,
            period_ps=period_ps,
            trials=trials,
            endpoints=stats,
        )
        result._any_violations = totals.any_violations
        return result
    for trial in range(trials):
        arrival: dict[str, int] = {net: clk_to_q_ps for net in launch}
        for gate in order:
            inputs = [arrival.get(n, 0) for n in gate.inputs]
            factor = variability.factor(trial, gate.name)
            arrival[gate.output] = (
                max(inputs) + int(round(gate.delay_ps * factor)))
        violated = False
        for net in captures:
            lateness = arrival.get(net, 0) - deadline
            if lateness > 0:
                entry = stats[net]
                entry.violations += 1
                entry.lateness_sum_ps += lateness
                entry.max_lateness_ps = max(entry.max_lateness_ps,
                                            lateness)
                violated = True
        if violated:
            any_violations += 1
    result = SstaResult(
        netlist_name=netlist.name,
        period_ps=period_ps,
        trials=trials,
        endpoints=stats,
    )
    result._any_violations = any_violations
    return result
