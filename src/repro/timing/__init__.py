"""Timing analysis: FF-level timing graphs, gate-level STA, constraints."""

from repro.timing.graph import TimingEdge, TimingGraph
from repro.timing.criticality import CriticalityIndex, CriticalityView
from repro.timing.sta import (
    StaResult,
    netlist_to_timing_graph,
    register_to_register_delays,
    run_sta,
)
from repro.timing.paths import PathSet, TimingPath, enumerate_paths
from repro.timing.constraints import (
    HoldFix,
    HoldFixPlan,
    apply_hold_padding,
    hold_padding_plan,
    min_delay_by_capture,
)
from repro.timing.ssta import EndpointStatistics, SstaResult, run_ssta
from repro.timing.exceptions import (
    ExceptionKind,
    ExceptionSet,
    TimingException,
    apply_exceptions,
    false_path,
    multicycle_path,
)
from repro.timing.skew import (
    SkewSchedule,
    schedule_useful_skew,
    skewed_graph,
)
from repro.timing.distribution import (
    CriticalPathDistribution,
    critical_path_distribution,
    distribution_sweep,
)

__all__ = [
    "TimingEdge",
    "TimingGraph",
    "CriticalityIndex",
    "CriticalityView",
    "StaResult",
    "netlist_to_timing_graph",
    "register_to_register_delays",
    "run_sta",
    "PathSet",
    "TimingPath",
    "enumerate_paths",
    "HoldFix",
    "HoldFixPlan",
    "apply_hold_padding",
    "hold_padding_plan",
    "min_delay_by_capture",
    "CriticalPathDistribution",
    "critical_path_distribution",
    "distribution_sweep",
    "EndpointStatistics",
    "SstaResult",
    "run_ssta",
    "SkewSchedule",
    "schedule_useful_skew",
    "skewed_graph",
    "ExceptionKind",
    "ExceptionSet",
    "TimingException",
    "apply_exceptions",
    "false_path",
    "multicycle_path",
]
