"""Path objects and enumeration.

:class:`TimingPath` is a concrete gate-level path (launch net, gate list,
capture net, delay); :func:`enumerate_paths` extracts the worst paths of a
netlist; :class:`PathSet` offers the criticality queries the paper's
analyses are phrased in ("top c% critical paths").
"""

from __future__ import annotations

import dataclasses
import heapq

from repro.circuit.netlist import Netlist
from repro.errors import AnalysisError


@dataclasses.dataclass(frozen=True)
class TimingPath:
    """A gate-level timing path."""

    launch: str
    capture: str
    gates: tuple[str, ...]
    delay_ps: int

    def __post_init__(self) -> None:
        if self.delay_ps < 0:
            raise AnalysisError(
                f"path {self.launch}->{self.capture}: negative delay"
            )

    @property
    def depth(self) -> int:
        return len(self.gates)


class PathSet:
    """A queryable collection of timing paths."""

    def __init__(self, paths: list[TimingPath], period_ps: int) -> None:
        if period_ps <= 0:
            raise AnalysisError(f"period must be > 0, got {period_ps}")
        self.paths = sorted(paths, key=lambda p: -p.delay_ps)
        self.period_ps = period_ps

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self):
        return iter(self.paths)

    def critical_threshold_ps(self, percent: float) -> int:
        """Delay bound for top-``percent``% criticality (slack within
        ``percent``% of the period)."""
        if not 0 < percent <= 100:
            raise AnalysisError(f"percent must be in (0, 100], got {percent}")
        return int(round(self.period_ps * (1.0 - percent / 100.0)))

    def top_percent(self, percent: float) -> list[TimingPath]:
        """Paths whose slack is within ``percent``% of the clock period."""
        threshold = self.critical_threshold_ps(percent)
        return [p for p in self.paths if p.delay_ps >= threshold]

    def top_count(self, count: int) -> list[TimingPath]:
        """The ``count`` longest paths."""
        return self.paths[:count]

    def endpoints(self, percent: float) -> set[str]:
        return {p.capture for p in self.top_percent(percent)}

    def startpoints(self, percent: float) -> set[str]:
        return {p.launch for p in self.top_percent(percent)}


def enumerate_paths(
    netlist: Netlist,
    period_ps: int,
    *,
    max_paths_per_endpoint: int = 16,
    clk_to_q_ps: int = 45,
) -> PathSet:
    """Enumerate the worst register-to-register paths of ``netlist``.

    For each capture net, a best-first backward search grows partial
    paths from the endpoint towards the launch nets.  The search priority
    for a partial path ending (backwards) at net ``n`` with accumulated
    endpoint-side delay ``acc`` is ``prefix[n] + acc``, where
    ``prefix[n]`` is the exact longest launch-to-``n`` delay — an exact
    completion bound, so paths pop in non-increasing total delay order
    and the first ``max_paths_per_endpoint`` pops per endpoint are the
    true k worst paths.
    """
    order = netlist.topological_gates()

    # prefix[net] = longest delay from any launch net to `net`,
    # including the launching register's clk->q.
    prefix: dict[str, int] = {
        net: clk_to_q_ps for net in netlist.launch_nets
    }
    for gate in order:
        arrivals = [
            prefix[net] for net in gate.inputs if net in prefix
        ]
        if arrivals:
            candidate = max(arrivals) + gate.delay_ps
            if prefix.get(gate.output, -1) < candidate:
                prefix[gate.output] = candidate

    launch_set = set(netlist.launch_nets)
    paths: list[TimingPath] = []
    for capture in netlist.capture_nets:
        paths.extend(_k_worst_to_endpoint(
            netlist, prefix, launch_set, capture, max_paths_per_endpoint,
        ))
    return PathSet(paths, period_ps)


def _k_worst_to_endpoint(
    netlist: Netlist,
    prefix: dict[str, int],
    launch_set: set[str],
    capture: str,
    k: int,
) -> list[TimingPath]:
    if capture not in prefix:
        return []  # endpoint unreachable from any register output
    # Heap entries: (-bound, tiebreak, net, acc, gates_capture_side_first)
    heap: list[tuple[int, int, str, int, tuple[str, ...]]] = [
        (-prefix[capture], 0, capture, 0, ()),
    ]
    counter = 0
    results: list[TimingPath] = []
    while heap and len(results) < k:
        neg_bound, _tie, net, acc, gates = heapq.heappop(heap)
        if net in launch_set:
            results.append(TimingPath(
                launch=net,
                capture=capture,
                gates=tuple(reversed(gates)),
                delay_ps=-neg_bound,
            ))
            continue
        driver = netlist.driver_gate(net)
        if driver is None:
            continue  # unregistered primary input: not a reg-to-reg path
        new_acc = acc + driver.delay_ps
        new_gates = gates + (driver.name,)
        for input_net in driver.inputs:
            if input_net not in prefix:
                continue  # not reachable from a register output
            counter += 1
            bound = prefix[input_net] + new_acc
            heapq.heappush(
                heap, (-bound, counter, input_net, new_acc, new_gates),
            )
    return results
