"""Flip-flop-level timing graph.

The analyses behind the paper's Figs. 1 and 8 do not need gates — they
need the *register-to-register* timing abstraction of a design: which
flip-flop launches which path into which flip-flop, and with what delay.
:class:`TimingGraph` captures exactly that.  The synthetic processor
generator (:mod:`repro.processor.generator`) produces one; gate-level
netlists can be reduced to one through :func:`repro.timing.sta.run_sta`.
"""

from __future__ import annotations

import dataclasses
import typing
from collections.abc import Iterable, Iterator

from repro.errors import ConfigurationError
from repro.timing.criticality import critical_threshold_ps

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.timing.criticality import CriticalityIndex


@dataclasses.dataclass(frozen=True)
class TimingEdge:
    """A register-to-register combinational path.

    ``delay_ps`` is the *static* (sign-off) worst-case delay of the path;
    dynamic variability multiplies it at runtime.
    """

    src: str
    dst: str
    delay_ps: int

    def __post_init__(self) -> None:
        if self.delay_ps < 0:
            raise ConfigurationError(
                f"path {self.src}->{self.dst}: negative delay"
            )


class TimingGraph:
    """A directed multigraph of flip-flops connected by timed paths."""

    def __init__(self, name: str, period_ps: int) -> None:
        if period_ps <= 0:
            raise ConfigurationError(f"period must be > 0, got {period_ps}")
        self.name = name
        self.period_ps = period_ps
        self._ffs: dict[str, int] = {}  # ff name -> stage index
        self._out: dict[str, list[TimingEdge]] = {}
        self._in: dict[str, list[TimingEdge]] = {}
        # Memoized criticality index; rebuilt lazily after any mutation.
        self._criticality: "CriticalityIndex | None" = None

    # -- construction ----------------------------------------------------
    def add_ff(self, name: str, stage: int = 0) -> str:
        if name in self._ffs:
            raise ConfigurationError(f"duplicate flip-flop {name!r}")
        self._ffs[name] = stage
        self._out[name] = []
        self._in[name] = []
        self._criticality = None
        return name

    def add_edge(self, src: str, dst: str, delay_ps: int) -> TimingEdge:
        for ff in (src, dst):
            if ff not in self._ffs:
                raise ConfigurationError(f"unknown flip-flop {ff!r}")
        if delay_ps > self.period_ps:
            raise ConfigurationError(
                f"path {src}->{dst} delay {delay_ps} ps violates the "
                f"sign-off period {self.period_ps} ps; the static design "
                f"must meet timing"
            )
        edge = TimingEdge(src, dst, delay_ps)
        self._out[src].append(edge)
        self._in[dst].append(edge)
        self._criticality = None
        return edge

    # -- queries -------------------------------------------------------------
    @property
    def ffs(self) -> list[str]:
        return list(self._ffs)

    @property
    def num_ffs(self) -> int:
        return len(self._ffs)

    @property
    def num_edges(self) -> int:
        return sum(len(edges) for edges in self._out.values())

    def stage_of(self, ff: str) -> int:
        return self._ffs[ff]

    def out_edges(self, ff: str) -> list[TimingEdge]:
        return list(self._out[ff])

    def in_edges(self, ff: str) -> list[TimingEdge]:
        return list(self._in[ff])

    def edges(self) -> Iterator[TimingEdge]:
        for edges in self._out.values():
            yield from edges

    def max_in_delay(self, ff: str) -> int:
        """Worst arrival-side path delay at ``ff`` (0 if no fanin)."""
        edges = self._in[ff]
        return max((e.delay_ps for e in edges), default=0)

    def max_out_delay(self, ff: str) -> int:
        """Worst launch-side path delay from ``ff`` (0 if no fanout)."""
        edges = self._out[ff]
        return max((e.delay_ps for e in edges), default=0)

    # -- criticality -----------------------------------------------------------
    def criticality(self) -> "CriticalityIndex":
        """The memoized criticality index for the graph's current edges.

        Compiled once (delay-sorted edge order, shared per worker via
        the warm cache) and invalidated by ``add_ff``/``add_edge``;
        every ``critical_*`` query below is served from it.
        """
        if self._criticality is None:
            from repro.timing.criticality import CriticalityIndex

            self._criticality = CriticalityIndex.for_graph(self)
        return self._criticality

    def critical_threshold_ps(self, percent: float) -> int:
        """Delay above which a path is 'top ``percent``%' critical.

        The paper classifies a path as top-c% critical when its slack is
        within c% of the clock period, i.e. ``delay >= (1 - c/100) * T``.
        """
        return critical_threshold_ps(self.period_ps, percent)

    def critical_edges(self, percent: float) -> list[TimingEdge]:
        return list(self.criticality().view(percent).edges)

    def critical_endpoints(self, percent: float) -> set[str]:
        """FFs at which at least one top-``percent``% path terminates."""
        return set(self.criticality().view(percent).endpoints)

    def critical_startpoints(self, percent: float) -> set[str]:
        """FFs from which at least one top-``percent``% path originates."""
        return set(self.criticality().view(percent).startpoints)

    def critical_through_ffs(self, percent: float) -> set[str]:
        """FFs that are both start- and end-points of critical paths.

        These are the only FFs susceptible to multi-stage timing errors,
        and the only ones whose error relay must actually do work.
        """
        return set(self.criticality().view(percent).through)

    def critical_fanin_count(self, ff: str, percent: float) -> int:
        """Number of distinct critical-fanin *flip-flops* of ``ff`` that
        are critical *through* FFs — the inputs the error-relay max-tree
        at ``ff`` must combine.  Multiple critical paths from the same
        source share one select signal, so sources are deduplicated."""
        if ff not in self._in:
            raise KeyError(ff)
        return self.criticality().view(percent).fanin_count(ff)

    # -- chains (multi-stage error structure) --------------------------------
    def critical_chains(self, percent: float, max_length: int = 4,
                        ) -> list[list[TimingEdge]]:
        """Enumerate chains of critical paths connected end-to-start.

        A chain ``[p1, ..., pk]`` (dst of ``p_i`` == src of ``p_{i+1}``)
        is the structural prerequisite of a k-stage timing error.  The
        enumeration is bounded by ``max_length`` and deduplicated by edge
        identity; cycles are cut.
        """
        threshold = self.critical_threshold_ps(percent)
        critical_out: dict[str, list[TimingEdge]] = {}
        for edge in self.critical_edges(percent):
            critical_out.setdefault(edge.src, []).append(edge)

        chains: list[list[TimingEdge]] = []

        def extend(chain: list[TimingEdge], visited: set[str]) -> None:
            chains.append(list(chain))
            if len(chain) >= max_length:
                return
            tail = chain[-1].dst
            for edge in critical_out.get(tail, ()):  # follow end-to-start
                if edge.dst in visited:
                    continue
                chain.append(edge)
                visited.add(edge.dst)
                extend(chain, visited)
                visited.discard(edge.dst)
                chain.pop()

        for start_edges in critical_out.values():
            for edge in start_edges:
                if edge.delay_ps >= threshold:
                    extend([edge], {edge.src, edge.dst})
        return chains

    # -- import/export -----------------------------------------------------
    @classmethod
    def from_edges(cls, name: str, period_ps: int,
                   edges: Iterable[tuple[str, str, int]],
                   ) -> "TimingGraph":
        """Build a graph from ``(src, dst, delay_ps)`` triples."""
        graph = cls(name, period_ps)
        seen: set[str] = set()
        triples = list(edges)
        for src, dst, _delay in triples:
            for ff in (src, dst):
                if ff not in seen:
                    graph.add_ff(ff)
                    seen.add(ff)
        for src, dst, delay in triples:
            graph.add_edge(src, dst, delay)
        return graph
