"""Timing exceptions: false paths and multicycle paths.

Industrial timing sign-off never treats every register-to-register path
as single-cycle: constant-propagation-blocked *false paths* can never be
sensitized, and *multicycle paths* have N clock periods to settle.
Ignoring exceptions would make a TIMBER deployment over-protect — a
false path's endpoint needs no TIMBER element no matter how long the
path looks structurally.

Exceptions are declared with shell-style patterns on launch/capture
flip-flop names (as in SDC's ``set_false_path`` / ``set_multicycle_path``)
and folded into a timing graph via :func:`apply_exceptions`.
"""

from __future__ import annotations

import dataclasses
import enum
import fnmatch

from repro.errors import ConfigurationError
from repro.timing.graph import TimingEdge, TimingGraph


class ExceptionKind(enum.Enum):
    FALSE_PATH = "false-path"
    MULTICYCLE = "multicycle"


@dataclasses.dataclass(frozen=True)
class TimingException:
    """One exception rule.

    Attributes:
        kind: False path or multicycle.
        from_pattern: fnmatch pattern on the launch flip-flop name.
        to_pattern: fnmatch pattern on the capture flip-flop name.
        cycles: Capture budget in clock periods (multicycle only).
    """

    kind: ExceptionKind
    from_pattern: str = "*"
    to_pattern: str = "*"
    cycles: int = 1

    def __post_init__(self) -> None:
        if self.kind is ExceptionKind.MULTICYCLE and self.cycles < 2:
            raise ConfigurationError(
                "a multicycle exception needs cycles >= 2")
        if self.kind is ExceptionKind.FALSE_PATH and self.cycles != 1:
            raise ConfigurationError(
                "false paths carry no cycle budget")

    def matches(self, edge: TimingEdge) -> bool:
        return (fnmatch.fnmatchcase(edge.src, self.from_pattern)
                and fnmatch.fnmatchcase(edge.dst, self.to_pattern))


def false_path(from_pattern: str = "*",
               to_pattern: str = "*") -> TimingException:
    """``set_false_path -from ... -to ...``"""
    return TimingException(ExceptionKind.FALSE_PATH, from_pattern,
                           to_pattern)


def multicycle_path(cycles: int, from_pattern: str = "*",
                    to_pattern: str = "*") -> TimingException:
    """``set_multicycle_path N -from ... -to ...``"""
    return TimingException(ExceptionKind.MULTICYCLE, from_pattern,
                           to_pattern, cycles)


class ExceptionSet:
    """An ordered collection of exception rules.

    Rule precedence follows SDC practice: a false path beats a
    multicycle; among multicycles the *first* matching rule wins.
    """

    def __init__(self, rules: list[TimingException] | None = None) -> None:
        self.rules = list(rules or ())

    def add(self, rule: TimingException) -> "ExceptionSet":
        self.rules.append(rule)
        return self

    def classify(self, edge: TimingEdge) -> tuple[ExceptionKind | None,
                                                  int]:
        """The governing exception for one path: (kind, cycle budget)."""
        budget: int | None = None
        for rule in self.rules:
            if not rule.matches(edge):
                continue
            if rule.kind is ExceptionKind.FALSE_PATH:
                return ExceptionKind.FALSE_PATH, 0
            if budget is None:
                budget = rule.cycles
        if budget is not None:
            return ExceptionKind.MULTICYCLE, budget
        return None, 1

    def __len__(self) -> int:
        return len(self.rules)


def apply_exceptions(graph: TimingGraph,
                     exceptions: ExceptionSet) -> TimingGraph:
    """Fold exceptions into *effective single-cycle* edge delays.

    * false-path edges are removed entirely (never sensitized);
    * a multicycle-N edge's per-cycle timing pressure is ``delay / N``
      (it has N periods to settle, so the slack seen by criticality and
      deployment analyses scales accordingly);
    * normal edges pass through unchanged.
    """
    result = TimingGraph(f"{graph.name}+exceptions", graph.period_ps)
    for ff in graph.ffs:
        result.add_ff(ff, graph.stage_of(ff))
    for edge in graph.edges():
        kind, budget = exceptions.classify(edge)
        if kind is ExceptionKind.FALSE_PATH:
            continue
        if kind is ExceptionKind.MULTICYCLE:
            effective = -(-edge.delay_ps // budget)  # ceil division
        else:
            effective = edge.delay_ps
        result.add_edge(edge.src, edge.dst, effective)
    return result
