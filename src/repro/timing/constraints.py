"""Hold-time constraints and short-path padding.

TIMBER's checking period extends the window during which a capture
element may still be looking at its data input, so every *short* path
into a protected register must be padded such that::

    min_path_delay  >  hold_time + checking_period

(paper Sec. 4).  This module computes minimum delays per capture point,
derives a padding plan, and can apply the plan by inserting delay-buffer
chains into the netlist.
"""

from __future__ import annotations

import dataclasses

from repro.circuit.netlist import Netlist
from repro.errors import AnalysisError


@dataclasses.dataclass(frozen=True)
class HoldFix:
    """One endpoint's required padding."""

    capture_net: str
    min_delay_ps: int
    required_ps: int
    padding_ps: int
    buffers: int


@dataclasses.dataclass
class HoldFixPlan:
    """A set of hold fixes plus aggregate cost."""

    fixes: list[HoldFix]
    buffer_delay_ps: int
    buffer_area: float

    @property
    def total_buffers(self) -> int:
        return sum(fix.buffers for fix in self.fixes)

    @property
    def total_area(self) -> float:
        return self.total_buffers * self.buffer_area

    @property
    def endpoints_fixed(self) -> int:
        return sum(1 for fix in self.fixes if fix.buffers > 0)


def min_delay_by_capture(
    netlist: Netlist,
    *,
    clk_to_q_ps: int = 45,
) -> dict[str, int]:
    """Minimum register-to-register delay arriving at each capture net."""
    order = netlist.topological_gates()
    earliest: dict[str, int] = {
        net: clk_to_q_ps for net in netlist.launch_nets
    }
    for gate in order:
        arrivals = [earliest[n] for n in gate.inputs if n in earliest]
        if arrivals:
            candidate = min(arrivals) + gate.delay_ps
            if earliest.get(gate.output, candidate + 1) > candidate:
                earliest[gate.output] = candidate
    return {
        net: earliest[net]
        for net in netlist.capture_nets
        if net in earliest
    }


def hold_padding_plan(
    netlist: Netlist,
    *,
    hold_ps: int,
    checking_ps: int,
    protected_captures: set[str] | None = None,
    buffer_cell: str = "DLY4",
    clk_to_q_ps: int = 45,
) -> HoldFixPlan:
    """Compute the padding needed at each protected capture point.

    Args:
        netlist: Design under analysis.
        hold_ps: Register hold time.
        checking_ps: TIMBER checking period (0 for an unprotected design).
        protected_captures: Capture nets that get a TIMBER element; others
            only need plain hold (``checking_ps`` treated as 0).  ``None``
            protects everything.
        buffer_cell: Library cell used for padding.
        clk_to_q_ps: Launch clock-to-Q.
    """
    if hold_ps < 0 or checking_ps < 0:
        raise AnalysisError("hold and checking period must be >= 0")
    cell = netlist.library[buffer_cell]
    if cell.delay_ps <= 0:
        raise AnalysisError(f"buffer cell {buffer_cell} has zero delay")
    minimums = min_delay_by_capture(netlist, clk_to_q_ps=clk_to_q_ps)
    fixes: list[HoldFix] = []
    for capture, min_delay in sorted(minimums.items()):
        protected = protected_captures is None or capture in protected_captures
        required = hold_ps + (checking_ps if protected else 0)
        shortfall = max(0, required - min_delay)
        buffers = -(-shortfall // cell.delay_ps) if shortfall else 0
        fixes.append(HoldFix(
            capture_net=capture,
            min_delay_ps=min_delay,
            required_ps=required,
            padding_ps=buffers * cell.delay_ps,
            buffers=buffers,
        ))
    return HoldFixPlan(fixes=fixes, buffer_delay_ps=cell.delay_ps,
                       buffer_area=cell.area)


def apply_hold_padding(
    netlist: Netlist,
    plan: HoldFixPlan,
    *,
    buffer_cell: str = "DLY4",
) -> dict[str, str]:
    """Insert the plan's buffer chains in front of each capture point.

    Returns a mapping from the original capture net to the new (padded)
    capture net.  The original net keeps its drivers and other sinks; the
    register input is re-pointed at the end of the buffer chain, so only
    the capture timing changes — exactly what a hold fix does.
    """
    renames: dict[str, str] = {}
    for fix in plan.fixes:
        if fix.buffers == 0:
            renames[fix.capture_net] = fix.capture_net
            continue
        current = fix.capture_net
        for index in range(fix.buffers):
            gate = netlist.add_gate(
                f"holdfix_{fix.capture_net}_{index}", buffer_cell,
                [current], f"{fix.capture_net}__pad{index}",
            )
            current = gate.output
        netlist.retarget_capture(fix.capture_net, current)
        renames[fix.capture_net] = current
    return renames
