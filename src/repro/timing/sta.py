"""Static timing analysis over gate-level netlists.

Computes max/min arrival times by topological propagation, slack against a
clock period, and the register-to-register delay matrix needed to reduce a
netlist to a :class:`~repro.timing.graph.TimingGraph`.
"""

from __future__ import annotations

import dataclasses

from repro.circuit.netlist import Netlist
from repro.errors import AnalysisError
from repro.timing.graph import TimingGraph


@dataclasses.dataclass
class StaResult:
    """Output of :func:`run_sta`.

    Attributes:
        netlist_name: Name of the analysed netlist.
        period_ps: Clock period used for slack.
        max_arrival: Latest arrival time per net (ps from launch edge).
        min_arrival: Earliest arrival time per net.
        slack: Setup slack per capture net (``period - setup - arrival``).
        launch_of_max: For every net, the launch net responsible for its
            latest arrival (path backtrace support).
    """

    netlist_name: str
    period_ps: int
    setup_ps: int
    max_arrival: dict[str, int]
    min_arrival: dict[str, int]
    slack: dict[str, int]
    launch_of_max: dict[str, str]

    @property
    def worst_slack(self) -> int:
        if not self.slack:
            raise AnalysisError("no capture nets; cannot compute slack")
        return min(self.slack.values())

    @property
    def critical_capture_net(self) -> str:
        if not self.slack:
            raise AnalysisError("no capture nets; cannot compute slack")
        return min(self.slack, key=lambda net: self.slack[net])

    def meets_timing(self) -> bool:
        return self.worst_slack >= 0


def run_sta(
    netlist: Netlist,
    period_ps: int,
    *,
    setup_ps: int = 30,
    clk_to_q_ps: int = 45,
) -> StaResult:
    """Propagate arrival times through ``netlist``.

    Launch nets start at ``clk_to_q_ps``; every gate adds its delay;
    capture nets are checked against ``period_ps - setup_ps``.
    """
    max_arrival: dict[str, int] = {}
    min_arrival: dict[str, int] = {}
    launch_of_max: dict[str, str] = {}

    for net in netlist.primary_inputs:
        start = clk_to_q_ps if net in netlist.launch_nets else 0
        max_arrival[net] = start
        min_arrival[net] = start
        launch_of_max[net] = net

    for gate in netlist.topological_gates():
        input_max = [
            (max_arrival.get(net, 0), net) for net in gate.inputs
        ]
        input_min = [min_arrival.get(net, 0) for net in gate.inputs]
        worst, worst_net = max(input_max)
        max_arrival[gate.output] = worst + gate.delay_ps
        min_arrival[gate.output] = min(input_min) + gate.delay_ps
        launch_of_max[gate.output] = launch_of_max.get(worst_net, worst_net)

    slack = {
        net: period_ps - setup_ps - max_arrival.get(net, 0)
        for net in netlist.capture_nets
    }
    return StaResult(
        netlist_name=netlist.name,
        period_ps=period_ps,
        setup_ps=setup_ps,
        max_arrival=max_arrival,
        min_arrival=min_arrival,
        slack=slack,
        launch_of_max=launch_of_max,
    )


def register_to_register_delays(
    netlist: Netlist,
    *,
    clk_to_q_ps: int = 45,
) -> dict[tuple[str, str], int]:
    """Max combinational delay from every launch net to every capture net.

    Runs one forward propagation per launch net (exact per-pair maxima,
    suitable for the modest netlists this library generates).
    """
    order = netlist.topological_gates()
    result: dict[tuple[str, str], int] = {}
    for launch in netlist.launch_nets:
        arrival: dict[str, int] = {launch: clk_to_q_ps}
        for gate in order:
            reachable = [
                arrival[net] for net in gate.inputs if net in arrival
            ]
            if reachable:
                arrival[gate.output] = max(reachable) + gate.delay_ps
        for capture in netlist.capture_nets:
            if capture in arrival:
                result[(launch, capture)] = arrival[capture]
    return result


def netlist_to_timing_graph(
    netlist: Netlist,
    period_ps: int,
    *,
    clk_to_q_ps: int = 45,
) -> TimingGraph:
    """Reduce a netlist to its register-to-register timing graph."""
    graph = TimingGraph(netlist.name, period_ps)
    for net in netlist.launch_nets:
        graph.add_ff(f"L:{net}")
    for net in netlist.capture_nets:
        name = f"C:{net}"
        if name not in graph.ffs:
            graph.add_ff(name)
    delays = register_to_register_delays(netlist, clk_to_q_ps=clk_to_q_ps)
    for (launch, capture), delay in delays.items():
        graph.add_edge(f"L:{launch}", f"C:{capture}", delay)
    return graph
