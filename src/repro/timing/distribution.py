"""Critical-path distribution statistics (paper Fig. 1).

For a :class:`~repro.timing.graph.TimingGraph` and a criticality
threshold, these statistics answer the paper's motivating questions:

* what fraction of flip-flops have a top-c% critical path *terminating*
  at them (the height of each bar in Fig. 1), and
* what fraction have critical paths both starting *and* terminating at
  them (the shaded portion — the only FFs susceptible to multi-stage
  timing errors).
"""

from __future__ import annotations

import dataclasses

from repro.timing.graph import TimingGraph
from repro.units import as_percent


@dataclasses.dataclass(frozen=True)
class CriticalPathDistribution:
    """Fig. 1 statistics for one (graph, threshold) pair."""

    percent_threshold: float
    num_ffs: int
    num_endpoints: int
    num_startpoints: int
    num_through: int

    @property
    def pct_ffs_ending(self) -> float:
        """% of all FFs with a critical path terminating at them."""
        return as_percent(self.num_endpoints, self.num_ffs)

    @property
    def pct_ffs_through(self) -> float:
        """% of all FFs that both start and end critical paths."""
        return as_percent(self.num_through, self.num_ffs)

    @property
    def pct_endpoints_single_stage_only(self) -> float:
        """% of critical endpoints with *no* critical path starting at
        them — FFs only ever hit by single-stage errors (the paper's
        '70% of these flip-flops' observation)."""
        return as_percent(self.num_endpoints - self.num_through,
                          self.num_endpoints)

    @property
    def pct_endpoints_through(self) -> float:
        """% of critical endpoints that are also critical startpoints."""
        return as_percent(self.num_through, self.num_endpoints)


def critical_path_distribution(
    graph: TimingGraph,
    percent_threshold: float,
) -> CriticalPathDistribution:
    """Compute Fig. 1 statistics at one criticality threshold."""
    endpoints = graph.critical_endpoints(percent_threshold)
    startpoints = graph.critical_startpoints(percent_threshold)
    return CriticalPathDistribution(
        percent_threshold=percent_threshold,
        num_ffs=graph.num_ffs,
        num_endpoints=len(endpoints),
        num_startpoints=len(startpoints),
        num_through=len(endpoints & startpoints),
    )


def distribution_sweep(
    graph: TimingGraph,
    thresholds: tuple[float, ...] = (10.0, 20.0, 30.0, 40.0),
) -> list[CriticalPathDistribution]:
    """Fig. 1's per-threshold sweep for one performance point."""
    return [
        critical_path_distribution(graph, percent) for percent in thresholds
    ]
