"""Useful-skew scheduling (design-time baseline; paper ref. [2]).

Clock-skew scheduling shifts each flip-flop's clock arrival within a
bounded window so slack is balanced across stages — a *design-time*
technique for static variability, cited by the paper as complementary to
(not a substitute for) online schemes like TIMBER: skew scheduling can
move slack around, but it cannot react to workload-dependent dynamic
variability.

The scheduler here is the classic iterative slack-balancing relaxation:
each flip-flop's skew moves toward equalising its worst input-side and
output-side slacks, clipped to the allowed skew bound.  It converges to
(a bounded version of) Fishburn's optimal clock-skew solution on graphs
without critical cycles.
"""

from __future__ import annotations

import dataclasses

from repro.errors import AnalysisError
from repro.timing.graph import TimingGraph


@dataclasses.dataclass
class SkewSchedule:
    """Result of useful-skew scheduling on a timing graph."""

    graph_name: str
    period_ps: int
    max_skew_ps: int
    offsets: dict[str, int]
    worst_slack_before_ps: int
    worst_slack_after_ps: int
    iterations_used: int
    #: max over edges of (delay + s_src - s_dst): the smallest period the
    #: schedule supports before any setup time is charged.
    critical_effective_delay_ps: int

    @property
    def improvement_ps(self) -> int:
        return self.worst_slack_after_ps - self.worst_slack_before_ps

    def min_feasible_period_ps(self, setup_ps: int = 0) -> int:
        """Smallest period the schedule supports (all edges meet setup).

        For edge ``src -> dst``: ``delay + s_src - s_dst + setup``.
        """
        return self.critical_effective_delay_ps + setup_ps

    def edge_slack_ps(self, src: str, dst: str, delay_ps: int,
                      setup_ps: int = 0) -> int:
        """Setup slack of one path under the schedule."""
        return (self.period_ps + self.offsets[dst]
                - self.offsets[src] - delay_ps - setup_ps)


def _worst_edge_slack(graph: TimingGraph, offsets: dict[str, int],
                      setup_ps: int) -> int:
    worst = None
    for edge in graph.edges():
        slack = (graph.period_ps + offsets[edge.dst]
                 - offsets[edge.src] - edge.delay_ps - setup_ps)
        if worst is None or slack < worst:
            worst = slack
    if worst is None:
        raise AnalysisError("graph has no edges")
    return worst


def schedule_useful_skew(
    graph: TimingGraph,
    *,
    max_skew_ps: int,
    setup_ps: int = 0,
    max_iterations: int = 100,
    tolerance_ps: int = 1,
) -> SkewSchedule:
    """Balance slack by iterative per-FF skew relaxation.

    Args:
        graph: Register-to-register timing graph.
        max_skew_ps: Bound on each flip-flop's clock offset (|s| <= bound).
        setup_ps: Setup time charged on every capture.
        max_iterations: Relaxation sweeps before giving up.
        tolerance_ps: Stop when no offset moves by more than this.
    """
    if max_skew_ps < 0:
        raise AnalysisError("max skew must be >= 0")
    offsets = {ff: 0 for ff in graph.ffs}
    before = _worst_edge_slack(graph, offsets, setup_ps)

    iterations_used = 0
    for iteration in range(max_iterations):
        iterations_used = iteration + 1
        max_move = 0
        for ff in graph.ffs:
            in_edges = graph.in_edges(ff)
            out_edges = graph.out_edges(ff)
            if not in_edges or not out_edges:
                continue
            min_in = min(
                graph.period_ps + offsets[ff] - offsets[e.src]
                - e.delay_ps - setup_ps
                for e in in_edges
            )
            min_out = min(
                graph.period_ps + offsets[e.dst] - offsets[ff]
                - e.delay_ps - setup_ps
                for e in out_edges
            )
            move = (min_out - min_in) // 2
            if move == 0:
                continue
            new_offset = max(-max_skew_ps,
                             min(max_skew_ps, offsets[ff] + move))
            max_move = max(max_move, abs(new_offset - offsets[ff]))
            offsets[ff] = new_offset
        if max_move <= tolerance_ps:
            break

    after = _worst_edge_slack(graph, offsets, setup_ps)
    critical = max(
        edge.delay_ps + offsets[edge.src] - offsets[edge.dst]
        for edge in graph.edges()
    )
    return SkewSchedule(
        graph_name=graph.name,
        period_ps=graph.period_ps,
        max_skew_ps=max_skew_ps,
        offsets=offsets,
        worst_slack_before_ps=before,
        worst_slack_after_ps=after,
        iterations_used=iterations_used,
        critical_effective_delay_ps=critical,
    )


def skewed_graph(graph: TimingGraph, schedule: SkewSchedule,
                 ) -> TimingGraph:
    """Fold a skew schedule into *effective* edge delays.

    Produces a graph whose edge delays are
    ``delay + s_src - s_dst`` (clamped at 0), so every downstream
    analysis — criticality, TIMBER deployment, overhead — sees the
    design as the skewed clock does.  Effective delays exceeding the
    period indicate the schedule is infeasible at this period.
    """
    result = TimingGraph(f"{graph.name}+skew", graph.period_ps)
    for ff in graph.ffs:
        result.add_ff(ff, graph.stage_of(ff))
    for edge in graph.edges():
        effective = (edge.delay_ps + schedule.offsets[edge.src]
                     - schedule.offsets[edge.dst])
        result.add_edge(edge.src, edge.dst,
                        max(0, min(effective, graph.period_ps)))
    return result
