"""Local (per-path, per-cycle) dynamic variation."""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.kernels.rng import key_id, split64, std_gauss

#: Domain-separation salt so local draws never collide with the other
#: stochastic streams sharing a (seed, cycle, path) tuple.
_SALT = key_id("local-variation")


class LocalVariation:
    """Uncorrelated per-path per-cycle delay jitter.

    Models crosstalk, local supply noise, and data-dependent gate delay:
    each (cycle, path) pair independently draws a Gaussian factor
    ``N(mean, sigma)`` clipped at ``min_factor``.  Draws are deterministic
    in (seed, cycle, path) — re-evaluating the same pair always returns
    the same factor, so simulations are reproducible and models can be
    queried out of order.

    The draw is an Irwin-Hall Gaussian over the integer-lane mixer of
    :mod:`repro.kernels.rng`, so :meth:`factor_batch` reproduces the
    scalar stream bit for bit.
    """

    def __init__(
        self,
        *,
        sigma: float,
        mean: float = 1.0,
        min_factor: float = 0.5,
        max_factor: float | None = None,
        seed: int = 0,
    ) -> None:
        if sigma < 0:
            raise ConfigurationError("sigma must be >= 0")
        if mean <= 0 or min_factor <= 0:
            raise ConfigurationError("mean and min_factor must be > 0")
        if max_factor is not None and max_factor < min_factor:
            raise ConfigurationError("max_factor must be >= min_factor")
        self.sigma = sigma
        self.mean = mean
        self.min_factor = min_factor
        #: Optional upper clip.  Physical local variation is bounded
        #: (data-dependent delay cannot grow without limit); bounding it
        #: also lets deployments size the recovered margin to a true
        #: worst case, as the paper assumes in Sec. 4.
        self.max_factor = max_factor
        self.seed = seed
        self._seed_lanes = split64(seed)

    def factor(self, cycle: int, path_id: str) -> float:
        if self.sigma == 0:
            return self.mean
        lo, hi = self._seed_lanes
        z = std_gauss(_SALT, lo, hi, cycle & 0xFFFFFFFF, cycle >> 32,
                      key_id(path_id))
        value = self.mean + self.sigma * z
        value = max(self.min_factor, value)
        if self.max_factor is not None:
            value = min(value, self.max_factor)
        return value

    def factor_batch(self, cycles, path_ids):
        import numpy as np

        from repro.kernels.rng import cycle_lanes, std_gauss_batch

        cycles = np.asarray(cycles, dtype=np.int64)
        if self.sigma == 0:
            return np.full((1, 1), self.mean)
        lo, hi = self._seed_lanes
        c_lo, c_hi = cycle_lanes(cycles)
        keys = np.array([key_id(p) for p in path_ids], dtype=np.uint32)
        z = std_gauss_batch([
            _SALT, lo, hi, c_lo[:, None], c_hi[:, None], keys[None, :],
        ])
        value = self.mean + self.sigma * z
        value = np.maximum(self.min_factor, value)
        if self.max_factor is not None:
            value = np.minimum(value, self.max_factor)
        return value
