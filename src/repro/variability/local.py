"""Local (per-path, per-cycle) dynamic variation."""

from __future__ import annotations

import random

from repro.errors import ConfigurationError
from repro.variability.base import stable_hash


class LocalVariation:
    """Uncorrelated per-path per-cycle delay jitter.

    Models crosstalk, local supply noise, and data-dependent gate delay:
    each (cycle, path) pair independently draws a Gaussian factor
    ``N(mean, sigma)`` clipped at ``min_factor``.  Draws are deterministic
    in (seed, cycle, path) — re-evaluating the same pair always returns
    the same factor, so simulations are reproducible and models can be
    queried out of order.
    """

    def __init__(
        self,
        *,
        sigma: float,
        mean: float = 1.0,
        min_factor: float = 0.5,
        max_factor: float | None = None,
        seed: int = 0,
    ) -> None:
        if sigma < 0:
            raise ConfigurationError("sigma must be >= 0")
        if mean <= 0 or min_factor <= 0:
            raise ConfigurationError("mean and min_factor must be > 0")
        if max_factor is not None and max_factor < min_factor:
            raise ConfigurationError("max_factor must be >= min_factor")
        self.sigma = sigma
        self.mean = mean
        self.min_factor = min_factor
        #: Optional upper clip.  Physical local variation is bounded
        #: (data-dependent delay cannot grow without limit); bounding it
        #: also lets deployments size the recovered margin to a true
        #: worst case, as the paper assumes in Sec. 4.
        self.max_factor = max_factor
        self.seed = seed

    def factor(self, cycle: int, path_id: str) -> float:
        if self.sigma == 0:
            return self.mean
        rng = random.Random(stable_hash(self.seed, cycle, path_id))
        value = max(self.min_factor, rng.gauss(self.mean, self.sigma))
        if self.max_factor is not None:
            value = min(value, self.max_factor)
        return value
