"""Static process variation (context for speed binning)."""

from __future__ import annotations

import random

from repro.errors import ConfigurationError
from repro.variability.base import stable_hash


class ProcessVariation:
    """Per-path delay spread fixed at manufacturing time.

    Static variation does not change with time or workload; it is
    compensated by speed binning (assigning each chip its own V/F point),
    not by TIMBER — but it must be present in end-to-end studies so the
    dynamic margin sits on top of a realistic static spread.
    """

    def __init__(
        self,
        *,
        sigma: float = 0.03,
        chip_sigma: float = 0.02,
        min_factor: float = 0.7,
        seed: int = 0,
    ) -> None:
        if sigma < 0 or chip_sigma < 0:
            raise ConfigurationError("sigmas must be >= 0")
        if min_factor <= 0:
            raise ConfigurationError("min_factor must be > 0")
        self.sigma = sigma
        self.min_factor = min_factor
        self.seed = seed
        chip_rng = random.Random(stable_hash(seed, "chip"))
        #: Chip-wide (die-to-die) component, one draw per model instance.
        self.chip_factor = max(min_factor,
                               chip_rng.gauss(1.0, chip_sigma))
        self._path_cache: dict[str, float] = {}

    def path_factor(self, path_id: str) -> float:
        """Within-die component for one path (time-invariant)."""
        cached = self._path_cache.get(path_id)
        if cached is None:
            rng = random.Random(stable_hash(self.seed, "path", path_id))
            cached = max(self.min_factor, rng.gauss(1.0, self.sigma))
            self._path_cache[path_id] = cached
        return cached

    def factor(self, cycle: int, path_id: str) -> float:
        return self.chip_factor * self.path_factor(path_id)
