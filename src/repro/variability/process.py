"""Static process variation (context for speed binning)."""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.kernels.rng import key_id, split64, std_gauss

_SALT_CHIP = key_id("process-chip")
_SALT_PATH = key_id("process-path")


class ProcessVariation:
    """Per-path delay spread fixed at manufacturing time.

    Static variation does not change with time or workload; it is
    compensated by speed binning (assigning each chip its own V/F point),
    not by TIMBER — but it must be present in end-to-end studies so the
    dynamic margin sits on top of a realistic static spread.
    """

    def __init__(
        self,
        *,
        sigma: float = 0.03,
        chip_sigma: float = 0.02,
        min_factor: float = 0.7,
        seed: int = 0,
    ) -> None:
        if sigma < 0 or chip_sigma < 0:
            raise ConfigurationError("sigmas must be >= 0")
        if min_factor <= 0:
            raise ConfigurationError("min_factor must be > 0")
        self.sigma = sigma
        self.min_factor = min_factor
        self.seed = seed
        self._seed_lanes = split64(seed)
        lo, hi = self._seed_lanes
        #: Chip-wide (die-to-die) component, one draw per model instance.
        self.chip_factor = max(
            min_factor, 1.0 + chip_sigma * std_gauss(_SALT_CHIP, lo, hi))
        self._path_cache: dict[str, float] = {}

    def path_factor(self, path_id: str) -> float:
        """Within-die component for one path (time-invariant)."""
        cached = self._path_cache.get(path_id)
        if cached is None:
            lo, hi = self._seed_lanes
            draw = std_gauss(_SALT_PATH, lo, hi, key_id(path_id))
            cached = max(self.min_factor, 1.0 + self.sigma * draw)
            self._path_cache[path_id] = cached
        return cached

    def factor(self, cycle: int, path_id: str) -> float:
        return self.chip_factor * self.path_factor(path_id)

    def factor_batch(self, cycles, path_ids):
        """Cycle-invariant ``(1, P)`` factors, from the scalar draws.

        Per-path values are computed (and memoized) by the scalar
        reference — the work is O(paths) once per compile, so there is
        nothing to vectorize, and reusing the scalar code makes
        bit-equality trivial.
        """
        import numpy as np

        row = np.array([self.path_factor(p) for p in path_ids],
                       dtype=np.float64)
        return (self.chip_factor * row).reshape(1, -1)