"""Variability model protocol and composition."""

from __future__ import annotations

import typing
import zlib

from repro.errors import ConfigurationError


class VariabilityModel(typing.Protocol):
    """Multiplicative delay-variation source.

    ``factor(cycle, path_id)`` returns the delay multiplier contributed
    by this source on the given cycle for the given path.  1.0 means no
    effect; values must be positive.  Implementations must be
    deterministic functions of their construction seed.
    """

    def factor(self, cycle: int, path_id: str) -> float:
        ...  # pragma: no cover - protocol


def stable_hash(*parts: object) -> int:
    """Deterministic 32-bit hash (Python's ``hash`` is salted per run)."""
    text = "\x1f".join(repr(part) for part in parts)
    return zlib.crc32(text.encode("utf-8"))


class ConstantVariation:
    """A fixed delay multiplier (useful for tests and what-if sweeps)."""

    def __init__(self, value: float = 1.0) -> None:
        if value <= 0:
            raise ConfigurationError("variation factor must be > 0")
        self.value = value

    def factor(self, cycle: int, path_id: str) -> float:
        return self.value


class CompositeVariation:
    """Product of several variability sources.

    Local, global-fast, and global-slow effects multiply — a droop slows
    every path while local jitter scatters around it.
    """

    def __init__(self, models: typing.Sequence[VariabilityModel]) -> None:
        if not models:
            raise ConfigurationError("need at least one model")
        self.models = list(models)

    def factor(self, cycle: int, path_id: str) -> float:
        result = 1.0
        for model in self.models:
            result *= model.factor(cycle, path_id)
        return result
