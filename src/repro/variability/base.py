"""Variability model protocol and composition."""

from __future__ import annotations

import typing
import zlib

from repro.errors import ConfigurationError


class VariabilityModel(typing.Protocol):
    """Multiplicative delay-variation source.

    ``factor(cycle, path_id)`` returns the delay multiplier contributed
    by this source on the given cycle for the given path.  1.0 means no
    effect; values must be positive.  Implementations must be
    deterministic functions of their construction seed.

    ``factor_batch(cycles, path_ids)`` is the vectorized form: given an
    int64 array of ``C`` cycles and a sequence of ``P`` path ids it
    returns a float64 array broadcastable to shape ``(C, P)`` whose
    element ``[i, j]`` bit-matches ``factor(cycles[i], path_ids[j])``.
    Cycle-only models may return ``(C, 1)``, path-only models ``(1, P)``
    — consumers combine factors with broadcasting operations only.
    """

    def factor(self, cycle: int, path_id: str) -> float:
        ...  # pragma: no cover - protocol

    def factor_batch(self, cycles: typing.Any,
                     path_ids: typing.Sequence[str]) -> typing.Any:
        ...  # pragma: no cover - protocol


def stable_hash(*parts: object) -> int:
    """Deterministic 32-bit hash (Python's ``hash`` is salted per run).

    Construction-time helper (coverage sets, cache keys).  The per-draw
    hot paths use the integer-lane mixer in :mod:`repro.kernels.rng`
    instead, which has a bit-identical numpy batch twin.
    """
    text = "\x1f".join(repr(part) for part in parts)
    return zlib.crc32(text.encode("utf-8"))


def supports_batch(model: object) -> bool:
    """True if ``model`` can serve vectorized ``factor_batch`` queries.

    Composites are checked recursively: every member must support
    batching.  Stateful feedback models (e.g. the adaptive voltage
    scaler, whose factor depends on flags raised earlier in the run)
    deliberately implement only ``factor`` — simulations fall back to
    the scalar reference loop for them.
    """
    if isinstance(model, CompositeVariation):
        return all(supports_batch(member) for member in model.models)
    return callable(getattr(model, "factor_batch", None))


class ConstantVariation:
    """A fixed delay multiplier (useful for tests and what-if sweeps)."""

    def __init__(self, value: float = 1.0) -> None:
        if value <= 0:
            raise ConfigurationError("variation factor must be > 0")
        self.value = value

    def factor(self, cycle: int, path_id: str) -> float:
        return self.value

    def factor_batch(self, cycles, path_ids):
        import numpy as np

        return np.full((1, 1), self.value)


class CompositeVariation:
    """Product of several variability sources.

    Local, global-fast, and global-slow effects multiply — a droop slows
    every path while local jitter scatters around it.
    """

    def __init__(self, models: typing.Sequence[VariabilityModel]) -> None:
        if not models:
            raise ConfigurationError("need at least one model")
        self.models = list(models)

    def factor(self, cycle: int, path_id: str) -> float:
        result = 1.0
        for model in self.models:
            result *= model.factor(cycle, path_id)
        return result

    def factor_batch(self, cycles, path_ids):
        # Multiply in model order starting from 1.0, mirroring the
        # scalar loop operation for operation so every element rounds
        # identically.
        import numpy as np

        result = np.ones((1, 1))
        for model in self.models:
            result = result * model.factor_batch(cycles, path_ids)
        return result
