"""Slow global dynamic variation: temperature drift and aging."""

from __future__ import annotations

import math

from repro.errors import ConfigurationError


class TemperatureDriftVariation:
    """Sinusoidal chip-wide thermal cycle.

    Temperature swings slow the whole chip over many thousands of cycles
    — the "gradual dynamic" variability that error-prediction schemes
    target (Table 1).  The factor is
    ``1 + amplitude * (1 + sin(2*pi*cycle/period + phase)) / 2``,
    i.e. it varies between 1.0 (coolest) and 1 + amplitude (hottest).
    """

    def __init__(
        self,
        *,
        amplitude: float = 0.05,
        period_cycles: int = 100_000,
        phase: float = -math.pi / 2.0,
    ) -> None:
        if amplitude < 0:
            raise ConfigurationError("amplitude must be >= 0")
        if period_cycles < 2:
            raise ConfigurationError("period must be >= 2 cycles")
        self.amplitude = amplitude
        self.period_cycles = period_cycles
        self.phase = phase

    def factor(self, cycle: int, path_id: str) -> float:
        swing = math.sin(
            2.0 * math.pi * cycle / self.period_cycles + self.phase
        )
        return 1.0 + self.amplitude * (1.0 + swing) / 2.0

    def factor_batch(self, cycles, path_ids):
        return _per_cycle_batch(self, cycles)


class AgingVariation:
    """Monotonic wearout (NBTI-style) delay increase.

    Delay grows with a sub-linear power law of elapsed cycles, saturating
    at ``max_degradation`` — the classic NBTI shape (fast early shift,
    slow long-term drift)."""

    def __init__(
        self,
        *,
        max_degradation: float = 0.10,
        time_constant_cycles: float = 1e9,
        exponent: float = 0.25,
    ) -> None:
        if max_degradation < 0:
            raise ConfigurationError("max degradation must be >= 0")
        if time_constant_cycles <= 0 or not 0 < exponent <= 1:
            raise ConfigurationError("bad aging parameters")
        self.max_degradation = max_degradation
        self.time_constant_cycles = time_constant_cycles
        self.exponent = exponent

    def factor(self, cycle: int, path_id: str) -> float:
        if cycle <= 0:
            return 1.0
        progress = (cycle / self.time_constant_cycles) ** self.exponent
        return 1.0 + self.max_degradation * min(1.0, progress)

    def factor_batch(self, cycles, path_ids):
        return _per_cycle_batch(self, cycles)


def _per_cycle_batch(model, cycles):
    """Path-independent ``(C, 1)`` factors via the scalar transcendental.

    The slow-global models are pure per-cycle functions built on libm
    ``sin``/``pow``; evaluating them once per cycle through the *same*
    scalar code guarantees bit-equality with the reference path (numpy's
    SIMD transcendentals may differ in the last ulp), and the cost is
    O(cycles), amortized over every path in the block.
    """
    import numpy as np

    column = np.array(
        [model.factor(int(cycle), "") for cycle in
         np.asarray(cycles, dtype=np.int64)],
        dtype=np.float64,
    )
    return column.reshape(-1, 1)
