"""Dynamic and static variability models.

A variability model maps ``(cycle, path_id)`` to a multiplicative delay
factor.  The taxonomy follows the paper's Table 1:

* **local dynamic** (:class:`LocalVariation`) — uncorrelated per-path
  per-cycle jitter (crosstalk, local IR noise);
* **fast global dynamic** (:class:`VoltageDroopVariation`) — chip-wide
  voltage droop events lasting a few cycles;
* **slow global dynamic** (:class:`TemperatureDriftVariation`,
  :class:`AgingVariation`) — temperature cycles and wearout that change
  over thousands of cycles or more;
* **static** (:class:`ProcessVariation`) — per-path process spread fixed
  at manufacturing (addressed by speed binning, not TIMBER, but needed
  as context).
"""

from repro.variability.base import (
    CompositeVariation,
    ConstantVariation,
    VariabilityModel,
)
from repro.variability.local import LocalVariation
from repro.variability.global_fast import DroopEvent, VoltageDroopVariation
from repro.variability.global_slow import (
    AgingVariation,
    TemperatureDriftVariation,
)
from repro.variability.process import ProcessVariation

__all__ = [
    "VariabilityModel",
    "ConstantVariation",
    "CompositeVariation",
    "LocalVariation",
    "DroopEvent",
    "VoltageDroopVariation",
    "TemperatureDriftVariation",
    "AgingVariation",
    "ProcessVariation",
]
