"""Performance-point definitions for the synthetic processor.

A :class:`PerformancePoint` fixes the clock period and the parameters of
the path-delay construction used by
:func:`repro.processor.generator.generate_processor`:

* ``endpoint_fractions`` directly anchor the Fig.-1 bar heights: the
  fraction of flip-flops whose worst input path lies within 10/20/30/40%
  of the clock period.  Higher performance points run the same
  microarchitecture at a tighter period, so these fractions grow.
* ``rho`` correlates a flip-flop's end-criticality with its
  start-criticality; together with ``hub_gamma`` (how concentrated
  critical-path startpoints are on a few "hub" flip-flops) it controls
  the shaded portion of Fig. 1 — the FFs that both start *and* end
  critical paths.

The medium point is anchored to the paper's quoted observation: ~50% of
flip-flops terminate top-20% critical paths and ~70% of those start
none.  The low/high points keep the same shape shifted down/up.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class PerformancePoint:
    """Delay-distribution parameters of one processor speed grade.

    Attributes:
        name: Point label ("low" / "medium" / "high").
        period_ps: Sign-off clock period.
        endpoint_fractions: Target fraction of FFs terminating top-c%
            critical paths, for c = 10, 20, 30, 40 (monotone increasing).
        rho: Gaussian-copula correlation between a FF's end- and
            start-criticality latents.
        hub_gamma: Exponent concentrating critical-path launches on
            high-start-latent hub FFs (larger -> fewer startpoints).
        gap_range: Uniform range (fractions of the period) by which
            non-worst fanin paths fall short of the endpoint's worst
            path.
        wall_frac: Delay fraction of the most critical paths (just under
            1.0 — the post-synthesis "timing wall").
        floor_frac: Delay fraction of the least critical cones.
    """

    name: str
    period_ps: int
    endpoint_fractions: tuple[float, float, float, float]
    rho: float = 0.7
    hub_gamma: float = 16.0
    gap_range: tuple[float, float] = (0.18, 0.60)
    wall_frac: float = 0.999
    floor_frac: float = 0.25

    def __post_init__(self) -> None:
        if self.period_ps <= 0:
            raise ConfigurationError(f"{self.name}: period must be > 0")
        if len(self.endpoint_fractions) != 4:
            raise ConfigurationError(
                f"{self.name}: need 4 endpoint fractions (10/20/30/40%)"
            )
        previous = 0.0
        for fraction in self.endpoint_fractions:
            if not 0 < fraction < 1 or fraction < previous:
                raise ConfigurationError(
                    f"{self.name}: endpoint fractions must be increasing "
                    f"and in (0, 1), got {self.endpoint_fractions}"
                )
            previous = fraction
        if not 0 <= self.rho <= 1:
            raise ConfigurationError(f"{self.name}: rho must be in [0, 1]")
        if self.hub_gamma < 0:
            raise ConfigurationError(f"{self.name}: hub_gamma must be >= 0")
        lo, hi = self.gap_range
        if not 0 < lo < hi:
            raise ConfigurationError(f"{self.name}: bad gap range")
        if not 0 < self.floor_frac < self.wall_frac <= 1:
            raise ConfigurationError(
                f"{self.name}: need 0 < floor < wall <= 1"
            )


LOW_PERFORMANCE = PerformancePoint(
    name="low", period_ps=1400,
    endpoint_fractions=(0.10, 0.28, 0.40, 0.50),
)
MEDIUM_PERFORMANCE = PerformancePoint(
    name="medium", period_ps=1100,
    endpoint_fractions=(0.25, 0.50, 0.62, 0.70),
)
HIGH_PERFORMANCE = PerformancePoint(
    name="high", period_ps=900,
    endpoint_fractions=(0.38, 0.62, 0.73, 0.80),
)

PERFORMANCE_POINTS: tuple[PerformancePoint, ...] = (
    LOW_PERFORMANCE, MEDIUM_PERFORMANCE, HIGH_PERFORMANCE,
)
