"""Synthetic industrial-processor surrogate.

The paper's case study runs on an industrial ARM processor at three
performance points.  This package generates flip-flop-level timing graphs
whose critical-path start/end structure is calibrated to match the
distribution the paper reports (Fig. 1), plus the workload-driven path
sensitization model behind the multi-stage error-rate argument (Sec. 3).
"""

from repro.processor.perfpoints import (
    HIGH_PERFORMANCE,
    LOW_PERFORMANCE,
    MEDIUM_PERFORMANCE,
    PERFORMANCE_POINTS,
    PerformancePoint,
)
from repro.processor.generator import generate_processor, calibrate_base
from repro.processor.trace import Phase, WorkloadTrace, synthetic_trace
from repro.processor.workload import (
    SensitizationModel,
    multi_stage_error_probability,
)

__all__ = [
    "PerformancePoint",
    "LOW_PERFORMANCE",
    "MEDIUM_PERFORMANCE",
    "HIGH_PERFORMANCE",
    "PERFORMANCE_POINTS",
    "generate_processor",
    "calibrate_base",
    "SensitizationModel",
    "multi_stage_error_probability",
    "Phase",
    "WorkloadTrace",
    "synthetic_trace",
]
