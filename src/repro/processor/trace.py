"""Phased workload traces.

Real workloads are not stationary: a program alternates compute-bound,
memory-bound, and idle phases, and the *sensitization* of critical paths
(ALU carry chains, bypass muxes) swings with them — which is exactly why
the paper's dynamic-variability margins are workload-dependent.  A
:class:`WorkloadTrace` is a repeating schedule of phases, each scaling
the base per-path sensitization probability; the graph simulator
consumes it to modulate violation pressure over time.
"""

from __future__ import annotations

import dataclasses
import random

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class Phase:
    """One program phase."""

    name: str
    cycles: int
    sensitization_scale: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ConfigurationError(f"phase {self.name}: cycles >= 1")
        if self.sensitization_scale < 0:
            raise ConfigurationError(
                f"phase {self.name}: scale must be >= 0")


class WorkloadTrace:
    """A repeating sequence of phases."""

    def __init__(self, phases: list[Phase]) -> None:
        if not phases:
            raise ConfigurationError("need at least one phase")
        self.phases = list(phases)
        self.total_cycles = sum(p.cycles for p in phases)
        self._starts: list[int] = []
        start = 0
        for phase in self.phases:
            self._starts.append(start)
            start += phase.cycles

    def phase_at(self, cycle: int) -> Phase:
        """The phase active on ``cycle`` (the trace repeats)."""
        if cycle < 0:
            raise ConfigurationError("cycle must be >= 0")
        offset = cycle % self.total_cycles
        # Linear scan is fine: traces have a handful of phases.
        active = self.phases[0]
        for start, phase in zip(self._starts, self.phases):
            if offset >= start:
                active = phase
            else:
                break
        return active

    def scale_at(self, cycle: int) -> float:
        """Sensitization multiplier of the phase active on ``cycle``."""
        return self.phase_at(cycle).sensitization_scale

    def mean_scale(self) -> float:
        """Cycle-weighted average sensitization scale."""
        weighted = sum(p.cycles * p.sensitization_scale
                       for p in self.phases)
        return weighted / self.total_cycles

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = "/".join(p.name for p in self.phases)
        return f"WorkloadTrace({names}, {self.total_cycles} cycles)"


#: Canonical phase mixes, loosely modelled on SPEC-style behaviour.
_TRACE_RECIPES = {
    "compute": [
        ("warmup", 200, 0.6),
        ("kernel", 2000, 1.6),
        ("cooldown", 300, 0.5),
    ],
    "memory": [
        ("burst", 400, 1.2),
        ("stall", 1200, 0.2),
        ("drain", 400, 0.8),
    ],
    "mixed": [
        ("compute", 800, 1.5),
        ("memory", 900, 0.3),
        ("branchy", 600, 1.0),
        ("idle", 400, 0.05),
    ],
}


def synthetic_trace(kind: str = "mixed", *, seed: int | None = None,
                    ) -> WorkloadTrace:
    """Build a canonical trace, optionally jittering phase lengths.

    Args:
        kind: One of ``compute``, ``memory``, ``mixed``.
        seed: If given, phase lengths are jittered by up to ±25% so
            repeated experiments don't phase-lock with periodic
            variability sources.
    """
    try:
        recipe = _TRACE_RECIPES[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown trace kind {kind!r}; known: "
            f"{sorted(_TRACE_RECIPES)}"
        ) from None
    rng = random.Random(seed)
    phases = []
    for name, cycles, scale in recipe:
        if seed is not None:
            cycles = max(1, int(round(
                cycles * rng.uniform(0.75, 1.25))))
        phases.append(Phase(name=name, cycles=cycles,
                            sensitization_scale=scale))
    return WorkloadTrace(phases)
