"""Synthetic processor timing-graph generator.

Builds a circular pipeline of flip-flop stages with register-to-register
paths whose delay structure mimics a timing-optimized processor:

* Each flip-flop ``g`` owns an *input-cone criticality* ``L(g)`` — the
  worst delay of any path terminating at it.  ``L`` is drawn through a
  quantile function anchored directly on the performance point's target
  Fig.-1 endpoint fractions, reproducing the post-synthesis "timing
  wall" (many cones packed just under the clock period).
* Exactly one fanin path per flip-flop carries the worst delay; its
  startpoint is picked with probability proportional to the source's
  start-latent raised to ``hub_gamma``, concentrating critical-path
  launches on a few hub flip-flops (register files, bypass muxes, ...).
* The remaining fanin paths fall short of ``L(g)`` by a random gap,
  modelling the sharply sub-critical side inputs of a real cone.

The circular structure (the last stage feeds the first) means critical
chains of any length exist structurally, as in a real processor with
forwarding and control loops — a prerequisite for studying multi-stage
timing errors.
"""

from __future__ import annotations

import dataclasses
import math
import random

from repro.errors import ConfigurationError
from repro.processor.perfpoints import PerformancePoint
from repro.timing.graph import TimingGraph

#: Criticality thresholds (percent of the period) the anchors refer to.
ANCHOR_PERCENTS = (10.0, 20.0, 30.0, 40.0)


def _normal_cdf(z: float) -> float:
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


def _correlated_uniforms(rng: random.Random, rho: float,
                         ) -> tuple[float, float]:
    """Gaussian-copula correlated (end, start) latents in (0, 1)."""
    z1 = rng.gauss(0.0, 1.0)
    z2 = rho * z1 + math.sqrt(max(0.0, 1.0 - rho * rho)) * rng.gauss(0.0, 1.0)
    return _normal_cdf(z1), _normal_cdf(z2)


def _cone_quantile(point: PerformancePoint):
    """Quantile function rank-from-top -> worst-cone delay fraction.

    Piecewise-linear through the anchor points: a fraction ``a_c`` of
    flip-flops must have a cone delay of at least ``1 - c/100`` of the
    period, for each anchored ``c``.
    """
    knots = [(0.0, point.wall_frac)]
    for percent, fraction in zip(ANCHOR_PERCENTS, point.endpoint_fractions):
        knots.append((fraction, 1.0 - percent / 100.0))
    knots.append((1.0, point.floor_frac))

    def quantile(rank_from_top: float) -> float:
        for (p0, d0), (p1, d1) in zip(knots, knots[1:]):
            if rank_from_top <= p1:
                if p1 == p0:
                    return d1
                t = (rank_from_top - p0) / (p1 - p0)
                return d0 + (d1 - d0) * t
        return knots[-1][1]

    return quantile


@dataclasses.dataclass(frozen=True)
class GeneratedProcessor:
    """A generated graph plus the latents used to build it (for tests)."""

    graph: TimingGraph
    cone_delay_frac: dict[str, float]
    start_latent: dict[str, float]


def generate_processor(
    point: PerformancePoint,
    *,
    num_stages: int = 10,
    ffs_per_stage: int = 200,
    fanin: int = 6,
    seed: int = 2010,
) -> TimingGraph:
    """Generate the synthetic processor at one performance point."""
    return generate_processor_detailed(
        point, num_stages=num_stages, ffs_per_stage=ffs_per_stage,
        fanin=fanin, seed=seed,
    ).graph


def generate_processor_detailed(
    point: PerformancePoint,
    *,
    num_stages: int = 10,
    ffs_per_stage: int = 200,
    fanin: int = 6,
    seed: int = 2010,
) -> GeneratedProcessor:
    """Like :func:`generate_processor`, also returning the latents."""
    if num_stages < 2:
        raise ConfigurationError("need at least 2 pipeline stages")
    if fanin < 1:
        raise ConfigurationError("fanin must be >= 1")
    if ffs_per_stage < fanin + 1:
        raise ConfigurationError("ffs_per_stage must exceed fanin")
    rng = random.Random(repr((seed, point.name, num_stages, ffs_per_stage,
                              fanin)))
    quantile = _cone_quantile(point)
    graph = TimingGraph(f"proc-{point.name}", point.period_ps)

    cone: dict[str, float] = {}
    start_latent: dict[str, float] = {}
    stage_ffs: list[list[str]] = []
    for stage in range(num_stages):
        names: list[str] = []
        for index in range(ffs_per_stage):
            name = f"s{stage}_ff{index}"
            graph.add_ff(name, stage)
            u_end, u_start = _correlated_uniforms(rng, point.rho)
            cone[name] = quantile(1.0 - u_end)
            start_latent[name] = u_start
            names.append(name)
        stage_ffs.append(names)

    gap_lo, gap_hi = point.gap_range
    for stage in range(num_stages):
        sources = stage_ffs[(stage - 1) % num_stages]
        hub_weights = [
            start_latent[src] ** point.hub_gamma for src in sources
        ]
        for dst in stage_ffs[stage]:
            worst_frac = cone[dst]
            primary = rng.choices(sources, weights=hub_weights, k=1)[0]
            graph.add_edge(
                primary, dst,
                min(int(round(worst_frac * point.period_ps)),
                    point.period_ps),
            )
            for src in rng.sample(sources, fanin - 1):
                gap = rng.uniform(gap_lo, gap_hi)
                frac = max(point.floor_frac * 0.6, worst_frac - gap)
                graph.add_edge(
                    src, dst, int(round(frac * point.period_ps)),
                )
    return GeneratedProcessor(graph=graph, cone_delay_frac=cone,
                              start_latent=start_latent)


def measured_endpoint_fractions(
    graph: TimingGraph,
    percents: tuple[float, ...] = ANCHOR_PERCENTS,
) -> dict[float, float]:
    """Measured fraction of FFs terminating top-c% paths, per c.

    The generator anchors these by construction; this helper verifies
    the calibration (used by tests and the Fig.-1 bench)."""
    return {
        percent: len(graph.critical_endpoints(percent)) / graph.num_ffs
        for percent in percents
    }


def calibrate_base(
    point: PerformancePoint,
    *,
    target_end_fraction: float,
    percent_threshold: float = 20.0,
    **generate_kwargs,
) -> PerformancePoint:
    """Return a performance point recalibrated to a new target.

    With the quantile-anchored construction the endpoint fraction at
    ``percent_threshold`` is a direct parameter, so calibration is exact:
    the matching anchor is replaced (keeping the others monotone).
    """
    if not 0 < target_end_fraction < 1:
        raise ConfigurationError("target fraction must be in (0, 1)")
    if percent_threshold not in ANCHOR_PERCENTS:
        raise ConfigurationError(
            f"threshold must be one of {ANCHOR_PERCENTS}"
        )
    index = ANCHOR_PERCENTS.index(percent_threshold)
    fractions = list(point.endpoint_fractions)
    fractions[index] = target_end_fraction
    for i in range(index - 1, -1, -1):
        fractions[i] = min(fractions[i], fractions[i + 1])
    for i in range(index + 1, len(fractions)):
        fractions[i] = max(fractions[i], fractions[i - 1])
    return dataclasses.replace(
        point, endpoint_fractions=tuple(fractions),
    )
