"""Workload-driven path sensitization (paper Sec. 3).

A critical path only causes a timing error on a cycle where the workload
actually *sensitizes* it.  The paper cites a sensitization probability of
order 1e-3 for top critical paths and builds its multi-stage argument on
it: a k-stage timing error needs k chained critical paths sensitized on k
successive cycles, so its probability collapses geometrically.

:class:`SensitizationModel` assigns per-path sensitization probabilities
(more critical -> modelled as slightly more likely to be exercised, since
critical paths tend to be common datapath routes);
:func:`multi_stage_error_probability` gives the closed-form rate and
:func:`sample_multi_stage_events` a Monte-Carlo cross-check.
"""

from __future__ import annotations

import dataclasses
import random

from repro.errors import ConfigurationError
from repro.timing.graph import TimingEdge, TimingGraph


@dataclasses.dataclass(frozen=True)
class SensitizationModel:
    """Per-path sensitization probabilities.

    Attributes:
        base_probability: Sensitization probability of a top critical
            path (the paper's ~1e-3).
        period_ps: Clock period used to normalise criticality.
    """

    base_probability: float = 1e-3
    period_ps: int = 1000

    def __post_init__(self) -> None:
        if not 0 < self.base_probability <= 1:
            raise ConfigurationError("base probability must be in (0, 1]")
        if self.period_ps <= 0:
            raise ConfigurationError("period must be > 0")

    def probability(self, edge: TimingEdge) -> float:
        """Sensitization probability of one path.

        Scales linearly with the path's delay fraction so near-critical
        paths in the same cone share the critical path's order of
        magnitude."""
        frac = edge.delay_ps / self.period_ps
        return min(1.0, self.base_probability * max(frac, 0.0) / 1.0)


def multi_stage_error_probability(
    sensitization: float,
    violation_probability: float,
    stages: int,
) -> float:
    """Closed-form probability of a ``stages``-stage timing error.

    A k-stage error requires, on k successive cycles, a chained critical
    path that is both sensitized and pushed past the edge by dynamic
    variability.  With per-cycle, per-stage probability
    ``p = sensitization * violation_probability``, the chain probability
    is ``p**k`` (paper Sec. 3: "negligibly small" for k >= 2).
    """
    if stages < 1:
        raise ConfigurationError("stages must be >= 1")
    if not 0 <= sensitization <= 1 or not 0 <= violation_probability <= 1:
        raise ConfigurationError("probabilities must be in [0, 1]")
    per_stage = sensitization * violation_probability
    return per_stage ** stages


def sample_multi_stage_events(
    graph: TimingGraph,
    *,
    percent_threshold: float,
    model: SensitizationModel,
    violation_probability: float,
    num_cycles: int,
    seed: int = 7,
    max_chain: int = 4,
) -> dict[int, int]:
    """Monte-Carlo count of k-stage error events over ``num_cycles``.

    On each cycle every critical path is independently sensitized+violated
    with its model probability; a k-stage event at cycle ``n`` is a chain
    ``p1 -> ... -> pk`` (end-to-start connected) violated on cycles
    ``n-k+1 .. n``.  Returns ``{k: count}`` for ``k`` in 1..``max_chain``.
    """
    if not 0 <= violation_probability <= 1:
        raise ConfigurationError("violation probability must be in [0, 1]")
    rng = random.Random(seed)
    critical = graph.critical_edges(percent_threshold)
    out_by_src: dict[str, list[int]] = {}
    for index, edge in enumerate(critical):
        out_by_src.setdefault(edge.src, []).append(index)

    probabilities = [
        model.probability(edge) * violation_probability for edge in critical
    ]
    counts = {k: 0 for k in range(1, max_chain + 1)}
    # history[k] = set of edge indices that on the previous cycle completed
    # a (k)-stage violated chain.
    history: dict[int, set[int]] = {k: set() for k in range(1, max_chain + 1)}
    for _cycle in range(num_cycles):
        violated = {
            index for index, p in enumerate(probabilities)
            if rng.random() < p
        }
        new_history: dict[int, set[int]] = {
            k: set() for k in range(1, max_chain + 1)
        }
        new_history[1] = violated
        counts[1] += len(violated)
        for k in range(2, max_chain + 1):
            for prev_index in history[k - 1]:
                tail = critical[prev_index].dst
                for next_index in out_by_src.get(tail, ()):  # chained
                    if next_index in violated:
                        new_history[k].add(next_index)
                        counts[k] += 1
        history = new_history
    return counts
