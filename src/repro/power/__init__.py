"""Power and area models and design-level overhead computation."""

from repro.power.models import DesignCostModel, DesignCosts
from repro.power.overhead import DeploymentOverhead, deployment_overhead
from repro.power.voltage import (
    EnergySavings,
    VoltageModel,
    margin_to_energy_savings,
)

__all__ = [
    "DesignCostModel",
    "DesignCosts",
    "DeploymentOverhead",
    "deployment_overhead",
    "EnergySavings",
    "VoltageModel",
    "margin_to_energy_savings",
]
