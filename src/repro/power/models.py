"""Design-level cost model.

A :class:`DesignCostModel` turns a flip-flop-level
:class:`~repro.timing.graph.TimingGraph` into absolute area/power numbers
by attributing a parametric amount of combinational logic to each
flip-flop and pricing sequential elements from the cell library.  All of
the paper's overhead results are ratios against the baseline produced
here, so the absolute scale cancels; the *split* between sequential and
combinational power is the one assumption that shapes the results, and it
is an explicit, documented parameter.
"""

from __future__ import annotations

import dataclasses

from repro.circuit.cells import CellLibrary, default_library
from repro.errors import ConfigurationError
from repro.timing.graph import TimingGraph


@dataclasses.dataclass(frozen=True)
class DesignCosts:
    """Absolute costs of one design configuration (abstract units)."""

    area: float
    leakage: float
    dynamic_per_cycle: float

    @property
    def total_power(self) -> float:
        """Leakage + per-cycle dynamic energy.

        With the clock frequency fixed across compared configurations,
        energy-per-cycle is proportional to dynamic power, so this sum is
        a consistent total-power figure of merit.
        """
        return self.leakage + self.dynamic_per_cycle

    def scaled(self, factor: float) -> "DesignCosts":
        return DesignCosts(
            area=self.area * factor,
            leakage=self.leakage * factor,
            dynamic_per_cycle=self.dynamic_per_cycle * factor,
        )

    def plus(self, other: "DesignCosts") -> "DesignCosts":
        return DesignCosts(
            area=self.area + other.area,
            leakage=self.leakage + other.leakage,
            dynamic_per_cycle=self.dynamic_per_cycle + other.dynamic_per_cycle,
        )


@dataclasses.dataclass(frozen=True)
class DesignCostModel:
    """Parametric cost model for a flip-flop-level design.

    Attributes:
        library: Cell library providing sequential element costs.
        comb_area_per_ff: Combinational gate area attributed to each FF
            (gate-equivalents; ~30 two-input gates of average size).
        comb_leakage_per_ff: Combinational leakage per FF.
        comb_energy_per_ff: Combinational dynamic energy per FF per cycle
            at nominal switching activity.
        ff_activity: Fraction of cycles a flip-flop output toggles,
            scaling its dynamic energy.
    """

    library: CellLibrary = dataclasses.field(default_factory=default_library)
    comb_area_per_ff: float = 54.0
    comb_leakage_per_ff: float = 42.0
    comb_energy_per_ff: float = 18.0
    ff_activity: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.ff_activity <= 1:
            raise ConfigurationError("ff_activity must be in (0, 1]")
        if min(self.comb_area_per_ff, self.comb_leakage_per_ff,
               self.comb_energy_per_ff) < 0:
            raise ConfigurationError("combinational costs must be >= 0")

    # -- per-element costs ---------------------------------------------
    def sequential_costs(self, cell_name: str, count: int = 1) -> DesignCosts:
        """Area/power of ``count`` instances of a sequential cell."""
        cell = self.library.sequential(cell_name)
        return DesignCosts(
            area=cell.area * count,
            leakage=cell.leakage * count,
            dynamic_per_cycle=cell.energy_per_cycle * self.ff_activity * count,
        )

    def sequential_delta(self, from_cell: str, to_cell: str,
                         count: int = 1) -> DesignCosts:
        """Cost increase of swapping ``count`` cells from one type to
        another (may be negative component-wise if downgrading)."""
        before = self.sequential_costs(from_cell, count)
        after = self.sequential_costs(to_cell, count)
        return DesignCosts(
            area=after.area - before.area,
            leakage=after.leakage - before.leakage,
            dynamic_per_cycle=(after.dynamic_per_cycle
                               - before.dynamic_per_cycle),
        )

    # -- whole-design costs -----------------------------------------------
    def baseline_costs(self, graph: TimingGraph,
                       ff_cell: str = "DFF") -> DesignCosts:
        """Costs of the unprotected design: every FF conventional."""
        sequential = self.sequential_costs(ff_cell, graph.num_ffs)
        combinational = DesignCosts(
            area=self.comb_area_per_ff * graph.num_ffs,
            leakage=self.comb_leakage_per_ff * graph.num_ffs,
            dynamic_per_cycle=self.comb_energy_per_ff * graph.num_ffs,
        )
        return sequential.plus(combinational)

    def sequential_power_fraction(self, graph: TimingGraph) -> float:
        """Fraction of baseline power drawn by the flip-flops."""
        base = self.baseline_costs(graph)
        seq = self.sequential_costs("DFF", graph.num_ffs)
        return seq.total_power / base.total_power
