"""Design-level overhead computation (paper Fig. 8).

For a deployment — a timing graph, a checking period, and a TIMBER
element style — :func:`deployment_overhead` prices:

* the sequential-element swap (DFF → TIMBER FF at 2x power, or DFF →
  TIMBER latch at 1.5x power) for every flip-flop terminating a
  top-``c``% critical path;
* the error-relay network (TIMBER-FF style only; the latch needs none);
* optionally, the hold-fix delay buffers implied by the checking period.

All results are reported as percentages of the unprotected baseline.
"""

from __future__ import annotations

import dataclasses

from repro.core.relay import RelayCost, relay_cost
from repro.errors import ConfigurationError
from repro.power.models import DesignCostModel, DesignCosts
from repro.timing.graph import TimingGraph
from repro.units import as_percent

#: Area/leakage/energy of one hold-fix delay buffer (DLY4-class cell).
_HOLD_BUFFER_AREA = 2.0
_HOLD_BUFFER_LEAKAGE = 1.4
_HOLD_BUFFER_ENERGY = 0.9


@dataclasses.dataclass(frozen=True)
class DeploymentOverhead:
    """Overheads of one TIMBER deployment, relative to the baseline."""

    style: str
    percent_checking: float
    num_ffs: int
    num_replaced: int
    baseline: DesignCosts
    element_delta: DesignCosts
    relay: RelayCost | None
    hold_buffers: int
    hold_delta: DesignCosts

    @property
    def replaced_fraction(self) -> float:
        return self.num_replaced / self.num_ffs if self.num_ffs else 0.0

    @property
    def extra_power(self) -> float:
        relay_leak = self.relay.leakage if self.relay is not None else 0.0
        return (self.element_delta.total_power + relay_leak
                + self.hold_delta.total_power)

    @property
    def extra_area(self) -> float:
        relay_area = self.relay.area if self.relay is not None else 0.0
        return self.element_delta.area + relay_area + self.hold_delta.area

    @property
    def power_overhead_percent(self) -> float:
        return as_percent(self.extra_power, self.baseline.total_power)

    @property
    def area_overhead_percent(self) -> float:
        return as_percent(self.extra_area, self.baseline.area)

    @property
    def relay_area_overhead_percent(self) -> float:
        """Relay-only area overhead (Fig. 8(i-a))."""
        if self.relay is None:
            return 0.0
        return as_percent(self.relay.area, self.baseline.area)


def deployment_overhead(
    graph: TimingGraph,
    *,
    percent_checking: float,
    style: str,
    cost_model: DesignCostModel | None = None,
    include_hold_buffers: bool = False,
    hold_buffers_per_replaced_ff: float = 2.0,
    element_cell: str | None = None,
) -> DeploymentOverhead:
    """Price a TIMBER deployment on ``graph``.

    Args:
        graph: Flip-flop-level timing graph of the design.
        percent_checking: Checking period as % of the clock period; all
            flip-flops terminating top-``percent_checking``% critical
            paths are replaced (paper Sec. 6).
        style: ``"ff"`` (TIMBER flip-flop + relay) or ``"latch"``.
        cost_model: Cost model (defaults to :class:`DesignCostModel`).
        element_cell: Sequential cell replacing the DFF at protected
            endpoints; defaults to the TIMBER cell of ``style``.  The
            baseline architectures pass their own cells (Razor, canary)
            to price rival schemes on the same criticality index.
        include_hold_buffers: Add the short-path padding cost.  The paper
            reports element+relay overhead; padding is listed as a design
            requirement (Table 1) but not priced, so this defaults off.
        hold_buffers_per_replaced_ff: Average DLY4 buffers per protected
            endpoint when padding is priced.
    """
    if style not in ("ff", "latch"):
        raise ConfigurationError(f"style must be 'ff' or 'latch', got {style}")
    model = cost_model or DesignCostModel()
    # Endpoint count and relay pricing share the graph's memoized
    # criticality view — no per-call edge rescans.
    replaced = len(graph.criticality().view(percent_checking).endpoints)
    if element_cell is None:
        element_cell = "TIMBER_FF" if style == "ff" else "TIMBER_LATCH"
    element_delta = model.sequential_delta("DFF", element_cell, replaced)
    relay = relay_cost(graph, percent_checking) if style == "ff" else None

    hold_buffers = 0
    hold_delta = DesignCosts(0.0, 0.0, 0.0)
    if include_hold_buffers:
        hold_buffers = int(round(replaced * hold_buffers_per_replaced_ff))
        hold_delta = DesignCosts(
            area=hold_buffers * _HOLD_BUFFER_AREA,
            leakage=hold_buffers * _HOLD_BUFFER_LEAKAGE,
            dynamic_per_cycle=hold_buffers * _HOLD_BUFFER_ENERGY,
        )

    return DeploymentOverhead(
        style=style,
        percent_checking=percent_checking,
        num_ffs=graph.num_ffs,
        num_replaced=replaced,
        baseline=model.baseline_costs(graph),
        element_delta=element_delta,
        relay=relay,
        hold_buffers=hold_buffers,
        hold_delta=hold_delta,
    )
