"""Spending the recovered margin as voltage (energy) instead of speed.

The paper frames online resilience as recovering the dynamic-variability
margin "improving performance and/or power consumption".  This module
converts a recovered timing margin into a supply-voltage reduction via
the alpha-power delay model and prices the resulting energy savings:

* gate delay ~ Vdd / (Vdd - Vth)^alpha  (alpha-power law),
* dynamic energy ~ Vdd^2,
* leakage ~ Vdd^3 (empirical short-channel fit).

A scheme that recovers ``m``% of the clock period can slow every path by
``m``% at constant frequency, i.e. scale Vdd down until delays grow by
that factor — this is exactly Razor's sub-critical operation argument,
available to TIMBER *without* replay hardware.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class VoltageModel:
    """Alpha-power-law voltage/delay/energy model."""

    nominal_vdd: float = 1.0
    threshold_v: float = 0.30
    alpha: float = 1.5
    min_vdd: float = 0.55

    def __post_init__(self) -> None:
        if not 0 < self.threshold_v < self.nominal_vdd:
            raise ConfigurationError("need 0 < Vth < Vdd")
        if self.alpha <= 0:
            raise ConfigurationError("alpha must be > 0")
        if not self.threshold_v < self.min_vdd <= self.nominal_vdd:
            raise ConfigurationError("need Vth < min_vdd <= nominal_vdd")

    # -- delay ----------------------------------------------------------
    def delay_factor(self, vdd: float) -> float:
        """Gate-delay multiplier at ``vdd`` relative to nominal."""
        self._check_vdd(vdd)
        nominal = self.nominal_vdd / (
            (self.nominal_vdd - self.threshold_v) ** self.alpha)
        scaled = vdd / ((vdd - self.threshold_v) ** self.alpha)
        return scaled / nominal

    def vdd_for_delay_factor(self, factor: float,
                             tolerance: float = 1e-6) -> float:
        """Lowest Vdd at which delays grow by at most ``factor``.

        ``factor`` >= 1; bisection on the monotone delay curve, clamped
        at ``min_vdd``.
        """
        if factor < 1.0:
            raise ConfigurationError("delay factor must be >= 1")
        lo, hi = self.min_vdd, self.nominal_vdd
        if self.delay_factor(lo) <= factor:
            return lo
        while hi - lo > tolerance:
            mid = (lo + hi) / 2.0
            if self.delay_factor(mid) <= factor:
                hi = mid
            else:
                lo = mid
        return hi

    # -- energy ------------------------------------------------------------
    def dynamic_energy_factor(self, vdd: float) -> float:
        self._check_vdd(vdd)
        return (vdd / self.nominal_vdd) ** 2

    def leakage_factor(self, vdd: float) -> float:
        self._check_vdd(vdd)
        return (vdd / self.nominal_vdd) ** 3

    def total_power_factor(self, vdd: float,
                           leakage_fraction: float = 0.3) -> float:
        """Total-power multiplier at ``vdd`` for a design whose nominal
        power is ``leakage_fraction`` static."""
        if not 0 <= leakage_fraction <= 1:
            raise ConfigurationError("leakage fraction in [0, 1]")
        return ((1 - leakage_fraction) * self.dynamic_energy_factor(vdd)
                + leakage_fraction * self.leakage_factor(vdd))

    def _check_vdd(self, vdd: float) -> None:
        if vdd <= self.threshold_v:
            raise ConfigurationError(
                f"Vdd {vdd} must exceed Vth {self.threshold_v}")


@dataclasses.dataclass(frozen=True)
class EnergySavings:
    """Outcome of spending a recovered margin as voltage."""

    margin_percent: float
    scaled_vdd: float
    power_factor: float
    element_overhead_percent: float

    @property
    def gross_savings_percent(self) -> float:
        return 100.0 * (1.0 - self.power_factor)

    @property
    def net_savings_percent(self) -> float:
        """Savings after paying the scheme's own power overhead."""
        effective = (self.power_factor
                     * (1.0 + self.element_overhead_percent / 100.0))
        return 100.0 * (1.0 - effective)


def margin_to_energy_savings(
    margin_percent: float,
    *,
    element_overhead_percent: float = 0.0,
    model: VoltageModel | None = None,
    leakage_fraction: float = 0.3,
) -> EnergySavings:
    """Convert a recovered timing margin into net energy savings.

    A margin of ``m``% of the clock period allows every path to slow by
    a factor ``1 / (1 - m/100)`` at the same frequency; the supply is
    scaled down to that delay point and the resulting power compared
    against nominal, charging the scheme's own overhead.
    """
    if not 0 <= margin_percent < 100:
        raise ConfigurationError("margin must be in [0, 100)%")
    vm = model or VoltageModel()
    allowed_factor = 1.0 / (1.0 - margin_percent / 100.0)
    vdd = vm.vdd_for_delay_factor(allowed_factor)
    return EnergySavings(
        margin_percent=margin_percent,
        scaled_vdd=vdd,
        power_factor=vm.total_power_factor(vdd, leakage_fraction),
        element_overhead_percent=element_overhead_percent,
    )
