"""Shared experiment runners.

Each function reproduces one of the paper's artefacts (or one of the
extension studies documented in DESIGN.md) and returns structured data;
the benchmark harness and the examples render and assert on these.
"""

from __future__ import annotations

import dataclasses

from repro.baselines.architectures import (
    ARCHITECTURES,
    TechniqueArchitecture,
    architecture_by_key,
)
from repro.core.architecture import TimberDesign, TimberStyle
from repro.core.structural import StructuralTimberFF, StructuralTimberLatch
from repro.errors import ConfigurationError
from repro.pipeline.controller import CentralErrorController
from repro.pipeline.pipeline import PipelineResult, PipelineSimulation
from repro.pipeline.stage import PipelineStage
from repro.processor.generator import generate_processor
from repro.processor.perfpoints import PERFORMANCE_POINTS, PerformancePoint
from repro.sim.clocks import ClockGenerator
from repro.sim.engine import Simulator
from repro.sim.waveform import WaveformRecorder
from repro.timing.distribution import (
    CriticalPathDistribution,
    distribution_sweep,
)
from repro.variability import (
    CompositeVariation,
    LocalVariation,
    VoltageDroopVariation,
)

#: Checking periods studied in the case study (percent of clock period).
CHECKING_PERCENTS = (10.0, 20.0, 30.0, 40.0)


# ---------------------------------------------------------------------------
# Fig. 1 — critical-path distribution
# ---------------------------------------------------------------------------

def fig1_experiment(
    *,
    points: tuple[PerformancePoint, ...] = PERFORMANCE_POINTS,
    seed: int = 2010,
) -> dict[str, list[CriticalPathDistribution]]:
    """Critical-path distribution at every performance point (Fig. 1)."""
    return {
        point.name: distribution_sweep(generate_processor(point, seed=seed))
        for point in points
    }


# ---------------------------------------------------------------------------
# Fig. 8 — case-study overheads
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class Fig8Row:
    """One bar of the Fig. 8 chart family."""

    point: str
    checking_percent: float
    style: str
    with_tb_interval: bool
    margin_percent: float
    ffs_replaced: int
    ffs_total: int
    power_overhead_percent: float
    relay_area_overhead_percent: float
    relay_slack_percent: float


def fig8_experiment(
    *,
    points: tuple[PerformancePoint, ...] = PERFORMANCE_POINTS,
    seed: int = 2010,
) -> list[Fig8Row]:
    """All Fig. 8 panels: overhead sweep over points x checking periods.

    Covers (i) relay area/slack, (ii) flip-flop power with and without
    the TB interval, and (iii) latch power with and without the TB
    interval; each panel slices these rows differently.
    """
    rows: list[Fig8Row] = []
    for point in points:
        graph = generate_processor(point, seed=seed)
        for percent in CHECKING_PERCENTS:
            for style in (TimberStyle.FLIP_FLOP, TimberStyle.LATCH):
                for with_tb in (False, True):
                    design = TimberDesign(
                        graph=graph, style=style,
                        percent_checking=percent,
                        with_tb_interval=with_tb,
                    )
                    summary = design.summary()
                    rows.append(Fig8Row(
                        point=point.name,
                        checking_percent=percent,
                        style=style.value,
                        with_tb_interval=with_tb,
                        margin_percent=summary["margin_percent"],
                        ffs_replaced=int(summary["ffs_replaced"]),
                        ffs_total=int(summary["ffs_total"]),
                        power_overhead_percent=(
                            summary["power_overhead_percent"]),
                        relay_area_overhead_percent=(
                            summary["relay_area_overhead_percent"]),
                        relay_slack_percent=summary["relay_slack_percent"],
                    ))
    return rows


# ---------------------------------------------------------------------------
# Figs. 5 and 7 — two-stage error waveforms
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class WaveformExperiment:
    """Result of a two-stage error scenario on structural circuits."""

    style: str
    recorder: WaveformRecorder
    period_ps: int
    stage1_flagged: bool
    stage2_flagged: bool
    q1_final: str
    q2_final: str


def two_stage_waveform_experiment(
    style: str,
    *,
    period_ps: int = 1000,
    interval_ps: int = 100,
    first_lateness_ps: int = 60,
    extra_lateness_ps: int = 60,
) -> WaveformExperiment:
    """Reproduce the Fig. 5 / Fig. 7 two-stage error scenario.

    A first violation of ``first_lateness_ps`` hits stage 1 (masked in
    the TB interval, not flagged); the borrowed time plus a second
    violation of ``extra_lateness_ps`` hits stage 2 on the next cycle
    (masked with an ED interval, flagged).
    """
    if style not in ("ff", "latch"):
        raise ConfigurationError("style must be 'ff' or 'latch'")
    sim = Simulator()
    ClockGenerator(sim, "clk", period_ps)
    sim.set_initial("d1", 0)
    sim.set_initial("d2", 0)
    checking_ps = 3 * interval_ps
    if style == "ff":
        f1 = StructuralTimberFF(sim, name="f1", d="d1", clk="clk", q="q1",
                                err="err1", interval_ps=interval_ps)
        f2 = StructuralTimberFF(sim, name="f2", d="d2", clk="clk", q="q2",
                                err="err2", interval_ps=interval_ps)

        def relay(_sim: Simulator) -> None:
            f2.set_select(f1.select_out)

        # Relay reads f1's select_out after the falling edge of the cycle
        # with the first error and configures f2 before the next edge.
        sim.at(period_ps + period_ps // 2 + 100, relay, label="relay")
    else:
        StructuralTimberLatch(sim, name="l1", d="d1", clk="clk", q="q1",
                              err="err1", tb_ps=interval_ps,
                              checking_ps=checking_ps)
        StructuralTimberLatch(sim, name="l2", d="d2", clk="clk", q="q2",
                              err="err2", tb_ps=interval_ps,
                              checking_ps=checking_ps)

    recorder = WaveformRecorder(
        ["clk", "d1", "q1", "err1", "d2", "q2", "err2"])
    recorder.attach(sim)
    # First error: D1 arrives late after the edge at t=period.
    sim.drive("d1", 1, period_ps + first_lateness_ps)
    # Two-stage error: stage 2's data inherits the borrowed time (a full
    # interval for the discrete flip-flop, the exact lateness for the
    # continuous latch) and adds its own violation after the edge at
    # t = 2*period.
    inherited = interval_ps if style == "ff" else first_lateness_ps
    second_lateness = inherited + extra_lateness_ps
    sim.drive("d2", 1, 2 * period_ps + second_lateness)
    sim.run(3 * period_ps + period_ps // 2)

    err1 = recorder["err1"].final_value()
    err2 = recorder["err2"].final_value()
    return WaveformExperiment(
        style=style,
        recorder=recorder,
        period_ps=period_ps,
        stage1_flagged=str(err1) == "1",
        stage2_flagged=str(err2) == "1",
        q1_final=str(recorder["q1"].final_value()),
        q2_final=str(recorder["q2"].final_value()),
    )


# ---------------------------------------------------------------------------
# Extension studies: resilience and throughput sweeps
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class ResiliencePoint:
    """One (technique, stress-level) cell of the resilience sweep."""

    technique: str
    droop_amplitude: float
    result: PipelineResult


def _build_stages(num_stages: int, period_ps: int, *,
                  criticality: float = 0.95,
                  sensitization_prob: float = 0.05,
                  seed: int = 11) -> list[PipelineStage]:
    critical = int(period_ps * criticality)
    typical = int(period_ps * 0.70)
    return [
        PipelineStage(
            name=f"stage{i}", critical_delay_ps=critical,
            typical_delay_ps=typical,
            sensitization_prob=sensitization_prob, seed=seed + i,
        )
        for i in range(num_stages)
    ]


def resilience_sweep(
    *,
    techniques: tuple[str, ...] = ("plain", "timber-ff", "timber-latch",
                                   "razor", "canary"),
    droop_amplitudes: tuple[float, ...] = (0.0, 0.04, 0.08, 0.12),
    num_stages: int = 5,
    period_ps: int = 1000,
    checking_percent: float = 30.0,
    num_cycles: int = 20_000,
    seed: int = 11,
) -> list[ResiliencePoint]:
    """Masked/detected/failed outcomes vs droop stress per technique."""
    points: list[ResiliencePoint] = []
    for amplitude in droop_amplitudes:
        variability = CompositeVariation([
            LocalVariation(sigma=0.015, max_factor=1.04, seed=seed),
            VoltageDroopVariation(event_probability=2e-3,
                                  amplitude=amplitude,
                                  amplitude_jitter=0.0, seed=seed + 1),
        ])
        for key in techniques:
            architecture = architecture_by_key(key)
            policy = architecture.build_policy(num_stages, period_ps,
                                               checking_percent)
            controller = CentralErrorController(
                period_ps=period_ps, consolidation_latency_ps=period_ps,
            )
            stages = _build_stages(num_stages, period_ps, seed=seed)
            simulation = PipelineSimulation(
                stages, policy, period_ps=period_ps,
                controller=controller, variability=variability,
            )
            points.append(ResiliencePoint(
                technique=key, droop_amplitude=amplitude,
                result=simulation.run(num_cycles),
            ))
    return points


@dataclasses.dataclass(frozen=True)
class ThroughputPoint:
    """Throughput of one technique at one overclocking step."""

    technique: str
    overclock_percent: float
    result: PipelineResult

    @property
    def effective_speedup(self) -> float:
        """Achieved speedup vs the nominal-frequency error-free design."""
        overclock = 1.0 + self.overclock_percent / 100.0
        return overclock * self.result.throughput_factor


def throughput_sweep(
    *,
    techniques: tuple[str, ...] = ("timber-ff", "timber-latch", "razor",
                                   "canary"),
    overclock_percents: tuple[float, ...] = (0.0, 4.0, 8.0, 12.0),
    num_stages: int = 5,
    period_ps: int = 1000,
    checking_percent: float = 30.0,
    num_cycles: int = 20_000,
    seed: int = 23,
) -> list[ThroughputPoint]:
    """Margin-recovery payoff: run faster than sign-off and measure the
    achieved speedup after each scheme's recovery costs."""
    points: list[ThroughputPoint] = []
    for overclock in overclock_percents:
        shrunk_period = int(round(period_ps / (1.0 + overclock / 100.0)))
        variability = LocalVariation(sigma=0.015, max_factor=1.04,
                                      seed=seed)
        for key in techniques:
            architecture = architecture_by_key(key)
            policy = architecture.build_policy(num_stages, shrunk_period,
                                               checking_percent)
            controller = CentralErrorController(
                period_ps=shrunk_period,
                consolidation_latency_ps=shrunk_period,
            )
            stages = _build_stages(num_stages, period_ps, seed=seed)
            simulation = PipelineSimulation(
                stages, policy, period_ps=shrunk_period,
                controller=controller, variability=variability,
            )
            points.append(ThroughputPoint(
                technique=key, overclock_percent=overclock,
                result=simulation.run(num_cycles),
            ))
    return points


def all_architectures() -> tuple[TechniqueArchitecture, ...]:
    """All modelled architectures (re-export for the harness)."""
    return ARCHITECTURES
