"""Shared experiment runners.

Each function reproduces one of the paper's artefacts (or one of the
extension studies documented in DESIGN.md) and returns structured data;
the benchmark harness and the examples render and assert on these.

The Monte-Carlo engines underneath (pipeline, graph, SSTA) run on the
vectorized ``repro.kernels`` path by default and fall back to the
scalar reference under ``REPRO_SCALAR_KERNELS=1``; the two paths are
bit-identical, so sweep results — and therefore on-disk cache entries —
are valid regardless of the kernel mode they were produced in.
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.baselines.architectures import (
    ARCHITECTURES,
    TechniqueArchitecture,
    architecture_by_key,
)
from repro.core.architecture import TimberDesign, TimberStyle
from repro.core.structural import StructuralTimberFF, StructuralTimberLatch
from repro.errors import ConfigurationError
from repro.exec.runner import (
    SweepRunner,
    SweepTask,
    TaskPayload,
    derive_seed,
    task_key,
)
from repro.pipeline.controller import CentralErrorController
from repro.pipeline.pipeline import PipelineResult, PipelineSimulation
from repro.pipeline.stage import PipelineStage
from repro.processor.generator import generate_processor
from repro.processor.perfpoints import PERFORMANCE_POINTS, PerformancePoint
from repro.sim.clocks import ClockGenerator
from repro.sim.engine import Simulator
from repro.sim.waveform import WaveformRecorder
from repro.timing.distribution import (
    CriticalPathDistribution,
    distribution_sweep,
)
from repro.variability import (
    CompositeVariation,
    LocalVariation,
    VoltageDroopVariation,
)

#: Checking periods studied in the case study (percent of clock period).
CHECKING_PERCENTS = (10.0, 20.0, 30.0, 40.0)

#: Dotted task-function names used by the sweep runner (must stay
#: module-level and importable inside worker processes).
_FIG1_TASK = "repro.analysis.experiments:fig1_point_task"
_FIG8_TASK = "repro.analysis.experiments:fig8_point_task"
_PIPELINE_TASK = "repro.analysis.experiments:pipeline_point_task"


def _point_params(point: PerformancePoint) -> dict:
    """JSON-able parameters from which a worker rebuilds the point."""
    return dataclasses.asdict(point)


def _point_from_params(params: dict) -> PerformancePoint:
    return PerformancePoint(
        name=params["name"],
        period_ps=params["period_ps"],
        endpoint_fractions=tuple(params["endpoint_fractions"]),
        rho=params["rho"],
        hub_gamma=params["hub_gamma"],
        gap_range=tuple(params["gap_range"]),
        wall_frac=params["wall_frac"],
        floor_frac=params["floor_frac"],
    )


# ---------------------------------------------------------------------------
# Fig. 1 — critical-path distribution
# ---------------------------------------------------------------------------

def fig1_point_task(params: dict) -> list[CriticalPathDistribution]:
    """Sweep task: Fig. 1 distributions for one performance point."""
    point = _point_from_params(params["point"])
    graph = generate_processor(point, seed=params["seed"])
    return distribution_sweep(graph)


def fig1_experiment(
    *,
    points: tuple[PerformancePoint, ...] = PERFORMANCE_POINTS,
    seed: int = 2010,
    runner: SweepRunner | None = None,
) -> dict[str, list[CriticalPathDistribution]]:
    """Critical-path distribution at every performance point (Fig. 1)."""
    tasks = [
        SweepTask(
            experiment=_FIG1_TASK,
            params={"point": _point_params(point), "seed": seed},
            index=index,
            seed=derive_seed(seed, _FIG1_TASK, point.name),
            key=task_key(_FIG1_TASK, {"point": point.name}),
        )
        for index, point in enumerate(points)
    ]
    runner = runner or SweepRunner()
    values = runner.run_values(tasks)
    return {point.name: value for point, value in zip(points, values)}


# ---------------------------------------------------------------------------
# Fig. 8 — case-study overheads
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class Fig8Row:
    """One bar of the Fig. 8 chart family."""

    point: str
    checking_percent: float
    style: str
    with_tb_interval: bool
    margin_percent: float
    ffs_replaced: int
    ffs_total: int
    power_overhead_percent: float
    relay_area_overhead_percent: float
    relay_slack_percent: float


def fig8_point_task(params: dict) -> list[Fig8Row]:
    """Sweep task: every Fig. 8 row of one performance point."""
    point = _point_from_params(params["point"])
    graph = generate_processor(point, seed=params["seed"])
    rows: list[Fig8Row] = []
    for percent in params["checking_percents"]:
        for style in (TimberStyle.FLIP_FLOP, TimberStyle.LATCH):
            for with_tb in (False, True):
                design = TimberDesign(
                    graph=graph, style=style,
                    percent_checking=percent,
                    with_tb_interval=with_tb,
                )
                summary = design.summary()
                rows.append(Fig8Row(
                    point=point.name,
                    checking_percent=percent,
                    style=style.value,
                    with_tb_interval=with_tb,
                    margin_percent=summary["margin_percent"],
                    ffs_replaced=int(summary["ffs_replaced"]),
                    ffs_total=int(summary["ffs_total"]),
                    power_overhead_percent=(
                        summary["power_overhead_percent"]),
                    relay_area_overhead_percent=(
                        summary["relay_area_overhead_percent"]),
                    relay_slack_percent=summary["relay_slack_percent"],
                ))
    return rows


def fig8_experiment(
    *,
    points: tuple[PerformancePoint, ...] = PERFORMANCE_POINTS,
    seed: int = 2010,
    runner: SweepRunner | None = None,
) -> list[Fig8Row]:
    """All Fig. 8 panels: overhead sweep over points x checking periods.

    Covers (i) relay area/slack, (ii) flip-flop power with and without
    the TB interval, and (iii) latch power with and without the TB
    interval; each panel slices these rows differently.
    """
    tasks = [
        SweepTask(
            experiment=_FIG8_TASK,
            params={
                "point": _point_params(point),
                "seed": seed,
                "checking_percents": list(CHECKING_PERCENTS),
            },
            index=index,
            seed=derive_seed(seed, _FIG8_TASK, point.name),
            key=task_key(_FIG8_TASK, {"point": point.name}),
        )
        for index, point in enumerate(points)
    ]
    runner = runner or SweepRunner()
    rows: list[Fig8Row] = []
    for value in runner.run_values(tasks):
        rows.extend(value)
    return rows


# ---------------------------------------------------------------------------
# Figs. 5 and 7 — two-stage error waveforms
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class WaveformExperiment:
    """Result of a two-stage error scenario on structural circuits."""

    style: str
    recorder: WaveformRecorder
    period_ps: int
    stage1_flagged: bool
    stage2_flagged: bool
    q1_final: str
    q2_final: str


def two_stage_waveform_experiment(
    style: str,
    *,
    period_ps: int = 1000,
    interval_ps: int = 100,
    first_lateness_ps: int = 60,
    extra_lateness_ps: int = 60,
) -> WaveformExperiment:
    """Reproduce the Fig. 5 / Fig. 7 two-stage error scenario.

    A first violation of ``first_lateness_ps`` hits stage 1 (masked in
    the TB interval, not flagged); the borrowed time plus a second
    violation of ``extra_lateness_ps`` hits stage 2 on the next cycle
    (masked with an ED interval, flagged).
    """
    if style not in ("ff", "latch"):
        raise ConfigurationError("style must be 'ff' or 'latch'")
    sim = Simulator()
    ClockGenerator(sim, "clk", period_ps)
    sim.set_initial("d1", 0)
    sim.set_initial("d2", 0)
    checking_ps = 3 * interval_ps
    if style == "ff":
        f1 = StructuralTimberFF(sim, name="f1", d="d1", clk="clk", q="q1",
                                err="err1", interval_ps=interval_ps)
        f2 = StructuralTimberFF(sim, name="f2", d="d2", clk="clk", q="q2",
                                err="err2", interval_ps=interval_ps)

        def relay(_sim: Simulator) -> None:
            f2.set_select(f1.select_out)

        # Relay reads f1's select_out after the falling edge of the cycle
        # with the first error and configures f2 before the next edge.
        sim.at(period_ps + period_ps // 2 + 100, relay, label="relay")
    else:
        StructuralTimberLatch(sim, name="l1", d="d1", clk="clk", q="q1",
                              err="err1", tb_ps=interval_ps,
                              checking_ps=checking_ps)
        StructuralTimberLatch(sim, name="l2", d="d2", clk="clk", q="q2",
                              err="err2", tb_ps=interval_ps,
                              checking_ps=checking_ps)

    recorder = WaveformRecorder(
        ["clk", "d1", "q1", "err1", "d2", "q2", "err2"])
    recorder.attach(sim)
    # First error: D1 arrives late after the edge at t=period.
    sim.drive("d1", 1, period_ps + first_lateness_ps)
    # Two-stage error: stage 2's data inherits the borrowed time (a full
    # interval for the discrete flip-flop, the exact lateness for the
    # continuous latch) and adds its own violation after the edge at
    # t = 2*period.
    inherited = interval_ps if style == "ff" else first_lateness_ps
    second_lateness = inherited + extra_lateness_ps
    sim.drive("d2", 1, 2 * period_ps + second_lateness)
    sim.run(3 * period_ps + period_ps // 2)

    err1 = recorder["err1"].final_value()
    err2 = recorder["err2"].final_value()
    return WaveformExperiment(
        style=style,
        recorder=recorder,
        period_ps=period_ps,
        stage1_flagged=str(err1) == "1",
        stage2_flagged=str(err2) == "1",
        q1_final=str(recorder["q1"].final_value()),
        q2_final=str(recorder["q2"].final_value()),
    )


# ---------------------------------------------------------------------------
# Extension studies: resilience and throughput sweeps
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class ResiliencePoint:
    """One (technique, stress-level) cell of the resilience sweep."""

    technique: str
    droop_amplitude: float
    result: PipelineResult


def _build_stages(num_stages: int, period_ps: int, *,
                  criticality: float = 0.95,
                  sensitization_prob: float = 0.05,
                  seed: int = 11) -> list[PipelineStage]:
    critical = int(period_ps * criticality)
    typical = int(period_ps * 0.70)
    return [
        PipelineStage(
            name=f"stage{i}", critical_delay_ps=critical,
            typical_delay_ps=typical,
            sensitization_prob=sensitization_prob, seed=seed + i,
        )
        for i in range(num_stages)
    ]


def _variability_from_spec(spec: list[dict]) -> object:
    """Variability model for a JSON-able task spec, warm-cached.

    Every model is deterministic in (seed, cycle, path), so rebuilding
    one inside a worker process reproduces exactly the draws a shared
    instance would have produced serially — which is also what makes it
    safe to share one instance across every task with the same spec.
    """
    from repro.exec.cache import stable_key
    from repro.exec.worker import WARM

    return WARM.get_or_build("variability",
                             stable_key("variability", spec),
                             lambda: _build_variability(spec))


def _build_variability(spec: list[dict]) -> object:
    models: list = []
    for item in spec:
        kind = item["kind"]
        if kind == "local":
            models.append(LocalVariation(
                sigma=item["sigma"], max_factor=item["max_factor"],
                seed=item["seed"],
            ))
        elif kind == "droop":
            models.append(VoltageDroopVariation(
                event_probability=item["event_probability"],
                amplitude=item["amplitude"],
                amplitude_jitter=item["amplitude_jitter"],
                seed=item["seed"],
            ))
        else:
            raise ConfigurationError(f"unknown variability kind {kind!r}")
    if not models:
        raise ConfigurationError("empty variability spec")
    return models[0] if len(models) == 1 else CompositeVariation(models)


def pipeline_point_task(params: dict) -> TaskPayload:
    """Sweep task: one (technique, stress, frequency) pipeline run.

    The shared grid point of the resilience, throughput, and shoot-out
    sweeps: builds the stages, capture policy, controller, and
    variability stack from primitive parameters and runs the
    cycle-accurate simulation.
    """
    stage_spec = params["stage"]
    stages = [
        PipelineStage(
            name=f"{stage_spec['prefix']}{i}",
            critical_delay_ps=stage_spec["critical_delay_ps"],
            typical_delay_ps=stage_spec["typical_delay_ps"],
            sensitization_prob=stage_spec["sensitization_prob"],
            seed=stage_spec["seed"] + i,
        )
        for i in range(params["num_stages"])
    ]
    architecture = architecture_by_key(params["technique"])
    period = params["sim_period_ps"]
    policy = architecture.build_policy(params["num_stages"], period,
                                       params["checking_percent"])
    controller = CentralErrorController(
        period_ps=period, consolidation_latency_ps=period,
    )
    simulation = PipelineSimulation(
        stages, policy, period_ps=period, controller=controller,
        variability=_variability_from_spec(params["variability"]),
    )
    result = simulation.run(params["num_cycles"])
    return TaskPayload(value=result, events_processed=result.captures)


def _pipeline_tasks(
    grid: list[dict],
    base: dict,
    *,
    root_seed: int,
) -> list[SweepTask]:
    """Wrap pipeline grid points (axis dicts + full params) as tasks."""
    tasks = []
    for index, point in enumerate(grid):
        axes = point["axes"]
        tasks.append(SweepTask(
            experiment=_PIPELINE_TASK,
            params={**base, **point["params"]},
            index=index,
            seed=derive_seed(root_seed, _PIPELINE_TASK,
                             sorted(axes.items())),
            key=task_key(_PIPELINE_TASK, axes),
        ))
    return tasks


def resilience_sweep(
    *,
    techniques: tuple[str, ...] = ("plain", "timber-ff", "timber-latch",
                                   "razor", "canary"),
    droop_amplitudes: tuple[float, ...] = (0.0, 0.04, 0.08, 0.12),
    num_stages: int = 5,
    period_ps: int = 1000,
    checking_percent: float = 30.0,
    num_cycles: int = 20_000,
    seed: int = 11,
    runner: SweepRunner | None = None,
) -> list[ResiliencePoint]:
    """Masked/detected/failed outcomes vs droop stress per technique."""
    grid = [
        {
            "axes": {"droop_amplitude": amplitude, "technique": key},
            "params": {
                "technique": key,
                "variability": [
                    {"kind": "local", "sigma": 0.015, "max_factor": 1.04,
                     "seed": seed},
                    {"kind": "droop", "event_probability": 2e-3,
                     "amplitude": amplitude, "amplitude_jitter": 0.0,
                     "seed": seed + 1},
                ],
            },
        }
        for amplitude, key in itertools.product(droop_amplitudes,
                                                techniques)
    ]
    base = {
        "sim_period_ps": period_ps,
        "checking_percent": checking_percent,
        "num_stages": num_stages,
        "num_cycles": num_cycles,
        "stage": {
            "prefix": "stage",
            "critical_delay_ps": int(period_ps * 0.95),
            "typical_delay_ps": int(period_ps * 0.70),
            "sensitization_prob": 0.05,
            "seed": seed,
        },
    }
    tasks = _pipeline_tasks(grid, base, root_seed=seed)
    runner = runner or SweepRunner()
    results = runner.run_values(tasks)
    return [
        ResiliencePoint(
            technique=point["axes"]["technique"],
            droop_amplitude=point["axes"]["droop_amplitude"],
            result=result,
        )
        for point, result in zip(grid, results)
    ]


@dataclasses.dataclass(frozen=True)
class ThroughputPoint:
    """Throughput of one technique at one overclocking step."""

    technique: str
    overclock_percent: float
    result: PipelineResult

    @property
    def effective_speedup(self) -> float:
        """Achieved speedup vs the nominal-frequency error-free design."""
        overclock = 1.0 + self.overclock_percent / 100.0
        return overclock * self.result.throughput_factor


def throughput_sweep(
    *,
    techniques: tuple[str, ...] = ("timber-ff", "timber-latch", "razor",
                                   "canary"),
    overclock_percents: tuple[float, ...] = (0.0, 4.0, 8.0, 12.0),
    num_stages: int = 5,
    period_ps: int = 1000,
    checking_percent: float = 30.0,
    num_cycles: int = 20_000,
    seed: int = 23,
    runner: SweepRunner | None = None,
) -> list[ThroughputPoint]:
    """Margin-recovery payoff: run faster than sign-off and measure the
    achieved speedup after each scheme's recovery costs."""
    grid = [
        {
            "axes": {"overclock_percent": overclock, "technique": key},
            "params": {
                "technique": key,
                # Policy, controller, and simulation run at the shrunk
                # period; stage delays stay sized to the sign-off period.
                "sim_period_ps": int(round(
                    period_ps / (1.0 + overclock / 100.0))),
            },
        }
        for overclock, key in itertools.product(overclock_percents,
                                                techniques)
    ]
    base = {
        "checking_percent": checking_percent,
        "num_stages": num_stages,
        "num_cycles": num_cycles,
        "stage": {
            "prefix": "stage",
            "critical_delay_ps": int(period_ps * 0.95),
            "typical_delay_ps": int(period_ps * 0.70),
            "sensitization_prob": 0.05,
            "seed": seed,
        },
        "variability": [
            {"kind": "local", "sigma": 0.015, "max_factor": 1.04,
             "seed": seed},
        ],
    }
    tasks = _pipeline_tasks(grid, base, root_seed=seed)
    runner = runner or SweepRunner()
    results = runner.run_values(tasks)
    return [
        ThroughputPoint(
            technique=point["axes"]["technique"],
            overclock_percent=point["axes"]["overclock_percent"],
            result=result,
        )
        for point, result in zip(grid, results)
    ]


def shootout_sweep(
    *,
    techniques: tuple[str, ...] | None = None,
    num_stages: int = 5,
    period_ps: int = 1000,
    checking_percent: float = 30.0,
    num_cycles: int = 10_000,
    stage_seed: int = 300,
    local_seed: int = 61,
    droop_seed: int = 62,
    droop_amplitude: float = 0.07,
    runner: SweepRunner | None = None,
) -> dict[str, PipelineResult]:
    """Every architecture on the same stressed pipeline (study X9)."""
    if techniques is None:
        techniques = tuple(arch.key for arch in ARCHITECTURES)
    grid = [
        {
            "axes": {"technique": key},
            "params": {"technique": key},
        }
        for key in techniques
    ]
    base = {
        "sim_period_ps": period_ps,
        "checking_percent": checking_percent,
        "num_stages": num_stages,
        "num_cycles": num_cycles,
        "stage": {
            "prefix": "so",
            "critical_delay_ps": 950,
            "typical_delay_ps": 700,
            "sensitization_prob": 0.08,
            "seed": stage_seed,
        },
        "variability": [
            {"kind": "local", "sigma": 0.015, "max_factor": 1.03,
             "seed": local_seed},
            {"kind": "droop", "event_probability": 3e-3,
             "amplitude": droop_amplitude, "amplitude_jitter": 0.0,
             "seed": droop_seed},
        ],
    }
    tasks = _pipeline_tasks(grid, base, root_seed=stage_seed)
    runner = runner or SweepRunner()
    results = runner.run_values(tasks)
    return {key: result for key, result in zip(techniques, results)}


def all_architectures() -> tuple[TechniqueArchitecture, ...]:
    """All modelled architectures (re-export for the harness)."""
    return ARCHITECTURES
