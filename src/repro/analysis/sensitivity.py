"""Sensitivity of the overhead results to the cost-model assumptions.

Every absolute number in Fig. 8 is a ratio against a parametric
baseline, and one assumption dominates: *what fraction of the design's
power the flip-flops draw* (set by the combinational-per-FF parameters
of :class:`~repro.power.models.DesignCostModel`).  This module sweeps
that assumption and reports how the headline overheads move — so a
reader can judge the robustness of the reproduction instead of trusting
a single default.
"""

from __future__ import annotations

import dataclasses

from repro.core.architecture import TimberDesign, TimberStyle
from repro.errors import AnalysisError
from repro.power.models import DesignCostModel
from repro.timing.graph import TimingGraph


@dataclasses.dataclass(frozen=True)
class SensitivityPoint:
    """Overheads under one sequential-power-fraction assumption."""

    sequential_power_fraction: float
    ff_power_overhead_percent: float
    latch_power_overhead_percent: float


@dataclasses.dataclass(frozen=True)
class SensitivityResult:
    """Outcome of :func:`overhead_sensitivity`."""

    percent_checking: float
    points: tuple[SensitivityPoint, ...]

    @property
    def ff_overhead_range(self) -> tuple[float, float]:
        values = [p.ff_power_overhead_percent for p in self.points]
        return min(values), max(values)

    @property
    def latch_overhead_range(self) -> tuple[float, float]:
        values = [p.latch_power_overhead_percent for p in self.points]
        return min(values), max(values)

    def latch_always_cheaper(self) -> bool:
        return all(
            p.latch_power_overhead_percent < p.ff_power_overhead_percent
            for p in self.points
        )


def _model_for_fraction(graph: TimingGraph, target_fraction: float,
                        base: DesignCostModel) -> DesignCostModel:
    """Scale the combinational costs so the flip-flops draw
    ``target_fraction`` of baseline power."""
    if not 0 < target_fraction < 1:
        raise AnalysisError("fraction must be in (0, 1)")
    seq_power = base.sequential_costs("DFF", graph.num_ffs).total_power
    comb_power_needed = seq_power * (1 - target_fraction) / target_fraction
    per_ff = comb_power_needed / graph.num_ffs
    current_per_ff = base.comb_leakage_per_ff + base.comb_energy_per_ff
    scale = per_ff / current_per_ff
    return dataclasses.replace(
        base,
        comb_area_per_ff=base.comb_area_per_ff * scale,
        comb_leakage_per_ff=base.comb_leakage_per_ff * scale,
        comb_energy_per_ff=base.comb_energy_per_ff * scale,
    )


def overhead_sensitivity(
    graph: TimingGraph,
    *,
    percent_checking: float = 30.0,
    fractions: tuple[float, ...] = (0.10, 0.15, 0.20, 0.30, 0.40),
    base_model: DesignCostModel | None = None,
) -> SensitivityResult:
    """Sweep the sequential-power-fraction assumption.

    For each target fraction, rebuild the cost model so flip-flops draw
    exactly that share of the baseline and recompute both deployment
    overheads.  To first order the overhead is
    ``fraction * replaced_share * (element_ratio - 1)``, so the sweep
    should be near-linear — verified by the tests.
    """
    base = base_model or DesignCostModel()
    points = []
    for fraction in fractions:
        model = _model_for_fraction(graph, fraction, base)
        measured = model.sequential_power_fraction(graph)
        if abs(measured - fraction) > 0.01:
            raise AnalysisError(
                f"model calibration failed: wanted {fraction}, "
                f"got {measured}"
            )
        ff = TimberDesign(graph=graph, style=TimberStyle.FLIP_FLOP,
                          percent_checking=percent_checking,
                          cost_model=model)
        latch = TimberDesign(graph=graph, style=TimberStyle.LATCH,
                             percent_checking=percent_checking,
                             cost_model=model)
        points.append(SensitivityPoint(
            sequential_power_fraction=fraction,
            ff_power_overhead_percent=(
                ff.overhead().power_overhead_percent),
            latch_power_overhead_percent=(
                latch.overhead().power_overhead_percent),
        ))
    return SensitivityResult(percent_checking=percent_checking,
                             points=tuple(points))
