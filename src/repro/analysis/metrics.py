"""Derived metrics over pipeline simulation results."""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import AnalysisError
from repro.pipeline.pipeline import PipelineResult
from repro.power.models import DesignCostModel


def masked_fraction(result: PipelineResult) -> float:
    """Fraction of violations the scheme masked (vs detected/failed)."""
    violations = result.masked + result.detected + result.failed
    if violations == 0:
        return 1.0
    return result.masked / violations


def failures_per_billion_cycles(result: PipelineResult) -> float:
    """Silent/unrecoverable corruption rate, normalised per 1e9 cycles."""
    if result.cycles == 0:
        raise AnalysisError("empty result")
    return result.failed * 1e9 / result.cycles


def energy_per_work(
    result: PipelineResult,
    *,
    element_cell: str,
    comb_energy_per_stage: float = 60.0,
    cost_model: DesignCostModel | None = None,
    num_boundaries: int | None = None,
) -> float:
    """Energy per *useful* capture, in abstract units.

    Charges, per simulated cycle (including replay/stall cycles, which
    burn energy without producing work):

    * one capture element per boundary at the scheme's cell energy, and
    * ``comb_energy_per_stage`` of combinational switching per stage —

    then divides by the number of useful (non-failed) captures.  Lets
    the comparison studies report an energy/operation figure of merit
    where replay cycles and guard-band slowdowns show up as real cost.
    """
    model = cost_model or DesignCostModel()
    boundaries = num_boundaries or _boundaries_of(result)
    element = model.sequential_costs(element_cell, boundaries)
    per_cycle = element.total_power + comb_energy_per_stage * boundaries
    total_cycles = result.cycles + result.replay_cycles
    useful = result.captures - result.failed
    if useful <= 0:
        raise AnalysisError("no useful work performed")
    return per_cycle * total_cycles / useful


def _boundaries_of(result: PipelineResult) -> int:
    if result.cycles == 0 or result.captures % result.cycles != 0:
        raise AnalysisError(
            "cannot infer boundary count; pass num_boundaries")
    return result.captures // result.cycles


def summarize_results(results: Sequence[PipelineResult],
                      ) -> dict[str, dict[str, float]]:
    """Key metrics per scheme, for quick side-by-side comparison."""
    summary: dict[str, dict[str, float]] = {}
    for result in results:
        summary[result.scheme] = {
            "cycles": float(result.cycles),
            "masked": float(result.masked),
            "masked_flagged": float(result.masked_flagged),
            "detected": float(result.detected),
            "predicted": float(result.predicted),
            "failed": float(result.failed),
            "slow_cycles": float(result.slow_cycles),
            "replay_cycles": float(result.replay_cycles),
            "throughput_factor": result.throughput_factor,
            "masked_fraction": masked_fraction(result),
            "failures_per_1e9": failures_per_billion_cycles(result),
        }
    return summary
