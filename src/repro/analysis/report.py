"""Assembling a reproduction report from benchmark artefacts.

The benchmark harness writes every regenerated table/figure to
``benchmarks/out/*.txt``.  :func:`generate_report` stitches them into a
single markdown document (with the experiment index from DESIGN.md's
naming scheme), so ``repro-timber report`` can produce a shareable
summary after a benchmark run.
"""

from __future__ import annotations

import dataclasses
import pathlib

from repro.errors import AnalysisError

#: Presentation order and titles for known artefacts.
ARTEFACT_TITLES: tuple[tuple[str, str], ...] = (
    ("table1_comparison", "Table 1 — technique comparison"),
    ("fig1_critical_path_distribution",
     "Fig. 1 — critical-path distribution between flip-flops"),
    ("fig2_checking_period",
     "Fig. 2 — checking-period anatomy and consolidation budget"),
    ("fig5_timber_ff_waveforms",
     "Fig. 5 — two-stage error, TIMBER flip-flop"),
    ("fig7_timber_latch_waveforms",
     "Fig. 7 — two-stage error, TIMBER latch"),
    ("fig8i_relay_area_and_slack",
     "Fig. 8(i) — relay area overhead and timing slack"),
    ("fig8ii_ff_power_overhead",
     "Fig. 8(ii) — TIMBER flip-flop power overhead"),
    ("fig8iii_latch_power_overhead",
     "Fig. 8(iii) — TIMBER latch power overhead"),
    ("x1_resilience_sweep", "X1 — resilience under voltage droop"),
    ("x2_multistage_error_rate", "X2 — multi-stage error probability"),
    ("x3_throughput_payoff", "X3 — throughput payoff of the margin"),
    ("x4_ablation_tb_vs_ed", "X4 — TB vs ED interval ablation"),
    ("x5_energy_savings", "X5 — spending the margin as energy"),
    ("x6_processor_masking", "X6 — whole-processor masking"),
    ("x7_coverage_vs_budget", "X7 — partial protection coverage"),
    ("x8_design_time_vs_online", "X8 — design-time vs online"),
    ("x9_shootout", "X9 — full technique shoot-out"),
    ("x10_cost_sensitivity", "X10 — cost-assumption sensitivity"),
    ("x11_closed_loop_dvs", "X11 — closed-loop dynamic voltage scaling"),
)


@dataclasses.dataclass(frozen=True)
class ReportSection:
    """One artefact included in the report."""

    key: str
    title: str
    body: str


def collect_sections(out_dir: str | pathlib.Path) -> list[ReportSection]:
    """Load every known artefact present in ``out_dir``.

    Unknown ``*.txt`` files are appended after the known ones so custom
    experiments are not dropped silently.
    """
    directory = pathlib.Path(out_dir)
    if not directory.is_dir():
        raise AnalysisError(
            f"{directory} does not exist; run "
            f"`pytest benchmarks/ --benchmark-only` first"
        )
    sections: list[ReportSection] = []
    seen: set[str] = set()
    for key, title in ARTEFACT_TITLES:
        path = directory / f"{key}.txt"
        if path.is_file():
            sections.append(ReportSection(
                key=key, title=title,
                body=path.read_text(encoding="utf-8").rstrip()))
            seen.add(key)
    for path in sorted(directory.glob("*.txt")):
        if path.stem not in seen:
            sections.append(ReportSection(
                key=path.stem, title=path.stem.replace("_", " "),
                body=path.read_text(encoding="utf-8").rstrip()))
    return sections


def generate_report(out_dir: str | pathlib.Path,
                    *, title: str = "TIMBER reproduction report") -> str:
    """Render the artefacts in ``out_dir`` as one markdown document."""
    sections = collect_sections(out_dir)
    if not sections:
        raise AnalysisError(
            f"no artefacts in {out_dir}; run the benchmarks first")
    lines = [f"# {title}", ""]
    lines.append(f"{len(sections)} artefacts regenerated.  Every table "
                 f"and figure below was produced by the benchmark "
                 f"harness (`pytest benchmarks/ --benchmark-only`); "
                 f"shape assertions ran before rendering.")
    lines.append("")
    for section in sections:
        lines.append(f"## {section.title}")
        lines.append("")
        lines.append("```text")
        lines.append(section.body)
        lines.append("```")
        lines.append("")
    return "\n".join(lines)
