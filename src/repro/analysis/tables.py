"""Plain-text table and series rendering for the benchmark harness."""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ConfigurationError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_digits: int = 2,
    max_col_width: int = 36,
) -> str:
    """Render an aligned plain-text table.

    Floats are formatted with ``float_digits`` decimals; long cells are
    truncated with an ellipsis at ``max_col_width``.
    """
    if not headers:
        raise ConfigurationError("need at least one header")

    def fmt(value: object) -> str:
        if isinstance(value, float):
            text = f"{value:.{float_digits}f}"
        else:
            text = str(value)
        if len(text) > max_col_width:
            text = text[: max_col_width - 1] + "…"
        return text

    table = [[fmt(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        table.append([fmt(cell) for cell in row])
    widths = [
        max(len(line[col]) for line in table) for col in range(len(headers))
    ]
    lines = []
    for index, line in enumerate(table):
        lines.append("  ".join(
            cell.ljust(width) for cell, width in zip(line, widths)
        ).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[object],
    ys: Sequence[float],
    *,
    x_label: str = "x",
    y_label: str = "y",
    float_digits: int = 2,
) -> str:
    """Render one figure series as labelled (x, y) pairs."""
    if len(xs) != len(ys):
        raise ConfigurationError("xs and ys must have equal length")
    pairs = ", ".join(
        f"{x}={y:.{float_digits}f}" for x, y in zip(xs, ys)
    )
    return f"{name} [{x_label} -> {y_label}]: {pairs}"
