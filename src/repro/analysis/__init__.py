"""Metrics, shared experiment runners, and table rendering."""

from repro.analysis.tables import format_series, format_table
from repro.analysis.report import (
    ReportSection,
    collect_sections,
    generate_report,
)
from repro.analysis.sensitivity import (
    SensitivityPoint,
    SensitivityResult,
    overhead_sensitivity,
)
from repro.analysis.metrics import (
    energy_per_work,
    failures_per_billion_cycles,
    masked_fraction,
    summarize_results,
)
from repro.analysis.experiments import (
    ResiliencePoint,
    fig1_experiment,
    fig8_experiment,
    resilience_sweep,
    throughput_sweep,
    two_stage_waveform_experiment,
)

__all__ = [
    "format_table",
    "format_series",
    "ReportSection",
    "collect_sections",
    "generate_report",
    "SensitivityPoint",
    "SensitivityResult",
    "overhead_sensitivity",
    "energy_per_work",
    "failures_per_billion_cycles",
    "masked_fraction",
    "summarize_results",
    "ResiliencePoint",
    "fig1_experiment",
    "fig8_experiment",
    "resilience_sweep",
    "throughput_sweep",
    "two_stage_waveform_experiment",
]
