"""Command-line interface: ``repro-timber <command>``.

Gives quick terminal access to the headline experiments:

* ``fig1``       — critical-path distribution (motivation).
* ``fig8``       — case-study overhead sweep.
* ``waveforms``  — Figs. 5/7 two-stage error waveforms (ASCII or VCD).
* ``table1``     — technique comparison table.
* ``deploy``     — deploy TIMBER on a synthetic processor and summarise.
* ``energy``     — margin-to-energy conversion per scheme.
* ``sweep``      — run an experiment grid through the parallel sweep
  runner (``--workers``, on-disk result cache, run telemetry).
* ``campaign``   — randomized fault-injection campaign with per-scheme
  coverage reports (``--resume`` continues a killed run from its
  checkpoint).
* ``soak``       — continuous streaming fault injection with adaptive
  stratified sampling, an append-only replay journal, and crash-safe
  checkpoints (``--resume`` continues a killed soak byte-identically).
* ``obs``        — render or merge observability trace files (JSONL
  spans in, Chrome trace-event JSON and/or a terminal flame summary
  out).  ``sweep``, ``campaign``, and ``soak`` take ``--obs-out DIR``
  to collect metrics and spans while they run.
* ``monitor``    — watch a live (or finished) run through its durable
  obs event stream: ``--follow`` tails the spool as a terminal status
  feed, ``--once --json`` emits the machine-readable run health, and
  ``--html OUT`` writes a static report.  The long-running commands
  spool ``events.jsonl`` into their ``--obs-out`` directory (or
  wherever ``--events`` points), and their own live status lines are
  folded from the *same* event stream, so CLI progress and ``monitor``
  can never disagree.

The long-running commands (``sweep``, ``campaign``, ``soak``) install a
graceful-shutdown handler: the first SIGTERM/SIGINT requests a drain —
queued work is dropped, in-flight batches finish and are checkpointed,
observability output is still written — and the process exits with the
conventional ``128 + signum``.  A second signal interrupts immediately.
"""

from __future__ import annotations

import argparse
import contextlib
import signal
import sys

from repro import __version__


def _cmd_fig1(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import fig1_experiment
    from repro.analysis.tables import format_table

    results = fig1_experiment()
    rows = []
    for name in ("low", "medium", "high"):
        for dist in results[name]:
            rows.append([
                name, f"top {dist.percent_threshold:.0f}%",
                f"{dist.pct_ffs_ending:.1f}",
                f"{dist.pct_ffs_through:.1f}",
            ])
    print(format_table(
        ["point", "threshold", "% FFs ending", "% FFs start+end"], rows))
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import fig8_experiment
    from repro.analysis.tables import format_table

    rows = fig8_experiment()
    table_rows = [
        [r.point, f"{r.checking_percent:.0f}%", r.style,
         "TB" if r.with_tb_interval else "no-TB",
         f"{r.margin_percent:.1f}", f"{r.power_overhead_percent:.2f}",
         f"{r.relay_area_overhead_percent:.2f}",
         f"{r.relay_slack_percent:.0f}"]
        for r in rows
    ]
    print(format_table(
        ["point", "checking", "style", "variant", "margin %",
         "power ovh %", "relay area %", "relay slack %"], table_rows))
    return 0


def _cmd_waveforms(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import two_stage_waveform_experiment

    result = two_stage_waveform_experiment(args.style)
    if args.vcd:
        from repro.sim.vcd import write_vcd

        write_vcd(args.vcd, result.recorder,
                  end_ps=3 * result.period_ps + result.period_ps // 2)
        print(f"wrote {args.vcd}")
    else:
        print(result.recorder.render_ascii(
            end_ps=3 * result.period_ps + result.period_ps // 2,
            step_ps=50,
            order=["clk", "d1", "q1", "err1", "d2", "q2", "err2"]))
        print(f"stage1 flagged: {result.stage1_flagged}; "
              f"stage2 flagged: {result.stage2_flagged}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.baselines.registry import TABLE1_CATEGORIES, table1_rows

    headers = ["Feature"] + [c.category.value for c in TABLE1_CATEGORIES]
    print(format_table(headers, table1_rows(), max_col_width=30))
    return 0


def _cmd_deploy(args: argparse.Namespace) -> int:
    from repro.core import TimberDesign, TimberStyle
    from repro.processor import PERFORMANCE_POINTS, generate_processor

    point = next((p for p in PERFORMANCE_POINTS if p.name == args.point),
                 None)
    if point is None:
        print(f"unknown performance point {args.point!r}",
              file=sys.stderr)
        return 2
    graph = generate_processor(point)
    design = TimberDesign(
        graph=graph,
        style=(TimberStyle.FLIP_FLOP if args.style == "ff"
               else TimberStyle.LATCH),
        percent_checking=args.checking,
        with_tb_interval=not args.no_tb,
    )
    for key, value in design.summary().items():
        print(f"{key:32s} {value:.2f}")
    return 0


def _cmd_energy(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.baselines.architectures import ARCHITECTURES
    from repro.power.voltage import margin_to_energy_savings

    rows = []
    for arch in ARCHITECTURES:
        margin = arch.margin_recovered_percent(args.checking)
        savings = margin_to_energy_savings(margin)
        rows.append([
            arch.display_name, f"{margin:.1f}",
            f"{savings.scaled_vdd:.3f}",
            f"{savings.gross_savings_percent:.1f}",
        ])
    print(format_table(
        ["scheme", "margin (% of T)", "scaled Vdd",
         "gross energy savings %"], rows))
    return 0


def _sweep_rows(experiment: str, values) -> tuple[list[str], list[list]]:
    """Render one sweep's results as (headers, rows)."""
    if experiment == "resilience":
        return (
            ["scheme", "droop", "masked", "detected", "predicted",
             "failed", "throughput"],
            [[p.technique, f"{p.droop_amplitude * 100:.0f}%",
              p.result.masked, p.result.detected, p.result.predicted,
              p.result.failed, f"{p.result.throughput_factor:.4f}"]
             for p in values],
        )
    if experiment == "throughput":
        return (
            ["scheme", "overclock", "effective speedup",
             "silent failures"],
            [[p.technique, f"+{p.overclock_percent:.0f}%",
              f"{p.effective_speedup:.4f}", p.result.failed]
             for p in values],
        )
    if experiment == "shootout":
        return (
            ["scheme", "masked", "detected", "predicted",
             "failed (silent)", "recovery cycles", "throughput"],
            [[key, r.masked, r.detected, r.predicted, r.failed,
              r.replay_cycles, f"{r.throughput_factor:.4f}"]
             for key, r in values.items()],
        )
    if experiment == "fig1":
        return (
            ["point", "threshold", "% FFs ending", "% FFs start+end"],
            [[name, f"top {d.percent_threshold:.0f}%",
              f"{d.pct_ffs_ending:.1f}", f"{d.pct_ffs_through:.1f}"]
             for name, dists in values.items() for d in dists],
        )
    # fig8
    return (
        ["point", "checking", "style", "variant", "margin %",
         "power ovh %", "relay area %", "relay slack %"],
        [[r.point, f"{r.checking_percent:.0f}%", r.style,
          "TB" if r.with_tb_interval else "no-TB",
          f"{r.margin_percent:.1f}", f"{r.power_overhead_percent:.2f}",
          f"{r.relay_area_overhead_percent:.2f}",
          f"{r.relay_slack_percent:.0f}"]
         for r in values],
    )


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _make_runner(args: argparse.Namespace, *,
                 checkpoint_path: str | None = None):
    """Build a :class:`SweepRunner` from the shared execution flags.

    Callers that run multiple phases (the campaign command) reassign
    ``runner.checkpoint`` per phase instead of building a runner — and
    hence a worker pool — per phase.
    """
    from repro.exec import ResultCache, SweepCheckpoint, SweepRunner

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    checkpoint = None
    path = (checkpoint_path if checkpoint_path is not None
            else args.checkpoint)
    if path:
        checkpoint = SweepCheckpoint(path, resume=args.resume)
    return SweepRunner(
        workers=args.workers, cache=cache,
        task_timeout_s=args.timeout,
        retries=args.retries,
        backoff_base_s=args.backoff,
        checkpoint=checkpoint,
        batch_target_s=max(0.0, args.batch_target_ms / 1000.0),
        warm_cache_size=args.warm_cache_size,
    )


class _DrainState:
    """Which signal (if any) requested a graceful drain."""

    def __init__(self) -> None:
        self.signum: int | None = None

    @property
    def exit_code(self) -> int:
        return 128 + (self.signum or signal.SIGTERM)


@contextlib.contextmanager
def _graceful_drain(runner, publisher=None):
    """Route SIGTERM/SIGINT into a graceful runner drain.

    The first signal only sets the runner's drain flag (handler-safe):
    queued tasks are dropped, in-flight batches finish and land in the
    checkpoint, and the command's normal teardown (obs flush, summary)
    still runs.  A second signal falls back to ``KeyboardInterrupt``
    for users who really mean *now*.  Previous handlers are restored on
    exit, so nested uses (tests calling :func:`main` in-process) are
    safe.  ``publisher`` gets the drain noted the same handler-safe way
    (the actual ``drain`` event is written off the heartbeat thread).
    """
    state = _DrainState()

    def handler(signum: int, frame) -> None:
        if state.signum is not None:
            raise KeyboardInterrupt
        state.signum = signum
        runner.request_drain()
        if publisher is not None:
            publisher.note_drain(signum)

    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, handler)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    try:
        yield state
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)


def _obs_begin(args: argparse.Namespace) -> bool:
    """Enable observability when ``--obs-out`` was given.

    Sets ``REPRO_OBS`` in the environment too, so process-pool workers
    inherit the setting and their metrics/spans ship back to us.
    """
    if not getattr(args, "obs_out", None):
        return False
    import os

    from repro import obs

    os.environ[obs.OBS_ENV] = "1"
    obs.enable()
    return True


def _obs_finish(args: argparse.Namespace) -> None:
    from repro import obs
    from repro.obs.exporters import write_obs_dir

    for path in write_obs_dir(args.obs_out, obs.REGISTRY, obs.TRACER):
        print(f"wrote {path}")


class _LiveStatus:
    """Folds published events into the shared CLI status line.

    The fold (:class:`repro.obs.health.HealthFold`) and the renderer
    (:func:`repro.obs.render.format_status_line`) are exactly what
    ``repro-timber monitor`` applies to the on-disk spool, so the live
    line a command prints and the line the monitor shows are the same
    function of the same events — they cannot disagree.
    """

    #: Event types that always produce a printed line.
    _PRINT_ON = frozenset({"round", "phase_end", "quarantine", "crash",
                           "drain", "run_end"})

    def __init__(self, *, quiet: bool = False,
                 progress: bool = True) -> None:
        from repro.obs.health import HealthFold

        self.fold = HealthFold()
        self._quiet = quiet
        self._progress = progress

    def __call__(self, event: dict) -> None:
        self.fold.apply(event)
        if self._quiet:
            return
        etype = event.get("type")
        if (etype in self._PRINT_ON
                or (self._progress and etype == "progress")):
            print(self.line(), file=sys.stderr, flush=True)

    def line(self) -> str:
        import time

        from repro.obs.render import format_status_line

        return format_status_line(
            self.fold.health(now_wall=time.time()))


def _publisher_begin(args: argparse.Namespace, kind: str,
                     observing: bool, *, meta: dict | None = None,
                     progress_lines: bool = True):
    """Open the run's event publisher plus its live status printer.

    The spool lands at ``--events`` when given, else
    ``<obs-out>/events.jsonl``; with neither, the publisher still runs
    listener-only so the status line works without any file output.
    """
    from repro import obs
    from repro.obs.stream import EVENTS_FILENAME, EventPublisher

    path = getattr(args, "events", None)
    if not path and getattr(args, "obs_out", None):
        import os

        path = os.path.join(args.obs_out, EVENTS_FILENAME)
    publisher = EventPublisher(
        path, kind=kind,
        heartbeat_s=getattr(args, "heartbeat", 5.0),
        registry=obs.REGISTRY if observing else None,
        meta=meta or {},
    )
    live = _LiveStatus(quiet=getattr(args, "quiet", False),
                       progress=progress_lines)
    publisher.add_listener(live)
    publisher.open()
    return publisher, live


def _checkpoint_events(runner, publisher) -> None:
    """Emit a ``checkpoint`` event on every durable checkpoint flush."""
    if runner.checkpoint is not None:
        checkpoint = runner.checkpoint
        checkpoint.on_flush = lambda records: publisher.checkpoint(
            records=records, path=str(checkpoint.path))


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.exec import SweepDrained

    observing = _obs_begin(args)
    runner = _make_runner(args)
    publisher, live = _publisher_begin(
        args, "sweep", observing,
        meta={"experiment": args.experiment})
    publisher.attach(runner.telemetry)
    _checkpoint_events(runner, publisher)
    try:
        with _graceful_drain(runner, publisher) as drain:
            try:
                return _run_sweep(args, runner, observing, publisher)
            except SweepDrained as drained:
                completed = len(drained.result.outcomes)
                publisher.run_end("drained", completed=completed)
                print(f"\ndrained: {completed} task(s) completed and "
                      f"checkpointed before shutdown", file=sys.stderr)
                if observing:
                    _obs_finish(args)
                return drain.exit_code
    finally:
        # No-op when run_end already went out; otherwise the run died
        # on an exception and the stream should say so.
        publisher.close(status="error")
        runner.close()


def _run_sweep(args: argparse.Namespace, runner, observing: bool,
               publisher) -> int:
    from repro.analysis import experiments
    from repro.analysis.tables import format_table
    from repro.exec.telemetry import format_summary

    extra: dict = {}
    if args.experiment in ("resilience", "throughput", "shootout"):
        if args.cycles is not None:
            extra["num_cycles"] = args.cycles
        if args.experiment != "shootout" and args.seed is not None:
            extra["seed"] = args.seed
    elif args.seed is not None:
        extra["seed"] = args.seed

    sweep = {
        "resilience": experiments.resilience_sweep,
        "throughput": experiments.throughput_sweep,
        "shootout": experiments.shootout_sweep,
        "fig1": experiments.fig1_experiment,
        "fig8": experiments.fig8_experiment,
    }[args.experiment]
    publisher.run_start(unit="tasks", experiment=args.experiment)
    values = sweep(runner=runner, **extra)
    publisher.run_end("ok")

    headers, rows = _sweep_rows(args.experiment, values)
    print(format_table(headers, rows))
    assert runner.last_run is not None
    print()
    print(format_summary(runner.last_run.summary))
    if args.summary:
        runner.telemetry.write_summary(args.summary)
        print(f"wrote {args.summary}")
    if observing:
        _obs_finish(args)
    return 0


def _campaign_checkpoint_path(base: str, scheme: str) -> str:
    """Per-scheme checkpoint file for a multi-scheme campaign run."""
    import pathlib

    path = pathlib.Path(base)
    suffix = path.suffix or ".json"
    return str(path.with_name(f"{path.stem}-{scheme}{suffix}"))


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import (
        CampaignConfig,
        render_reports,
        run_campaign,
        write_campaign_bench,
    )
    from repro.errors import ConfigurationError

    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    if not schemes:
        print("error: no schemes given", file=sys.stderr)
        return 2
    observing = _obs_begin(args)
    reports = []
    config = None
    summary: dict | None = None
    if args.cache_dir and not args.no_cache:
        # Persist background trajectories next to the result cache so
        # a later run (or another worker pool) forks from disk instead
        # of re-simulating; workers inherit the setting.
        import os

        from repro.campaign.trajectory import TRAJECTORY_CACHE_ENV

        os.environ.setdefault(
            TRAJECTORY_CACHE_ENV,
            os.path.join(args.cache_dir, "trajectories"))
    # One runner — hence one warm worker pool and one adaptive sizer —
    # shared across every scheme phase; only the checkpoint is
    # per-scheme, so each phase stays independently resumable.
    from repro.exec import SweepDrained

    runner = _make_runner(args)
    publisher, live = _publisher_begin(
        args, "campaign", observing,
        meta={"target": args.target, "schemes": schemes,
              "faults": args.faults})
    publisher.attach(runner.telemetry)
    publisher.run_start(unit="tasks", schemes=schemes)
    drained_exit: int | None = None
    try:
        with _graceful_drain(runner, publisher) as drain:
            for scheme in schemes:
                try:
                    config = CampaignConfig(
                        target=args.target, scheme=scheme,
                        num_faults=args.faults, num_cycles=args.cycles,
                        checking_percent=args.checking,
                        num_stages=args.stages, seed=args.seed,
                        faults_per_task=args.chunk,
                        snapshot_stride=args.snapshot_stride,
                    )
                except ConfigurationError as error:
                    print(f"error: {error}", file=sys.stderr)
                    return 2
                runner.checkpoint = None
                if args.checkpoint:
                    from repro.exec import SweepCheckpoint

                    runner.checkpoint = SweepCheckpoint(
                        _campaign_checkpoint_path(args.checkpoint,
                                                  scheme),
                        resume=args.resume)
                _checkpoint_events(runner, publisher)
                try:
                    result = run_campaign(config, runner=runner,
                                          publisher=publisher)
                except SweepDrained as drained:
                    completed = len(drained.result.outcomes)
                    publisher.run_end("drained", scheme=scheme,
                                      completed=completed)
                    print(f"{scheme}: drained after {completed} "
                          f"chunk(s); re-run with --resume to continue",
                          file=sys.stderr)
                    drained_exit = drain.exit_code
                    break
                reports.append(result.report)
                summary = result.summary
                # Scheme-boundary result line: campaign domain facts up
                # front, then the shared RunHealth status (the same fold
                # ``monitor`` renders — see _LiveStatus).
                line = (f"{scheme}: "
                        f"{len(result.outcomes)}/{config.num_faults} "
                        f"faults classified")
                if summary.get("resumed_tasks"):
                    line += (f" ({summary['resumed_tasks']} task(s) "
                             f"resumed)")
                print(f"{line} — {live.line()}")
            if drained_exit is None:
                publisher.run_end("ok")
    finally:
        publisher.close(status="error")
        runner.close()
    if reports:
        print()
        print(render_reports(reports))
    if args.out and drained_exit is None:
        write_campaign_bench(args.out, reports, config=config,
                             telemetry=summary)
        print(f"wrote {args.out}")
    if observing:
        _obs_finish(args)
    return drained_exit if drained_exit is not None else 0


def _cmd_soak(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.campaign import CampaignConfig
    from repro.errors import ConfigurationError, ExecutionError
    from repro.soak import SoakConfig, run_soak

    observing = _obs_begin(args)
    if args.cache_dir and not args.no_cache:
        import os

        from repro.campaign.trajectory import TRAJECTORY_CACHE_ENV

        os.environ.setdefault(
            TRAJECTORY_CACHE_ENV,
            os.path.join(args.cache_dir, "trajectories"))
    try:
        campaign = CampaignConfig(
            target=args.target, scheme=args.scheme,
            num_faults=1,  # soak draws are stratified, not population
            num_cycles=args.cycles, checking_percent=args.checking,
            num_stages=args.stages, seed=args.seed,
            faults_per_task=args.chunk,
            snapshot_stride=args.snapshot_stride,
        )
        soak = SoakConfig(
            campaign=campaign,
            faults_per_round=args.faults_per_round,
            magnitude_bins=args.magnitude_bins,
            min_weight=args.min_weight,
            adaptive=not args.uniform,
            ring_capacity=args.ring_capacity,
            checkpoint_every_rounds=args.checkpoint_every,
        )
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    # The soak checkpoint is the soak loop's own (``--checkpoint``
    # names it); the sweep-level checkpoint machinery stays off, and so
    # does the result cache — soak draws never repeat, so caching them
    # would only burn disk.
    runner = _make_runner(args, checkpoint_path="")
    runner.cache = None
    if args.watchdog is not None and args.timeout is None:
        runner.task_timeout_s = args.watchdog
    # The per-round status line is the RunHealth fold over the soak's
    # own ``round`` events (not runner-task progress — a soak's unit
    # is faults), printed by the publisher's listener.
    publisher, live = _publisher_begin(
        args, "soak", observing,
        meta={"target": args.target, "scheme": args.scheme},
        progress_lines=False)
    publisher.attach(runner.telemetry, track_phases=False)
    publisher.run_start(unit="faults", total=args.max_faults,
                        scheme=args.scheme, target=args.target)

    try:
        with _graceful_drain(runner, publisher) as drain:
            try:
                result = run_soak(
                    soak,
                    journal_path=args.journal,
                    checkpoint_path=args.checkpoint or None,
                    runner=runner,
                    resume=args.resume,
                    max_faults=args.max_faults,
                    max_runtime_s=args.max_runtime,
                    target_ci_width=args.target_ci_width,
                    max_rounds=args.rounds,
                    publisher=publisher,
                )
            except ConfigurationError as error:
                publisher.run_end("error", detail=str(error))
                print(f"error: {error}", file=sys.stderr)
                return 2
            except ExecutionError as error:
                publisher.run_end("error", detail=str(error))
                print(f"error: {error}", file=sys.stderr)
                return 1
        publisher.run_end(
            "drained" if result.drained else "ok",
            stop_reason=result.stop_reason,
            rounds=result.rounds, faults=result.total_faults)
    finally:
        publisher.close(status="error")
        runner.close()

    rows = [
        [s["stratum"], s["n"], s["escaped"],
         f"{s['escape_rate']:.4f}",
         f"[{s['ci_low']:.4f}, {s['ci_high']:.4f}]",
         f"{s['ci_width']:.4f}"]
        for s in result.per_stratum
    ]
    print(format_table(
        ["stratum", "n", "escaped", "escape rate", "95% CI", "width"],
        rows))
    overall = result.overall
    print()
    print(f"overall escape rate {overall['escape_rate']:.4f} "
          f"[{overall['ci_low']:.4f}, {overall['ci_high']:.4f}] "
          f"over {result.total_faults} fault(s), "
          f"{result.rounds} round(s)")
    print(f"stopped: {result.stop_reason}; "
          f"{result.faults_evaluated:.0f} fault(s) evaluated this "
          f"process in {result.wall_time_s:.2f}s "
          f"({result.faults_per_second:.1f} faults/s)")
    if args.out:
        import json

        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump({
                "schema_version": 1,
                "soak": soak.to_params(),
                "run_key": soak.run_key(),
                "rounds": result.rounds,
                "total_faults": result.total_faults,
                "stop_reason": result.stop_reason,
                "drained": result.drained,
                "overall": result.overall,
                "widest": result.widest,
                "per_stratum": result.per_stratum,
                "wall_time_s": result.wall_time_s,
                "faults_evaluated": result.faults_evaluated,
                "faults_per_second": result.faults_per_second,
            }, handle, indent=2)
        print(f"wrote {args.out}")
    if observing:
        _obs_finish(args)
    if result.drained:
        print("drained: journal and checkpoint are consistent; "
              "re-run with --resume to continue", file=sys.stderr)
        return drain.exit_code
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.obs.health import HealthFold
    from repro.obs.render import (
        format_status_line,
        render_dashboard,
        write_html,
    )
    from repro.obs.stream import (
        EventStreamReader,
        StreamCorrupt,
        events_path,
    )

    try:
        path = events_path(args.run_dir)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    fold = HealthFold(stale_after_s=args.stale_after)
    events: list[dict] = []
    header_seen = False

    def drain_reader() -> None:
        nonlocal header_seen
        batch = reader.poll()
        # poll() keeps the header on the reader rather than yielding
        # it; the fold wants it first, as written to the spool.
        if not header_seen and reader.header is not None:
            fold.apply(reader.header)
            header_seen = True
        for event in batch:
            fold.apply(event)
            events.append(event)

    try:
        reader = EventStreamReader(path)
        drain_reader()
    except StreamCorrupt as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        return 2

    if not args.follow:
        health = fold.health(now_wall=time.time())
        if args.html:
            write_html(args.html, health, events=events)
            print(f"wrote {args.html}")
        if args.json:
            print(json.dumps(health.to_json(), indent=2))
        elif not args.html:
            print(render_dashboard(health))
        return 0

    # --follow: poll the spool, reprint the status line whenever the
    # fold's view changes, and leave once the run reaches a terminal
    # lifecycle (a stale run never terminates on its own — ^C exits).
    last_line = ""
    try:
        while True:
            try:
                drain_reader()
            except StreamCorrupt as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            health = fold.health(now_wall=time.time())
            line = format_status_line(health)
            if line != last_line:
                print(line, flush=True)
                last_line = line
            if health.lifecycle in ("done", "drained", "error"):
                break
            time.sleep(max(0.05, args.interval))
    except KeyboardInterrupt:
        print("", file=sys.stderr)
    health = fold.health(now_wall=time.time())
    if args.html:
        write_html(args.html, health, events=events)
        print(f"wrote {args.html}")
    if args.json:
        print(json.dumps(health.to_json(), indent=2))
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.exporters import (
        load_spans_jsonl,
        render_flame,
        write_chrome_trace,
    )

    try:
        spans = load_spans_jsonl(args.traces)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not spans:
        print("no spans found", file=sys.stderr)
        return 1
    if args.chrome:
        write_chrome_trace(spans, args.chrome)
        print(f"wrote {args.chrome} ({len(spans)} span(s))")
    if args.flame or not args.chrome:
        print(render_flame(spans))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import generate_report

    try:
        text = generate_report(args.out_dir)
    except Exception as error:  # surfaced as exit status for scripts
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro-timber`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-timber",
        description="TIMBER (DATE 2010) reproduction experiments",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("fig1", help="critical-path distribution") \
        .set_defaults(func=_cmd_fig1)
    sub.add_parser("fig8", help="case-study overhead sweep") \
        .set_defaults(func=_cmd_fig8)

    wave = sub.add_parser("waveforms",
                          help="two-stage error waveforms (Figs. 5/7)")
    wave.add_argument("--style", choices=("ff", "latch"), default="ff")
    wave.add_argument("--vcd", metavar="PATH",
                      help="write a VCD file instead of ASCII art")
    wave.set_defaults(func=_cmd_waveforms)

    sub.add_parser("table1", help="technique comparison table") \
        .set_defaults(func=_cmd_table1)

    deploy = sub.add_parser("deploy",
                            help="deploy TIMBER on a synthetic processor")
    deploy.add_argument("--point", default="medium",
                        choices=("low", "medium", "high"))
    deploy.add_argument("--style", choices=("ff", "latch"), default="ff")
    deploy.add_argument("--checking", type=float, default=30.0,
                        help="checking period, %% of the clock period")
    deploy.add_argument("--no-tb", action="store_true",
                        help="use the 2-ED (no TB interval) layout")
    deploy.set_defaults(func=_cmd_deploy)

    energy = sub.add_parser("energy",
                            help="margin-to-energy conversion per scheme")
    energy.add_argument("--checking", type=float, default=30.0)
    energy.set_defaults(func=_cmd_energy)

    def add_exec_flags(
        cmd: argparse.ArgumentParser, *,
        checkpoint_help: str = ("periodically persist completed tasks "
                                "to this file"),
        resume_help: str = ("replay completed tasks from the "
                            "checkpoint file instead of re-running"),
    ) -> None:
        cmd.add_argument("--workers", type=_positive_int, default=1,
                         help="process-pool size (1 = serial, default)")
        cmd.add_argument("--timeout", type=float, default=None,
                         help="per-task timeout in seconds, counted "
                              "from dispatch to a worker (queue wait "
                              "is never charged)")
        cmd.add_argument("--batch-target-ms", type=float, default=250.0,
                         metavar="MS",
                         help="target wall time per dispatched task "
                              "batch, sized adaptively from observed "
                              "task durations (0 = one task per "
                              "dispatch; default 250)")
        cmd.add_argument("--warm-cache-size", type=int, default=None,
                         metavar="N",
                         help="per-worker warm-cache entries for "
                              "compiled kernels, variability models, "
                              "and task functions (default: "
                              "$REPRO_WARM_CACHE_SIZE or 64; 0 "
                              "disables)")
        cmd.add_argument("--cache-dir", default=None, metavar="PATH",
                         help="result-cache directory (default: "
                              "$REPRO_CACHE_DIR or .repro-cache)")
        cmd.add_argument("--no-cache", action="store_true",
                         help="bypass the on-disk result cache")
        cmd.add_argument("--retries", type=int, default=1,
                         help="extra attempts per failing task "
                              "(default 1)")
        cmd.add_argument("--backoff", type=float, default=0.0,
                         metavar="SECONDS",
                         help="base retry backoff; grows exponentially "
                              "with seeded jitter (default 0 = none)")
        cmd.add_argument("--checkpoint", metavar="PATH",
                         help=checkpoint_help)
        cmd.add_argument("--resume", action="store_true",
                         help=resume_help)
        cmd.add_argument("--obs-out", metavar="DIR",
                         help="enable observability and write metrics "
                              "(Prometheus text + JSON snapshot) and "
                              "spans (JSONL + Chrome trace) to DIR")
        cmd.add_argument("--events", metavar="PATH",
                         help="append the live run-event stream "
                              "(JSONL) here for `repro-timber "
                              "monitor` (default: "
                              "<obs-out>/events.jsonl when --obs-out "
                              "is given, else disabled)")
        cmd.add_argument("--heartbeat", type=float, default=5.0,
                         metavar="SECONDS",
                         help="event-stream heartbeat interval; a "
                              "reader treats a silence longer than "
                              "this as a stale run (default 5)")

    sweep = sub.add_parser(
        "sweep",
        help="run an experiment grid through the parallel sweep runner")
    sweep.add_argument("experiment",
                       choices=("resilience", "throughput", "shootout",
                                "fig1", "fig8"))
    sweep.add_argument("--cycles", type=int, default=None,
                       help="simulated cycles per grid point")
    sweep.add_argument("--seed", type=int, default=None,
                       help="root seed for deterministic per-task seeds")
    add_exec_flags(sweep)
    sweep.add_argument("--summary", metavar="PATH",
                       help="write the machine-readable run summary JSON")
    sweep.set_defaults(func=_cmd_sweep)

    camp = sub.add_parser(
        "campaign",
        help="randomized fault-injection campaign with coverage report")
    camp.add_argument("--target", default="pipeline",
                      choices=("pipeline", "graph", "netlist"))
    camp.add_argument("--schemes", default="plain,timber-ff",
                      help="comma-separated scheme list "
                           "(default: plain,timber-ff)")
    camp.add_argument("--faults", type=_positive_int, default=1000,
                      help="population size per scheme (default 1000)")
    camp.add_argument("--cycles", type=_positive_int, default=2000,
                      help="cycle range faults land in (default 2000)")
    camp.add_argument("--checking", type=float, default=30.0,
                      help="checking period, %% of the clock period")
    camp.add_argument("--stages", type=_positive_int, default=5,
                      help="pipeline depth / chain length (default 5)")
    camp.add_argument("--seed", type=int, default=2010,
                      help="campaign root seed (default 2010)")
    camp.add_argument("--chunk", type=_positive_int, default=25,
                      help="faults per sweep task (default 25)")
    camp.add_argument("--snapshot-stride", type=_positive_int,
                      default=256,
                      help="cycles between background-trajectory "
                           "snapshots for fork-per-fault evaluation "
                           "(default 256)")
    add_exec_flags(camp)
    camp.add_argument("--out", metavar="PATH",
                      help="write the BENCH_campaign.json artefact")
    camp.set_defaults(func=_cmd_campaign)

    soak = sub.add_parser(
        "soak",
        help="continuous streaming fault injection with adaptive "
             "sampling and crash-safe replay")
    soak.add_argument("--target", default="pipeline",
                      choices=("pipeline", "graph", "netlist"))
    soak.add_argument("--scheme", default="timber-ff",
                      help="one scheme per soak stream "
                           "(default: timber-ff)")
    soak.add_argument("--cycles", type=_positive_int, default=2000,
                      help="cycle range faults land in (default 2000)")
    soak.add_argument("--checking", type=float, default=30.0,
                      help="checking period, %% of the clock period")
    soak.add_argument("--stages", type=_positive_int, default=5,
                      help="pipeline depth / chain length (default 5)")
    soak.add_argument("--seed", type=int, default=2010,
                      help="soak root seed (default 2010)")
    soak.add_argument("--chunk", type=_positive_int, default=25,
                      help="faults per sweep task (default 25)")
    soak.add_argument("--snapshot-stride", type=_positive_int,
                      default=256,
                      help="cycles between background-trajectory "
                           "snapshots (default 256)")
    soak.add_argument("--faults-per-round", type=_positive_int,
                      default=200, metavar="N",
                      help="draws per adaptive round (default 200)")
    soak.add_argument("--magnitude-bins", type=_positive_int,
                      default=3, metavar="N",
                      help="magnitude bins per fault kind; strata = "
                           "kinds x bins (default 3)")
    soak.add_argument("--min-weight", type=float, default=None,
                      metavar="W",
                      help="per-stratum sampling weight floor "
                           "(default: half the uniform share)")
    soak.add_argument("--uniform", action="store_true",
                      help="disable adaptive reweighting (uniform "
                           "allocation; the control arm for benches)")
    soak.add_argument("--ring-capacity", type=_positive_int,
                      default=4096, metavar="N",
                      help="bounded draw-ring capacity — caps "
                           "generator run-ahead (default 4096)")
    soak.add_argument("--checkpoint-every", type=_positive_int,
                      default=1, metavar="ROUNDS",
                      help="rounds between checkpoint writes "
                           "(default 1)")
    soak.add_argument("--journal", required=True, metavar="PATH",
                      help="append-only replay journal (fsync per "
                           "round; --resume continues it)")
    soak.add_argument("--max-faults", type=_positive_int, default=None,
                      help="stop after this many total faults")
    soak.add_argument("--max-runtime", type=float, default=None,
                      metavar="SECONDS",
                      help="stop after this much wall time")
    soak.add_argument("--target-ci-width", type=float, default=None,
                      metavar="W",
                      help="stop when every stratum's escape-rate CI "
                           "is at most this wide")
    soak.add_argument("--rounds", type=_positive_int, default=None,
                      help="stop after this many rounds (mostly for "
                           "tests and benches)")
    soak.add_argument("--watchdog", type=float, default=None,
                      metavar="SECONDS",
                      help="per-fault-chunk stall watchdog: alias for "
                           "--timeout (stalled workers are abandoned, "
                           "their work re-dispatched, late results "
                           "adopted)")
    soak.add_argument("--quiet", action="store_true",
                      help="suppress the per-round status line")
    add_exec_flags(
        soak,
        checkpoint_help=("soak-state checkpoint file (atomic "
                         "tmp+rename+fsync; speeds up --resume)"),
        resume_help=("continue a previous soak from its journal "
                     "(and checkpoint, if given) byte-identically"))
    soak.add_argument("--out", metavar="PATH",
                      help="write the machine-readable soak result "
                           "JSON")
    soak.set_defaults(func=_cmd_soak)

    mon = sub.add_parser(
        "monitor",
        help="inspect or follow a run's live event stream")
    mon.add_argument("run_dir", metavar="RUN",
                     help="events.jsonl path, or a directory holding "
                          "events.jsonl or obs/events.jsonl")
    mon.add_argument("--follow", action="store_true",
                     help="keep polling and reprint the status line "
                          "until the run ends (^C to stop)")
    mon.add_argument("--once", action="store_true",
                     help="read the stream once and exit (the default; "
                          "kept explicit for scripts)")
    mon.add_argument("--json", action="store_true",
                     help="print the RunHealth JSON instead of the "
                          "dashboard")
    mon.add_argument("--html", metavar="PATH",
                     help="write a static HTML report")
    mon.add_argument("--interval", type=float, default=1.0,
                     metavar="SECONDS",
                     help="--follow poll interval (default 1)")
    mon.add_argument("--stale-after", type=float, default=None,
                     metavar="SECONDS",
                     help="override the staleness threshold (default: "
                          "the stream's own heartbeat interval)")
    mon.set_defaults(func=_cmd_monitor)

    obs_cmd = sub.add_parser(
        "obs", help="render or merge observability trace files")
    obs_cmd.add_argument("traces", nargs="+", metavar="TRACE",
                         help="span JSONL file(s), e.g. obs/trace.jsonl")
    obs_cmd.add_argument("--chrome", metavar="PATH",
                         help="write the merged spans as a Chrome "
                              "trace-event JSON (Perfetto-loadable)")
    obs_cmd.add_argument("--flame", action="store_true",
                         help="print the terminal flame summary (the "
                              "default when --chrome is not given)")
    obs_cmd.set_defaults(func=_cmd_obs)

    rep = sub.add_parser("report",
                         help="assemble benchmark artefacts into markdown")
    rep.add_argument("--out-dir", default="benchmarks/out")
    rep.add_argument("--output", metavar="PATH",
                     help="write the report to a file instead of stdout")
    rep.set_defaults(func=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
