"""Cycle-level simulation of a whole timing graph under TIMBER.

The linear :class:`~repro.pipeline.pipeline.PipelineSimulation` studies
one pipe; this simulator runs the *entire* flip-flop graph of a design —
the synthetic processor, or any :class:`~repro.timing.graph.TimingGraph`
— cycle by cycle:

* every register-to-register path is (stochastically) sensitized and
  perturbed by the dynamic-variability model;
* each flip-flop captures with its deployed element (TIMBER at protected
  endpoints, conventional elsewhere) using the analytic capture
  semantics of :mod:`repro.core.masking`;
* the error relay carries selects along the graph's critical edges;
* flags feed the central controller, whose temporary slowdown feeds
  back into the next cycles.

For tractability, only *candidate* edges — those that could possibly
arrive late given the worst borrow plus the variability headroom — are
evaluated per cycle; the rest provably never violate and are skipped.

With numpy available (and ``REPRO_SCALAR_KERNELS`` unset) the candidate
edges are additionally compiled into flat arrays: sensitization and
idle-state arrivals are evaluated for blocks of cycles at once, whole
runs of provably clean cycles are skipped in bulk, and only the cycles
whose screen shows a potentially late edge go through the dict-based
borrow/relay bookkeeping — fed the precomputed rows, so vector and
scalar runs are bit-identical.
"""

from __future__ import annotations

import dataclasses
import typing

from repro import kernels, obs
from repro.core.checking_period import CheckingPeriod
from repro.core.masking import (
    CaptureOutcome,
    plain_ff_capture,
    timber_ff_capture,
    timber_latch_capture,
)
from repro.errors import ConfigurationError
from repro.kernels.rng import key_id, mix32, split64
from repro.pipeline.controller import CentralErrorController
from repro.pipeline.hooks import (
    CaptureObserver,
    FaultOverlayLike,
    active_cycles_between as _active_cycles_between,
)
from repro.timing.graph import TimingEdge, TimingGraph
from repro.variability.base import (
    ConstantVariation,
    VariabilityModel,
    supports_batch,
)

#: Domain-separation salt for the edge-sensitization stream (shared
#: with the vector kernel in :mod:`repro.kernels.graph`).
_SENS_SALT = key_id("graph-sens")

_M32 = 0xFFFFFFFF

# Semantic counters, incremented only inside the shared per-cycle state
# machine (which every violating cycle of both execution modes runs
# through), so scalar and vector runs agree bit-for-bit.  ``tb`` masks
# were absorbed silently in a time-borrowing interval; ``ed`` masks
# reached an error-detection interval and flagged the controller.
_OBS_MASKED = obs.REGISTRY.counter(
    "repro_graph_masked_total",
    "Masked graph captures by checking-period interval class",
    labelnames=("interval",))
_OBS_MASKED_TB = _OBS_MASKED.labels(interval="tb")
_OBS_MASKED_ED = _OBS_MASKED.labels(interval="ed")
_OBS_RELAYED = obs.REGISTRY.counter(
    "repro_graph_relayed_total",
    "Masked captures whose >=2-interval borrow proves an upstream "
    "relay increment").labels()
_OBS_ESCAPED = obs.REGISTRY.counter(
    "repro_graph_escaped_total",
    "Failed (unmasked) graph captures",
    labelnames=("protected",))
_OBS_ESCAPED_PROT = _OBS_ESCAPED.labels(protected="yes")
_OBS_ESCAPED_UNPROT = _OBS_ESCAPED.labels(protected="no")
_OBS_RELAY_DEPTH = obs.REGISTRY.histogram(
    "repro_graph_relay_depth_intervals",
    "Borrowed intervals per masked capture (select-chain depth)",
    buckets=(1, 2, 3, 4, 6, 8)).labels()


class WorkloadTraceLike(typing.Protocol):
    """Anything exposing a per-cycle sensitization scale."""

    def scale_at(self, cycle: int) -> float:
        ...  # pragma: no cover - protocol


@dataclasses.dataclass
class GraphPipelineResult:
    """Aggregated outcome of a whole-graph simulation run."""

    scheme: str
    cycles: int
    num_ffs: int
    num_protected: int
    candidate_edges: int
    clean_captures: int = 0
    masked: int = 0
    masked_flagged: int = 0
    failed: int = 0
    failed_unprotected: int = 0
    slow_cycles: int = 0
    max_borrow_ps: int = 0
    flags_per_ff: dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def violations(self) -> int:
        return self.masked + self.failed + self.failed_unprotected

    @property
    def masked_fraction(self) -> float:
        if self.violations == 0:
            return 1.0
        return self.masked / self.violations


class GraphPipelineSimulation:
    """Simulate TIMBER (or nothing) deployed on a timing graph."""

    def __init__(
        self,
        graph: TimingGraph,
        *,
        scheme: str,
        percent_checking: float,
        with_tb_interval: bool = True,
        sensitization_prob: float = 0.01,
        variability: VariabilityModel | None = None,
        max_variability_factor: float = 1.15,
        controller: CentralErrorController | None = None,
        trace: "WorkloadTraceLike | None" = None,
        seed: int = 0,
        faults: "FaultOverlayLike | None" = None,
        capture_observer: "CaptureObserver | None" = None,
    ) -> None:
        if scheme not in ("plain", "timber-ff", "timber-latch"):
            raise ConfigurationError(
                f"scheme must be plain/timber-ff/timber-latch, "
                f"got {scheme!r}"
            )
        if not 0 <= sensitization_prob <= 1:
            raise ConfigurationError("sensitization_prob in [0, 1]")
        if max_variability_factor < 1.0:
            raise ConfigurationError("max variability factor >= 1")
        self.graph = graph
        self.scheme = scheme
        self.seed = seed
        self.sensitization_prob = sensitization_prob
        self.variability = variability or ConstantVariation(1.0)
        self.controller = controller
        #: Optional workload trace scaling the sensitization per cycle.
        self.trace = trace
        #: Optional fault overlay adding extra delay on selected
        #: (cycle, flip-flop) pairs; keys are destination FF names.  The
        #: extra applies only when at least one in-edge was evaluated —
        #: a fault on a path no data traversed this cycle is benign.
        self.faults = faults
        #: Optional callback invoked for every violating capture as
        #: ``observer(cycle, ff_name, outcome, lateness_ps)``.
        self.capture_observer = capture_observer
        if with_tb_interval:
            self.cp = CheckingPeriod.with_tb(graph.period_ps,
                                             percent_checking)
        else:
            self.cp = CheckingPeriod.without_tb(graph.period_ps,
                                                percent_checking)
        # Protected set and relay adjacency come from the graph's
        # memoized criticality view (built once per graph, shared with
        # relay pricing) instead of per-simulation edge rescans.  A
        # critical edge's source that is protected is by construction a
        # through FF, so the view's relay map is exactly the old
        # "critical in-edge from a protected source" adjacency.
        view = graph.criticality().view(percent_checking)
        self.protected = (set() if scheme == "plain"
                          else set(view.endpoints))
        self._relay_srcs: dict[str, list[str]] = {
            ff: list(view.relay_srcs.get(ff, ()))
            for ff in self.protected
        }
        # Candidate edges: could the arrival ever exceed the period?
        # worst case = max borrow carried in + delay * max variability.
        max_borrow = self.cp.checking_ps if self.protected else 0
        self._candidates: dict[str, list[TimingEdge]] = {}
        for ff in graph.ffs:
            edges = [
                e for e in graph.in_edges(ff)
                if max_borrow + e.delay_ps * max_variability_factor
                > graph.period_ps
            ]
            if edges:
                self._candidates[ff] = edges
        # Hot-loop precomputation: per-edge sensitization key ids and
        # variability path names (interned once, never rebuilt per
        # cycle), flat-indexed so the vector kernel and the scalar loop
        # address the same rows.
        self._seed_lanes = split64(seed)
        self._edge_sens_id: dict[TimingEdge, int] = {}
        self._rows: list[tuple[str, list[tuple[int, TimingEdge, int,
                                               str]]]] = []
        flat = 0
        for ff, edges in self._candidates.items():
            entries = []
            for edge in edges:
                sens_id = key_id(f"{edge.src}->{edge.dst}#{edge.delay_ps}")
                self._edge_sens_id[edge] = sens_id
                entries.append((flat, edge, sens_id,
                                f"{edge.src}->{edge.dst}"))
                flat += 1
            self._rows.append((ff, entries))
        self._num_edges = flat
        self._sens_threshold = int(self.sensitization_prob * 2**32)
        self._compiled = None
        # Inter-cycle carried state (borrowed launch offsets and relay
        # selects by FF name).  Reset at the top of every full run;
        # windowed runs (``start_cycle > 0``) continue from whatever a
        # :meth:`restore` installed.
        self._borrow: dict[str, int] = {}
        self._select_out: dict[str, int] = {}

    # -- per-cycle machinery -----------------------------------------------
    def _sens_threshold_at(self, cycle: int) -> int:
        """Integer sensitization threshold in effect on ``cycle``.

        Computed once per cycle (not per edge): the workload trace only
        depends on the cycle, so every edge shares the threshold.
        """
        if self.trace is None:
            return self._sens_threshold
        probability = min(
            1.0, self.sensitization_prob * self.trace.scale_at(cycle))
        return int(probability * 2**32)

    def _edge_sensitized(self, cycle: int, sens_id: int,
                         threshold: int) -> bool:
        lo, hi = self._seed_lanes
        digest = mix32(_SENS_SALT, lo, hi, cycle & _M32, cycle >> 32,
                       sens_id)
        return digest < threshold

    def _sensitized(self, cycle: int, edge: TimingEdge) -> bool:
        return self._edge_sensitized(cycle, self._edge_sens_id[edge],
                                     self._sens_threshold_at(cycle))

    def _capture(self, lateness: int, select_in: int) -> CaptureOutcome:
        if self.scheme == "timber-ff":
            return timber_ff_capture(lateness, select_in, self.cp)
        if self.scheme == "timber-latch":
            return timber_latch_capture(lateness, self.cp)
        return plain_ff_capture(lateness)

    def run(self, num_cycles: int, *, start_cycle: int = 0,
            rows=None) -> GraphPipelineResult:
        """Simulate cycles ``[start_cycle, num_cycles)`` and aggregate.

        A full run (``start_cycle == 0``) starts from idle carried
        state; a windowed run continues from whatever :meth:`restore`
        installed, and — because every sensitization and variability
        draw is addressed by absolute cycle — captures bit-identically
        to the same window of a full run.  ``rows`` optionally supplies
        precomputed background rows from :meth:`background_rows` so
        repeated forked windows skip the per-run block evaluation;
        ignored in scalar-kernel mode.
        """
        if num_cycles < 1:
            raise ConfigurationError("need at least one cycle")
        if not 0 <= start_cycle < num_cycles:
            raise ConfigurationError(
                f"start_cycle {start_cycle} outside [0, {num_cycles})")
        if (start_cycle or rows is not None) and self.controller is not None:
            raise ConfigurationError(
                "windowed runs do not support a central controller "
                "(its window state is not part of the snapshot)")
        if start_cycle == 0:
            self._borrow = {}
            self._select_out = {}
        result = GraphPipelineResult(
            scheme=self.scheme,
            cycles=num_cycles - start_cycle,
            num_ffs=self.graph.num_ffs,
            num_protected=len(self.protected),
            candidate_edges=self._num_edges,
        )
        with obs.trace_span("graph.run", scheme=self.scheme,
                            cycles=num_cycles - start_cycle,
                            kernel=kernels.kernel_mode()):
            if kernels.vectorized_enabled() and self._vectorizable():
                if rows is not None:
                    self._run_rows(start_cycle, num_cycles, result, rows)
                else:
                    self._run_vector(num_cycles, result,
                                     start_cycle=start_cycle)
            else:
                borrow, select_out = self._borrow, self._select_out
                for cycle in range(start_cycle, num_cycles):
                    borrow, select_out = self._simulate_cycle(
                        cycle, result, borrow, select_out, None, None)
                self._borrow, self._select_out = borrow, select_out
        # Captures that saw no (evaluated) violation were clean.
        result.clean_captures = (
            (num_cycles - start_cycle) * self.graph.num_ffs
            - result.violations)
        return result

    # -- snapshot/fork ---------------------------------------------------
    def snapshot(self):
        """Opaque snapshot of all state carried between cycles.

        Sensitization, variability, and arrival draws are pure
        functions of the absolute cycle number, so the carried state is
        just the borrow offsets and relay selects by FF name.
        Controller-attached simulations are rejected: slowdown windows
        accumulate outside the snapshot.
        """
        if self.controller is not None:
            raise ConfigurationError(
                "snapshots do not cover central-controller state")
        return (dict(self._borrow), dict(self._select_out))

    def restore(self, state) -> None:
        """Install a state previously returned by :meth:`snapshot`."""
        if self.controller is not None:
            raise ConfigurationError(
                "snapshots do not cover central-controller state")
        borrow, select_out = state
        self._borrow = dict(borrow)
        self._select_out = dict(select_out)

    def _vectorizable(self) -> bool:
        """Can this configuration run on the block kernel?

        Needs batch-capable variability and, when a controller is
        attached, the ``CentralErrorController`` window interface used
        for bulk slow-cycle accounting; duck-typed feedback controllers
        take the scalar loop.
        """
        if not supports_batch(self.variability):
            return False
        return (self.controller is None
                or hasattr(self.controller, "windows"))

    # -- shared per-cycle state machine ---------------------------------
    def _period_at(self, cycle: int) -> int:
        if self.controller is None:
            return self.graph.period_ps
        return self.controller.period_at(cycle)

    def _simulate_cycle(
        self,
        cycle: int,
        result: GraphPipelineResult,
        borrow: dict[str, int],
        select_out: dict[str, int],
        sens_row,
        arrival_row,
    ) -> tuple[dict[str, int], dict[str, int]]:
        """One cycle of arrival/capture/relay bookkeeping.

        ``sens_row`` / ``arrival_row`` optionally supply the vector
        kernel's precomputed per-edge decisions for this cycle; ``None``
        computes them per edge (the scalar reference).
        """
        period = self._period_at(cycle)
        if period > self.graph.period_ps:
            result.slow_cycles += 1
        threshold = (self._sens_threshold_at(cycle)
                     if sens_row is None else 0)
        new_borrow: dict[str, int] = {}
        new_select_out: dict[str, int] = {}
        cycle_flagged = False
        for ff, entries in self._rows:
            lateness = None
            for flat, edge, sens_id, path in entries:
                launch_offset = borrow.get(edge.src, 0)
                if launch_offset == 0:
                    sensitized = (bool(sens_row[flat])
                                  if sens_row is not None
                                  else self._edge_sensitized(
                                      cycle, sens_id, threshold))
                    if not sensitized:
                        continue
                base = (int(arrival_row[flat])
                        if arrival_row is not None
                        else int(round(edge.delay_ps
                                       * self.variability.factor(cycle,
                                                                 path))))
                late = launch_offset + base - period
                if lateness is None or late > lateness:
                    lateness = late
            if lateness is None:
                continue
            if self.faults is not None:
                # Same reasoning as the linear pipeline: the vector
                # kernel's rows are fault-free and overlay-active
                # cycles always replay here, so adding the extra in
                # the scalar state machine keeps both paths bit-equal.
                lateness += self.faults.extra_delay_ps(cycle, ff)
            if lateness <= 0:
                continue
            if ff in self.protected:
                select_in = max(
                    (select_out.get(src, 0)
                     for src in self._relay_srcs.get(ff, ())),
                    default=0,
                )
                outcome = self._capture(lateness, select_in)
            else:
                outcome = plain_ff_capture(lateness)
            if self.capture_observer is not None:
                # Every outcome here is a violation (lateness > 0), so
                # the observer stream matches the non-clean-only
                # contract shared with the vector path.
                self.capture_observer(cycle, ff, outcome, lateness)
            if outcome.masked:
                result.masked += 1
                new_borrow[ff] = outcome.borrowed_ps
                result.max_borrow_ps = max(result.max_borrow_ps,
                                           outcome.borrowed_ps)
                if outcome.borrowed_intervals:
                    new_select_out[ff] = outcome.borrowed_intervals
                    _OBS_RELAY_DEPTH.observe(outcome.borrowed_intervals)
                    if outcome.borrowed_intervals >= 2:
                        _OBS_RELAYED.inc()
                if outcome.flagged:
                    _OBS_MASKED_ED.inc()
                    result.masked_flagged += 1
                    cycle_flagged = True
                    result.flags_per_ff[ff] = (
                        result.flags_per_ff.get(ff, 0) + 1)
                else:
                    _OBS_MASKED_TB.inc()
            elif outcome.failed:
                if ff in self.protected:
                    result.failed += 1
                    _OBS_ESCAPED_PROT.inc()
                else:
                    result.failed_unprotected += 1
                    _OBS_ESCAPED_UNPROT.inc()
        if cycle_flagged and self.controller is not None:
            self.controller.notify_flag(cycle)
        return new_borrow, new_select_out

    def background_rows(self, num_cycles: int):
        """Precomputed fault-free sens/arrival rows + screen verdicts.

        One vectorized prefix-advance over ``[0, num_cycles)`` (see
        :func:`repro.kernels.graph.background_rows`); the overlay is
        deliberately excluded — forked runs force their own fault
        cycles into the screen slice per fault.
        """
        import numpy as np

        from repro.kernels.graph import background_rows

        self._ensure_compiled()
        if self.trace is None:
            thresholds = np.full(num_cycles, self._sens_threshold,
                                 dtype=np.int64)
        else:
            thresholds = np.array(
                [self._sens_threshold_at(cycle)
                 for cycle in range(num_cycles)], dtype=np.int64)
        return background_rows(self._compiled, self.variability,
                               num_cycles, self.graph.period_ps,
                               thresholds)

    def _run_rows(self, start: int, stop: int,
                  result: GraphPipelineResult, rows) -> None:
        """The vector inner walk fed precomputed background rows.

        Bit-identical to :meth:`_run_vector` over the same window —
        same compiled kernel rows, same idle-skip / carryover-replay
        policy — minus the per-run block evaluation.
        """
        import numpy as np

        from repro.kernels.graph import REPLAYED_CARRYOVER

        sens, arrival, interesting = rows
        count = stop - start
        window = interesting[start:stop]
        if self.faults is not None:
            active = _active_cycles_between(self.faults, start, stop)
            if active:
                window = window.copy()
                for cycle in active:
                    window[cycle - start] = True
        borrow, select_out = self._borrow, self._select_out
        k = 0
        while k < count:
            if not borrow and not select_out:
                ahead = np.flatnonzero(window[k:])
                nxt = k + int(ahead[0]) if ahead.size else count
                if nxt > k:
                    k = nxt
                    if k >= count:
                        break
            if not window[k]:
                REPLAYED_CARRYOVER.inc()
            borrow, select_out = self._simulate_cycle(
                start + k, result, borrow, select_out, sens[start + k],
                arrival[start + k])
            k += 1
        self._borrow, self._select_out = borrow, select_out

    def _ensure_compiled(self) -> None:
        from repro.kernels.graph import CompiledEdges

        if self._compiled is None:
            self._compiled = CompiledEdges.for_entries(
                [(edge.delay_ps,
                  f"{edge.src}->{edge.dst}#{edge.delay_ps}", path)
                 for _, entries in self._rows
                 for _, edge, _, path in entries],
                self.seed,
            )

    # -- vector main loop ------------------------------------------------
    def _run_vector(self, num_cycles: int, result: GraphPipelineResult,
                    *, start_cycle: int = 0) -> None:
        import numpy as np

        from repro.kernels.graph import REPLAYED_CARRYOVER, screen_block
        from repro.kernels.schedule import (
            BlockSizer,
            block_spans,
            slow_cycles_between,
        )

        self._ensure_compiled()
        nominal = self.graph.period_ps
        borrow, select_out = self._borrow, self._select_out
        sizer = BlockSizer()
        for pos, count in block_spans(start_cycle, num_cycles, sizer):
            cycles = np.arange(pos, pos + count, dtype=np.int64)
            if self.trace is None:
                thresholds = np.full(count, self._sens_threshold,
                                     dtype=np.int64)
            else:
                thresholds = np.array(
                    [self._sens_threshold_at(int(c)) for c in cycles],
                    dtype=np.int64)
            sens, arrival = self._compiled.block(cycles, self.variability,
                                                 thresholds)
            # Screen against the *nominal* period: a slowdown only makes
            # arrivals less late, so this marks a superset of the cycles
            # with any idle-state violation.  Fault-bearing cycles are
            # forced interesting — the screen sees only the fault-free
            # arrivals.
            forced = (self.faults.active_mask(cycles)
                      if self.faults is not None else None)
            interesting = screen_block(sens, arrival, nominal, forced)
            replayed = 0
            k = 0
            while k < count:
                if not borrow and not select_out:
                    ahead = np.flatnonzero(interesting[k:])
                    nxt = k + int(ahead[0]) if ahead.size else count
                    if nxt > k:
                        result.slow_cycles += (
                            slow_cycles_between(self.controller.windows,
                                                pos + k, pos + nxt)
                            if self.controller is not None else 0)
                        k = nxt
                        if k >= count:
                            break
                if not interesting[k]:
                    # Replayed only because of borrow/select_out
                    # carryover from a violating predecessor — invisible
                    # to the screen's own counters, so account it here.
                    REPLAYED_CARRYOVER.inc()
                borrow, select_out = self._simulate_cycle(
                    pos + k, result, borrow, select_out, sens[k],
                    arrival[k])
                replayed += 1
                k += 1
            # Feed the sizer the *actual* replayed fraction: carryover
            # replays escape the screen, and sizing on the screen's
            # interesting fraction alone grew blocks during exactly the
            # error storms that degrade to scalar stepping.
            sizer.update(replayed / count if count else 0.0)
        self._borrow, self._select_out = borrow, select_out
