"""Cycle-level simulation of a whole timing graph under TIMBER.

The linear :class:`~repro.pipeline.pipeline.PipelineSimulation` studies
one pipe; this simulator runs the *entire* flip-flop graph of a design —
the synthetic processor, or any :class:`~repro.timing.graph.TimingGraph`
— cycle by cycle:

* every register-to-register path is (stochastically) sensitized and
  perturbed by the dynamic-variability model;
* each flip-flop captures with its deployed element (TIMBER at protected
  endpoints, conventional elsewhere) using the analytic capture
  semantics of :mod:`repro.core.masking`;
* the error relay carries selects along the graph's critical edges;
* flags feed the central controller, whose temporary slowdown feeds
  back into the next cycles.

For tractability, only *candidate* edges — those that could possibly
arrive late given the worst borrow plus the variability headroom — are
evaluated per cycle; the rest provably never violate and are skipped.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.checking_period import CheckingPeriod
from repro.core.masking import (
    CaptureOutcome,
    plain_ff_capture,
    timber_ff_capture,
    timber_latch_capture,
)
from repro.errors import ConfigurationError
from repro.pipeline.controller import CentralErrorController
from repro.timing.graph import TimingEdge, TimingGraph
from repro.variability.base import (
    ConstantVariation,
    VariabilityModel,
    stable_hash,
)


class WorkloadTraceLike(typing.Protocol):
    """Anything exposing a per-cycle sensitization scale."""

    def scale_at(self, cycle: int) -> float:
        ...  # pragma: no cover - protocol


@dataclasses.dataclass
class GraphPipelineResult:
    """Aggregated outcome of a whole-graph simulation run."""

    scheme: str
    cycles: int
    num_ffs: int
    num_protected: int
    candidate_edges: int
    clean_captures: int = 0
    masked: int = 0
    masked_flagged: int = 0
    failed: int = 0
    failed_unprotected: int = 0
    slow_cycles: int = 0
    max_borrow_ps: int = 0
    flags_per_ff: dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def violations(self) -> int:
        return self.masked + self.failed + self.failed_unprotected

    @property
    def masked_fraction(self) -> float:
        if self.violations == 0:
            return 1.0
        return self.masked / self.violations


class GraphPipelineSimulation:
    """Simulate TIMBER (or nothing) deployed on a timing graph."""

    def __init__(
        self,
        graph: TimingGraph,
        *,
        scheme: str,
        percent_checking: float,
        with_tb_interval: bool = True,
        sensitization_prob: float = 0.01,
        variability: VariabilityModel | None = None,
        max_variability_factor: float = 1.15,
        controller: CentralErrorController | None = None,
        trace: "WorkloadTraceLike | None" = None,
        seed: int = 0,
    ) -> None:
        if scheme not in ("plain", "timber-ff", "timber-latch"):
            raise ConfigurationError(
                f"scheme must be plain/timber-ff/timber-latch, "
                f"got {scheme!r}"
            )
        if not 0 <= sensitization_prob <= 1:
            raise ConfigurationError("sensitization_prob in [0, 1]")
        if max_variability_factor < 1.0:
            raise ConfigurationError("max variability factor >= 1")
        self.graph = graph
        self.scheme = scheme
        self.seed = seed
        self.sensitization_prob = sensitization_prob
        self.variability = variability or ConstantVariation(1.0)
        self.controller = controller
        #: Optional workload trace scaling the sensitization per cycle.
        self.trace = trace
        if with_tb_interval:
            self.cp = CheckingPeriod.with_tb(graph.period_ps,
                                             percent_checking)
        else:
            self.cp = CheckingPeriod.without_tb(graph.period_ps,
                                                percent_checking)
        self.protected = (
            set() if scheme == "plain"
            else graph.critical_endpoints(percent_checking)
        )
        # Critical-fanin adjacency for the relay (FF style only).
        threshold = graph.critical_threshold_ps(percent_checking)
        self._relay_srcs: dict[str, list[str]] = {
            ff: sorted({
                e.src for e in graph.in_edges(ff)
                if e.delay_ps >= threshold and e.src in self.protected
            })
            for ff in self.protected
        }
        # Candidate edges: could the arrival ever exceed the period?
        # worst case = max borrow carried in + delay * max variability.
        max_borrow = self.cp.checking_ps if self.protected else 0
        self._candidates: dict[str, list[TimingEdge]] = {}
        for ff in graph.ffs:
            edges = [
                e for e in graph.in_edges(ff)
                if max_borrow + e.delay_ps * max_variability_factor
                > graph.period_ps
            ]
            if edges:
                self._candidates[ff] = edges
        # Hot-loop precomputation: stable per-edge keys and an integer
        # sensitization threshold so the per-(cycle, edge) draw is a
        # single hash compare instead of an RNG construction.
        self._edge_key: dict[TimingEdge, str] = {
            e: f"{e.src}->{e.dst}#{e.delay_ps}"
            for edges in self._candidates.values() for e in edges
        }
        self._sens_threshold = int(self.sensitization_prob * 2**32)

    # -- per-cycle machinery -----------------------------------------------
    def _sensitized(self, cycle: int, edge: TimingEdge) -> bool:
        threshold = self._sens_threshold
        if self.trace is not None:
            probability = min(
                1.0, self.sensitization_prob * self.trace.scale_at(cycle))
            threshold = int(probability * 2**32)
        elif self.sensitization_prob >= 1.0:
            return True
        key = self._edge_key.get(edge)
        if key is None:
            key = f"{edge.src}->{edge.dst}#{edge.delay_ps}"
        digest = stable_hash(self.seed, cycle, key)
        return digest < threshold

    def _capture(self, lateness: int, select_in: int) -> CaptureOutcome:
        if self.scheme == "timber-ff":
            return timber_ff_capture(lateness, select_in, self.cp)
        if self.scheme == "timber-latch":
            return timber_latch_capture(lateness, self.cp)
        return plain_ff_capture(lateness)

    def run(self, num_cycles: int) -> GraphPipelineResult:
        if num_cycles < 1:
            raise ConfigurationError("need at least one cycle")
        result = GraphPipelineResult(
            scheme=self.scheme,
            cycles=num_cycles,
            num_ffs=self.graph.num_ffs,
            num_protected=len(self.protected),
            candidate_edges=sum(len(e) for e in self._candidates.values()),
        )
        borrow: dict[str, int] = {}
        select_out: dict[str, int] = {}
        for cycle in range(num_cycles):
            period = (self.controller.period_at(cycle)
                      if self.controller is not None
                      else self.graph.period_ps)
            if period > self.graph.period_ps:
                result.slow_cycles += 1
            new_borrow: dict[str, int] = {}
            new_select_out: dict[str, int] = {}
            cycle_flagged = False
            for ff, edges in self._candidates.items():
                lateness = None
                for edge in edges:
                    launch_offset = borrow.get(edge.src, 0)
                    if launch_offset == 0 and not self._sensitized(
                            cycle, edge):
                        continue
                    factor = self.variability.factor(
                        cycle, f"{edge.src}->{edge.dst}")
                    arrival = launch_offset + int(
                        round(edge.delay_ps * factor))
                    late = arrival - period
                    if lateness is None or late > lateness:
                        lateness = late
                if lateness is None or lateness <= 0:
                    continue
                if ff in self.protected:
                    select_in = max(
                        (select_out.get(src, 0)
                         for src in self._relay_srcs.get(ff, ())),
                        default=0,
                    )
                    outcome = self._capture(lateness, select_in)
                else:
                    outcome = plain_ff_capture(lateness)
                if outcome.masked:
                    result.masked += 1
                    new_borrow[ff] = outcome.borrowed_ps
                    result.max_borrow_ps = max(result.max_borrow_ps,
                                               outcome.borrowed_ps)
                    if outcome.borrowed_intervals:
                        new_select_out[ff] = outcome.borrowed_intervals
                    if outcome.flagged:
                        result.masked_flagged += 1
                        cycle_flagged = True
                        result.flags_per_ff[ff] = (
                            result.flags_per_ff.get(ff, 0) + 1)
                elif outcome.failed:
                    if ff in self.protected:
                        result.failed += 1
                    else:
                        result.failed_unprotected += 1
            if cycle_flagged and self.controller is not None:
                self.controller.notify_flag(cycle)
            borrow = new_borrow
            select_out = new_select_out
        # Captures that saw no (evaluated) violation were clean.
        result.clean_captures = (
            num_cycles * self.graph.num_ffs - result.violations)
        return result
