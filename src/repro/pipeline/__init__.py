"""Cycle-level pipeline timing simulation.

This package turns the capture semantics of :mod:`repro.core.masking`
into an end-to-end architecture study: a linear pipeline of stages with
per-cycle variability-perturbed delays, capture elements at each boundary
(plain / TIMBER FF / TIMBER latch / Razor / canary), the error relay, and
the central error-control unit that reduces the clock frequency after a
flagged error.
"""

from repro.pipeline.stage import PipelineStage
from repro.pipeline.schemes import (
    CanaryPolicy,
    ClockStallPolicy,
    CapturePolicy,
    DcfPolicy,
    LogicalMaskingPolicy,
    PlainPolicy,
    RazorPolicy,
    SoftEdgePolicy,
    TimberFFPolicy,
    TimberLatchPolicy,
)
from repro.pipeline.controller import CentralErrorController
from repro.pipeline.pipeline import PipelineResult, PipelineSimulation
from repro.pipeline.dvfs import AdaptiveVoltageScaler, VddStep
from repro.pipeline.graph_sim import (
    GraphPipelineResult,
    GraphPipelineSimulation,
)

__all__ = [
    "PipelineStage",
    "CapturePolicy",
    "PlainPolicy",
    "TimberFFPolicy",
    "TimberLatchPolicy",
    "RazorPolicy",
    "CanaryPolicy",
    "DcfPolicy",
    "SoftEdgePolicy",
    "ClockStallPolicy",
    "LogicalMaskingPolicy",
    "CentralErrorController",
    "PipelineResult",
    "PipelineSimulation",
    "AdaptiveVoltageScaler",
    "VddStep",
    "GraphPipelineResult",
    "GraphPipelineSimulation",
]
