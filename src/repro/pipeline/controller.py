"""Central error-control unit (paper Sec. 4).

Error signals from all TIMBER elements are consolidated through an
OR-tree; after the consolidation latency the unit *temporarily reduces
the clock frequency* to bring the timing-error rate down, then restores
nominal speed.  The checking period guarantees
``stages_masked_after_flag`` further error-free cycles after the first
flag (plus the half-cycle from latching on the falling edge), so the
consolidation latency must fit inside that budget — the paper's "error
consolidation latency must be less than 1.5 clock cycles" for the
1 TB + 2 ED configuration.
"""

from __future__ import annotations

import dataclasses
import math

from repro.core.checking_period import CheckingPeriod
from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class SlowdownWindow:
    """One temporary frequency-reduction episode."""

    trigger_cycle: int
    start_cycle: int
    end_cycle: int  # exclusive


class CentralErrorController:
    """Consolidates error flags and manages temporary slowdown.

    Attributes:
        consolidation_latency_ps: OR-tree + decision latency.
        slowdown_factor: Period multiplier during a slowdown window.
        slowdown_cycles: Length of each window in (slow) cycles.
    """

    def __init__(
        self,
        *,
        period_ps: int,
        consolidation_latency_ps: int,
        slowdown_factor: float = 1.25,
        slowdown_cycles: int = 32,
    ) -> None:
        if period_ps <= 0:
            raise ConfigurationError("period must be > 0")
        if consolidation_latency_ps < 0:
            raise ConfigurationError("latency must be >= 0")
        if slowdown_factor < 1.0:
            raise ConfigurationError("slowdown factor must be >= 1.0")
        if slowdown_cycles < 1:
            raise ConfigurationError("slowdown must last >= 1 cycle")
        self.period_ps = period_ps
        self.consolidation_latency_ps = consolidation_latency_ps
        self.slowdown_factor = slowdown_factor
        self.slowdown_cycles = slowdown_cycles
        self.windows: list[SlowdownWindow] = []
        self.flags_received = 0

    # -- budget check ----------------------------------------------------
    def latency_fits(self, cp: CheckingPeriod) -> bool:
        """Whether consolidation completes inside the masked window the
        checking period guarantees after the first flag."""
        return self.consolidation_latency_ps <= cp.consolidation_budget_ps()

    @property
    def reaction_delay_cycles(self) -> int:
        """Cycles between a flag and the slowdown taking effect.

        The flag is latched on the falling edge (half a cycle in), then
        the OR-tree latency elapses, then the frequency change applies
        from the next cycle boundary."""
        raw = 0.5 + self.consolidation_latency_ps / self.period_ps
        return max(1, math.ceil(raw))

    # -- runtime -------------------------------------------------------------
    def notify_flag(self, cycle: int) -> None:
        """An error flag reached the OR-tree during ``cycle``."""
        self.flags_received += 1
        start = cycle + self.reaction_delay_cycles
        if self.windows and self.windows[-1].end_cycle >= start:
            # Extend the active/adjacent window instead of stacking.
            last = self.windows[-1]
            self.windows[-1] = SlowdownWindow(
                trigger_cycle=last.trigger_cycle,
                start_cycle=last.start_cycle,
                end_cycle=max(last.end_cycle,
                              start + self.slowdown_cycles),
            )
            return
        self.windows.append(SlowdownWindow(
            trigger_cycle=cycle,
            start_cycle=start,
            end_cycle=start + self.slowdown_cycles,
        ))

    def period_factor(self, cycle: int) -> float:
        """Clock-period multiplier in effect on ``cycle``."""
        for window in reversed(self.windows):
            if window.start_cycle <= cycle < window.end_cycle:
                return self.slowdown_factor
            if window.end_cycle <= cycle:
                break
        return 1.0

    def period_at(self, cycle: int) -> int:
        """Absolute clock period (ps) in effect on ``cycle``."""
        return int(round(self.period_ps * self.period_factor(cycle)))

    @property
    def slow_cycles_total(self) -> int:
        """Total cycles covered by all slowdown windows so far."""
        return sum(w.end_cycle - w.start_cycle for w in self.windows)
