"""Shared hook protocols for the cycle-level simulators.

Fault campaigns attach to :class:`~repro.pipeline.pipeline.
PipelineSimulation` and :class:`~repro.pipeline.graph_sim.
GraphPipelineSimulation` through two narrow interfaces:

* a **fault overlay** adds extra delay on selected (cycle, site) pairs
  — sites are stage names in the linear pipeline and destination
  flip-flop names in the graph simulator — and can report, for a block
  of cycles, which ones carry an active fault so the vector kernels can
  force those cycles onto the scalar replay path;
* a **capture observer** receives every *non-clean* capture outcome.
  Clean captures never fire it: the vector path bulk-skips provably
  clean cycles, so restricting the stream to violations keeps it
  bit-identical between the scalar and kernel executions.

Both are duck-typed so the campaign layer (or tests) can supply plain
objects without importing simulator internals.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.core.masking import CaptureOutcome

#: ``observer(cycle, site, outcome, lateness_ps)`` — ``site`` is a
#: boundary index (linear pipeline) or flip-flop name (graph).
CaptureObserver = typing.Callable[
    [int, typing.Any, "CaptureOutcome", int], None]


class FaultOverlayLike(typing.Protocol):
    """Extra-delay overlay consulted by the simulators each cycle."""

    def extra_delay_ps(self, cycle: int, key: str) -> int:
        """Extra delay injected at ``key`` on ``cycle`` (0 = none)."""
        ...  # pragma: no cover - protocol

    def active_mask(self, cycles: "np.ndarray") -> "np.ndarray":
        """Bool mask over ``cycles``: True where any fault is active."""
        ...  # pragma: no cover - protocol


def active_cycles_between(overlay: "typing.Any", start: int,
                          stop: int) -> "list[int]":
    """Active fault cycles of ``overlay`` inside ``[start, stop)``.

    Uses the overlay's range query when it has one
    (:meth:`repro.campaign.faults.FaultOverlay.active_cycles_between`
    answers in O(log n)); duck-typed overlays that only implement the
    protocol above fall back to a scan of ``active_cycles()``.  Forked
    windows for late faults mostly contain no active cycle at all, and
    this is what lets ``_run_rows`` skip its screen copy for them.
    """
    query = getattr(overlay, "active_cycles_between", None)
    if query is not None:
        return query(start, stop)
    return [cycle for cycle in overlay.active_cycles()
            if start <= cycle < stop]
