"""Capture policies: per-boundary state machines over the masking rules.

A :class:`CapturePolicy` wraps the pure capture functions of
:mod:`repro.core.masking` with the per-boundary state each scheme needs —
most importantly the TIMBER flip-flop's select relay, which carries the
"how many intervals did my fanin already borrow" information from one
boundary to the next between cycles.
"""

from __future__ import annotations

import abc

from repro.core.checking_period import CheckingPeriod
from repro.core.masking import (
    CaptureOutcome,
    canary_capture,
    clock_stall_capture,
    dcf_capture,
    plain_ff_capture,
    razor_capture,
    soft_edge_capture,
    timber_ff_capture,
    timber_latch_capture,
)
from repro.errors import ConfigurationError


class CapturePolicy(abc.ABC):
    """Capture semantics + state for every boundary of a pipeline."""

    #: Human-readable scheme name (used in reports).
    name: str = "abstract"

    def __init__(self, num_boundaries: int) -> None:
        if num_boundaries < 1:
            raise ConfigurationError("need at least one boundary")
        self.num_boundaries = num_boundaries

    @abc.abstractmethod
    def capture(self, boundary: int, lateness_ps: int) -> CaptureOutcome:
        """Outcome of capturing at ``boundary`` with the given lateness."""

    def end_of_cycle(self, outcomes: list[CaptureOutcome]) -> None:
        """Advance inter-cycle state (relay selects, etc.)."""

    @property
    def replay_penalty_cycles(self) -> int:
        """Recovery cycles charged per detected error (Razor only)."""
        return 0

    def max_borrowable_ps(self) -> int:
        """Worst-case output delay the scheme can impose on a boundary
        (used for hold/short-path budgeting)."""
        return 0

    # -- vector-kernel screening hooks ----------------------------------
    def relay_idle(self) -> bool:
        """No inter-cycle relay state pending.

        When this holds (and no boundary carries borrowed time), a cycle
        whose latenesses all stay at or below
        :meth:`clean_lateness_threshold_ps` is provably all-CLEAN with
        no state change, so the blocked vector loop may account whole
        runs of such cycles without invoking :meth:`capture`.
        """
        return True

    def clean_lateness_threshold_ps(self) -> int:
        """Largest idle-state lateness that still captures CLEAN."""
        return 0

    # -- snapshot/fork hooks --------------------------------------------
    def relay_state(self):
        """Opaque snapshot of the inter-cycle relay state.

        ``None`` means the policy carries no state between cycles; the
        base implementation covers every stateless scheme.  Stateful
        policies (the TIMBER flip-flop's select relay) override both
        hooks so a simulation snapshot can be restored to any stride
        boundary of a fault-free background trajectory.
        """
        return None

    def restore_relay_state(self, state) -> None:
        """Install a state previously returned by :meth:`relay_state`."""
        if state is not None:
            raise ConfigurationError(
                f"policy {self.name!r} is stateless but got relay state "
                f"{state!r}")


class PlainPolicy(CapturePolicy):
    """Conventional flip-flops: no tolerance at all."""

    name = "plain"

    def capture(self, boundary: int, lateness_ps: int) -> CaptureOutcome:
        return plain_ff_capture(lateness_ps)


class TimberFFPolicy(CapturePolicy):
    """TIMBER flip-flops with the error relay between boundaries."""

    name = "timber-ff"

    def __init__(self, num_boundaries: int, cp: CheckingPeriod) -> None:
        super().__init__(num_boundaries)
        self.cp = cp
        self._select_in = [0] * num_boundaries
        self._next_select_in = [0] * num_boundaries

    def capture(self, boundary: int, lateness_ps: int) -> CaptureOutcome:
        outcome = timber_ff_capture(
            lateness_ps, self._select_in[boundary], self.cp,
        )
        # select_out = select_in + 1 on error, else 0; the relay hands it
        # to the *next* boundary for the *next* cycle.
        select_out = outcome.borrowed_intervals if outcome.masked else 0
        downstream = (boundary + 1) % self.num_boundaries
        self._next_select_in[downstream] = select_out
        return outcome

    def end_of_cycle(self, outcomes: list[CaptureOutcome]) -> None:
        self._select_in = self._next_select_in
        self._next_select_in = [0] * self.num_boundaries

    def select_in(self, boundary: int) -> int:
        return self._select_in[boundary]

    def relay_idle(self) -> bool:
        return not any(self._select_in)

    def relay_state(self):
        return (tuple(self._select_in), tuple(self._next_select_in))

    def restore_relay_state(self, state) -> None:
        select_in, next_select_in = state
        if (len(select_in) != self.num_boundaries
                or len(next_select_in) != self.num_boundaries):
            raise ConfigurationError(
                f"relay state covers {len(select_in)} boundaries but the "
                f"policy has {self.num_boundaries}")
        self._select_in = list(select_in)
        self._next_select_in = list(next_select_in)

    def max_borrowable_ps(self) -> int:
        return self.cp.checking_ps


class TimberLatchPolicy(CapturePolicy):
    """TIMBER latches: continuous borrowing, no relay state."""

    name = "timber-latch"

    def __init__(self, num_boundaries: int, cp: CheckingPeriod) -> None:
        super().__init__(num_boundaries)
        self.cp = cp

    def capture(self, boundary: int, lateness_ps: int) -> CaptureOutcome:
        return timber_latch_capture(lateness_ps, self.cp)

    def max_borrowable_ps(self) -> int:
        return self.cp.checking_ps


class RazorPolicy(CapturePolicy):
    """Razor flip-flops: detect + architecture-level replay."""

    name = "razor"

    def __init__(self, num_boundaries: int, window_ps: int,
                 replay_penalty: int = 1) -> None:
        super().__init__(num_boundaries)
        if window_ps <= 0:
            raise ConfigurationError("razor window must be > 0")
        if replay_penalty < 1:
            raise ConfigurationError("replay penalty must be >= 1 cycle")
        self.window_ps = window_ps
        self._replay_penalty = replay_penalty

    def capture(self, boundary: int, lateness_ps: int) -> CaptureOutcome:
        return razor_capture(lateness_ps, self.window_ps)

    @property
    def replay_penalty_cycles(self) -> int:
        return self._replay_penalty


class CanaryPolicy(CapturePolicy):
    """Canary flip-flops: predict inside a standing guard band."""

    name = "canary"

    def __init__(self, num_boundaries: int, guard_ps: int) -> None:
        super().__init__(num_boundaries)
        if guard_ps <= 0:
            raise ConfigurationError("canary guard band must be > 0")
        self.guard_ps = guard_ps

    def capture(self, boundary: int, lateness_ps: int) -> CaptureOutcome:
        return canary_capture(lateness_ps, self.guard_ps)

    def clean_lateness_threshold_ps(self) -> int:
        # Arrivals inside the guard band predict (and flag) even though
        # they meet timing, so "boring" starts a guard band early.
        return -self.guard_ps


class LogicalMaskingPolicy(CapturePolicy):
    """Logical error masking (approximate-circuit style; paper ref. [13]).

    Redundant logic computes each covered output with a smaller delay
    whenever a critical path is exercised, so violations at *covered*
    boundaries are masked combinationally — immediately, with **zero
    time borrowed** and no sequential element at all.  Boundaries
    outside the coverage set behave like plain flip-flops.

    Coverage is deterministic per boundary (a cone either received its
    redundant cover at synthesis time or it did not): boundary ``i`` is
    covered iff its seeded hash falls below ``coverage``.
    """

    name = "logical"

    def __init__(self, num_boundaries: int, coverage: float,
                 seed: int = 0) -> None:
        super().__init__(num_boundaries)
        if not 0 <= coverage <= 1:
            raise ConfigurationError("coverage must be in [0, 1]")
        self.coverage = coverage
        from repro.variability.base import stable_hash

        threshold = int(coverage * 2**32)
        self.covered = frozenset(
            index for index in range(num_boundaries)
            if stable_hash(seed, "logical-cover", index) < threshold
        )

    def capture(self, boundary: int, lateness_ps: int) -> CaptureOutcome:
        if lateness_ps <= 0:
            return plain_ff_capture(lateness_ps)
        if boundary in self.covered:
            # Combinationally masked: correct output was already there.
            return CaptureOutcome(correct_state=True, masked=True)
        return plain_ff_capture(lateness_ps)


class ClockStallPolicy(CapturePolicy):
    """Clock-stall masking: freeze the next edge after a detection.

    ``consolidation_fits`` encodes whether error consolidation across
    all flip-flops completes within one cycle at this clock — the
    assumption the paper challenges for high-performance designs.  Each
    successful stall costs one penalty cycle.
    """

    name = "clock-stall"

    def __init__(self, num_boundaries: int, window_ps: int,
                 consolidation_fits: bool = True) -> None:
        super().__init__(num_boundaries)
        if window_ps <= 0:
            raise ConfigurationError("stall window must be > 0")
        self.window_ps = window_ps
        self.consolidation_fits = consolidation_fits

    def capture(self, boundary: int, lateness_ps: int) -> CaptureOutcome:
        return clock_stall_capture(lateness_ps, self.window_ps,
                                   self.consolidation_fits)

    @property
    def replay_penalty_cycles(self) -> int:
        return 1  # one stalled cycle per masked error


class SoftEdgePolicy(CapturePolicy):
    """Soft-edge flip-flops: fixed silent window, no observability."""

    name = "soft-edge"

    def __init__(self, num_boundaries: int, window_ps: int) -> None:
        super().__init__(num_boundaries)
        if window_ps <= 0:
            raise ConfigurationError("soft-edge window must be > 0")
        self.window_ps = window_ps

    def capture(self, boundary: int, lateness_ps: int) -> CaptureOutcome:
        return soft_edge_capture(lateness_ps, self.window_ps)

    def max_borrowable_ps(self) -> int:
        return self.window_ps


class DcfPolicy(CapturePolicy):
    """Delay-compensation flip-flops: one fixed resample, no relay."""

    name = "dcf"

    def __init__(self, num_boundaries: int, detect_window_ps: int,
                 resample_delay_ps: int) -> None:
        super().__init__(num_boundaries)
        self.detect_window_ps = detect_window_ps
        self.resample_delay_ps = resample_delay_ps

    def capture(self, boundary: int, lateness_ps: int) -> CaptureOutcome:
        return dcf_capture(lateness_ps, self.detect_window_ps,
                           self.resample_delay_ps)

    def max_borrowable_ps(self) -> int:
        return self.resample_delay_ps
