"""Closed-loop adaptive voltage scaling (the margin's classic payoff).

The paper motivates margin recovery with Razor's application: *runtime
voltage/frequency tuning* — lower the supply until the error-resilience
mechanism starts reporting activity, then hold at the edge.  This module
implements that control loop for any scheme that flags errors:

* the scaler is a :class:`~repro.variability.base.VariabilityModel`:
  its delay factor at any cycle follows the supply voltage through the
  alpha-power law;
* it is also a controller in the
  :class:`~repro.pipeline.pipeline.PipelineSimulation` sense: it
  receives ``notify_flag`` and keeps the clock period fixed (voltage,
  not frequency, is the knob);
* every ``window_cycles`` it evaluates the flag count: zero flags →
  step the supply down; more than ``flag_budget`` → step back up.

The figure of merit is :meth:`mean_power_factor`: average dynamic+static
power relative to nominal over the run.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.power.voltage import VoltageModel


@dataclasses.dataclass(frozen=True)
class VddStep:
    """One supply-voltage change in the trajectory."""

    cycle: int
    vdd: float


class AdaptiveVoltageScaler:
    """Flag-driven supply scaling at a fixed clock frequency."""

    def __init__(
        self,
        *,
        period_ps: int,
        model: VoltageModel | None = None,
        window_cycles: int = 256,
        vdd_step: float = 0.01,
        flag_budget: int = 2,
        leakage_fraction: float = 0.3,
    ) -> None:
        if period_ps <= 0:
            raise ConfigurationError("period must be > 0")
        if window_cycles < 1:
            raise ConfigurationError("window must be >= 1 cycle")
        if vdd_step <= 0:
            raise ConfigurationError("vdd step must be > 0")
        if flag_budget < 0:
            raise ConfigurationError("flag budget must be >= 0")
        self.period_ps = period_ps
        self.model = model or VoltageModel()
        self.window_cycles = window_cycles
        self.vdd_step = vdd_step
        self.flag_budget = flag_budget
        self.leakage_fraction = leakage_fraction
        self.vdd = self.model.nominal_vdd
        self.trajectory: list[VddStep] = [VddStep(0, self.vdd)]
        self.flags_received = 0
        self._window_flags = 0
        self._window_end = window_cycles
        self._power_accum = 0.0
        self._cycles_seen = 0

    # -- controller interface (PipelineSimulation) ------------------------
    def notify_flag(self, cycle: int) -> None:
        self._advance_to(cycle)
        self.flags_received += 1
        self._window_flags += 1

    def period_at(self, cycle: int) -> int:
        """Voltage scaling keeps the frequency fixed."""
        self._advance_to(cycle)
        return self.period_ps

    # -- variability interface ------------------------------------------------
    def factor(self, cycle: int, path_id: str) -> float:
        self._advance_to(cycle)
        return self.model.delay_factor(self.vdd)

    # -- control law ------------------------------------------------------
    def _advance_to(self, cycle: int) -> None:
        while cycle >= self._window_end:
            self._close_window(self._window_end)

    def _close_window(self, at_cycle: int) -> None:
        self._power_accum += (
            self.model.total_power_factor(self.vdd,
                                          self.leakage_fraction)
            * self.window_cycles
        )
        self._cycles_seen += self.window_cycles
        if self._window_flags == 0:
            new_vdd = max(self.model.min_vdd, self.vdd - self.vdd_step)
        elif self._window_flags > self.flag_budget:
            new_vdd = min(self.model.nominal_vdd,
                          self.vdd + 2 * self.vdd_step)
        else:
            new_vdd = self.vdd  # at the edge: hold
        if new_vdd != self.vdd:
            self.vdd = new_vdd
            self.trajectory.append(VddStep(at_cycle, new_vdd))
        self._window_flags = 0
        self._window_end += self.window_cycles

    # -- figures of merit -------------------------------------------------
    def mean_power_factor(self) -> float:
        """Average total-power multiplier over the closed windows."""
        if self._cycles_seen == 0:
            return self.model.total_power_factor(
                self.vdd, self.leakage_fraction)
        return self._power_accum / self._cycles_seen

    def energy_savings_percent(self) -> float:
        return 100.0 * (1.0 - self.mean_power_factor())

    @property
    def settled_vdd(self) -> float:
        return self.vdd
