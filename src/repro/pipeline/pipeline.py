"""Cycle-accurate linear-pipeline timing simulation.

The simulation advances cycle by cycle.  On cycle ``n`` the data launched
at boundary ``i-1`` (possibly delayed by time borrowed there) traverses
stage ``i`` and is captured at boundary ``i``:

    ``lateness = borrow[i-1] + stage_delay(n) - period(n)``

The capture policy decides the outcome (clean / masked / detected /
predicted / failed), time borrowed at ``i`` becomes next cycle's launch
offset, flags feed the central error controller, and the controller's
temporary frequency reduction feeds back into ``period(n)`` — the full
TIMBER control loop of the paper's Sec. 4.

Two executions of that loop exist.  The scalar reference walks every
cycle through :meth:`PipelineSimulation._simulate_cycle`.  The vector
path (default when numpy is available; disable with
``REPRO_SCALAR_KERNELS=1``) evaluates stage delays for whole blocks of
cycles through :class:`repro.kernels.pipeline.CompiledStages`, screens
each block for cycles that could capture anything but CLEAN, accounts
the clean runs in bulk, and replays only the interesting cycles through
the same scalar state machine — with the precomputed delays, so both
paths produce bit-identical results.
"""

from __future__ import annotations

import dataclasses

from repro import kernels, obs
from repro.core.masking import CaptureOutcome
from repro.errors import ConfigurationError, TimingViolationError
from repro.pipeline.controller import CentralErrorController
from repro.pipeline.hooks import (
    CaptureObserver,
    FaultOverlayLike,
    active_cycles_between as _active_cycles_between,
)
from repro.pipeline.schemes import CapturePolicy
from repro.pipeline.stage import PipelineStage
from repro.variability.base import (
    ConstantVariation,
    VariabilityModel,
    supports_batch,
)

# Semantic outcome counters: incremented only in the shared scalar
# state machine, which both execution modes route every non-clean
# capture through — so scalar and vector runs agree bit-for-bit.
_OBS_OUTCOMES = obs.REGISTRY.counter(
    "repro_pipeline_outcomes_total",
    "Non-clean pipeline capture outcomes",
    labelnames=("outcome",))
_OBS_MASKED = _OBS_OUTCOMES.labels(outcome="masked")
_OBS_MASKED_FLAGGED = _OBS_OUTCOMES.labels(outcome="masked_flagged")
_OBS_DETECTED = _OBS_OUTCOMES.labels(outcome="detected")
_OBS_PREDICTED = _OBS_OUTCOMES.labels(outcome="predicted")
_OBS_FAILED = _OBS_OUTCOMES.labels(outcome="failed")


@dataclasses.dataclass
class PipelineResult:
    """Aggregated outcome of one pipeline simulation run."""

    scheme: str
    cycles: int
    period_ps: int
    clean: int = 0
    masked: int = 0
    masked_flagged: int = 0
    detected: int = 0
    predicted: int = 0
    failed: int = 0
    replay_cycles: int = 0
    slow_cycles: int = 0
    total_time_ps: int = 0
    max_borrow_ps: int = 0
    borrow_chain_max: int = 0

    @property
    def captures(self) -> int:
        return (self.clean + self.masked + self.detected + self.predicted
                + self.failed)

    @property
    def error_rate(self) -> float:
        """Violations (masked + detected + failed) per capture."""
        if self.captures == 0:
            return 0.0
        return (self.masked + self.detected + self.failed) / self.captures

    @property
    def nominal_time_ps(self) -> int:
        return self.cycles * self.period_ps

    @property
    def throughput_factor(self) -> float:
        """Achieved throughput relative to an error-free nominal run.

        1.0 means no cycles or time were lost to recovery or slowdown."""
        if self.total_time_ps == 0:
            return 1.0
        return self.nominal_time_ps / self.total_time_ps

    @property
    def ipc_loss_percent(self) -> float:
        return 100.0 * (1.0 - self.throughput_factor)


class PipelineSimulation:
    """A linear pipeline with one capture policy at every boundary."""

    def __init__(
        self,
        stages: list[PipelineStage],
        policy: CapturePolicy,
        *,
        period_ps: int,
        controller: CentralErrorController | None = None,
        variability: VariabilityModel | None = None,
        fail_fast: bool = False,
        faults: "FaultOverlayLike | None" = None,
        capture_observer: "CaptureObserver | None" = None,
    ) -> None:
        if not stages:
            raise ConfigurationError("need at least one stage")
        if policy.num_boundaries != len(stages):
            raise ConfigurationError(
                f"policy covers {policy.num_boundaries} boundaries but the "
                f"pipeline has {len(stages)} stages"
            )
        if period_ps <= 0:
            raise ConfigurationError("period must be > 0")
        self.stages = stages
        self.policy = policy
        self.period_ps = period_ps
        self.controller = controller
        self.variability = variability or ConstantVariation(1.0)
        self.fail_fast = fail_fast
        #: Optional fault overlay adding extra delay on selected
        #: (cycle, stage) pairs; keys are stage names.
        self.faults = faults
        #: Optional callback invoked for every non-clean capture as
        #: ``observer(cycle, boundary_index, outcome, lateness_ps)``.
        #: Clean captures never fire it, so the event stream is
        #: identical between the scalar and vector paths (bulk-skipped
        #: cycles are provably clean).
        self.capture_observer = capture_observer
        #: Launch offset (time borrowed) at each boundary, carried across
        #: cycles: boundary i's borrow delays the data it launches into
        #: stage i+1 next cycle.
        self._borrow = [0] * len(stages)
        self._compiled = None

    def run(self, num_cycles: int, *, start_cycle: int = 0,
            rows=None) -> PipelineResult:
        """Simulate cycles ``[start_cycle, num_cycles)`` and aggregate.

        ``start_cycle`` resumes the cycle counter mid-trajectory — the
        counter-based RNG addresses every draw by absolute cycle, so a
        run forked from a :meth:`snapshot` taken at ``start_cycle``
        produces captures bit-identical to the same window of a full
        run from cycle 0.  The result's aggregates cover only the
        simulated window.

        ``rows`` optionally supplies precomputed background rows from
        :meth:`background_rows` so repeated forked windows skip the
        per-run block evaluation; ignored in scalar-kernel mode (the
        scalar reference stays the plain per-cycle loop).
        """
        if num_cycles < 1:
            raise ConfigurationError("need at least one cycle")
        if not 0 <= start_cycle < num_cycles:
            raise ConfigurationError(
                f"start_cycle {start_cycle} outside [0, {num_cycles})")
        if (start_cycle or rows is not None) and self.controller is not None:
            raise ConfigurationError(
                "windowed runs do not support a central controller "
                "(its window state is not part of the snapshot)")
        result = PipelineResult(
            scheme=self.policy.name, cycles=num_cycles - start_cycle,
            period_ps=self.period_ps,
        )
        with obs.trace_span("pipeline.run", scheme=self.policy.name,
                            cycles=num_cycles - start_cycle,
                            kernel=kernels.kernel_mode()):
            if kernels.vectorized_enabled() and self._vectorizable():
                if rows is not None:
                    self._run_rows(start_cycle, num_cycles, result, rows)
                else:
                    self._run_vector(num_cycles, result,
                                     start_cycle=start_cycle)
            else:
                chain = 0
                for cycle in range(start_cycle, num_cycles):
                    chain = self._simulate_cycle(cycle, result, chain,
                                                 None)
        result.total_time_ps += result.replay_cycles * self.period_ps
        return result

    def background_rows(self, num_cycles: int):
        """Precomputed fault-free delay rows + screen for forked runs.

        One vectorized prefix-advance over ``[0, num_cycles)`` (see
        :func:`repro.kernels.pipeline.background_rows`); the overlay is
        deliberately excluded — forked runs force their own fault
        cycles into the screen slice per fault.
        """
        from repro.kernels.pipeline import CompiledStages, background_rows

        if self._compiled is None:
            self._compiled = CompiledStages.for_stages(self.stages)
        return background_rows(
            self._compiled, self.variability, num_cycles,
            self.period_ps, self.policy.clean_lateness_threshold_ps())

    def _run_rows(self, start: int, stop: int, result: PipelineResult,
                  rows) -> None:
        """The vector inner walk fed precomputed background rows.

        Bit-identical to :meth:`_run_vector` over the same window: the
        rows come from the same compiled kernel, and the walk applies
        the same idle-skip / scalar-replay policy — only the per-run
        block evaluation is skipped.
        """
        import numpy as np

        delays, interesting = rows
        count = stop - start
        window = interesting[start:stop]
        if self.faults is not None:
            active = _active_cycles_between(self.faults, start, stop)
            if active:
                window = window.copy()
                for cycle in active:
                    window[cycle - start] = True
        num_stages = len(self.stages)
        chain = 0
        k = 0
        while k < count:
            if self._idle():
                ahead = np.flatnonzero(window[k:])
                nxt = k + int(ahead[0]) if ahead.size else count
                if nxt > k:
                    clean = nxt - k
                    result.clean += clean * num_stages
                    result.total_time_ps += clean * self.period_ps
                    chain = 0
                    k = nxt
                    if k >= count:
                        break
            chain = self._simulate_cycle(start + k, result, chain,
                                         delays[start + k])
            k += 1

    # -- snapshot/fork ---------------------------------------------------
    def snapshot(self):
        """Opaque snapshot of all state carried between cycles.

        Stage delays and variability factors are pure functions of the
        absolute cycle number (counter-based RNG), so the only mutable
        inter-cycle state is the borrow vector and the policy's relay
        machine.  Controller-attached simulations are rejected: the
        controller accumulates slowdown windows that a snapshot does
        not capture.
        """
        if self.controller is not None:
            raise ConfigurationError(
                "snapshots do not cover central-controller state")
        return (tuple(self._borrow), self.policy.relay_state())

    def restore(self, state) -> None:
        """Install a state previously returned by :meth:`snapshot`."""
        if self.controller is not None:
            raise ConfigurationError(
                "snapshots do not cover central-controller state")
        borrow, relay = state
        if len(borrow) != len(self.stages):
            raise ConfigurationError(
                f"snapshot covers {len(borrow)} boundaries but the "
                f"pipeline has {len(self.stages)} stages")
        self._borrow = list(borrow)
        self.policy.restore_relay_state(relay)

    def _vectorizable(self) -> bool:
        """Can this configuration run on the block kernel?

        The vector path precomputes a whole block of stage delays and
        accounts clean runs through the controller's slowdown windows,
        so it needs batch-capable variability and (when a controller is
        attached) the ``CentralErrorController`` window interface.
        Duck-typed feedback controllers — e.g. the adaptive voltage
        scaler, whose delay factor depends on flags raised earlier in
        the block — must take the scalar loop.
        """
        if not supports_batch(self.variability):
            return False
        return self.controller is None or (
            hasattr(self.controller, "slowdown_factor")
            and hasattr(self.controller, "windows"))

    # -- shared per-cycle state machine ---------------------------------
    def _period_at(self, cycle: int) -> int:
        if self.controller is None:
            return self.period_ps
        return self.controller.period_at(cycle)

    def _simulate_cycle(
        self,
        cycle: int,
        result: PipelineResult,
        chain_length: int,
        delay_row,
    ) -> int:
        """One cycle of capture/borrow/relay bookkeeping.

        ``delay_row`` optionally supplies precomputed per-stage delays
        (from the vector kernel); ``None`` computes them per stage.
        Returns the updated borrow-chain length.
        """
        period = self._period_at(cycle)
        if period > self.period_ps:
            result.slow_cycles += 1
        outcomes: list[CaptureOutcome] = []
        new_borrow = [0] * len(self.stages)
        cycle_flagged = False
        cycle_masked = False
        for index, stage in enumerate(self.stages):
            upstream = (index - 1) % len(self.stages)
            delay = (int(delay_row[index]) if delay_row is not None
                     else stage.delay_ps(cycle, self.variability))
            if self.faults is not None:
                # The overlay rides on top of the base delay in both
                # execution modes: the vector kernel precomputes only
                # the fault-free rows and forces overlay-active cycles
                # onto this scalar replay, so adding the extra here
                # keeps the two paths bit-identical.
                delay += self.faults.extra_delay_ps(cycle, stage.name)
            lateness = self._borrow[upstream] + delay - period
            outcome = self.policy.capture(index, lateness)
            outcomes.append(outcome)
            self._account(result, outcome)
            if self.capture_observer is not None and (
                    outcome.masked or outcome.detected
                    or outcome.predicted or outcome.flagged
                    or outcome.failed):
                self.capture_observer(cycle, index, outcome, lateness)
            if outcome.masked:
                cycle_masked = True
                new_borrow[index] = outcome.borrowed_ps
                result.max_borrow_ps = max(result.max_borrow_ps,
                                           outcome.borrowed_ps)
            if outcome.flagged:
                cycle_flagged = True
            if outcome.failed and self.fail_fast:
                raise TimingViolationError(
                    f"unmaskable violation at boundary {index} "
                    f"(stage {stage.name!r}) on cycle {cycle}: "
                    f"lateness {lateness} ps"
                )
            if outcome.detected:
                result.replay_cycles += self.policy.replay_penalty_cycles
        chain_length = chain_length + 1 if cycle_masked else 0
        result.borrow_chain_max = max(result.borrow_chain_max,
                                      chain_length)
        if cycle_flagged and self.controller is not None:
            self.controller.notify_flag(cycle)
        self.policy.end_of_cycle(outcomes)
        self._borrow = new_borrow
        result.total_time_ps += period
        return chain_length

    # -- vector main loop ------------------------------------------------
    def _idle(self) -> bool:
        """No carried state: every lateness equals delay - period."""
        return not any(self._borrow) and self.policy.relay_idle()

    def _run_vector(self, num_cycles: int, result: PipelineResult,
                    *, start_cycle: int = 0) -> None:
        import numpy as np

        from repro.kernels.pipeline import CompiledStages, screen_block
        from repro.kernels.schedule import (
            BlockSizer,
            block_spans,
            slow_cycles_between,
        )

        if self._compiled is None:
            self._compiled = CompiledStages.for_stages(self.stages)
        threshold = self.policy.clean_lateness_threshold_ps()
        num_stages = len(self.stages)
        slow_period = (
            int(round(self.period_ps * self.controller.slowdown_factor))
            if self.controller is not None else self.period_ps)
        sizer = BlockSizer()
        chain = 0
        for pos, count in block_spans(start_cycle, num_cycles, sizer):
            cycles = np.arange(pos, pos + count, dtype=np.int64)
            delays = self._compiled.delay_block(cycles, self.variability)
            # Screen against the *nominal* period: slowdown windows only
            # lengthen the period, so this marks a superset of the
            # cycles that could capture anything but CLEAN while idle.
            # Fault-bearing cycles are forced interesting — the screen
            # sees only the fault-free delays.
            forced = (self.faults.active_mask(cycles)
                      if self.faults is not None else None)
            interesting = screen_block(delays, self.period_ps, threshold,
                                       forced)
            k = 0
            while k < count:
                if self._idle():
                    ahead = np.flatnonzero(interesting[k:])
                    nxt = k + int(ahead[0]) if ahead.size else count
                    if nxt > k:
                        clean = nxt - k
                        slow = (slow_cycles_between(
                                    self.controller.windows,
                                    pos + k, pos + nxt)
                                if self.controller is not None else 0)
                        result.slow_cycles += slow
                        result.clean += clean * num_stages
                        result.total_time_ps += (
                            (clean - slow) * self.period_ps
                            + slow * slow_period)
                        chain = 0
                        k = nxt
                        if k >= count:
                            break
                chain = self._simulate_cycle(pos + k, result, chain,
                                             delays[k])
                k += 1
            sizer.update(float(interesting.mean()))

    @staticmethod
    def _account(result: PipelineResult, outcome: CaptureOutcome) -> None:
        if outcome.failed:
            result.failed += 1
            _OBS_FAILED.inc()
        elif outcome.masked:
            result.masked += 1
            _OBS_MASKED.inc()
            if outcome.flagged:
                result.masked_flagged += 1
                _OBS_MASKED_FLAGGED.inc()
        elif outcome.detected:
            result.detected += 1
            _OBS_DETECTED.inc()
        elif outcome.predicted:
            result.predicted += 1
            _OBS_PREDICTED.inc()
        else:
            result.clean += 1
