"""Pipeline stage delay model."""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.kernels.rng import key_id, mix32, split64, uniform01
from repro.variability.base import VariabilityModel

#: Domain-separation salt for the stage-sensitization draw stream.
SENS_SALT = key_id("stage-sens")

_M32 = 0xFFFFFFFF


@dataclasses.dataclass(frozen=True)
class PipelineStage:
    """One stage of combinational logic between register boundaries.

    Per cycle, the stage either sensitizes its critical path (probability
    ``sensitization_prob``) or exercises a typical shorter path.  The
    chosen nominal delay is then scaled by the dynamic-variability model.

    The sensitization draw is a single uniform from the integer-lane
    mixer of :mod:`repro.kernels.rng` over (seed, name, cycle), so the
    vector kernels reproduce it bit for bit in batch.

    Attributes:
        name: Stage label (also the variability path id).
        critical_delay_ps: Sign-off worst-case delay.
        typical_delay_ps: Delay of the typically exercised logic.
        sensitization_prob: Per-cycle probability the critical path is
            exercised (paper Sec. 3: ~1e-3 for top paths; pipeline-level
            studies often use larger values to reach statistical
            significance in short runs).
        seed: Sensitization RNG seed.
    """

    name: str
    critical_delay_ps: int
    typical_delay_ps: int
    sensitization_prob: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.critical_delay_ps <= 0:
            raise ConfigurationError(f"{self.name}: critical delay must be > 0")
        if not 0 < self.typical_delay_ps <= self.critical_delay_ps:
            raise ConfigurationError(
                f"{self.name}: typical delay must be in "
                f"(0, critical_delay_ps]"
            )
        if not 0 <= self.sensitization_prob <= 1:
            raise ConfigurationError(
                f"{self.name}: sensitization probability must be in [0, 1]"
            )

    def sensitized(self, cycle: int) -> bool:
        """Whether the critical path is exercised on ``cycle``."""
        if self.sensitization_prob >= 1.0:
            return True
        if self.sensitization_prob <= 0.0:
            return False
        lo, hi = split64(self.seed)
        h = mix32(SENS_SALT, lo, hi, key_id(self.name),
                  cycle & _M32, cycle >> 32)
        return uniform01(h) < self.sensitization_prob

    def delay_ps(self, cycle: int, variability: VariabilityModel) -> int:
        """Actual stage delay on ``cycle`` under ``variability``."""
        nominal = (self.critical_delay_ps if self.sensitized(cycle)
                   else self.typical_delay_ps)
        return int(round(nominal * variability.factor(cycle, self.name)))
