"""Pipeline stage delay model."""

from __future__ import annotations

import dataclasses
import random

from repro.errors import ConfigurationError
from repro.variability.base import VariabilityModel, stable_hash


@dataclasses.dataclass(frozen=True)
class PipelineStage:
    """One stage of combinational logic between register boundaries.

    Per cycle, the stage either sensitizes its critical path (probability
    ``sensitization_prob``) or exercises a typical shorter path.  The
    chosen nominal delay is then scaled by the dynamic-variability model.

    Attributes:
        name: Stage label (also the variability path id).
        critical_delay_ps: Sign-off worst-case delay.
        typical_delay_ps: Delay of the typically exercised logic.
        sensitization_prob: Per-cycle probability the critical path is
            exercised (paper Sec. 3: ~1e-3 for top paths; pipeline-level
            studies often use larger values to reach statistical
            significance in short runs).
        seed: Sensitization RNG seed.
    """

    name: str
    critical_delay_ps: int
    typical_delay_ps: int
    sensitization_prob: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.critical_delay_ps <= 0:
            raise ConfigurationError(f"{self.name}: critical delay must be > 0")
        if not 0 < self.typical_delay_ps <= self.critical_delay_ps:
            raise ConfigurationError(
                f"{self.name}: typical delay must be in "
                f"(0, critical_delay_ps]"
            )
        if not 0 <= self.sensitization_prob <= 1:
            raise ConfigurationError(
                f"{self.name}: sensitization probability must be in [0, 1]"
            )

    def sensitized(self, cycle: int) -> bool:
        """Whether the critical path is exercised on ``cycle``."""
        if self.sensitization_prob >= 1.0:
            return True
        if self.sensitization_prob <= 0.0:
            return False
        rng = random.Random(stable_hash(self.seed, "sens", self.name, cycle))
        return rng.random() < self.sensitization_prob

    def delay_ps(self, cycle: int, variability: VariabilityModel) -> int:
        """Actual stage delay on ``cycle`` under ``variability``."""
        nominal = (self.critical_delay_ps if self.sensitized(cycle)
                   else self.typical_delay_ps)
        return int(round(nominal * variability.factor(cycle, self.name)))
