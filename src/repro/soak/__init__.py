"""Continuous soak mode: open-ended streaming fault injection.

Where :mod:`repro.campaign` answers *"what does this scheme do over a
fixed population of N faults?"*, ``repro.soak`` answers the operational
question behind online error resilience: *"keep injecting until we are
confident"*.  A soak run streams stratified fault draws — one stratum
per (fault kind x magnitude bin) — through the same per-fault
evaluators a batch campaign uses, updates per-stratum escape-rate
estimates with Wilson confidence intervals incrementally, and reweights
the next round of draws toward the strata whose intervals are still
wide (with a weight floor so no stratum starves, and uniform-weight
stratified estimates so adaptive allocation never biases the headline
escape rate).

Determinism model: the run proceeds in *rounds*.  The sampler weights
for round ``r`` are a pure function of the estimator state after rounds
``[0, r)``; every draw is counter-based per stratum (pure in the seed,
stratum key, and the stratum's own draw counter); outcomes are pure in
the drawn specs.  The whole stream is therefore a pure function of
``(config, number of rounds)`` — which is what makes the append-only
journal prefix-stable, any journal window replayable bit-identically,
and a SIGKILL-interrupted run resumable to the byte.

Modules:

* :mod:`repro.soak.estimators` — per-stratum outcome counts, Wilson
  intervals, uniform-weight stratified combination;
* :mod:`repro.soak.sampler` — CI-width-proportional weights with a
  floor, largest-remainder integer allocation (no RNG);
* :mod:`repro.soak.generator` — strata construction and counter-based
  spec draws (:func:`repro.campaign.faults.draw_spec`);
* :mod:`repro.soak.ring` — the bounded draw buffer between generator
  and chunk assembly (backpressure bounds generator run-ahead);
* :mod:`repro.soak.journal` — fsync-per-record append-only JSONL with
  torn-tail recovery;
* :mod:`repro.soak.driver` — the round loop: allocate, draw, dispatch
  through :class:`repro.exec.SweepRunner`, update, journal, checkpoint.
"""

from repro.soak.driver import (
    SOAK_TASK,
    SoakCheckpoint,
    SoakConfig,
    SoakResult,
    replay_round,
    run_soak,
    soak_chunk_task,
    soak_state_from_journal,
)
from repro.soak.estimators import (
    EscapeEstimator,
    StratumStats,
    wilson_interval,
)
from repro.soak.generator import (
    Stratum,
    build_strata,
    spec_for_draw,
    stratum_lanes,
)
from repro.soak.journal import JournalCorrupt, SoakJournal
from repro.soak.ring import SoakRing
from repro.soak.sampler import AdaptiveSampler, allocate_counts

__all__ = [
    "AdaptiveSampler",
    "EscapeEstimator",
    "JournalCorrupt",
    "SOAK_TASK",
    "SoakCheckpoint",
    "SoakConfig",
    "SoakJournal",
    "SoakResult",
    "SoakRing",
    "Stratum",
    "StratumStats",
    "allocate_counts",
    "build_strata",
    "replay_round",
    "run_soak",
    "soak_chunk_task",
    "soak_state_from_journal",
    "spec_for_draw",
    "stratum_lanes",
    "wilson_interval",
]
