"""Append-only, fsync-per-record soak journal with torn-tail recovery.

The journal is the soak run's replay log: one JSON line per completed
round holding everything needed to regenerate and re-verify that round
— the sampler weights in force, the draw descriptors ``(stratum key,
counter start, count)``, the per-stratum outcome-class counts, and a
SHA-256 digest of the classified outcomes (chained to the previous
record's digest, so any prefix has a single summarizing hash).  Records
carry **no wall-clock data**: the journal of a run is a pure function
of its configuration and length, so an interrupted run's journal is a
byte-exact prefix of the uninterrupted run's — the property the chaos
drill pins.

Durability protocol: every ``append`` writes one complete line, flushes
and ``fsync``s before returning, so a record either exists entirely or
is the file's final, possibly-torn line.  ``open_resume`` detects a
torn tail (missing newline or unparseable last line) and truncates it
in place; corruption anywhere *before* the tail cannot be caused by a
crash under this protocol and raises :class:`JournalCorrupt` instead of
being silently dropped.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import typing

from repro.errors import ReproError

JOURNAL_SCHEMA_VERSION = 1


class JournalCorrupt(ReproError):
    """The journal is damaged in a way a crash cannot explain."""


def record_digest(prev_digest: str, payload: typing.Any) -> str:
    """Chained SHA-256 over a canonical JSON encoding of ``payload``."""
    encoded = json.dumps(payload, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(prev_digest.encode("ascii")
                          + encoded).hexdigest()


class SoakJournal:
    """One soak run's append-only JSONL record stream."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = pathlib.Path(path)
        self._handle: typing.IO[bytes] | None = None

    # -- opening -----------------------------------------------------------
    def open_fresh(self, header: dict) -> None:
        """Start a new journal, replacing any existing file."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(self.path, "wb")
        try:
            self._write_line(handle, {"type": "header",
                                      "schema": JOURNAL_SCHEMA_VERSION,
                                      **header})
        except BaseException:
            handle.close()
            raise
        self._handle = handle
        self._fsync_dir()

    def open_resume(self) -> tuple[dict | None, list[dict]]:
        """Reopen for appending; return (header, complete records).

        A missing or empty file yields ``(None, [])`` — the caller
        starts fresh.  A torn final line is truncated in place before
        the file is reopened for appending.
        """
        try:
            raw = self.path.read_bytes()
        except OSError:
            raw = b""
        header: dict | None = None
        records: list[dict] = []
        good_end = 0
        if raw:
            header, records, good_end = self._scan(raw)
            if good_end < len(raw):
                with open(self.path, "rb+") as handle:
                    handle.truncate(good_end)
                    handle.flush()
                    os.fsync(handle.fileno())
        if header is None:
            return None, []
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "ab")
        return header, records

    @classmethod
    def read(cls, path: str | os.PathLike
             ) -> tuple[dict | None, list[dict]]:
        """Parse a journal without opening it for writing.

        Tolerates a torn tail (ignored, not truncated); raises
        :class:`JournalCorrupt` on mid-file damage, like resume.
        """
        try:
            raw = pathlib.Path(path).read_bytes()
        except OSError:
            return None, []
        if not raw:
            return None, []
        header, records, _ = cls(path)._scan(raw)
        return header, records

    def _scan(self, raw: bytes) -> tuple[dict | None, list[dict], int]:
        """Parse ``raw`` into (header, records, last good byte offset).

        Only the final line may fail to parse (torn append); an
        unparseable line with complete lines after it is corruption.
        """
        header: dict | None = None
        records: list[dict] = []
        offset = 0
        # Splitting on newline leaves the unterminated tail (if any) as
        # the final segment; ``lines[:-1]`` is therefore exactly the
        # newline-terminated lines — an unterminated tail is torn by
        # definition (a record and its newline are one write).
        segments = raw.split(b"\n")[:-1]
        for index, line in enumerate(segments):
            try:
                record = json.loads(line.decode("utf-8"))
                if not isinstance(record, dict):
                    raise ValueError("journal line is not an object")
            except (ValueError, UnicodeDecodeError) as error:
                if index == len(segments) - 1:
                    # Torn terminated line (the crash landed after a
                    # byte that happens to be a newline) — drop it.
                    return header, records, offset
                raise JournalCorrupt(
                    f"{self.path}: unreadable record "
                    f"{index} ({error}) with records after it"
                ) from error
            offset += len(line) + 1
            if index == 0:
                if record.get("type") != "header":
                    raise JournalCorrupt(
                        f"{self.path}: first record is not a header")
                if record.get("schema") != JOURNAL_SCHEMA_VERSION:
                    raise JournalCorrupt(
                        f"{self.path}: schema {record.get('schema')!r} "
                        f"(expected {JOURNAL_SCHEMA_VERSION})")
                header = record
            else:
                records.append(record)
        return header, records, offset

    # -- appending ---------------------------------------------------------
    def append(self, record: dict) -> None:
        """Durably append one record (write + flush + fsync)."""
        if self._handle is None:
            raise ReproError("journal used before open")
        self._write_line(self._handle, record)

    @staticmethod
    def _write_line(handle: typing.IO[bytes], record: dict) -> None:
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        handle.write(line + b"\n")
        handle.flush()
        os.fsync(handle.fileno())

    def _fsync_dir(self) -> None:
        try:
            dir_fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - exotic filesystems
            return
        try:
            os.fsync(dir_fd)
        except OSError:  # pragma: no cover
            pass
        finally:
            os.close(dir_fd)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SoakJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
