"""Bounded draw ring between the fault generator and chunk assembly.

The soak generator can mint draws far faster than workers evaluate
them; the ring is the explicit bound on that run-ahead.  The driver
pumps it in a strict alternation — fill until full or the round's
draws are exhausted, then drain whole chunks to the dispatcher — so
memory is capped at ``capacity`` pending draws regardless of round
size, and the backpressure point is visible in the code (and in the
``repro_soak_ring_depth`` gauge) rather than hidden in queue growth.

Single-threaded by design, like the rest of the driver: the exec layer
owns all parallelism, so the ring needs no locks — ``push`` simply
refuses when full and the caller switches to draining.
"""

from __future__ import annotations

import collections
import typing

from repro.errors import ConfigurationError


class SoakRing:
    """A bounded FIFO of pending draws with explicit backpressure."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError("ring capacity must be >= 1")
        self.capacity = capacity
        self._items: collections.deque = collections.deque()
        #: Total draws ever accepted (monotonic; telemetry only).
        self.accepted = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def free(self) -> int:
        return self.capacity - len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def push(self, item: typing.Any) -> bool:
        """Accept one draw; ``False`` (backpressure) when full."""
        if self.full:
            return False
        self._items.append(item)
        self.accepted += 1
        return True

    def fill_from(self, source: typing.Iterator) -> int:
        """Pull from ``source`` until the ring is full or it is dry.

        Returns the number of draws accepted.  The generator's
        position advances exactly that far — the un-pulled remainder
        stays in ``source`` for the next fill, which is the
        backpressure contract.
        """
        accepted = 0
        while not self.full:
            try:
                item = next(source)
            except StopIteration:
                break
            self._items.append(item)
            accepted += 1
        self.accepted += accepted
        return accepted

    def take(self, count: int) -> list:
        """Remove and return up to ``count`` draws, FIFO order."""
        if count < 0:
            raise ConfigurationError("take count must be >= 0")
        out = []
        while self._items and len(out) < count:
            out.append(self._items.popleft())
        return out
