"""Adaptive round allocation: CI-width weights, floored, no RNG.

The sampler decides how many of the next round's draws each stratum
gets.  Three properties are load-bearing:

* **Deterministic.**  Weights are a pure float function of the
  estimator's counts; integer allocation uses the largest-remainder
  method with ties broken by stratum order.  No random draw anywhere —
  the journal logs the weights per round, and replaying the estimator
  over any journal prefix reproduces them bit-for-bit.
* **Floored.**  Every stratum's weight is clamped below by
  ``min_weight`` (default: half its uniform share), so a stratum whose
  interval happens to narrow early keeps receiving a trickle of draws —
  a nonstationarity hedge, and the reason the unbiased stratified
  estimate (:meth:`repro.soak.estimators.EscapeEstimator.overall`)
  keeps gaining precision in every cell.
* **Unbiased downstream.**  Allocation shifts *precision*, never the
  estimate: the estimator combines strata with uniform weights
  regardless of how many samples each received.
"""

from __future__ import annotations

import math
import typing

from repro.errors import ConfigurationError
from repro.soak.estimators import EscapeEstimator


def allocate_counts(weights: typing.Sequence[float],
                    total: int) -> list[int]:
    """Split ``total`` draws proportionally to ``weights``.

    Largest-remainder (Hamilton) apportionment: each stratum gets the
    floor of its exact share, and the leftover units go to the largest
    fractional remainders, ties broken by position.  Deterministic, and
    off by at most one unit per stratum from the exact shares.
    """
    if total < 0:
        raise ConfigurationError("total draws must be >= 0")
    if not weights or any(w < 0 for w in weights):
        raise ConfigurationError("weights must be non-negative")
    scale = sum(weights)
    if scale <= 0.0:
        raise ConfigurationError("weights must not all be zero")
    exact = [w / scale * total for w in weights]
    counts = [math.floor(x) for x in exact]
    leftover = total - sum(counts)
    order = sorted(range(len(weights)),
                   key=lambda i: (-(exact[i] - counts[i]), i))
    for i in order[:leftover]:
        counts[i] += 1
    return counts


class AdaptiveSampler:
    """CI-width-proportional stratum weights with a starvation floor.

    ``adaptive=False`` degrades to uniform weights through the same
    code path — the control arm for the adaptive-vs-uniform bench.
    """

    def __init__(self, strata_keys: typing.Sequence[str], *,
                 min_weight: float | None = None,
                 adaptive: bool = True) -> None:
        if not strata_keys:
            raise ConfigurationError("need at least one stratum")
        self.keys = tuple(strata_keys)
        uniform = 1.0 / len(self.keys)
        self.min_weight = (0.5 * uniform if min_weight is None
                           else float(min_weight))
        if not 0.0 <= self.min_weight <= uniform:
            raise ConfigurationError(
                f"min_weight must be in [0, {uniform}] for "
                f"{len(self.keys)} strata, got {self.min_weight}")
        self.adaptive = adaptive

    def weights(self, estimator: EscapeEstimator) -> dict[str, float]:
        """Next-round weights from the estimator's current intervals.

        Raw weights are the Wilson CI widths, normalized, then mapped
        affinely onto ``[min_weight, ...]`` so the floor holds exactly
        and the total stays 1.  All-zero widths (every stratum fully
        resolved) fall back to uniform.
        """
        uniform = 1.0 / len(self.keys)
        if not self.adaptive:
            return {key: uniform for key in self.keys}
        widths = [estimator.stats(key).ci_width for key in self.keys]
        scale = sum(widths)
        if scale <= 0.0:
            return {key: uniform for key in self.keys}
        spread = 1.0 - len(self.keys) * self.min_weight
        return {
            key: self.min_weight + spread * (width / scale)
            for key, width in zip(self.keys, widths)
        }

    def allocate(self, estimator: EscapeEstimator,
                 total: int) -> tuple[dict[str, float], dict[str, int]]:
        """Weights plus the integer per-stratum draw counts for a round."""
        weights = self.weights(estimator)
        counts = allocate_counts([weights[key] for key in self.keys],
                                 total)
        return weights, dict(zip(self.keys, counts))
