"""The soak round loop: allocate, draw, dispatch, estimate, journal.

One soak *round* is the unit of determinism and durability:

1. the sampler computes stratum weights from the estimator state after
   all previous rounds (pure function, logged to the journal);
2. the round's ``faults_per_round`` draws are allocated across strata
   (largest remainder, no RNG) and minted as ``(stratum, counter,
   fault_id)`` descriptors from per-stratum monotone counters;
3. descriptors flow through the bounded ring into chunk tasks and out
   over the exec layer (:class:`~repro.exec.runner.SweepRunner` —
   the same warm pool, retry, timeout-watchdog, and crash-quarantine
   machinery batch campaigns use; workers share the campaign's
   background trajectories because
   :meth:`~repro.campaign.engine.CampaignConfig.background_params`
   excludes fault parameters);
4. classified outcomes update the estimator, and one journal record —
   weights, draws, per-stratum class counts, chained outcome digest —
   is fsync'd before the round is considered to have happened.

Because outcomes are pure in the drawn specs and weights are pure in
the estimator, the entire stream is a pure function of (configuration,
number of rounds).  Crash safety follows: the journal is prefix-stable,
so resume = rebuild state from the complete journal records (optionally
fast-forwarded from an atomic checkpoint), truncate any torn tail, and
continue — byte-identical to a run that was never interrupted.  A kill
*inside* a round loses only that round's work; it is re-run identically.

Stop conditions (``max_faults``, ``max_runtime_s``,
``target_ci_width``, ``max_rounds``) are checked at round boundaries
and deliberately excluded from the run key: stopping earlier or later
never changes what any round contains.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
import typing

from repro import obs
from repro.campaign.engine import (
    CampaignConfig,
    evaluate_fault,
    fault_runner,
)
from repro.campaign.outcomes import FaultOutcome
from repro.errors import ConfigurationError, ExecutionError
from repro.exec.cache import _code_version
from repro.exec.checkpoint import atomic_write_json
from repro.exec.runner import (
    SweepDrained,
    SweepRunner,
    SweepTask,
    TaskPayload,
    derive_seed,
    task_key,
)
from repro.soak.estimators import EscapeEstimator
from repro.soak.generator import Stratum, build_strata, spec_for_draw
from repro.soak.journal import (
    JournalCorrupt,
    SoakJournal,
    record_digest,
)
from repro.soak.ring import SoakRing
from repro.soak.sampler import AdaptiveSampler

#: Dotted task-function name (module-level, worker-importable).
SOAK_TASK = "repro.soak.driver:soak_chunk_task"

SOAK_CHECKPOINT_SCHEMA_VERSION = 1

# Soak observability.  Round/fault counters and the CI-width gauge are
# semantic (pure functions of config and round count); the ring-depth
# gauge is semantic too (the pump is deterministic); wall-clock rates
# live under the ``_seconds`` suffix, excluded from determinism checks.
_OBS_ROUNDS = obs.REGISTRY.counter(
    "repro_soak_rounds_total", "Completed soak rounds").labels()
_OBS_FAULTS = obs.REGISTRY.counter(
    "repro_soak_faults_total",
    "Soak faults evaluated, by stratum",
    labelnames=("stratum",))
_OBS_RING_DEPTH = obs.REGISTRY.gauge(
    "repro_soak_ring_depth",
    "Pending draws buffered in the soak ring").labels()
_OBS_WIDEST_CI = obs.REGISTRY.gauge(
    "repro_soak_widest_ci_width",
    "Widest per-stratum escape-rate Wilson CI width").labels()
_OBS_ROUND_SECONDS = obs.REGISTRY.histogram(
    "repro_soak_round_seconds",
    "Wall time per soak round (draw + dispatch + update + journal)",
    buckets=(0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
             10.0, 30.0)).labels()


@dataclasses.dataclass(frozen=True)
class SoakConfig:
    """Everything that defines a soak stream (stop conditions excluded).

    ``campaign`` supplies the simulation target, scheme, seed, cycle
    budget, and chunk size (``faults_per_task``); the soak fields shape
    the stratification and the adaptive loop.  All of it enters the run
    key — any change starts a new journal lineage.
    """

    campaign: CampaignConfig
    faults_per_round: int = 200
    magnitude_bins: int = 3
    min_weight: float | None = None
    adaptive: bool = True
    ring_capacity: int = 4096
    checkpoint_every_rounds: int = 1

    def __post_init__(self) -> None:
        if self.faults_per_round < 1:
            raise ConfigurationError("faults_per_round must be >= 1")
        if self.magnitude_bins < 1:
            raise ConfigurationError("magnitude_bins must be >= 1")
        if self.ring_capacity < 1:
            raise ConfigurationError("ring_capacity must be >= 1")
        if self.checkpoint_every_rounds < 1:
            raise ConfigurationError(
                "checkpoint_every_rounds must be >= 1")

    def strata(self) -> list[Stratum]:
        return build_strata(self.campaign, self.magnitude_bins)

    def run_key(self) -> str:
        """Identity of the soak stream: sampling semantics + code.

        Excludes operational knobs (ring capacity, checkpoint cadence,
        stop conditions) — they change pacing, never content.
        """
        payload = json.dumps({
            "campaign": self.campaign.to_params(),
            "faults_per_round": self.faults_per_round,
            "magnitude_bins": self.magnitude_bins,
            "min_weight": self.min_weight,
            "adaptive": self.adaptive,
            "code_version": _code_version(),
        }, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_params(self) -> dict:
        return {
            "campaign": self.campaign.to_params(),
            "faults_per_round": self.faults_per_round,
            "magnitude_bins": self.magnitude_bins,
            "min_weight": self.min_weight,
            "adaptive": self.adaptive,
            "ring_capacity": self.ring_capacity,
            "checkpoint_every_rounds": self.checkpoint_every_rounds,
        }

    @classmethod
    def from_params(cls, params: typing.Mapping) -> "SoakConfig":
        fields = dict(params)
        fields["campaign"] = CampaignConfig.from_params(
            fields["campaign"])
        return cls(**fields)


class SoakCheckpoint:
    """Atomic snapshot of the soak loop state (resume fast path).

    The journal alone fully determines the state; the checkpoint just
    spares resume a long fold.  It is validated against the journal on
    load (run key, record count, chained digest) and silently discarded
    on any mismatch — the journal is the source of truth.
    """

    def __init__(self, path) -> None:
        import pathlib

        self.path = pathlib.Path(path)

    def load(self, run_key: str) -> dict | None:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict):
            return None
        if data.get("schema") != SOAK_CHECKPOINT_SCHEMA_VERSION:
            return None
        if data.get("run_key") != run_key:
            return None
        state = data.get("state")
        return state if isinstance(state, dict) else None

    def save(self, run_key: str, state: dict) -> None:
        atomic_write_json(self.path, {
            "schema": SOAK_CHECKPOINT_SCHEMA_VERSION,
            "run_key": run_key,
            "state": state,
        })


# ---------------------------------------------------------------------------
# Loop state: the journal-determined part of a soak run
# ---------------------------------------------------------------------------

def _zero_state(run_key: str,
                keys: typing.Sequence[str]) -> dict:
    return {
        "run_key": run_key,
        "round": 0,
        "seq": 0,
        "journal_records": 0,
        "digest": "",
        "counters": {key: 0 for key in keys},
        "estimator": {key: {} for key in keys},
    }


def _apply_record(state: dict, record: dict) -> None:
    """Fold one journal round record into ``state`` (with validation)."""
    if record.get("type") != "round":
        raise JournalCorrupt(
            f"unexpected record type {record.get('type')!r}")
    if record.get("round") != state["round"]:
        raise JournalCorrupt(
            f"journal round {record.get('round')} but state expects "
            f"{state['round']}")
    if record.get("seq_start") != state["seq"]:
        raise JournalCorrupt(
            f"round {record['round']}: seq_start "
            f"{record.get('seq_start')} but state expects "
            f"{state['seq']}")
    total = 0
    for key, counter_start, count in record["draws"]:
        if key not in state["counters"]:
            raise JournalCorrupt(
                f"round {record['round']}: unknown stratum {key!r}")
        if counter_start != state["counters"][key]:
            raise JournalCorrupt(
                f"round {record['round']}: stratum {key!r} counter "
                f"{counter_start} but state expects "
                f"{state['counters'][key]}")
        state["counters"][key] += int(count)
        total += int(count)
    state["seq"] += total
    for key, counts in record["counts"].items():
        row = state["estimator"].setdefault(key, {})
        for classification, count in counts.items():
            row[classification] = (row.get(classification, 0)
                                   + int(count))
    state["digest"] = record["digest"]
    state["round"] += 1
    state["journal_records"] += 1


def soak_state_from_journal(soak: SoakConfig,
                            records: typing.Sequence[dict],
                            *, base: dict | None = None) -> dict:
    """Rebuild (or fast-forward) loop state from journal records.

    With ``base`` (a checkpoint state), only the records past
    ``base["journal_records"]`` are folded — the resume fast path.
    """
    keys = [stratum.key for stratum in soak.strata()]
    state = (json.loads(json.dumps(base)) if base is not None
             else _zero_state(soak.run_key(), keys))
    for record in records[state["journal_records"]:]:
        _apply_record(state, record)
    return state


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

def soak_chunk_task(params: dict) -> TaskPayload:
    """Sweep task: evaluate one chunk of stratified soak draws.

    Regenerates each draw's spec with :func:`spec_for_draw` and
    classifies the chunk through the campaign evaluator's
    ``evaluate_chunk`` — the identical (lane-batched, when enabled)
    path a batch campaign chunk takes, which is what makes soak
    outcomes bit-comparable to campaign outcomes.  Outcomes come back
    scattered to draw order.
    """
    config = CampaignConfig.from_params(params["config"])
    strata = {key: Stratum.from_params(key, stratum_params)
              for key, stratum_params in params["strata"].items()}
    draws = params["draws"]
    specs = [spec_for_draw(config, strata[key], int(counter),
                           int(fault_id))
             for key, counter, fault_id in draws]
    runner = fault_runner(config)
    with obs.trace_span("soak.chunk", target=config.target,
                        scheme=config.scheme, draws=len(specs)):
        outcomes, work = runner.evaluate_chunk(specs)
    return TaskPayload(value=outcomes, events_processed=work)


# ---------------------------------------------------------------------------
# Round mechanics
# ---------------------------------------------------------------------------

def _round_draws(strata: typing.Sequence[Stratum],
                 alloc: typing.Mapping[str, int],
                 counters: typing.Mapping[str, int],
                 seq_start: int) -> typing.Iterator[tuple[str, int, int]]:
    """The round's draw descriptors, in canonical (strata) order."""
    fault_id = seq_start
    for stratum in strata:
        base = counters[stratum.key]
        for offset in range(alloc[stratum.key]):
            yield stratum.key, base + offset, fault_id
            fault_id += 1


def _chunk_draws(ring: SoakRing,
                 source: typing.Iterator[tuple[str, int, int]],
                 chunk_size: int) -> typing.Iterator[list]:
    """Pump draws through the bounded ring into chunk-sized batches.

    Fill/drain alternation: the generator only advances while the ring
    has room (backpressure), and chunks are cut from the ring FIFO so
    draw order is preserved end to end.
    """
    while True:
        ring.fill_from(source)
        if obs.REGISTRY.enabled:
            _OBS_RING_DEPTH.set(len(ring))
        batch = ring.take(chunk_size)
        if not batch:
            return
        yield batch


def _outcome_digest_payload(outcome: FaultOutcome) -> list:
    """The per-fault fields the round digest commits to."""
    return [
        outcome.fault_id, outcome.kind, outcome.site, outcome.cycle,
        outcome.magnitude_ps, outcome.classification,
        outcome.worst_lateness_ps, outcome.max_borrowed_intervals,
    ]


def _run_round(soak: SoakConfig, runner: SweepRunner,
               strata: typing.Sequence[Stratum], ring: SoakRing,
               state: dict, alloc: typing.Mapping[str, int],
               ) -> tuple[list[tuple[str, FaultOutcome]], int]:
    """Dispatch one round's draws; returns (keyed outcomes, work units).

    Raises :class:`~repro.exec.runner.SweepDrained` through from the
    exec layer when a graceful drain interrupts the round — the caller
    must then *not* journal it (a partial round is not replayable; the
    re-run after resume is identical anyway).
    """
    config = soak.campaign
    source = _round_draws(strata, alloc, state["counters"],
                          state["seq"])
    chunks = list(_chunk_draws(ring, source, config.faults_per_task))
    config_params = config.to_params()
    strata_params = {stratum.key: stratum.to_params()
                     for stratum in strata}
    tasks = [
        SweepTask(
            experiment=SOAK_TASK,
            params={"config": config_params, "strata": strata_params,
                    "draws": [list(draw) for draw in chunk]},
            index=index,
            seed=derive_seed(config.seed, SOAK_TASK, state["round"],
                             index),
            key=task_key(SOAK_TASK, {
                "target": config.target, "scheme": config.scheme,
                "round": state["round"], "chunk": index,
            }),
        )
        for index, chunk in enumerate(chunks)
    ]
    run = runner.run(tasks)
    keyed: list[tuple[str, FaultOutcome]] = []
    work = 0
    for chunk, task_outcome in zip(chunks, run.outcomes):
        if task_outcome.value is None:
            # A poisoned chunk cannot be skipped: dropping its draws
            # would fork the journal from the deterministic stream.
            raise ExecutionError(
                f"soak chunk {task_outcome.task.key} was quarantined "
                f"as poisoned; the stream cannot continue "
                f"deterministically")
        work += task_outcome.events_processed
        for (key, _counter, _fault_id), outcome in zip(
                chunk, task_outcome.value):
            keyed.append((key, outcome))
    return keyed, work


def replay_round(soak: SoakConfig, record: dict,
                 prev_digest: str) -> dict:
    """Re-derive one journal record's outcomes in-process.

    Regenerates every draw from the record's descriptors, classifies
    each through the batch-campaign evaluator path, and recomputes the
    per-stratum counts and the chained digest.  Used by the property
    tests and the chaos drill to pin the replay contract:
    ``replay_round(...)["digest"] == record["digest"]`` for every
    record of a valid journal.
    """
    config = soak.campaign
    strata = {stratum.key: stratum for stratum in soak.strata()}
    runner = fault_runner(config)
    counts: dict[str, dict[str, int]] = {}
    payloads = []
    outcomes: list[FaultOutcome] = []
    for key, counter_start, count in record["draws"]:
        for offset in range(int(count)):
            payloads.append((key, int(counter_start) + offset))
    seq = int(record["seq_start"])
    for index, (key, counter) in enumerate(payloads):
        spec = spec_for_draw(config, strata[key], counter, seq + index)
        outcome, _units = evaluate_fault(config, runner, spec)
        outcomes.append(outcome)
        row = counts.setdefault(key, {})
        row[outcome.classification] = row.get(
            outcome.classification, 0) + 1
    digest = record_digest(prev_digest, [
        _outcome_digest_payload(outcome) for outcome in outcomes])
    return {"counts": counts, "digest": digest, "outcomes": outcomes}


# ---------------------------------------------------------------------------
# The driver
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class SoakResult:
    """Where a soak run stopped and what it measured."""

    config: SoakConfig
    rounds: int
    total_faults: int
    stop_reason: str
    drained: bool
    overall: dict
    widest: dict
    per_stratum: list[dict]
    wall_time_s: float
    faults_evaluated: float
    summary: dict

    @property
    def faults_per_second(self) -> float:
        if self.wall_time_s <= 0:
            return 0.0
        return self.faults_evaluated / self.wall_time_s


def _stop_reason(soak: SoakConfig, state: dict,
                 estimator: EscapeEstimator, started: float, *,
                 max_faults: int | None, max_runtime_s: float | None,
                 target_ci_width: float | None,
                 max_rounds: int | None) -> str | None:
    if max_rounds is not None and state["round"] >= max_rounds:
        return "max_rounds"
    if (max_faults is not None
            and estimator.total_faults() >= max_faults):
        return "max_faults"
    if (target_ci_width is not None
            and estimator.widest().ci_width <= target_ci_width):
        return "target_ci_width"
    if (max_runtime_s is not None
            and time.monotonic() - started >= max_runtime_s):
        return "max_runtime"
    return None


def run_soak(
    soak: SoakConfig,
    *,
    journal_path,
    checkpoint_path=None,
    runner: SweepRunner | None = None,
    resume: bool = False,
    max_faults: int | None = None,
    max_runtime_s: float | None = None,
    target_ci_width: float | None = None,
    max_rounds: int | None = None,
    status: typing.Callable[[str], None] | None = None,
    publisher: typing.Any = None,
) -> SoakResult:
    """Run (or resume) a soak stream until a stop condition fires.

    At least one of ``max_faults`` / ``max_runtime_s`` /
    ``target_ci_width`` / ``max_rounds`` must be given — a soak with no
    stop condition only ends on a signal, which is almost never what a
    script wants (the CLI allows it explicitly for true open-ended
    soaks).  ``status`` receives a one-line progress string after every
    round.  ``publisher`` (an opened
    :class:`~repro.obs.stream.EventPublisher`) receives one ``round``
    event per journaled round and a ``checkpoint`` event per durable
    checkpoint — the live feed ``repro-timber monitor`` folds; its
    ``run_start``/``run_end`` framing stays with the caller, who owns
    the publisher's lifecycle.
    """
    strata = soak.strata()
    keys = [stratum.key for stratum in strata]
    run_key = soak.run_key()
    journal = SoakJournal(journal_path)
    checkpoint = (SoakCheckpoint(checkpoint_path)
                  if checkpoint_path is not None else None)

    if resume:
        header, records = journal.open_resume()
        if header is None:
            journal.open_fresh({"run_key": run_key,
                                "soak": soak.to_params(),
                                "strata": keys})
            state = _zero_state(run_key, keys)
        else:
            if header.get("run_key") != run_key:
                journal.close()
                raise ConfigurationError(
                    f"journal {journal.path} belongs to a different "
                    f"soak run (config or code version changed)")
            base = None
            if checkpoint is not None:
                base = checkpoint.load(run_key)
                if base is not None:
                    covered = base.get("journal_records", 0)
                    if (covered > len(records)
                            or (covered > 0 and records[covered - 1]
                                ["digest"] != base.get("digest"))):
                        # Checkpoint ahead of (or diverged from) the
                        # journal — e.g. the journal tail was torn
                        # after the checkpoint landed.  The journal
                        # wins; rebuild from scratch.
                        base = None
            state = soak_state_from_journal(soak, records, base=base)
    else:
        journal.open_fresh({"run_key": run_key,
                            "soak": soak.to_params(),
                            "strata": keys})
        state = _zero_state(run_key, keys)

    estimator = EscapeEstimator.restore(keys, state["estimator"])
    sampler = AdaptiveSampler(keys, min_weight=soak.min_weight,
                              adaptive=soak.adaptive)
    ring = SoakRing(soak.ring_capacity)
    owns_runner = runner is None
    runner = runner or SweepRunner()
    started = time.monotonic()
    start_round = state["round"]
    evaluated = 0
    drained = False
    stop = None

    try:
        while True:
            stop = _stop_reason(
                soak, state, estimator, started,
                max_faults=max_faults, max_runtime_s=max_runtime_s,
                target_ci_width=target_ci_width, max_rounds=max_rounds)
            if stop is not None:
                break
            if runner.drain_requested:
                drained = True
                stop = "drained"
                break
            round_started = time.perf_counter()
            weights, alloc = sampler.allocate(estimator,
                                              soak.faults_per_round)
            try:
                keyed, _work = _run_round(soak, runner, strata, ring,
                                          state, alloc)
            except SweepDrained:
                # Partial round: journal untouched (prefix-stable);
                # the identical round re-runs after resume.
                drained = True
                stop = "drained"
                break
            counts: dict[str, dict[str, int]] = {}
            for key, outcome in keyed:
                row = counts.setdefault(key, {})
                row[outcome.classification] = row.get(
                    outcome.classification, 0) + 1
            digest = record_digest(state["digest"], [
                _outcome_digest_payload(outcome)
                for _key, outcome in keyed])
            record = {
                "type": "round",
                "round": state["round"],
                "seq_start": state["seq"],
                "weights": weights,
                "draws": [[stratum.key, state["counters"][stratum.key],
                           alloc[stratum.key]]
                          for stratum in strata
                          if alloc[stratum.key] > 0],
                "counts": counts,
                "digest": digest,
            }
            journal.append(record)
            _apply_record(state, record)
            for key, row in counts.items():
                estimator.update_counts(key, row)
            evaluated += len(keyed)
            widest = estimator.widest()
            if obs.REGISTRY.enabled:
                _OBS_ROUNDS.inc()
                for key, row in counts.items():
                    _OBS_FAULTS.labels(stratum=key).inc(
                        sum(row.values()))
                _OBS_WIDEST_CI.set(widest.ci_width)
                _OBS_ROUND_SECONDS.observe(
                    time.perf_counter() - round_started)
            if (checkpoint is not None
                    and state["round"] % soak.checkpoint_every_rounds
                    == 0):
                state["estimator"] = estimator.snapshot()
                checkpoint.save(run_key, state)
                if publisher is not None:
                    publisher.checkpoint(path=str(checkpoint.path),
                                         round=state["round"])
            if publisher is not None:
                overall = estimator.overall()
                publisher.emit(
                    "round",
                    round=state["round"],
                    faults=estimator.total_faults(),
                    escape_rate=overall["escape_rate"],
                    ci_low=overall["ci_low"],
                    ci_high=overall["ci_high"],
                    widest_stratum=widest.key,
                    widest_ci_width=widest.ci_width,
                    per_stratum=[
                        {"stratum": stats.key, "samples": stats.n,
                         "width": stats.ci_width}
                        for stats in estimator.all_stats()],
                )
            if status is not None:
                elapsed = time.monotonic() - started
                rate = evaluated / elapsed if elapsed > 0 else 0.0
                overall = estimator.overall()
                status(
                    f"soak round={state['round']} "
                    f"faults={estimator.total_faults()} "
                    f"escape={overall['escape_rate']:.4f} "
                    f"widest={widest.key}:{widest.ci_width:.4f} "
                    f"{rate:.1f} f/s")
    finally:
        # Whatever ends the loop — stop rule, drain, or a failure —
        # the durable state must reflect every journaled round.
        if checkpoint is not None and state["round"] > start_round:
            state["estimator"] = estimator.snapshot()
            checkpoint.save(run_key, state)
        journal.close()
        if owns_runner:
            runner.close()

    wall = time.monotonic() - started
    overall = estimator.overall()
    widest_stats = estimator.widest()
    return SoakResult(
        config=soak,
        rounds=state["round"],
        total_faults=estimator.total_faults(),
        stop_reason=stop or "unknown",
        drained=drained,
        overall=overall,
        widest={"stratum": widest_stats.key,
                "ci_width": widest_stats.ci_width,
                "ci_low": widest_stats.ci_low,
                "ci_high": widest_stats.ci_high,
                "n": widest_stats.n},
        per_stratum=[
            {"stratum": stats.key, "n": stats.n,
             "escaped": stats.escaped,
             "escape_rate": stats.escape_rate,
             "ci_low": stats.ci_low, "ci_high": stats.ci_high,
             "ci_width": stats.ci_width,
             "counts": stats.counts}
            for stats in estimator.all_stats()
        ],
        wall_time_s=wall,
        faults_evaluated=evaluated,
        summary=(runner.last_run.summary
                 if runner.last_run is not None else {}),
    )
