"""Stratified, counter-based fault generation for soak runs.

A soak stream partitions the campaign fault space into *strata* — one
per (fault kind x magnitude bin) — so the estimator can resolve each
cell's escape rate independently and the sampler can aim budget at the
unresolved ones.  Two invariants make the stream replayable:

* **Per-stratum seed lanes.**  Each stratum draws from its own RNG
  lanes, derived from the campaign seed and the stratum key alone
  (:func:`stratum_lanes`), so adding, removing, or re-weighting other
  strata never perturbs a stratum's draws.
* **Counter-based draws, decoupled ids.**  Draw ``c`` of a stratum is
  a pure function of ``(lanes, c)`` via the same
  :func:`repro.campaign.faults.draw_spec` the batch population uses —
  the stratum just pins the kind list to one kind and the magnitude
  range to its bin.  The global ``fault_id`` (injection sequence
  number) is passed separately, so the id a fault gets depends on when
  the sampler scheduled it while its *shape* depends only on its
  stratum and counter.  A journal record of ``(stratum, counter,
  fault_id)`` triples therefore regenerates the exact specs with no
  stored fault data.

Strata are equal-probability cells of the batch population's
distribution: kinds are drawn uniformly there, and the magnitude bins
split the integer range as evenly as possible (sizes differ by at most
one), which is what licenses the estimator's uniform-weight stratified
combination.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.campaign.engine import CampaignConfig
from repro.campaign.faults import FaultSpec, draw_spec
from repro.errors import ConfigurationError
from repro.exec.runner import derive_seed
from repro.kernels.rng import split64

#: Domain-separation tag for per-stratum seed lanes.
STRATUM_SEED_TAG = "soak-stratum"

#: Fault-window shape parameters, matching the batch population's
#: defaults (:func:`repro.campaign.faults.iter_population`) so a soak
#: draw and a population draw sample the same spec distribution.
MAX_DURATION_CYCLES = 3
MAX_SPAN = 3


@dataclasses.dataclass(frozen=True)
class Stratum:
    """One cell of the soak fault space.

    The key doubles as the journal/checkpoint identifier and the seed
    derivation input — it must be stable across runs.
    """

    key: str
    kind: str
    lo_ps: int
    hi_ps: int

    def to_params(self) -> list:
        """Compact JSON form shipped inside soak chunk-task params."""
        return [self.kind, self.lo_ps, self.hi_ps]

    @classmethod
    def from_params(cls, key: str, params: typing.Sequence) -> "Stratum":
        kind, lo_ps, hi_ps = params
        return cls(key=key, kind=str(kind), lo_ps=int(lo_ps),
                   hi_ps=int(hi_ps))


def magnitude_bins(lo_ps: int, hi_ps: int,
                   bins: int) -> list[tuple[int, int]]:
    """Split ``[lo_ps, hi_ps]`` into ``bins`` contiguous integer bins.

    Sizes differ by at most one (earlier bins get the remainder).  When
    the range has fewer integers than requested bins, the bin count
    silently drops to the range width — every bin stays non-empty.
    """
    if bins < 1:
        raise ConfigurationError("need at least one magnitude bin")
    if not 0 < lo_ps <= hi_ps:
        raise ConfigurationError("bad magnitude range")
    width = hi_ps - lo_ps + 1
    bins = min(bins, width)
    base, extra = divmod(width, bins)
    edges: list[tuple[int, int]] = []
    start = lo_ps
    for index in range(bins):
        size = base + (1 if index < extra else 0)
        edges.append((start, start + size - 1))
        start += size
    return edges


def build_strata(config: CampaignConfig,
                 bins: int) -> list[Stratum]:
    """The (kind x magnitude bin) strata of a soak over ``config``.

    Kind order follows ``config.effective_kinds()`` and bins ascend
    within each kind; the order is part of the run identity (it fixes
    allocation tie-breaks and journal layout).
    """
    lo_ps, hi_ps = config.magnitude_range_ps
    strata: list[Stratum] = []
    for kind in config.effective_kinds():
        for bin_lo, bin_hi in magnitude_bins(lo_ps, hi_ps, bins):
            strata.append(Stratum(
                key=f"{kind}/{bin_lo}-{bin_hi}",
                kind=kind, lo_ps=bin_lo, hi_ps=bin_hi,
            ))
    return strata


def stratum_lanes(config: CampaignConfig,
                  key: str) -> tuple[int, int]:
    """The RNG lanes of one stratum's draw stream."""
    return split64(derive_seed(config.seed, STRATUM_SEED_TAG, key))


def spec_for_draw(config: CampaignConfig, stratum: Stratum,
                  counter: int, fault_id: int) -> FaultSpec:
    """Regenerate draw ``counter`` of ``stratum`` — pure, id attached.

    This is the single spec-producing function on both sides of the
    exec boundary: the driver uses it when replaying or verifying a
    journal, the chunk task uses it to materialize its draws, so there
    is no second implementation to drift.
    """
    last_start = config.num_cycles - MAX_DURATION_CYCLES
    if last_start < 2:
        raise ConfigurationError(
            f"{config.num_cycles} cycles leave no room for a "
            f"{MAX_DURATION_CYCLES}-cycle fault window")
    return draw_spec(
        stratum_lanes(config, stratum.key),
        counter,
        sites=config.sites(),
        kinds=(stratum.kind,),
        lo_ps=stratum.lo_ps,
        hi_ps=stratum.hi_ps,
        last_start=last_start,
        max_duration_cycles=MAX_DURATION_CYCLES,
        max_span=MAX_SPAN,
        fault_id=fault_id,
    )
