"""Incremental per-stratum escape-rate estimation with Wilson CIs.

The estimator is the soak loop's only persistent statistical state: a
plain ``{stratum key: {outcome class: count}}`` table, updated once per
completed round and serialized verbatim into checkpoints (so resume is
a dict copy, not a re-fit).  Everything derived — rates, intervals,
the stratified overall estimate — is recomputed on demand from the
counts, which keeps the state tiny and the arithmetic auditable.

Two estimation choices matter for the soak contract:

* **Per-fault escape rate.**  ``p̂ = escaped / faults injected`` (not
  per *violation*): the denominator grows by exactly the round
  allocation, so every stratum's interval narrows monotonically with
  budget — the property the adaptive sampler's stopping rule
  (``target_ci_width``) relies on.
* **Uniform-weight stratified combination.**  The overall estimate is
  ``mean_s(p̂_s)`` over strata — each stratum contributes its *rate*,
  never its sample count — so the adaptive sampler can allocate draws
  however it likes without biasing the headline number.  (The strata
  partition the fault space into equal-probability cells by
  construction: kinds are drawn uniformly and magnitude bins split the
  range evenly, see :mod:`repro.soak.generator`.)

Wilson score intervals are used instead of normal (Wald) intervals
because soak strata routinely sit at p̂ = 0 for a long time — Wald
collapses to width zero there and would starve exactly the strata that
need budget; Wilson stays honest at the boundaries.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.campaign.outcomes import ESCAPED, OUTCOME_CLASSES
from repro.errors import ConfigurationError

#: z for a 95% interval.  Fixed rather than configurable: the width is
#: only ever *compared* (sampler weights, stop rule), so the level is a
#: convention, and baking it in keeps journal replay byte-identical.
WILSON_Z = 1.959963984540054


def wilson_interval(successes: int, n: int,
                    z: float = WILSON_Z) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Returns the vacuous ``(0.0, 1.0)`` when ``n == 0`` — an unsampled
    stratum has maximal width, which is what routes first-round budget
    everywhere.  Pure float arithmetic on IEEE doubles: bit-identical
    across processes, which the journal's logged weights rely on.
    """
    if n < 0 or successes < 0 or successes > n:
        raise ConfigurationError(
            f"bad binomial counts: {successes}/{n}")
    if n == 0:
        return 0.0, 1.0
    p = successes / n
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p + z2 / (2.0 * n)) / denom
    half = (z / denom) * math.sqrt(p * (1.0 - p) / n
                                   + z2 / (4.0 * n * n))
    return max(0.0, center - half), min(1.0, center + half)


@dataclasses.dataclass(frozen=True)
class StratumStats:
    """Derived view of one stratum's counts."""

    key: str
    counts: dict[str, int]
    n: int
    escaped: int
    escape_rate: float
    ci_low: float
    ci_high: float

    @property
    def ci_width(self) -> float:
        return self.ci_high - self.ci_low


class EscapeEstimator:
    """Streaming per-stratum outcome counts plus the derived estimates.

    The stratum set is fixed at construction (it is part of the soak
    run's identity); updates add per-class counts for one stratum.
    """

    def __init__(self, strata_keys: typing.Sequence[str]) -> None:
        if not strata_keys:
            raise ConfigurationError("need at least one stratum")
        if len(set(strata_keys)) != len(strata_keys):
            raise ConfigurationError("duplicate stratum keys")
        self.keys: tuple[str, ...] = tuple(strata_keys)
        self._counts: dict[str, dict[str, int]] = {
            key: {} for key in self.keys}

    # -- updates -----------------------------------------------------------
    def update(self, key: str, classification: str,
               count: int = 1) -> None:
        """Add ``count`` outcomes of one class to one stratum."""
        if classification not in OUTCOME_CLASSES:
            raise ConfigurationError(
                f"unknown outcome class {classification!r}")
        row = self._counts[key]
        row[classification] = row.get(classification, 0) + count

    def update_counts(self, key: str,
                      counts: typing.Mapping[str, int]) -> None:
        """Merge a per-class count table (journal replay fast path)."""
        for classification, count in counts.items():
            self.update(key, classification, int(count))

    # -- derived -----------------------------------------------------------
    def stats(self, key: str) -> StratumStats:
        counts = dict(self._counts[key])
        n = sum(counts.values())
        escaped = counts.get(ESCAPED, 0)
        low, high = wilson_interval(escaped, n)
        return StratumStats(
            key=key, counts=counts, n=n, escaped=escaped,
            escape_rate=(escaped / n if n else 0.0),
            ci_low=low, ci_high=high,
        )

    def all_stats(self) -> list[StratumStats]:
        return [self.stats(key) for key in self.keys]

    def total_faults(self) -> int:
        return sum(sum(row.values()) for row in self._counts.values())

    def widest(self) -> StratumStats:
        """The stratum with the widest interval (ties: key order)."""
        best = None
        for stats in self.all_stats():
            if best is None or stats.ci_width > best.ci_width:
                best = stats
        assert best is not None  # keys is non-empty
        return best

    def overall(self) -> dict:
        """Uniform-weight stratified escape estimate (see module doc).

        The half-width combines per-stratum Wilson half-widths as
        independent errors (``sqrt(sum (pi_s * h_s)^2)``) — a summary
        for the status line and benches, not a formal interval.
        """
        stats = self.all_stats()
        pi = 1.0 / len(stats)
        estimate = sum(s.escape_rate for s in stats) * pi
        var = sum((pi * (s.ci_width / 2.0)) ** 2 for s in stats)
        half = math.sqrt(var)
        return {
            "escape_rate": estimate,
            "ci_half_width": half,
            "ci_low": max(0.0, estimate - half),
            "ci_high": min(1.0, estimate + half),
            "n": self.total_faults(),
        }

    # -- (de)serialization -------------------------------------------------
    def snapshot(self) -> dict[str, dict[str, int]]:
        """JSON-able deep copy of the counts (checkpoint payload)."""
        return {key: dict(row) for key, row in self._counts.items()}

    @classmethod
    def restore(cls, strata_keys: typing.Sequence[str],
                snapshot: typing.Mapping[str, typing.Mapping[str, int]],
                ) -> "EscapeEstimator":
        estimator = cls(strata_keys)
        for key, row in snapshot.items():
            if key not in estimator._counts:
                raise ConfigurationError(
                    f"snapshot has unknown stratum {key!r}")
            estimator.update_counts(key, row)
        return estimator
