"""Waveform capture and queries.

A :class:`Waveform` is the recorded history of one signal: an initial value
plus a list of (time, value) change points.  :class:`WaveformRecorder`
subscribes to a :class:`~repro.sim.engine.Simulator` and builds waveforms
for a chosen set of signals; it can render them as ASCII timing diagrams,
which is how the benchmark harness reproduces the paper's Figs. 5 and 7.
"""

from __future__ import annotations

import bisect
import dataclasses
import typing

from repro.circuit.logic import Logic

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


@dataclasses.dataclass
class Edge:
    """A recorded signal transition."""

    time_ps: int
    old: Logic
    new: Logic

    @property
    def is_rising(self) -> bool:
        return self.old is Logic.ZERO and self.new is Logic.ONE

    @property
    def is_falling(self) -> bool:
        return self.old is Logic.ONE and self.new is Logic.ZERO


class Waveform:
    """Value history of a single signal."""

    def __init__(self, signal: str, initial: Logic = Logic.X) -> None:
        self.signal = signal
        self.initial = initial
        self._times: list[int] = []
        self._values: list[Logic] = []

    def record(self, time_ps: int, value: Logic) -> None:
        """Append a change point (must be monotonically non-decreasing)."""
        if self._times and time_ps < self._times[-1]:
            raise ValueError(
                f"waveform {self.signal}: time went backwards "
                f"({time_ps} < {self._times[-1]})"
            )
        if self._times and time_ps == self._times[-1]:
            # Same-instant overwrite: keep the latest value.
            self._values[-1] = value
            return
        self._times.append(time_ps)
        self._values.append(value)

    def value_at(self, time_ps: int) -> Logic:
        """Signal value at ``time_ps`` (change points take effect at t)."""
        index = bisect.bisect_right(self._times, time_ps) - 1
        if index < 0:
            return self.initial
        return self._values[index]

    def edges(self) -> list[Edge]:
        """All *changes* in value, with their previous values."""
        result: list[Edge] = []
        previous = self.initial
        for time_ps, value in zip(self._times, self._values):
            if value is not previous:
                result.append(Edge(time_ps, previous, value))
                previous = value
        return result

    def rising_edges(self) -> list[int]:
        return [e.time_ps for e in self.edges() if e.is_rising]

    def falling_edges(self) -> list[int]:
        return [e.time_ps for e in self.edges() if e.is_falling]

    def changes(self) -> list[tuple[int, Logic]]:
        """Raw (time, value) change points, including redundant writes."""
        return list(zip(self._times, self._values))

    def final_value(self) -> Logic:
        return self._values[-1] if self._values else self.initial

    def time_of_last_change_before(self, time_ps: int) -> int | None:
        """Timestamp of the last value *change* at or before ``time_ps``."""
        last: int | None = None
        for edge in self.edges():
            if edge.time_ps > time_ps:
                break
            last = edge.time_ps
        return last


class WaveformRecorder:
    """Collects :class:`Waveform` objects for selected signals."""

    def __init__(self, signals: typing.Iterable[str]) -> None:
        self.waveforms: dict[str, Waveform] = {
            name: Waveform(name) for name in signals
        }

    def attach(self, simulator: "Simulator") -> None:
        """Subscribe to the simulator and seed current values."""
        for name, waveform in self.waveforms.items():
            waveform.initial = simulator.value(name)
            simulator.on_change(name, self._make_listener(waveform))

    def _make_listener(self, waveform: Waveform):
        def listener(_sim: "Simulator", _signal: str, value: Logic,
                     time_ps: int) -> None:
            waveform.record(time_ps, value)
        return listener

    def __getitem__(self, signal: str) -> Waveform:
        return self.waveforms[signal]

    def render_ascii(
        self,
        *,
        start_ps: int = 0,
        end_ps: int,
        step_ps: int,
        order: typing.Sequence[str] | None = None,
    ) -> str:
        """Render the recorded signals as an ASCII timing diagram.

        Each column is one ``step_ps`` sample; rows are signals.  ``X`` is
        shown as ``?``; 0/1 as ``_``/``#`` so pulse shapes read at a
        glance.  This is the textual stand-in for the paper's SPICE
        waveform figures.
        """
        names = list(order) if order is not None else sorted(self.waveforms)
        width = max(len(n) for n in names) if names else 0
        lines: list[str] = []
        sample_times = range(start_ps, end_ps + 1, step_ps)
        header = " " * (width + 2) + "".join(
            "|" if (t // step_ps) % 10 == 0 else "." for t in sample_times
        )
        lines.append(header)
        glyph = {Logic.ZERO: "_", Logic.ONE: "#", Logic.X: "?"}
        for name in names:
            waveform = self.waveforms[name]
            row = "".join(glyph[waveform.value_at(t)] for t in sample_times)
            lines.append(f"{name.ljust(width)}  {row}")
        return "\n".join(lines)
