"""Event-driven simulator core.

The :class:`Simulator` owns a namespace of signals (each holding a
three-valued :class:`~repro.circuit.logic.Logic` level), an event queue,
and change listeners.  Netlists attach their gates as listeners with
*inertial delay* semantics: a pulse narrower than a gate's propagation
delay is filtered, matching how the paper's circuits behave (and why the
TIMBER latch "propagates glitches" only when they are wide enough).

Sequential elements (:mod:`repro.sequential`) and structural TIMBER
circuits (:mod:`repro.core.structural`) attach themselves through the same
listener/action interface.
"""

from __future__ import annotations

import dataclasses
import typing

from repro import obs
from repro.circuit.logic import Logic
from repro.circuit.netlist import Gate, Netlist
from repro.errors import SimulationError
from repro.sim.events import Action, Event, EventQueue

#: Listener signature: (simulator, signal, new_value, time_ps).
Listener = typing.Callable[["Simulator", str, Logic, int], None]

# Observability series, bound once: metric cost in run() is one guarded
# call per run() invocation, never per event.
_OBS_EVENTS = obs.REGISTRY.counter(
    "repro_sim_events_total",
    "Events dispatched by Simulator.run()").labels()
_OBS_TOGGLES = obs.REGISTRY.counter(
    "repro_sim_toggles_total",
    "Signal toggles applied (initial X->known settles excluded)",
).labels()
_OBS_QUEUE_DEPTH = obs.REGISTRY.gauge(
    "repro_sim_queue_depth",
    "Live events still queued after the most recent run()").labels()


@dataclasses.dataclass
class _PendingDrive:
    """Book-keeping for a gate's in-flight output transition."""

    handle: int
    value: Logic


class Simulator:
    """A deterministic event-driven logic simulator."""

    def __init__(self) -> None:
        self.now: int = 0
        self._queue = EventQueue()
        self._signals: dict[str, Logic] = {}
        self._listeners: dict[str, list[Listener]] = {}
        self._toggle_counts: dict[str, int] = {}
        self._toggle_energy: dict[str, float] = {}
        self._last_change_ps: dict[str, int] = {}
        self._last_drive_ps: dict[str, int] = {}
        self._dynamic_energy = 0.0
        self._events_processed = 0
        self._toggles_applied = 0

    # -- signal state ------------------------------------------------------
    def value(self, signal: str) -> Logic:
        """Current value of ``signal`` (X if never driven)."""
        return self._signals.get(signal, Logic.X)

    def set_initial(self, signal: str, value: Logic | int) -> None:
        """Set a signal's value before (or between) runs, no listeners."""
        self._signals[signal] = Logic.from_value(value)

    def signals(self) -> dict[str, Logic]:
        return dict(self._signals)

    def last_change_ps(self, signal: str) -> int | None:
        """Time of ``signal``'s most recent value change, or ``None``.

        Only changes applied through the event loop count;
        :meth:`set_initial` does not register (it models the reset
        state, not a transition).  Fault machinery uses this to tell
        whether a functional driver re-drove a signal during an injected
        pulse."""
        return self._last_change_ps.get(signal)

    def last_drive_ps(self, signal: str) -> int | None:
        """Time of the most recent *applied* drive of ``signal``.

        Unlike :meth:`last_change_ps` this registers even when the
        driven value equals the current one — a driver re-asserting a
        level is real circuit activity (an SEU restore must yield to
        it even though no transition was visible)."""
        return self._last_drive_ps.get(signal)

    # -- scheduling ----------------------------------------------------------
    def drive(self, signal: str, value: Logic | int, time_ps: int,
              label: str = "") -> int:
        """Schedule ``signal`` to take ``value`` at ``time_ps``."""
        if time_ps < self.now:
            raise SimulationError(
                f"cannot drive {signal!r} at {time_ps} ps; now={self.now}"
            )
        event = Event(time_ps, signal=signal, value=Logic.from_value(value),
                      label=label)
        return self._queue.push(event)

    def at(self, time_ps: int, action: Action, label: str = "") -> int:
        """Schedule a callback at ``time_ps``."""
        if time_ps < self.now:
            raise SimulationError(
                f"cannot schedule action {label!r} at {time_ps}; "
                f"now={self.now}"
            )
        return self._queue.push(Event(time_ps, action=action, label=label))

    def after(self, delay_ps: int, action: Action, label: str = "") -> int:
        """Schedule a callback ``delay_ps`` after the current time."""
        return self.at(self.now + delay_ps, action, label)

    def cancel(self, handle: int) -> None:
        self._queue.cancel(handle)

    # -- listeners ----------------------------------------------------------
    def on_change(self, signal: str, listener: Listener) -> None:
        """Invoke ``listener`` whenever ``signal`` changes value."""
        self._listeners.setdefault(signal, []).append(listener)

    # -- netlist attachment ---------------------------------------------------
    def add_netlist(self, netlist: Netlist, prefix: str = "") -> None:
        """Attach every gate of ``netlist`` with inertial-delay semantics.

        Signal names are ``prefix + net_name``.  Gate outputs contribute
        to per-signal toggle counts weighted by the cell's toggle energy,
        which the power model consumes.
        """
        pending: dict[str, _PendingDrive] = {}

        def make_gate_listener(gate: Gate) -> Listener:
            output = prefix + gate.output
            input_names = [prefix + net for net in gate.inputs]
            energy = gate.cell.toggle_energy

            def evaluate(sim: "Simulator", _signal: str, _value: Logic,
                         time_ps: int) -> None:
                new_value = gate.cell.output(
                    [sim.value(name) for name in input_names]
                )
                slot = pending.get(gate.name)
                if slot is not None:
                    if slot.value is new_value:
                        return
                    # Inertial delay: the input changed again before the
                    # previous transition made it out; supersede it.
                    sim.cancel(slot.handle)
                    del pending[gate.name]
                if new_value is sim.value(output):
                    return
                fire_at = time_ps + gate.delay_ps

                def commit(sim_inner: "Simulator") -> None:
                    pending.pop(gate.name, None)
                    sim_inner._apply_signal(output, new_value, energy)

                handle = sim.at(fire_at, commit, label=f"gate:{gate.name}")
                pending[gate.name] = _PendingDrive(handle, new_value)

            return evaluate

        for gate in netlist:
            listener = make_gate_listener(gate)
            for net in set(gate.inputs):
                self.on_change(prefix + net, listener)
            # Prime the gate so constant inputs propagate at t=now.
            self.at(self.now, _prime(listener), label=f"prime:{gate.name}")

    # -- energy accounting ------------------------------------------------
    def toggle_count(self, signal: str) -> int:
        return self._toggle_counts.get(signal, 0)

    def dynamic_energy(self) -> float:
        """Total dynamic energy from recorded toggles (abstract units).

        Maintained as a running total in :meth:`_apply_signal`, so power
        models may poll it per cycle without re-summing the per-signal
        ledger each time.
        """
        return self._dynamic_energy

    # -- execution ----------------------------------------------------------
    def run(self, until_ps: int, *, max_events: int = 5_000_000) -> None:
        """Process events up to and including ``until_ps``.

        ``max_events`` caps the events processed by *this* call, so long
        simulations split across several ``run()`` invocations never trip
        the runaway guard cumulatively.
        """
        if until_ps < self.now:
            raise SimulationError(
                f"cannot run to {until_ps} ps; now={self.now}"
            )
        toggles_before = self._toggles_applied
        processed_this_run = 0
        span = obs.trace_span("sim.run", until_ps=until_ps)
        with span:
            while self._queue:
                next_time = self._queue.peek_time()
                if next_time is None or next_time > until_ps:
                    break
                if processed_this_run >= max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events in one run(); "
                        f"runaway simulation?"
                    )
                event = self._queue.pop()
                self.now = event.time_ps
                self._dispatch(event)
                self._events_processed += 1
                processed_this_run += 1
            span.set(events=processed_this_run)
        self.now = until_ps
        _OBS_EVENTS.inc(processed_this_run)
        _OBS_TOGGLES.inc(self._toggles_applied - toggles_before)
        _OBS_QUEUE_DEPTH.set(len(self._queue))

    def _dispatch(self, event: Event) -> None:
        if event.action is not None:
            event.action(self)
            return
        assert event.signal is not None and event.value is not None
        self._apply_signal(event.signal, event.value, 0.0)

    def _apply_signal(self, signal: str, value: Logic,
                      toggle_energy: float) -> None:
        self._last_drive_ps[signal] = self.now
        old = self._signals.get(signal, Logic.X)
        if old is value:
            return
        self._signals[signal] = value
        self._last_change_ps[signal] = self.now
        if old is not Logic.X:
            # The initial X -> known settle (gate priming, first drive) is
            # not a real transition: counting it would charge toggle
            # energy for reaching the reset state and inflate
            # dynamic_energy() and every downstream power number.
            self._toggle_counts[signal] = (
                self._toggle_counts.get(signal, 0) + 1
            )
            self._toggles_applied += 1
            if toggle_energy:
                self._toggle_energy[signal] = (
                    self._toggle_energy.get(signal, 0.0) + toggle_energy
                )
                self._dynamic_energy += toggle_energy
        for listener in self._listeners.get(signal, ()):  # snapshot not
            # needed: listeners are registered up-front in this library.
            listener(self, signal, value, self.now)

    @property
    def events_processed(self) -> int:
        return self._events_processed


def _prime(listener: Listener) -> Action:
    """Wrap a gate listener as a zero-argument priming action."""

    def action(sim: Simulator) -> None:
        listener(sim, "", Logic.X, sim.now)

    return action
