"""VCD (Value Change Dump) export of recorded waveforms.

Lets any waveform produced by this library be inspected in standard EDA
viewers (GTKWave, Surfer, ...).  Only the small subset of IEEE 1364 VCD
needed for scalar logic signals is emitted.
"""

from __future__ import annotations

import io
from collections.abc import Mapping

from repro.circuit.logic import Logic
from repro.errors import ConfigurationError
from repro.sim.waveform import Waveform, WaveformRecorder

_VCD_VALUE = {Logic.ZERO: "0", Logic.ONE: "1", Logic.X: "x"}

#: Printable identifier characters per the VCD grammar.
_ID_ALPHABET = [chr(c) for c in range(33, 127)]


def _identifier(index: int) -> str:
    """Short VCD identifier for the ``index``-th signal."""
    chars = []
    index += 1
    while index > 0:
        index, rem = divmod(index - 1, len(_ID_ALPHABET))
        chars.append(_ID_ALPHABET[rem])
    return "".join(reversed(chars))


def dump_vcd(
    waveforms: Mapping[str, Waveform] | WaveformRecorder,
    *,
    timescale: str = "1ps",
    module: str = "repro",
    end_ps: int | None = None,
) -> str:
    """Serialise waveforms to VCD text.

    Args:
        waveforms: Mapping of signal name to waveform, or a recorder.
        timescale: VCD timescale declaration (ticks are picoseconds).
        module: Scope name the signals are declared under.
        end_ps: Optional final timestamp to emit (extends the dump).
    """
    if isinstance(waveforms, WaveformRecorder):
        waveforms = waveforms.waveforms
    if not waveforms:
        raise ConfigurationError("nothing to dump")

    out = io.StringIO()
    out.write(f"$timescale {timescale} $end\n")
    out.write(f"$scope module {module} $end\n")
    identifiers: dict[str, str] = {}
    for index, name in enumerate(sorted(waveforms)):
        ident = _identifier(index)
        identifiers[name] = ident
        safe = name.replace(" ", "_")
        out.write(f"$var wire 1 {ident} {safe} $end\n")
    out.write("$upscope $end\n$enddefinitions $end\n")

    # Initial values.
    out.write("$dumpvars\n")
    for name in sorted(waveforms):
        out.write(f"{_VCD_VALUE[waveforms[name].initial]}"
                  f"{identifiers[name]}\n")
    out.write("$end\n")

    # Merge change points across signals in time order.
    changes: list[tuple[int, str, Logic]] = []
    for name, waveform in waveforms.items():
        for edge in waveform.edges():
            changes.append((edge.time_ps, name, edge.new))
    changes.sort(key=lambda item: (item[0], item[1]))

    last_time: int | None = None
    for time_ps, name, value in changes:
        if time_ps != last_time:
            out.write(f"#{time_ps}\n")
            last_time = time_ps
        out.write(f"{_VCD_VALUE[value]}{identifiers[name]}\n")
    if end_ps is not None and (last_time is None or end_ps > last_time):
        out.write(f"#{end_ps}\n")
    return out.getvalue()


def write_vcd(path: str, waveforms, **kwargs) -> None:
    """Write :func:`dump_vcd` output to ``path``."""
    text = dump_vcd(waveforms, **kwargs)
    with open(path, "w", encoding="ascii") as handle:
        handle.write(text)
