"""Fault injection for the event-driven simulator.

Supports the two fault classes the TIMBER-family literature cares about:

* **delay faults** — a signal's transition is postponed by a chosen
  amount (crosstalk, resistive defects, droop on one path);
* **single-event upsets (SEUs)** — a transient pulse of bounded width
  flips a signal and then releases it (particle strikes).

Injection is scheduled, deterministic, and logged, so experiments can
correlate injected faults with detection/masking outcomes.  A TIMBER
latch, for example, flags an SEU that lands between its master and
slave closing instants — the same mechanism that catches late
transitions (cf. the sense-amplifier soft-error detector the paper
cites as [9]).
"""

from __future__ import annotations

import dataclasses
import logging

from repro.circuit.logic import Logic
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator

logger = logging.getLogger("repro.sim.faults")


@dataclasses.dataclass(frozen=True)
class InjectedFault:
    """Log record of one injected fault."""

    kind: str
    signal: str
    time_ps: int
    detail: str


class FaultInjector:
    """Schedules faults on simulator signals and logs them."""

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator
        self.log: list[InjectedFault] = []

    def _check_not_past(self, kind: str, signal: str, time_ps: int) -> None:
        if time_ps < self.simulator.now:
            raise ConfigurationError(
                f"cannot inject {kind} on {signal!r} at {time_ps} ps: "
                f"the simulator is already at {self.simulator.now} ps"
            )

    # -- SEU ---------------------------------------------------------------
    def inject_seu(self, signal: str, at_ps: int, width_ps: int) -> None:
        """Flip ``signal`` at ``at_ps`` for ``width_ps`` picoseconds.

        The pulse value is the inverse of whatever the signal holds when
        the strike lands.  The original value is restored afterwards —
        unless the functional circuit re-drove the signal mid-pulse, in
        which case the restore *yields* (later drives win, as in
        silicon) and the yield is logged.
        """
        if width_ps <= 0:
            raise ConfigurationError("SEU width must be > 0")
        self._check_not_past("SEU", signal, at_ps)

        def strike(sim: Simulator) -> None:
            original = sim.value(signal)
            flipped = ~original if original is not Logic.X else Logic.ONE
            strike_ps = sim.now
            sim.drive(signal, flipped, sim.now, label=f"seu:{signal}")

            def restore(inner: Simulator) -> None:
                last = inner.last_drive_ps(signal)
                if last is not None and last > strike_ps:
                    # A functional driver re-drove the signal after the
                    # strike landed; restoring the pre-strike value now
                    # would overwrite real circuit activity.
                    logger.info(
                        "seu restore on %r yields: signal re-driven at "
                        "%d ps (pulse started %d ps)",
                        signal, last, strike_ps)
                    return
                inner.drive(signal, original, inner.now,
                            label=f"seu-recover:{signal}")

            sim.after(width_ps, restore, label=f"seu-recover@{signal}")

        self.simulator.at(at_ps, strike, label=f"seu@{signal}")
        self.log.append(InjectedFault(
            kind="seu", signal=signal, time_ps=at_ps,
            detail=f"width={width_ps}ps"))

    # -- delay fault -------------------------------------------------------
    def inject_delay_fault(self, signal: str, from_ps: int,
                           extra_delay_ps: int) -> None:
        """Postpone every change of ``signal`` after ``from_ps``.

        Implemented as a shadow signal: consumers should observe
        ``delayed_name(signal)`` instead of ``signal``.  The original
        signal is left untouched so the same stimulus can drive faulty
        and fault-free observers in one simulation.
        """
        if extra_delay_ps <= 0:
            raise ConfigurationError("extra delay must be > 0")
        self._check_not_past("delay fault", signal, from_ps)
        shadow = self.delayed_name(signal)
        sim = self.simulator
        sim.set_initial(shadow, sim.value(signal))

        def follow(inner: Simulator, _name: str, value: Logic,
                   time_ps: int) -> None:
            delay = extra_delay_ps if time_ps >= from_ps else 0
            inner.drive(shadow, value, time_ps + delay,
                        label=f"delayfault:{signal}")

        sim.on_change(signal, follow)
        self.log.append(InjectedFault(
            kind="delay", signal=signal, time_ps=from_ps,
            detail=f"extra={extra_delay_ps}ps"))

    @staticmethod
    def delayed_name(signal: str) -> str:
        """Name of the shadow signal carrying the delayed copy."""
        return f"{signal}__delayfault"

    # -- stuck-at ------------------------------------------------------------
    def inject_stuck_at(self, signal: str, at_ps: int,
                        value: Logic | int) -> None:
        """Force ``signal`` to ``value`` from ``at_ps`` onward.

        Any later functional drive is immediately overridden (the fault
        keeps re-asserting), modelling a hard defect."""
        self._check_not_past("stuck-at", signal, at_ps)
        level = Logic.from_value(value)
        sim = self.simulator

        def clamp(inner: Simulator, _name: str, new: Logic,
                  time_ps: int) -> None:
            if time_ps >= at_ps and new is not level:
                inner.drive(signal, level, time_ps, label=f"sa:{signal}")

        def engage(inner: Simulator) -> None:
            inner.drive(signal, level, inner.now, label=f"sa:{signal}")
            inner.on_change(signal, clamp)

        sim.at(at_ps, engage, label=f"sa@{signal}")
        self.log.append(InjectedFault(
            kind="stuck-at", signal=signal, time_ps=at_ps,
            detail=f"value={level}"))
