"""Clock generation for the event-driven simulator.

:class:`ClockGenerator` drives a signal with a square wave whose period can
be stepped at runtime — the mechanism the central error-control unit uses
to *temporarily reduce the clock frequency* after a flagged timing error.
:class:`DelayedClock` derives a fixed-offset copy of another clock, which
is how the TIMBER flip-flop's M1 master latch receives ``clk + delta``.
"""

from __future__ import annotations

import dataclasses

from repro.circuit.logic import Logic
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator


@dataclasses.dataclass
class ClockEdges:
    """Convenience record of a generator's emitted edge times."""

    rising: list[int] = dataclasses.field(default_factory=list)
    falling: list[int] = dataclasses.field(default_factory=list)


class ClockGenerator:
    """Drives ``signal`` with a square wave from ``start_ps``.

    The duty cycle is 50% unless ``high_ps`` is given.  Period changes
    requested via :meth:`set_period` take effect at the next rising edge,
    mirroring how a clock-management unit would retune a PLL/divider
    without glitching the clock tree.
    """

    def __init__(
        self,
        simulator: Simulator,
        signal: str,
        period_ps: int,
        *,
        start_ps: int = 0,
        high_ps: int | None = None,
    ) -> None:
        if period_ps <= 1:
            raise ConfigurationError(f"period must be >1 ps, got {period_ps}")
        if high_ps is not None and not 0 < high_ps < period_ps:
            raise ConfigurationError(
                f"high time {high_ps} must be within (0, {period_ps})"
            )
        self.simulator = simulator
        self.signal = signal
        self.period_ps = period_ps
        self.high_ps = high_ps if high_ps is not None else period_ps // 2
        self._explicit_high = high_ps is not None
        self.edges = ClockEdges()
        self._pending_period: int | None = None
        simulator.set_initial(signal, Logic.ZERO)
        simulator.at(start_ps, self._rise, label=f"clk-rise:{signal}")

    def set_period(self, period_ps: int) -> None:
        """Request a new period, applied from the next rising edge."""
        if period_ps <= 1:
            raise ConfigurationError(f"period must be >1 ps, got {period_ps}")
        self._pending_period = period_ps

    def _rise(self, sim: Simulator) -> None:
        if self._pending_period is not None:
            if not self._explicit_high:
                self.high_ps = self._pending_period // 2
            elif self.high_ps >= self._pending_period:
                raise ConfigurationError(
                    "explicit high time exceeds the new period"
                )
            self.period_ps = self._pending_period
            self._pending_period = None
        now = sim.now
        self.edges.rising.append(now)
        sim.drive(self.signal, Logic.ONE, now, label=f"{self.signal}=1")
        sim.at(now + self.high_ps, self._fall, label=f"clk-fall:{self.signal}")
        sim.at(now + self.period_ps, self._rise, label=f"clk-rise:{self.signal}")

    def _fall(self, sim: Simulator) -> None:
        self.edges.falling.append(sim.now)
        sim.drive(self.signal, Logic.ZERO, sim.now, label=f"{self.signal}=0")


class DelayedClock:
    """Drives ``signal`` as ``source`` delayed by ``delay_ps``.

    The delay may be changed between edges via :attr:`delay_ps` — the
    TIMBER flip-flop's select inputs (S1 S0) reconfigure exactly this
    delay for the M1 master latch, one checking-period interval at a time.
    """

    def __init__(
        self,
        simulator: Simulator,
        source: str,
        signal: str,
        delay_ps: int,
    ) -> None:
        if delay_ps < 0:
            raise ConfigurationError(f"delay must be >=0, got {delay_ps}")
        self.simulator = simulator
        self.source = source
        self.signal = signal
        self.delay_ps = delay_ps
        simulator.set_initial(signal, simulator.value(source))
        simulator.on_change(source, self._follow)

    def _follow(self, sim: Simulator, _signal: str, value: Logic,
                time_ps: int) -> None:
        sim.drive(self.signal, value, time_ps + self.delay_ps,
                  label=f"dly:{self.signal}")
