"""Events and the deterministic event queue.

Events are ordered by ``(time, sequence)`` where the sequence number is a
monotonically increasing insertion counter.  Two events scheduled for the
same instant therefore fire in insertion order, which keeps simulations
fully deterministic and makes same-delta races explicit in the code that
schedules them rather than in heap internals.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import typing

from repro.circuit.logic import Logic
from repro.errors import SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

#: A callback fired when its event is popped from the queue.
Action = typing.Callable[["Simulator"], None]


@dataclasses.dataclass(frozen=True)
class Event:
    """A scheduled occurrence.

    Exactly one of (``signal``, ``value``) or ``action`` is used: signal
    events drive a named signal to a logic value; action events invoke a
    callback (used for clock edges, sampling instants, and controller
    timeouts).
    """

    time_ps: int
    signal: str | None = None
    value: Logic | None = None
    action: Action | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.time_ps < 0:
            raise SimulationError(f"event time must be >=0, got {self.time_ps}")
        has_signal = self.signal is not None
        has_action = self.action is not None
        if has_signal == has_action:
            raise SimulationError(
                "event must carry exactly one of signal-drive or action"
            )
        if has_signal and self.value is None:
            raise SimulationError(f"signal event {self.signal!r} needs a value")


class EventQueue:
    """A cancellable priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Event]] = []
        self._counter = itertools.count()
        self._pending: set[int] = set()
        self._cancelled: set[int] = set()

    def push(self, event: Event) -> int:
        """Schedule ``event``; returns a handle usable with :meth:`cancel`."""
        handle = next(self._counter)
        heapq.heappush(self._heap, (event.time_ps, handle, event))
        self._pending.add(handle)
        return handle

    def cancel(self, handle: int) -> None:
        """Cancel a previously pushed event.

        A defined no-op for handles that were never issued, were already
        popped, or were already cancelled — so a supersede path that
        races a commit (inertial delay in ``add_netlist``) can never
        corrupt the live-event bookkeeping by double-cancelling.
        """
        if handle not in self._pending:
            return
        self._pending.discard(handle)
        self._cancelled.add(handle)

    def pop(self) -> Event:
        """Remove and return the earliest live event."""
        while self._heap:
            time_ps, handle, event = heapq.heappop(self._heap)
            if handle in self._cancelled:
                self._cancelled.discard(handle)
                continue
            self._pending.discard(handle)
            return event
        raise SimulationError("pop from empty event queue")

    def peek_time(self) -> int | None:
        """Timestamp of the earliest live event, or ``None`` if empty."""
        while self._heap:
            time_ps, handle, _event = self._heap[0]
            if handle in self._cancelled:
                heapq.heappop(self._heap)
                self._cancelled.discard(handle)
                continue
            return time_ps
        return None

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)
