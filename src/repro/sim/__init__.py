"""Event-driven digital timing simulation."""

from repro.sim.events import Event, EventQueue
from repro.sim.engine import Simulator
from repro.sim.clocks import ClockGenerator, DelayedClock
from repro.sim.waveform import Waveform, WaveformRecorder
from repro.sim.faults import FaultInjector, InjectedFault
from repro.sim.vcd import dump_vcd, write_vcd

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "ClockGenerator",
    "DelayedClock",
    "Waveform",
    "WaveformRecorder",
    "FaultInjector",
    "InjectedFault",
    "dump_vcd",
    "write_vcd",
]
