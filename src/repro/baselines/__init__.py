"""Baseline techniques for online timing-error resilience (Table 1)."""

from repro.baselines.registry import (
    TABLE1_CATEGORIES,
    TechniqueCategory,
    table1_rows,
)
from repro.baselines.architectures import (
    ARCHITECTURES,
    TechniqueArchitecture,
    architecture_by_key,
)

__all__ = [
    "TechniqueCategory",
    "TABLE1_CATEGORIES",
    "table1_rows",
    "TechniqueArchitecture",
    "ARCHITECTURES",
    "architecture_by_key",
]
