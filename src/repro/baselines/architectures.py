"""Architecture-level models of each resilience technique.

A :class:`TechniqueArchitecture` bundles everything the comparison
experiments need to treat a technique uniformly: a capture-policy
factory for the pipeline simulator, the sequential cell that prices the
deployment, whether an error relay is required, and how much
dynamic-variability margin the technique can actually recover.

The margin-recovery semantics mirror Table 1:

* detection (Razor) and temporal masking (TIMBER, DCF) recover the full
  checking window — they act *after* the clock edge;
* prediction (canary) recovers nothing: the guard band must stay ahead
  of the edge permanently, so the margin is spent whether or not
  variability shows up;
* an unprotected design recovers nothing and fails on any violation.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.checking_period import CheckingPeriod
from repro.errors import ConfigurationError

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.power.models import DesignCostModel
    from repro.power.overhead import DeploymentOverhead
    from repro.timing.graph import TimingGraph
from repro.pipeline.schemes import (
    CanaryPolicy,
    ClockStallPolicy,
    CapturePolicy,
    LogicalMaskingPolicy,
    DcfPolicy,
    PlainPolicy,
    RazorPolicy,
    TimberFFPolicy,
    TimberLatchPolicy,
)

#: Factory signature: (num_boundaries, period_ps, checking_percent).
PolicyFactory = typing.Callable[[int, int, float], CapturePolicy]


@dataclasses.dataclass(frozen=True)
class TechniqueArchitecture:
    """Uniform handle on one technique for comparison experiments."""

    key: str
    display_name: str
    element_cell: str
    needs_relay: bool
    recovers_margin: bool
    corrupts_state_on_error: bool
    policy_factory: PolicyFactory

    def build_policy(self, num_boundaries: int, period_ps: int,
                     checking_percent: float) -> CapturePolicy:
        if num_boundaries < 1:
            raise ConfigurationError("need at least one boundary")
        return self.policy_factory(num_boundaries, period_ps,
                                   checking_percent)

    def margin_recovered_percent(self, checking_percent: float,
                                 with_tb_interval: bool = True) -> float:
        """Dynamic margin recovered, as % of the clock period."""
        if not self.recovers_margin:
            return 0.0
        if self.key in ("timber-ff", "timber-latch"):
            intervals = 3 if with_tb_interval else 2
            return checking_percent / intervals
        # Razor/DCF tolerate the full window but only one stage deep.
        return checking_percent

    def deployment(
        self,
        graph: "TimingGraph",
        checking_percent: float,
        *,
        cost_model: "DesignCostModel | None" = None,
    ) -> "DeploymentOverhead":
        """Price this technique deployed on ``graph``'s critical cones.

        Every technique replaces the flip-flops terminating top-c%
        critical paths with its own sequential cell; only relay-bearing
        techniques additionally pay for the select network.  The
        endpoint set and relay pricing come from the graph's memoized
        criticality index, so comparing all architectures on one graph
        compiles the criticality structure once instead of rescanning
        the edge list per technique.
        """
        from repro.power.overhead import deployment_overhead

        return deployment_overhead(
            graph,
            percent_checking=checking_percent,
            style="ff" if self.needs_relay else "latch",
            cost_model=cost_model,
            element_cell=self.element_cell,
        )


def _timber_ff(n: int, period_ps: int, percent: float) -> CapturePolicy:
    return TimberFFPolicy(n, CheckingPeriod.with_tb(period_ps, percent))


def _timber_latch(n: int, period_ps: int, percent: float) -> CapturePolicy:
    return TimberLatchPolicy(n, CheckingPeriod.with_tb(period_ps, percent))


def _razor(n: int, period_ps: int, percent: float) -> CapturePolicy:
    window = CheckingPeriod.with_tb(period_ps, percent).checking_ps
    return RazorPolicy(n, window_ps=window, replay_penalty=5)


def _canary(n: int, period_ps: int, percent: float) -> CapturePolicy:
    guard = CheckingPeriod.with_tb(period_ps, percent).checking_ps
    return CanaryPolicy(n, guard_ps=guard)


def _dcf(n: int, period_ps: int, percent: float) -> CapturePolicy:
    window = CheckingPeriod.with_tb(period_ps, percent).checking_ps
    return DcfPolicy(n, detect_window_ps=window // 2,
                     resample_delay_ps=window)


def _stall(n: int, period_ps: int, percent: float) -> CapturePolicy:
    window = CheckingPeriod.with_tb(period_ps, percent).checking_ps
    return ClockStallPolicy(n, window_ps=window)


def _logical(n: int, period_ps: int, percent: float) -> CapturePolicy:
    # Redundant covers are synthesised for ~80% of the critical cones
    # (full coverage is rarely affordable combinationally).
    return LogicalMaskingPolicy(n, coverage=0.8)


def _plain(n: int, period_ps: int, percent: float) -> CapturePolicy:
    return PlainPolicy(n)


ARCHITECTURES: tuple[TechniqueArchitecture, ...] = (
    TechniqueArchitecture(
        key="plain", display_name="Unprotected (worst-case margin)",
        element_cell="DFF", needs_relay=False, recovers_margin=False,
        corrupts_state_on_error=True, policy_factory=_plain,
    ),
    TechniqueArchitecture(
        key="timber-ff", display_name="TIMBER flip-flop",
        element_cell="TIMBER_FF", needs_relay=True, recovers_margin=True,
        corrupts_state_on_error=False, policy_factory=_timber_ff,
    ),
    TechniqueArchitecture(
        key="timber-latch", display_name="TIMBER latch",
        element_cell="TIMBER_LATCH", needs_relay=False,
        recovers_margin=True, corrupts_state_on_error=False,
        policy_factory=_timber_latch,
    ),
    TechniqueArchitecture(
        key="razor", display_name="Razor (detect + replay)",
        element_cell="RAZOR_FF", needs_relay=False, recovers_margin=True,
        corrupts_state_on_error=True, policy_factory=_razor,
    ),
    TechniqueArchitecture(
        key="canary", display_name="Canary (predict + guard band)",
        element_cell="CANARY_FF", needs_relay=False, recovers_margin=False,
        corrupts_state_on_error=False, policy_factory=_canary,
    ),
    TechniqueArchitecture(
        key="logical", display_name="Logical masking (redundant logic)",
        element_cell="DFF", needs_relay=False, recovers_margin=True,
        corrupts_state_on_error=False, policy_factory=_logical,
    ),
    TechniqueArchitecture(
        key="clock-stall", display_name="Clock-stall masking",
        element_cell="RAZOR_FF", needs_relay=False, recovers_margin=True,
        corrupts_state_on_error=False, policy_factory=_stall,
    ),
    TechniqueArchitecture(
        key="dcf", display_name="Delay-compensation FF",
        element_cell="DFF", needs_relay=False, recovers_margin=True,
        corrupts_state_on_error=False, policy_factory=_dcf,
    ),
)


def architecture_by_key(key: str) -> TechniqueArchitecture:
    for architecture in ARCHITECTURES:
        if architecture.key == key:
            return architecture
    raise KeyError(f"unknown architecture {key!r}; known: "
                   f"{[a.key for a in ARCHITECTURES]}")
