"""Technique taxonomy and comparison attributes (paper Table 1).

The paper's Table 1 compares four families of online timing-error
resilience techniques along qualitative axes.  This registry encodes
those attributes so the comparison table can be regenerated (and so the
architecture models can be checked against their claimed properties).
"""

from __future__ import annotations

import dataclasses
import enum


class TechniqueCategory(enum.Enum):
    """The four columns of Table 1."""

    ERROR_DETECTION = "Error detection"
    ERROR_PREDICTION = "Error prediction"
    LOGICAL_MASKING = "Logical error masking"
    TEMPORAL_MASKING = "Temporal error masking"


@dataclasses.dataclass(frozen=True)
class CategoryAttributes:
    """One column of Table 1."""

    category: TechniqueCategory
    detection_mechanism: str
    when_relative_to_clock_edge: str
    error_recovery_mechanism: str
    clock_tree_loading: bool
    short_path_padding: bool
    sequential_overhead: str
    combinational_overhead: str
    timing_margin_recovery: str
    variability_source_targeted: str
    example_techniques: tuple[str, ...]


TABLE1_CATEGORIES: tuple[CategoryAttributes, ...] = (
    CategoryAttributes(
        category=TechniqueCategory.ERROR_DETECTION,
        detection_mechanism="Duplicate latch/FFs, transition detectors",
        when_relative_to_clock_edge="After",
        error_recovery_mechanism="Rollback or instruction replay",
        clock_tree_loading=True,
        short_path_padding=True,
        sequential_overhead="Large",
        combinational_overhead="Small",
        timing_margin_recovery="Full",
        variability_source_targeted="All dynamic",
        example_techniques=("Razor", "TDTB and DSTB", "Sense amplifier"),
    ),
    CategoryAttributes(
        category=TechniqueCategory.ERROR_PREDICTION,
        detection_mechanism="Duplicate latch/FFs, sensors, duplicate paths",
        when_relative_to_clock_edge="Before",
        error_recovery_mechanism="No error (state never corrupted)",
        clock_tree_loading=True,
        short_path_padding=True,
        sequential_overhead="Large",
        combinational_overhead="None",
        timing_margin_recovery="Partial",
        variability_source_targeted="Gradual dynamic",
        example_techniques=("Canary FFs", "Aging sensors", "DTC"),
    ),
    CategoryAttributes(
        category=TechniqueCategory.LOGICAL_MASKING,
        detection_mechanism="Redundant logic",
        when_relative_to_clock_edge="After",
        error_recovery_mechanism="No error (masked combinationally)",
        clock_tree_loading=False,
        short_path_padding=False,
        sequential_overhead="None",
        combinational_overhead="Moderate",
        timing_margin_recovery="Full",
        variability_source_targeted="All dynamic",
        example_techniques=("Approximate circuits",),
    ),
    CategoryAttributes(
        category=TechniqueCategory.TEMPORAL_MASKING,
        detection_mechanism="Duplicate latch/FFs, edge detectors",
        when_relative_to_clock_edge="After",
        error_recovery_mechanism="No error (time borrowing)",
        clock_tree_loading=True,
        short_path_padding=True,
        sequential_overhead="Large",
        combinational_overhead="Small",
        timing_margin_recovery="Full",
        variability_source_targeted="All dynamic",
        example_techniques=("PAFF", "DCFF", "TIMBER"),
    ),
)


#: Rows of Table 1, in presentation order: (feature label, attribute).
TABLE1_FEATURES: tuple[tuple[str, str], ...] = (
    ("Error detection mechanism", "detection_mechanism"),
    ("When? (relative to clock edge)", "when_relative_to_clock_edge"),
    ("Error recovery mechanism", "error_recovery_mechanism"),
    ("Clock-tree loading", "clock_tree_loading"),
    ("Short-path padding", "short_path_padding"),
    ("Sequential overhead", "sequential_overhead"),
    ("Combinational overhead", "combinational_overhead"),
    ("Timing margin recovery", "timing_margin_recovery"),
    ("Variability source targeted", "variability_source_targeted"),
    ("Techniques", "example_techniques"),
)


def table1_rows() -> list[list[str]]:
    """Render Table 1 as rows of strings (first column = feature)."""
    rows: list[list[str]] = []
    for label, attribute in TABLE1_FEATURES:
        row = [label]
        for column in TABLE1_CATEGORIES:
            value = getattr(column, attribute)
            if isinstance(value, bool):
                row.append("Yes" if value else "No")
            elif isinstance(value, tuple):
                row.append(", ".join(value))
            else:
                row.append(str(value))
        rows.append(row)
    return rows


def category_of(technique_key: str) -> TechniqueCategory:
    """Category of one of the modelled techniques."""
    mapping = {
        "plain": TechniqueCategory.ERROR_DETECTION,  # degenerate baseline
        "razor": TechniqueCategory.ERROR_DETECTION,
        "canary": TechniqueCategory.ERROR_PREDICTION,
        "dcf": TechniqueCategory.TEMPORAL_MASKING,
        "clock-stall": TechniqueCategory.TEMPORAL_MASKING,
        "logical": TechniqueCategory.LOGICAL_MASKING,
        "soft-edge": TechniqueCategory.TEMPORAL_MASKING,
        "timber-ff": TechniqueCategory.TEMPORAL_MASKING,
        "timber-latch": TechniqueCategory.TEMPORAL_MASKING,
    }
    try:
        return mapping[technique_key]
    except KeyError:
        raise KeyError(f"unknown technique {technique_key!r}; "
                       f"known: {sorted(mapping)}") from None
