"""Time and unit helpers.

All timing in this library is expressed in **integer picoseconds** so that
event ordering and interval arithmetic are exact.  Helper functions convert
between picoseconds and the derived quantities the paper reasons about
(fractions of a clock period, checking-period percentages, frequencies).
"""

from __future__ import annotations

PS_PER_NS = 1_000
PS_PER_US = 1_000_000

#: Picoseconds in one second, used for frequency conversions.
PS_PER_S = 1_000_000_000_000


def ns(value: float) -> int:
    """Convert nanoseconds to integer picoseconds (rounded to nearest)."""
    return int(round(value * PS_PER_NS))


def ps(value: float) -> int:
    """Round a picosecond quantity to an integer tick."""
    return int(round(value))


def mhz_to_period_ps(freq_mhz: float) -> int:
    """Clock period in picoseconds for a frequency in MHz."""
    if freq_mhz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_mhz} MHz")
    return int(round(PS_PER_S / (freq_mhz * 1_000_000)))


def period_ps_to_mhz(period_ps: int) -> float:
    """Clock frequency in MHz for a period in picoseconds."""
    if period_ps <= 0:
        raise ValueError(f"period must be positive, got {period_ps} ps")
    return PS_PER_S / (period_ps * 1_000_000)


def percent_of(period_ps: int, percent: float) -> int:
    """``percent`` % of ``period_ps``, rounded to an integer picosecond.

    The paper expresses checking periods as percentages of the clock
    period (10%, 20%, 30%, 40%); this helper keeps that arithmetic in one
    place.
    """
    if period_ps < 0:
        raise ValueError(f"period must be non-negative, got {period_ps}")
    return int(round(period_ps * percent / 100.0))


def as_percent(part: float, whole: float) -> float:
    """``part`` as a percentage of ``whole`` (0 if ``whole`` is 0)."""
    if whole == 0:
        return 0.0
    return 100.0 * part / whole
