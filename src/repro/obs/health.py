"""Run health: a pure fold from an event prefix to a ``RunHealth``.

``HealthFold.apply`` consumes events in spool order (header included)
and ``health()`` projects the accumulated state into one JSON-able
:class:`RunHealth` model.  The fold is deliberately *pure*: it never
reads the clock on its own — staleness is judged against a ``now``
passed by the caller — so the same event prefix always folds to the
same health, whether it is fed live by the CLI's in-process listener or
re-read from disk by ``repro-timber monitor``.  That sharing is the
satellite guarantee: CLI progress lines and the monitor render the same
fold, so they cannot disagree.

Derived signals
---------------
* **Throughput** — EMA over per-``progress`` (or per-``round``, for
  soak) instantaneous rates on the writer's monotonic clock; the peak
  EMA is retained so collapse is detectable.
* **Fault throughput** — campaign/soak ``metrics`` events carry
  snapshot deltas of ``repro_campaign_outcomes_total``; summing them
  counts classified faults, and dividing by the writer's monotonic
  elapsed time yields ``faults_per_second`` — campaign speed in the
  unit the benches gate on, independent of task sizing.
* **ETA** — remaining units over the throughput EMA, when a total is
  known.
* **Staleness** — the writer heartbeats at least every
  ``heartbeat_s/2 * 1.5`` seconds while alive, so a wall-clock gap
  greater than one full ``heartbeat_s`` means the writer died without
  a ``run_end`` — the run is reported ``stale``.

Anomaly flags (recomputed at projection time, never stored):

* ``stalled_heartbeat`` — the staleness rule above;
* ``retry_storm`` — retries exceed half the executed-task count (min
  10 retries), the signature of a flapping worker pool;
* ``throughput_collapse`` — the throughput EMA fell below a quarter of
  its peak after at least five rate samples.
"""

from __future__ import annotations

import dataclasses
import typing

HEALTH_SCHEMA_VERSION = 2

#: Counter family whose snapshot deltas (in ``metrics`` events) count
#: classified faults — the source of ``faults_per_second``.
_FAULT_OUTCOME_FAMILY = "repro_campaign_outcomes_total"

#: EMA smoothing for instantaneous rate samples.
_EMA_ALPHA = 0.3

#: ``throughput_collapse`` fires below this fraction of the peak EMA.
_COLLAPSE_FRACTION = 0.25

#: ... after at least this many rate samples (warmup guard).
_COLLAPSE_MIN_SAMPLES = 5

#: ``retry_storm`` needs at least this many retries ...
_RETRY_STORM_MIN = 10

#: ... and more than this ratio of retries to executed tasks.
_RETRY_STORM_RATIO = 0.5


@dataclasses.dataclass
class RunHealth:
    """Point-in-time health of one run, folded from its event prefix."""

    run_id: str | None = None
    kind: str = "run"
    #: Raw lifecycle from events: pending/running/draining/done/
    #: drained/error.
    lifecycle: str = "pending"
    #: Lifecycle with staleness applied — what UIs should show.
    status: str = "pending"
    stale: bool = False
    flags: tuple[str, ...] = ()
    heartbeat_s: float | None = None
    started_wall: float | None = None
    last_event_wall: float | None = None
    last_event_type: str | None = None
    last_event_age_s: float | None = None
    last_seq: int = 0
    phase: str | None = None
    unit: str = "tasks"
    total: int | None = None
    done: int = 0
    executed: int = 0
    cached: int = 0
    resumed: int = 0
    poisoned: int = 0
    retries: int = 0
    crashes: int = 0
    fallbacks: int = 0
    batches: int = 0
    checkpoints: int = 0
    events_processed: int = 0
    workers: int = 0
    busy_s: float = 0.0
    elapsed_s: float = 0.0
    utilization: float | None = None
    cache_hit_rate: float | None = None
    throughput: float | None = None
    throughput_peak: float | None = None
    eta_s: float | None = None
    faults_classified: int = 0
    faults_per_second: float | None = None
    #: Soak-only block (``None`` for sweep/campaign runs).
    soak: dict | None = None

    def to_json(self) -> dict:
        """Schema-stable machine-readable projection.

        Key set and meaning are pinned by ``scripts/obs_smoke.py``;
        bump ``schema`` when changing either.
        """
        body = dataclasses.asdict(self)
        body["flags"] = list(self.flags)
        return {"schema": HEALTH_SCHEMA_VERSION, **body}


class HealthFold:
    """Incremental fold of an event stream into run health."""

    def __init__(self, *, stale_after_s: float | None = None) -> None:
        #: Override for the staleness threshold (defaults to the
        #: header's ``heartbeat_s``).
        self.stale_after_s = stale_after_s
        self._run_id: str | None = None
        self._kind = "run"
        self._heartbeat_s: float | None = None
        self._lifecycle = "pending"
        self._end_status: str | None = None
        self._started_wall: float | None = None
        self._started_mono: int | None = None
        self._last_wall: float | None = None
        self._last_mono: int | None = None
        self._last_type: str | None = None
        self._last_seq = 0
        self._phase: str | None = None
        self._unit = "tasks"
        self._total: int | None = None
        self._phase_totals = 0
        self._counts: dict[str, int] = {}
        self._busy_s = 0.0
        self._workers = 0
        # Rate estimation: (units, mono_ns) of the previous sample.
        self._rate_prev: tuple[int, int] | None = None
        self._ema: float | None = None
        self._ema_peak: float | None = None
        self._rate_samples = 0
        self._uses_rounds = False
        self._soak: dict | None = None
        self._faults_classified = 0

    # -- folding -----------------------------------------------------------
    def apply(self, event: dict) -> None:
        etype = event.get("type")
        if etype == "header":
            self._run_id = event.get("run_id")
            self._kind = event.get("kind", "run")
            self._heartbeat_s = event.get("heartbeat_s")
            self._started_wall = event.get("wall")
            self._started_mono = event.get("mono_ns")
            return
        self._last_wall = event.get("wall", self._last_wall)
        self._last_mono = event.get("mono_ns", self._last_mono)
        self._last_type = etype
        seq = event.get("seq")
        if isinstance(seq, int):
            self._last_seq = max(self._last_seq, seq)
        if etype == "run_start":
            self._lifecycle = "running"
            self._kind = event.get("kind", self._kind)
            self._unit = event.get("unit", self._unit)
            if event.get("total") is not None:
                self._total = event["total"]
            if self._started_mono is None:
                self._started_mono = event.get("mono_ns")
        elif etype == "phase_start":
            self._phase = event.get("phase")
            self._workers = event.get("workers", self._workers)
            if event.get("total") is not None:
                self._phase_totals += event["total"]
        elif etype == "progress":
            for key in ("done", "executed", "cached", "resumed",
                        "poisoned", "retries", "crashes", "fallbacks",
                        "batches", "checkpoints", "events_processed"):
                if key in event:
                    # All counters are monotone and cumulative; max
                    # keeps an immediate retry/crash event from being
                    # rolled back by a progress snapshot taken before
                    # it.
                    self._counts[key] = max(self._counts.get(key, 0),
                                            event[key])
            self._busy_s = event.get("busy_s", self._busy_s)
            self._workers = event.get("workers", self._workers)
            if event.get("phase") is not None:
                self._phase = event["phase"]
            if not self._uses_rounds:
                self._rate_sample(self._counts.get("done", 0),
                                  event.get("mono_ns"))
        elif etype == "round":
            # Soak progress: faults, not runner tasks, are the unit.
            if not self._uses_rounds:
                self._uses_rounds = True
                self._unit = "faults"
                self._rate_prev = None  # restart rate estimation
                self._rate_samples = 0
                self._ema = self._ema_peak = None
            self._soak = {
                "rounds": event.get("round"),
                "faults": event.get("faults"),
                "escape_rate": event.get("escape_rate"),
                "ci_low": event.get("ci_low"),
                "ci_high": event.get("ci_high"),
                "widest_stratum": event.get("widest_stratum"),
                "widest_ci_width": event.get("widest_ci_width"),
                "per_stratum": event.get("per_stratum"),
            }
            if event.get("faults") is not None:
                self._rate_sample(event["faults"], event.get("mono_ns"))
        elif etype in ("retry", "crash", "quarantine", "fallback"):
            key = {"retry": "retries", "crash": "crashes",
                   "quarantine": "poisoned",
                   "fallback": "fallbacks"}[etype]
            total = event.get("total")
            if total is not None:
                self._counts[key] = max(self._counts.get(key, 0), total)
            else:  # pragma: no cover - defensive
                self._counts[key] = self._counts.get(key, 0) + 1
        elif etype == "metrics":
            # Metrics events ship snapshot *deltas*; each outcome
            # counter increment is one classified fault, whatever the
            # target/scheme/classification labels say.
            record = (event.get("delta") or {}).get(
                _FAULT_OUTCOME_FAMILY)
            if record:
                self._faults_classified += sum(
                    int(entry.get("value", 0))
                    for entry in record.get("series", ()))
        elif etype == "checkpoint":
            if event.get("total") is not None:
                self._counts["checkpoints"] = event["total"]
        elif etype == "drain":
            if self._lifecycle in ("pending", "running"):
                self._lifecycle = "draining"
        elif etype == "run_end":
            status = event.get("status", "ok")
            self._end_status = status
            self._lifecycle = {"ok": "done"}.get(status, status)
        # heartbeat / phase_end only refresh last-event state.

    def apply_all(self, events: typing.Iterable[dict]) -> "HealthFold":
        for event in events:
            self.apply(event)
        return self

    def _rate_sample(self, units: int, mono_ns: int | None) -> None:
        if mono_ns is None:
            return
        prev = self._rate_prev
        self._rate_prev = (units, mono_ns)
        if prev is None:
            return
        d_units = units - prev[0]
        d_s = (mono_ns - prev[1]) / 1e9
        if d_units <= 0 or d_s <= 0:
            return
        inst = d_units / d_s
        self._ema = (inst if self._ema is None
                     else _EMA_ALPHA * inst
                     + (1.0 - _EMA_ALPHA) * self._ema)
        self._ema_peak = max(self._ema_peak or 0.0, self._ema)
        self._rate_samples += 1

    # -- projection --------------------------------------------------------
    def health(self, *, now_wall: float | None = None) -> RunHealth:
        """Project current state; ``now_wall`` drives staleness.

        Passing ``now_wall=None`` skips staleness entirely (useful for
        deterministic tests over finished streams).
        """
        counts = self._counts
        done = counts.get("done", 0)
        executed = counts.get("executed", 0)
        cached = counts.get("cached", 0)
        retries = counts.get("retries", 0)
        total = self._total
        if total is None and self._phase_totals:
            total = self._phase_totals
        unit_count = done
        if self._uses_rounds and self._soak:
            unit_count = self._soak.get("faults") or 0
        elapsed_s = 0.0
        if self._started_mono is not None and self._last_mono is not None:
            elapsed_s = max(0.0,
                            (self._last_mono - self._started_mono) / 1e9)
        utilization = None
        if self._workers and elapsed_s > 0 and executed:
            utilization = min(
                1.0, self._busy_s / (elapsed_s * self._workers))
        hit_rate = None
        if executed + cached:
            hit_rate = cached / (executed + cached)
        eta_s = None
        if (total is not None and self._ema
                and self._lifecycle in ("running", "draining")):
            eta_s = max(0.0, (total - unit_count) / self._ema)
        age_s = None
        stale = False
        if now_wall is not None and self._last_wall is not None:
            age_s = max(0.0, now_wall - self._last_wall)
            threshold = self.stale_after_s
            if threshold is None:
                threshold = self._heartbeat_s
            if (threshold is not None
                    and self._lifecycle in ("running", "draining")
                    and age_s > threshold):
                stale = True
        flags: list[str] = []
        if stale:
            flags.append("stalled_heartbeat")
        if (retries >= _RETRY_STORM_MIN
                and retries > _RETRY_STORM_RATIO * max(1, executed)):
            flags.append("retry_storm")
        if (self._ema is not None and self._ema_peak
                and self._rate_samples >= _COLLAPSE_MIN_SAMPLES
                and self._ema < _COLLAPSE_FRACTION * self._ema_peak):
            flags.append("throughput_collapse")
        status = "stale" if stale else self._lifecycle
        return RunHealth(
            run_id=self._run_id,
            kind=self._kind,
            lifecycle=self._lifecycle,
            status=status,
            stale=stale,
            flags=tuple(flags),
            heartbeat_s=self._heartbeat_s,
            started_wall=self._started_wall,
            last_event_wall=self._last_wall,
            last_event_type=self._last_type,
            last_event_age_s=age_s,
            last_seq=self._last_seq,
            phase=self._phase,
            unit=self._unit,
            total=total,
            done=unit_count,
            executed=executed,
            cached=cached,
            resumed=counts.get("resumed", 0),
            poisoned=counts.get("poisoned", 0),
            retries=retries,
            crashes=counts.get("crashes", 0),
            fallbacks=counts.get("fallbacks", 0),
            batches=counts.get("batches", 0),
            checkpoints=counts.get("checkpoints", 0),
            events_processed=counts.get("events_processed", 0),
            workers=self._workers,
            busy_s=self._busy_s,
            elapsed_s=elapsed_s,
            utilization=utilization,
            cache_hit_rate=hit_rate,
            throughput=self._ema,
            throughput_peak=self._ema_peak,
            eta_s=eta_s,
            faults_classified=self._faults_classified,
            faults_per_second=(
                self._faults_classified / elapsed_s
                if self._faults_classified and elapsed_s > 0 else None),
            soak=dict(self._soak) if self._soak else None,
        )


def fold_events(events: typing.Iterable[dict], *,
                now_wall: float | None = None,
                stale_after_s: float | None = None) -> RunHealth:
    """Fold a complete event prefix (header first) into a health."""
    fold = HealthFold(stale_after_s=stale_after_s)
    fold.apply_all(events)
    return fold.health(now_wall=now_wall)
