"""Render ``RunHealth`` for terminals and static HTML reports.

One status-line formatter serves every consumer: the sweep/campaign/
soak CLIs print :func:`format_status_line` over their in-process fold,
and ``repro-timber monitor`` prints the same function over the fold it
rebuilt from the event spool — identical inputs, identical line.  The
richer views (:func:`render_dashboard` for ``--follow``,
:func:`render_html` for ``--html``) are projections of the same model
and add no information of their own.
"""

from __future__ import annotations

import html as _html
import json
import os
import pathlib
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.health import RunHealth


def _fmt_duration(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def _fmt_rate(value: float | None, unit: str) -> str:
    if value is None:
        return f"- {unit}/s"
    if value >= 100:
        return f"{value:.0f} {unit}/s"
    return f"{value:.1f} {unit}/s"


def format_status_line(health: "RunHealth") -> str:
    """One-line run status — the shared CLI/monitor progress format."""
    parts = [health.kind, health.status]
    soak = health.soak or {}
    if soak.get("rounds") is not None:
        parts.append(f"round={soak['rounds']}")
    if health.total:
        parts.append(f"{health.done}/{health.total} {health.unit}")
    else:
        parts.append(f"{health.done} {health.unit}")
    parts.append(_fmt_rate(health.throughput, health.unit))
    if health.faults_per_second is not None and health.unit != "faults":
        parts.append(_fmt_rate(health.faults_per_second, "faults"))
    if health.eta_s is not None:
        parts.append(f"eta {_fmt_duration(health.eta_s)}")
    if soak.get("escape_rate") is not None:
        parts.append(f"escape={soak['escape_rate']:.4f}")
    if soak.get("widest_ci_width") is not None:
        stratum = soak.get("widest_stratum") or "?"
        parts.append(f"widest={stratum}:{soak['widest_ci_width']:.4f}")
    if health.cache_hit_rate is not None:
        parts.append(f"cache {100.0 * health.cache_hit_rate:.0f}%")
    if health.utilization is not None:
        parts.append(f"util {100.0 * health.utilization:.0f}%")
    if health.retries:
        parts.append(f"retries {health.retries}")
    if health.crashes:
        parts.append(f"crashes {health.crashes}")
    if health.poisoned:
        parts.append(f"quarantined {health.poisoned}")
    extra_flags = [flag for flag in health.flags
                   if flag != "stalled_heartbeat"]
    if extra_flags:
        parts.append("[" + ",".join(extra_flags) + "]")
    return "  ".join(parts)


def render_dashboard(health: "RunHealth") -> str:
    """Multi-line terminal dashboard for ``monitor`` / ``--follow``."""
    lines = [
        f"run {health.run_id or '?'} ({health.kind}) — {health.status}"
        + (f" [{', '.join(health.flags)}]" if health.flags else ""),
    ]
    progress = (f"{health.done}/{health.total}" if health.total
                else f"{health.done}")
    pct = ""
    if health.total:
        pct = f" ({100.0 * health.done / health.total:.1f}%)"
    lines.append(
        f"  progress    {progress} {health.unit}{pct}   "
        f"{_fmt_rate(health.throughput, health.unit)}"
        + (f" (peak {_fmt_rate(health.throughput_peak, health.unit)})"
           if health.throughput_peak else "")
        + (f"   eta {_fmt_duration(health.eta_s)}"
           if health.eta_s is not None else ""))
    if health.faults_classified:
        lines.append(
            f"  faults      classified {health.faults_classified}   "
            f"{_fmt_rate(health.faults_per_second, 'faults')}")
    cache = ("-" if health.cache_hit_rate is None
             else f"{100.0 * health.cache_hit_rate:.1f}%")
    util = ("-" if health.utilization is None
            else f"{100.0 * health.utilization:.0f}%")
    lines.append(
        f"  pool        workers {health.workers}   utilization {util}"
        f"   cache hits {cache}   batches {health.batches}")
    lines.append(
        f"  resilience  retries {health.retries}   "
        f"crashes {health.crashes}   quarantined {health.poisoned}   "
        f"fallbacks {health.fallbacks}   "
        f"checkpoints {health.checkpoints}")
    if health.phase:
        lines.append(f"  phase       {health.phase}")
    soak = health.soak or {}
    if soak.get("rounds") is not None:
        ci = ""
        if soak.get("ci_low") is not None:
            ci = (f"   CI [{soak['ci_low']:.4f}, "
                  f"{soak['ci_high']:.4f}]")
        lines.append(
            f"  soak        round {soak['rounds']}   escape "
            f"{soak.get('escape_rate', 0.0):.4f}{ci}")
        strata = soak.get("per_stratum") or []
        if strata:
            cells = "   ".join(
                f"{entry['stratum']} w={entry['width']:.4f}"
                f" n={entry.get('samples', '?')}"
                for entry in strata)
            lines.append(f"  strata      {cells}")
    age = (_fmt_duration(health.last_event_age_s)
           if health.last_event_age_s is not None else "-")
    lines.append(
        f"  liveness    last event {health.last_event_type or '-'} "
        f"{age} ago   heartbeat "
        f"{health.heartbeat_s if health.heartbeat_s else '-'}s   "
        f"seq {health.last_seq}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Static HTML report
# ---------------------------------------------------------------------------

_HTML_STYLE = """
body { font-family: ui-monospace, monospace; margin: 2em; }
h1 { font-size: 1.2em; }
table { border-collapse: collapse; margin: 1em 0; }
td, th { border: 1px solid #ccc; padding: 0.3em 0.8em;
         text-align: left; font-size: 0.9em; }
th { background: #f0f0f0; }
.status-running { color: #060; } .status-done { color: #060; }
.status-stale { color: #a00; } .status-error { color: #a00; }
.flags { color: #a00; }
"""


def render_html(health: "RunHealth",
                events: typing.Sequence[dict] | None = None, *,
                tail: int = 30) -> str:
    """A static, dependency-free HTML report for one run."""

    def esc(value: typing.Any) -> str:
        return _html.escape(str(value))

    rows = []
    for label, value in [
            ("run id", health.run_id),
            ("kind", health.kind),
            ("status", health.status),
            ("flags", ", ".join(health.flags) or "none"),
            ("progress",
             f"{health.done}/{health.total or '?'} {health.unit}"),
            ("throughput",
             _fmt_rate(health.throughput, health.unit)),
            ("faults classified", health.faults_classified),
            ("fault throughput",
             _fmt_rate(health.faults_per_second, "faults")),
            ("eta", _fmt_duration(health.eta_s)),
            ("workers", health.workers),
            ("utilization",
             "-" if health.utilization is None
             else f"{100.0 * health.utilization:.0f}%"),
            ("cache hit rate",
             "-" if health.cache_hit_rate is None
             else f"{100.0 * health.cache_hit_rate:.1f}%"),
            ("retries", health.retries),
            ("crashes", health.crashes),
            ("quarantined", health.poisoned),
            ("checkpoints", health.checkpoints),
            ("last event",
             f"{health.last_event_type or '-'} "
             f"({_fmt_duration(health.last_event_age_s)} ago)"),
    ]:
        rows.append(f"<tr><th>{esc(label)}</th>"
                    f"<td>{esc(value)}</td></tr>")
    soak_html = ""
    soak = health.soak or {}
    if soak.get("rounds") is not None:
        stratum_rows = "".join(
            f"<tr><td>{esc(entry['stratum'])}</td>"
            f"<td>{esc(entry.get('samples', '?'))}</td>"
            f"<td>{entry['width']:.4f}</td></tr>"
            for entry in (soak.get("per_stratum") or []))
        soak_html = (
            f"<h2>soak</h2><table><tr><th>round</th>"
            f"<td>{esc(soak['rounds'])}</td></tr>"
            f"<tr><th>escape rate</th>"
            f"<td>{esc(soak.get('escape_rate'))}</td></tr></table>"
            f"<table><tr><th>stratum</th><th>samples</th>"
            f"<th>CI width</th></tr>{stratum_rows}</table>")
    events_html = ""
    if events:
        recent = list(events)[-tail:]
        event_rows = "".join(
            f"<tr><td>{esc(event.get('seq'))}</td>"
            f"<td>{esc(event.get('type'))}</td>"
            f"<td>{esc(json.dumps({k: v for k, v in event.items() if k not in ('seq', 'type', 'wall', 'mono_ns')}, sort_keys=True, default=str))}</td></tr>"
            for event in recent)
        events_html = (
            f"<h2>recent events</h2><table><tr><th>seq</th>"
            f"<th>type</th><th>fields</th></tr>{event_rows}</table>")
    return (
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">"
        f"<title>repro-timber run {esc(health.run_id or '?')}</title>"
        f"<style>{_HTML_STYLE}</style></head><body>"
        f"<h1>repro-timber run {esc(health.run_id or '?')} "
        f"<span class=\"status-{esc(health.status)}\">"
        f"{esc(health.status)}</span></h1>"
        f"<table>{''.join(rows)}</table>"
        f"{soak_html}{events_html}</body></html>\n")


def write_html(path: str | os.PathLike, health: "RunHealth",
               events: typing.Sequence[dict] | None = None) -> None:
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_html(health, events), encoding="utf-8")
