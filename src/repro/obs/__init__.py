"""repro.obs — unified observability: metrics, span tracing, exporters.

One process-wide :class:`~repro.obs.registry.MetricsRegistry`
(:data:`REGISTRY`) and one :class:`~repro.obs.tracing.Tracer`
(:data:`TRACER`) serve every instrumented layer — the event-driven
simulator, the block kernels, the cycle-level pipeline/graph
simulations, the fault-campaign engine, and the exec layer.  All of it
is **off by default**: disabled metric calls are a single flag check on
a pre-bound series (no allocation), and disabled ``trace_span`` calls
return a shared no-op context manager.

Enablement is process-wide, via :func:`enable` or the ``REPRO_OBS=1``
environment variable (checked at import, which is how process-pool
workers inherit the setting — the CLI's ``--obs-out`` sets both).
Worker processes accumulate into their own registry copy; the exec
layer ships per-task snapshot deltas back and merges them, so a
parallel sweep's counters equal a serial run's.

Determinism contract (pinned by ``tests/property/test_obs_props.py``):

* *Semantic* metrics — everything outside the ``repro_exec_`` and
  ``repro_kernel_`` namespaces whose name does not end in ``_seconds``
  — are pure functions of the simulated work, so a fixed seed gives
  bit-identical values across runs **and across kernel modes**
  (``REPRO_SCALAR_KERNELS=1`` vs vectorized).
* ``repro_kernel_*`` metrics describe vector-path internals (screen
  hit rates, batch sizes) and are zero on scalar runs; ``repro_exec_*``
  metrics depend on cache/checkpoint state; ``*_seconds`` histograms
  and span timestamps are wall-clock.  None of these participate in
  byte-identity checks.
"""

from __future__ import annotations

import os
import typing

from repro.obs.health import (
    HEALTH_SCHEMA_VERSION,
    HealthFold,
    RunHealth,
    fold_events,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    snapshot_delta,
)
from repro.obs.stream import (
    DEFAULT_HEARTBEAT_S,
    EVENTS_FILENAME,
    STREAM_SCHEMA_VERSION,
    EventPublisher,
    EventStreamReader,
    StreamCorrupt,
    events_path,
    read_events,
)
from repro.obs.tracing import NOOP_SPAN, Span, Tracer

#: Environment variable enabling observability process-wide.
OBS_ENV = "REPRO_OBS"

#: The process-wide metrics registry every instrument site binds to.
REGISTRY = MetricsRegistry()

#: The process-wide span tracer behind :func:`trace_span`.
TRACER = Tracer()

#: Metric-name namespaces and suffixes excluded from the determinism
#: contract (see the module docstring).
NON_SEMANTIC_PREFIXES = ("repro_exec_", "repro_kernel_")
NON_SEMANTIC_SUFFIXES = ("_seconds",)


def enable() -> None:
    """Turn on metrics collection and span tracing for this process."""
    REGISTRY.enable()
    TRACER.enable()


def disable() -> None:
    REGISTRY.disable()
    TRACER.disable()


def enabled() -> bool:
    """Whether metrics collection is on (the common instrument guard)."""
    return REGISTRY.enabled


def tracing_enabled() -> bool:
    return TRACER.enabled


def reset() -> None:
    """Zero all metrics and drop all spans (handles stay valid)."""
    REGISTRY.reset()
    TRACER.reset()


def trace_span(name: str, **attrs: typing.Any):
    """Context manager timing one region on the process tracer."""
    return TRACER.span(name, **attrs)


def env_enabled() -> bool:
    """Whether ``REPRO_OBS`` requests observability."""
    return os.environ.get(OBS_ENV, "0") not in ("", "0")


def begin_capture() -> tuple | None:
    """Open a metrics/spans capture window on the process registry.

    Returns an opaque token for :func:`end_capture`, or ``None`` when
    observability is off (the common case — callers skip the end call).
    The exec layer brackets each worker-side *batch* with one capture
    so the deltas ship across the pool boundary once per batch rather
    than once per task.
    """
    if not REGISTRY.enabled:
        return None
    return (REGISTRY.snapshot(), len(TRACER.spans))


def end_capture(token: tuple) -> tuple[dict, list]:
    """Close a capture window: (metric deltas, span records) since.

    Records carry this process's wall-clock anchor so the parent can
    align them with its own spans on one absolute timeline.
    """
    metrics_before, spans_before = token
    delta = snapshot_delta(metrics_before, REGISTRY.snapshot())
    records = [span.to_record(TRACER.wall_anchor_ns)
               for span in TRACER.spans[spans_before:]]
    return delta, records


def semantic_snapshot(
    registry: MetricsRegistry | None = None,
) -> dict:
    """The snapshot restricted to determinism-contract metrics.

    This is the view byte-identity checks compare: scalar and vector
    kernel runs of the same seeded workload must agree on it exactly.
    """
    snap = (registry or REGISTRY).snapshot()
    return {
        name: record for name, record in snap.items()
        if not name.startswith(NON_SEMANTIC_PREFIXES)
        and not name.endswith(NON_SEMANTIC_SUFFIXES)
    }


if env_enabled():  # pragma: no cover - exercised via subprocess workers
    enable()


__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_HEARTBEAT_S",
    "EVENTS_FILENAME",
    "EventPublisher",
    "EventStreamReader",
    "HEALTH_SCHEMA_VERSION",
    "HealthFold",
    "MetricsRegistry",
    "RunHealth",
    "STREAM_SCHEMA_VERSION",
    "StreamCorrupt",
    "NON_SEMANTIC_PREFIXES",
    "NON_SEMANTIC_SUFFIXES",
    "NOOP_SPAN",
    "OBS_ENV",
    "REGISTRY",
    "Span",
    "TRACER",
    "Tracer",
    "begin_capture",
    "disable",
    "end_capture",
    "enable",
    "enabled",
    "env_enabled",
    "events_path",
    "fold_events",
    "read_events",
    "reset",
    "semantic_snapshot",
    "snapshot_delta",
    "trace_span",
    "tracing_enabled",
]
