"""Process-wide metrics registry: counters, gauges, histograms.

The registry is the counting half of :mod:`repro.obs` (spans live in
:mod:`repro.obs.tracing`).  Design constraints, in priority order:

* **Free when off.**  Observability is disabled by default and the
  instrumented code paths are hot (the block kernels, the event loop),
  so a disabled metric call must not allocate: instrument sites bind
  their series once at import/setup time (``family.labels(...)``), and
  a bound series' ``inc``/``set``/``observe`` is a single flag check
  when the registry is disabled.  Anything costlier than the bound call
  (computing a numpy sum to feed a counter, formatting a label value)
  must be guarded by ``registry.enabled`` at the call site.
* **Deterministic values.**  Metrics carry no timestamps; a counter or
  integer-valued histogram fed from simulation state is bit-identical
  run to run under a fixed seed, which is what lets CI diff Prometheus
  exports across kernel modes.  Timing metrics are segregated by the
  ``_seconds`` name suffix so determinism checks can exclude them
  (see :func:`repro.obs.semantic_snapshot`).
* **Mergeable.**  Worker processes accumulate into their own registry
  copy; :func:`snapshot_delta` and :meth:`MetricsRegistry.merge` ship
  the per-task increments back to the parent (counters and histogram
  buckets add, gauges take the maximum — both order-independent, so a
  parallel sweep merges to the same totals as a serial one).

The registry is not thread-safe; the simulators are single-threaded per
process and cross-process aggregation goes through snapshots.
"""

from __future__ import annotations

import bisect
import typing

from repro.errors import ConfigurationError

#: Default histogram bucket upper bounds (generic latency-ish spread).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
    2.5, 5.0, 10.0,
)

_KINDS = ("counter", "gauge", "histogram")


class Counter:
    """A monotonically increasing count (one labelled series)."""

    __slots__ = ("_registry", "labels", "value")
    kind = "counter"

    def __init__(self, registry: "MetricsRegistry",
                 labels: dict[str, str]) -> None:
        self._registry = registry
        self.labels = labels
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if self._registry._enabled:
            self.value += amount


class Gauge:
    """A value that can go up and down (one labelled series)."""

    __slots__ = ("_registry", "labels", "value")
    kind = "gauge"

    def __init__(self, registry: "MetricsRegistry",
                 labels: dict[str, str]) -> None:
        self._registry = registry
        self.labels = labels
        self.value = 0

    def set(self, value: int | float) -> None:
        if self._registry._enabled:
            self.value = value

    def inc(self, amount: int | float = 1) -> None:
        if self._registry._enabled:
            self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        if self._registry._enabled:
            self.value -= amount


class Histogram:
    """Fixed-bucket distribution (one labelled series).

    ``counts[i]`` is the number of observations with
    ``value <= edges[i]`` exclusive of earlier buckets (raw, not
    cumulative); ``counts[-1]`` is the overflow (+Inf) bucket.  The
    exporter renders the cumulative Prometheus form.
    """

    __slots__ = ("_registry", "labels", "edges", "counts", "sum")
    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry",
                 labels: dict[str, str],
                 edges: tuple[float, ...]) -> None:
        self._registry = registry
        self.labels = labels
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.sum: int | float = 0

    def observe(self, value: int | float) -> None:
        if self._registry._enabled:
            self.sum += value
            self.counts[bisect.bisect_left(self.edges, value)] += 1


class MetricFamily:
    """All series of one metric name, across label combinations."""

    def __init__(self, registry: "MetricsRegistry", name: str, kind: str,
                 help: str, labelnames: tuple[str, ...],
                 buckets: tuple[float, ...] | None) -> None:
        self.registry = registry
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = labelnames
        self.buckets = buckets
        self._series: dict[tuple[str, ...], typing.Any] = {}

    def labels(self, **labelvalues: typing.Any):
        """The series for one label combination (created once, cached).

        Bind the result at setup time and call ``inc``/``set``/
        ``observe`` on it in hot code — the lookup here allocates and
        must stay out of disabled-path loops.
        """
        if set(labelvalues) != set(self.labelnames):
            raise ConfigurationError(
                f"metric {self.name!r} takes labels "
                f"{list(self.labelnames)}, got {sorted(labelvalues)}")
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        series = self._series.get(key)
        if series is None:
            labels = dict(zip(self.labelnames, key))
            if self.kind == "counter":
                series = Counter(self.registry, labels)
            elif self.kind == "gauge":
                series = Gauge(self.registry, labels)
            else:
                series = Histogram(self.registry, labels,
                                   self.buckets or DEFAULT_BUCKETS)
            self._series[key] = series
        return series

    def series(self) -> list:
        """All live series, sorted by label values (deterministic)."""
        return [self._series[key] for key in sorted(self._series)]


class MetricsRegistry:
    """Owns every metric family of one process.

    Families are registered idempotently: re-registering the same name
    with the same kind/labels/buckets returns the existing family (so
    module-level instrument sites survive repeated imports), while a
    conflicting re-registration raises
    :class:`~repro.errors.ConfigurationError`.
    """

    def __init__(self, enabled: bool = False) -> None:
        self._enabled = enabled
        self._families: dict[str, MetricFamily] = {}

    # -- lifecycle ---------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        """Zero every series (families and bound handles stay valid)."""
        for family in self._families.values():
            for series in family._series.values():
                if family.kind == "histogram":
                    series.counts = [0] * len(series.counts)
                    series.sum = 0
                else:
                    series.value = 0

    # -- registration ------------------------------------------------------
    def _register(self, name: str, kind: str, help: str,
                  labelnames: typing.Sequence[str],
                  buckets: tuple[float, ...] | None = None) -> MetricFamily:
        assert kind in _KINDS
        names = tuple(labelnames)
        existing = self._families.get(name)
        if existing is not None:
            if (existing.kind != kind or existing.labelnames != names
                    or existing.buckets != buckets):
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind} with labels "
                    f"{list(existing.labelnames)}")
            return existing
        family = MetricFamily(self, name, kind, help, names, buckets)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "",
                labelnames: typing.Sequence[str] = ()) -> MetricFamily:
        return self._register(name, "counter", help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: typing.Sequence[str] = ()) -> MetricFamily:
        return self._register(name, "gauge", help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: typing.Sequence[str] = (),
                  buckets: typing.Sequence[float] = DEFAULT_BUCKETS,
                  ) -> MetricFamily:
        edges = tuple(sorted(buckets))
        if not edges:
            raise ConfigurationError("histogram needs at least one bucket")
        return self._register(name, "histogram", help, labelnames, edges)

    # -- inspection --------------------------------------------------------
    def families(self) -> list[MetricFamily]:
        """Every family, sorted by name (deterministic export order)."""
        return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> dict:
        """JSON-able view of every live series.

        ``{name: {"kind", "help", "labelnames", "buckets"?, "series":
        [{"labels", "value" | ("sum", "counts")}, ...]}}`` with series
        sorted by label values, so two registries holding the same
        values snapshot byte-identically.
        """
        out: dict[str, dict] = {}
        for family in self.families():
            series_out = []
            for series in family.series():
                entry: dict[str, typing.Any] = {"labels": series.labels}
                if family.kind == "histogram":
                    entry["sum"] = series.sum
                    entry["counts"] = list(series.counts)
                else:
                    entry["value"] = series.value
                series_out.append(entry)
            record: dict[str, typing.Any] = {
                "kind": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "series": series_out,
            }
            if family.buckets is not None:
                record["buckets"] = list(family.buckets)
            out[family.name] = record
        return out

    def merge(self, snapshot: typing.Mapping) -> None:
        """Fold a snapshot (typically a worker delta) into this registry.

        Counters and histogram buckets add; gauges take the maximum —
        both commutative, so merge order (i.e. task completion order)
        never changes the totals.  Works regardless of the enabled
        flag: merging is an explicit aggregation step, not
        instrumentation.
        """
        for name, record in snapshot.items():
            family = self._register(
                name, record["kind"], record.get("help", ""),
                tuple(record.get("labelnames", ())),
                tuple(record["buckets"]) if record.get("buckets")
                else None)
            for entry in record["series"]:
                series = family.labels(**entry["labels"])
                if family.kind == "histogram":
                    series.sum += entry["sum"]
                    counts = entry["counts"]
                    if len(counts) != len(series.counts):
                        raise ConfigurationError(
                            f"histogram {name!r} bucket mismatch on merge")
                    for i, count in enumerate(counts):
                        series.counts[i] += count
                elif family.kind == "counter":
                    series.value += entry["value"]
                else:
                    series.value = max(series.value, entry["value"])


def snapshot_delta(before: typing.Mapping,
                   after: typing.Mapping) -> dict:
    """The increments between two snapshots of one registry.

    Counter values and histogram sums/counts subtract; gauges report
    the ``after`` value.  Series present only in ``after`` pass through
    whole; zero-delta series are dropped, so an idle task ships an
    empty mapping across the process-pool boundary.
    """
    delta: dict[str, dict] = {}
    for name, record in after.items():
        prior = {
            tuple(sorted(entry["labels"].items())): entry
            for entry in before.get(name, {}).get("series", ())
        }
        series_out = []
        for entry in record["series"]:
            base = prior.get(tuple(sorted(entry["labels"].items())))
            if record["kind"] == "histogram":
                sum_d = entry["sum"] - (base["sum"] if base else 0)
                counts_d = [
                    count - (base["counts"][i] if base else 0)
                    for i, count in enumerate(entry["counts"])
                ]
                if not any(counts_d):
                    continue
                series_out.append({"labels": entry["labels"],
                                   "sum": sum_d, "counts": counts_d})
            elif record["kind"] == "counter":
                value = entry["value"] - (base["value"] if base else 0)
                if value:
                    series_out.append({"labels": entry["labels"],
                                       "value": value})
            else:
                series_out.append({"labels": entry["labels"],
                                   "value": entry["value"]})
        if series_out:
            delta[name] = {**{k: v for k, v in record.items()
                              if k != "series"},
                           "series": series_out}
    return delta
