"""Exporters: Prometheus text, span JSONL loading, Chrome trace, flame.

Three consumers, three formats:

* **Prometheus text exposition** (``render_prometheus``) for scraping
  or diffing counter state — deterministic ordering (families by name,
  series by label values), so two runs with identical metric values
  produce byte-identical text.
* **Chrome trace-event JSON** (``chrome_trace`` /
  ``write_chrome_trace``) — loadable in ``chrome://tracing`` and
  Perfetto.  Spans become complete (``"ph": "X"``) events with
  microsecond timestamps relative to the earliest span, so merged
  multi-process traces align at zero.
* **Terminal flame summary** (``render_flame``) — spans aggregated by
  call path, sorted by inclusive time, with proportional bars; the
  "where did the wall time go" view without leaving the terminal.

``write_obs_dir`` bundles everything a run produced into one directory
(the CLI's ``--obs-out``).
"""

from __future__ import annotations

import json
import os
import pathlib
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.registry import MetricsRegistry
    from repro.obs.tracing import Tracer


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _format_value(value: int | float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if value == int(value):
        return str(int(value))
    return repr(value)


def _format_labels(labels: dict[str, str],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [(name, str(value)) for name, value in labels.items()]
    pairs.extend(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label(value)}"'
                     for name, value in pairs)
    return "{" + inner + "}"


def render_prometheus(registry: "MetricsRegistry") -> str:
    """The registry's live state in Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.families():
        if not family.series():
            continue
        if family.help:
            lines.append(f"# HELP {family.name} "
                         f"{_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for series in family.series():
            if family.kind == "histogram":
                cumulative = 0
                for edge, count in zip(series.edges, series.counts):
                    cumulative += count
                    labels = _format_labels(
                        series.labels, (("le", _format_value(edge)),))
                    lines.append(f"{family.name}_bucket{labels} "
                                 f"{cumulative}")
                total = cumulative + series.counts[-1]
                labels = _format_labels(series.labels, (("le", "+Inf"),))
                lines.append(f"{family.name}_bucket{labels} {total}")
                plain = _format_labels(series.labels)
                lines.append(f"{family.name}_sum{plain} "
                             f"{_format_value(series.sum)}")
                lines.append(f"{family.name}_count{plain} {total}")
            else:
                labels = _format_labels(series.labels)
                lines.append(f"{family.name}{labels} "
                             f"{_format_value(series.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: "MetricsRegistry",
                     path: str | os.PathLike) -> None:
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_prometheus(registry), encoding="utf-8")


# ---------------------------------------------------------------------------
# Metric naming lint
# ---------------------------------------------------------------------------

#: Unit suffixes a histogram name may declare.  Prometheus convention
#: wants the unit in the name so dashboards and recording rules never
#: have to guess what a bucket boundary of ``0.25`` means.
HISTOGRAM_UNIT_SUFFIXES = (
    "_seconds", "_bytes", "_cycles", "_tasks", "_intervals",
    "_events", "_faults", "_ratio",
)


def lint_metric_names(registry: "MetricsRegistry") -> list[str]:
    """Naming-convention violations for every registered family.

    Enforced conventions (each violation is one human-readable line,
    sorted by family name; an empty list means the registry is clean):

    * counters end in ``_total``;
    * histograms declare their unit via one of
      :data:`HISTOGRAM_UNIT_SUFFIXES`;
    * every family has a non-empty help string (the ``# HELP`` line is
      only emitted when one exists, so an empty help silently drops
      metadata from the exposition).

    Gauges are levels, not accumulations — they have no mandated
    suffix.  ``scripts/obs_smoke.py`` runs this lint over the live
    registry after a real campaign, so a misnamed metric fails CI.
    """
    problems: list[str] = []
    for family in sorted(registry.families(), key=lambda f: f.name):
        if family.kind == "counter" and not family.name.endswith("_total"):
            problems.append(
                f"{family.name}: counter must end in '_total'")
        if (family.kind == "histogram"
                and not family.name.endswith(HISTOGRAM_UNIT_SUFFIXES)):
            problems.append(
                f"{family.name}: histogram must declare a unit suffix "
                f"(one of {', '.join(HISTOGRAM_UNIT_SUFFIXES)})")
        if not family.help:
            problems.append(
                f"{family.name}: missing help text (no # HELP line "
                f"will be emitted)")
    return problems


# ---------------------------------------------------------------------------
# Span loading and Chrome trace-event export
# ---------------------------------------------------------------------------

def load_spans_jsonl(
    paths: typing.Iterable[str | os.PathLike],
) -> list[dict]:
    """Load and concatenate span records from JSONL trace files."""
    spans: list[dict] = []
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    spans.append(json.loads(line))
    return spans


def chrome_trace(spans: typing.Sequence[dict]) -> dict:
    """Span records as a Chrome trace-event document.

    Timestamps are microseconds relative to the earliest span start, so
    traces merged from several processes share one origin.  Each span
    becomes a complete event (``"ph": "X"``); attribute dicts ride in
    ``args``.

    When **every** record carries the tracer's wall-clock ``anchor_ns``
    (see :class:`~repro.obs.tracing.Tracer`), spans are first shifted
    onto the absolute wall-clock timeline (``start_ns + anchor_ns``)
    before the common origin is subtracted — this is what makes traces
    merged across worker processes line up, since each process's raw
    monotonic clock has its own origin.  If any record lacks an anchor
    (e.g. pre-anchor trace files), the export falls back to raw
    monotonic alignment rather than mixing the two timelines.
    """
    anchored = bool(spans) and all(
        span.get("anchor_ns") is not None for span in spans)

    def absolute(span: dict) -> int:
        return span["start_ns"] + (span["anchor_ns"] if anchored else 0)

    origin_ns = min((absolute(span) for span in spans), default=0)
    events = []
    for span in spans:
        events.append({
            "name": span["name"],
            "ph": "X",
            "ts": (absolute(span) - origin_ns) / 1000.0,
            "dur": max(0, span["end_ns"] - span["start_ns"]) / 1000.0,
            "pid": span.get("pid", 0),
            "tid": 1,
            "args": dict(span.get("attrs", {})),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: typing.Sequence[dict],
                       path: str | os.PathLike) -> None:
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(chrome_trace(spans), indent=2,
                                 default=str) + "\n", encoding="utf-8")


# ---------------------------------------------------------------------------
# Terminal flame summary
# ---------------------------------------------------------------------------

def _span_paths(spans: typing.Sequence[dict]) -> dict[tuple[str, ...],
                                                      list[int]]:
    """Aggregate spans into ``path -> [total_ns, count]``.

    A span's path is its chain of ancestor names; spans whose parent is
    missing from the record set (e.g. a file holding only a subtree)
    root at their own name.  Span ids are per-process, so identity is
    ``(pid, span_id)`` — a worker's ids must not resolve against the
    parent process's spans.
    """
    by_id = {(span.get("pid", 0), span["span_id"]): span
             for span in spans}
    path_cache: dict[tuple[int, int], tuple[str, ...]] = {}

    def path_of(span: dict) -> tuple[str, ...]:
        key = (span.get("pid", 0), span["span_id"])
        cached = path_cache.get(key)
        if cached is not None:
            return cached
        parent = by_id.get((key[0], span.get("parent_id", 0)))
        path = ((path_of(parent) + (span["name"],)) if parent is not None
                else (span["name"],))
        path_cache[key] = path
        return path

    totals: dict[tuple[str, ...], list[int]] = {}
    for span in spans:
        bucket = totals.setdefault(path_of(span), [0, 0])
        bucket[0] += max(0, span["end_ns"] - span["start_ns"])
        bucket[1] += 1
    return totals


def render_flame(spans: typing.Sequence[dict], *,
                 width: int = 30) -> str:
    """A flamegraph-ish terminal tree of where the span time went.

    Children render indented under their parent path, sorted by
    inclusive time; the bar is proportional to the total root time.
    """
    if not spans:
        return "(no spans)"
    totals = _span_paths(spans)
    root_total = sum(ns for path, (ns, _) in totals.items()
                     if len(path) == 1)
    lines = []

    def render(prefix: tuple[str, ...], depth: int) -> None:
        children = sorted(
            ((path, ns, count) for path, (ns, count) in totals.items()
             if path[:-1] == prefix),
            key=lambda item: (-item[1], item[0]))
        for path, ns, count in children:
            share = ns / root_total if root_total else 0.0
            bar = "#" * max(1, round(share * width))
            lines.append(
                f"{'  ' * depth}{path[-1]:<{max(1, 34 - 2 * depth)}} "
                f"{ns / 1e9:9.4f}s {100 * share:5.1f}% x{count:<5d} {bar}")
            render(path, depth + 1)

    render((), 0)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# One-stop output directory
# ---------------------------------------------------------------------------

def write_obs_dir(directory: str | os.PathLike,
                  registry: "MetricsRegistry",
                  tracer: "Tracer") -> list[pathlib.Path]:
    """Write every export this process accumulated into ``directory``.

    Produces ``metrics.prom`` (Prometheus text), ``metrics.json``
    (registry snapshot), ``trace.jsonl`` (span records), and
    ``trace.json`` (Chrome trace-event).  Returns the written paths.
    """
    base = pathlib.Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    prom = base / "metrics.prom"
    write_prometheus(registry, prom)
    snap = base / "metrics.json"
    snap.write_text(json.dumps(registry.snapshot(), indent=2,
                               default=str) + "\n", encoding="utf-8")
    jsonl = base / "trace.jsonl"
    tracer.write_jsonl(jsonl)
    chrome = base / "trace.json"
    write_chrome_trace(tracer.records(), chrome)
    return [prom, snap, jsonl, chrome]
