"""Span tracing: nested, monotonic-clocked spans with cheap no-ops.

A *span* covers one timed region (``sweep.run``, ``pipeline.run``,
``campaign.chunk``, ...).  Spans nest through a per-tracer stack, so a
span opened while another is active records it as its parent; the
resulting tree is what the Chrome trace-event export and the terminal
flame summary render.

Span identifiers are small sequential integers (deterministic given the
same call sequence); the only non-deterministic fields are the
``start_ns``/``end_ns`` monotonic timestamps, which is why byte-identity
checks over observability output compare the metrics registry, never
spans (see the determinism contract in DESIGN.md).

Monotonic timestamps are meaningless *across* processes — each worker's
``perf_counter_ns`` has its own arbitrary origin, so merged traces used
to mis-align by however far apart those origins sat.  Every tracer
therefore records a per-process **wall-clock anchor** at construction
(``time.time_ns() - time.perf_counter_ns()``) and attaches it to every
exported record as ``anchor_ns``; ``start_ns + anchor_ns`` is an
absolute wall-clock nanosecond, which is what the Chrome trace export
aligns on when every record carries an anchor.

When tracing is disabled, :meth:`Tracer.span` returns one shared no-op
context manager — no span object, list append, or timestamp read
happens.  (The caller's ``**attrs`` dict is the only allocation, which
is why hot per-cycle loops use counters, not spans.)
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
import typing


@dataclasses.dataclass
class Span:
    """One finished (or in-flight) timed region."""

    span_id: int
    parent_id: int  #: 0 = root (no enclosing span).
    name: str
    start_ns: int
    end_ns: int = 0
    attrs: dict = dataclasses.field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return max(0, self.end_ns - self.start_ns)

    def to_record(self, anchor_ns: int | None = None) -> dict:
        """JSON-able projection (the JSONL line format).

        ``anchor_ns`` is the owning tracer's wall-clock anchor; when
        given, it rides along so multi-process exports can place this
        span on an absolute timeline.
        """
        record = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "attrs": self.attrs,
            "pid": os.getpid(),
        }
        if anchor_ns is not None:
            record["anchor_ns"] = anchor_ns
        return record


class _NoopSpan:
    """Shared do-nothing span: returned whenever tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: typing.Any) -> bool:
        return False

    def set(self, **attrs: typing.Any) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager recording one real span on a tracer."""

    __slots__ = ("_tracer", "_name", "_attrs", "span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self.span: Span | None = None

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        parent = tracer._stack[-1].span_id if tracer._stack else 0
        self.span = Span(
            span_id=tracer._next_id,
            parent_id=parent,
            name=self._name,
            start_ns=time.perf_counter_ns(),
            attrs=self._attrs,
        )
        tracer._next_id += 1
        tracer._stack.append(self.span)
        return self

    def __exit__(self, *exc_info: typing.Any) -> bool:
        span = self.span
        assert span is not None
        span.end_ns = time.perf_counter_ns()
        tracer = self._tracer
        if tracer._stack and tracer._stack[-1] is span:
            tracer._stack.pop()
        tracer.spans.append(span)
        return False

    def set(self, **attrs: typing.Any) -> None:
        """Attach attributes to the span after it opened."""
        if self.span is not None:
            self.span.attrs.update(attrs)
        else:
            self._attrs.update(attrs)


class Tracer:
    """Collects finished spans for one process."""

    def __init__(self, enabled: bool = False) -> None:
        self._enabled = enabled
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1
        #: Wall-clock anchor: ``start_ns + wall_anchor_ns`` is an
        #: absolute ``time.time_ns()`` instant.  Captured once per
        #: process so records exported from different workers share a
        #: timeline (back-to-back reads; the sub-microsecond skew
        #: between them is far below scheduling noise).
        self.wall_anchor_ns = time.time_ns() - time.perf_counter_ns()
        #: Records shipped home from worker processes (already dicts).
        #: Span ids may repeat across processes; the ``pid`` field keeps
        #: them distinct in every export.
        self.foreign: list[dict] = []

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        self.spans = []
        self._stack = []
        self._next_id = 1
        self.foreign = []

    def add_records(self, records: typing.Iterable[dict]) -> None:
        """Adopt span records produced in another process."""
        self.foreign.extend(records)

    def span(self, name: str, **attrs: typing.Any):
        """A context manager timing one region (no-op when disabled)."""
        if not self._enabled:
            return NOOP_SPAN
        return _ActiveSpan(self, name, attrs)

    # -- export ------------------------------------------------------------
    def records(self) -> list[dict]:
        """Finished spans as JSON-able records, in completion order.

        Foreign (worker-shipped) records follow the local ones; they
        already carry their own process's ``anchor_ns``."""
        return ([span.to_record(self.wall_anchor_ns)
                 for span in self.spans] + list(self.foreign))

    def write_jsonl(self, path: str | os.PathLike) -> None:
        """Write one JSON record per finished span to ``path``."""
        import pathlib

        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="utf-8") as handle:
            for record in self.records():
                handle.write(json.dumps(record, sort_keys=True,
                                        default=str) + "\n")
