"""Durable run-event stream: an append-only JSONL spool with live tails.

Long-running modes (sweep/campaign/soak) were black boxes while they
ran — ``repro.obs`` snapshots flush at exit and each CLI hand-rolled a
status line.  This module is the streaming layer underneath live
monitoring: an :class:`EventPublisher` appends one JSON object per run
event to ``events.jsonl`` inside the run's obs directory, and an
:class:`EventStreamReader` tails that file incrementally (from this or
any other process), tolerating the torn final line an abrupt death can
leave behind.

Event framing
-------------
Line 0 is a header (``type="header"``) carrying the schema version, a
run id, the run kind, and the heartbeat interval.  Every subsequent
event carries:

* ``seq`` — monotone sequence number (gaps mean dropped writes and are
  reported by the reader);
* ``wall`` — ``time.time()`` seconds (cross-process comparable; this is
  what staleness detection measures against);
* ``mono_ns`` — ``time.perf_counter_ns()`` of the *writing* process
  (meaningful only relative to other events in the same file; this is
  what rate estimation measures against, immune to wall-clock steps);
* ``type`` — the event kind (``run_start``, ``phase_start``,
  ``progress``, ``round``, ``retry``, ``crash``, ``quarantine``,
  ``fallback``, ``checkpoint``, ``metrics``, ``heartbeat``, ``drain``,
  ``phase_end``, ``run_end``).

Durability is deliberately weaker than the soak journal's: events are
*telemetry*, not replay state, so ``append`` flushes but does not fsync
per record (the <2% overhead gate in ``BENCH_monitor.json`` depends on
this).  The read side reuses the journal's truncation discipline: only
the final line may fail to parse; damage with complete lines after it
raises :class:`StreamCorrupt`.

The publisher also fans events out to in-process listener callbacks —
the CLI's live status line subscribes there, folding the *same* events
``repro-timber monitor`` folds from disk, so the two can never disagree.

A daemon heartbeat thread emits a ``heartbeat`` event whenever nothing
else has been written for half the heartbeat interval; a reader that
sees no event for more than one full interval may therefore conclude
the writer is dead (the ``stale`` rule in :mod:`repro.obs.health`).
"""

from __future__ import annotations

import json
import logging
import os
import pathlib
import threading
import time
import typing

from repro.errors import ReproError

logger = logging.getLogger("repro.obs")

STREAM_SCHEMA_VERSION = 1

#: Conventional spool filename inside a run's obs directory.
EVENTS_FILENAME = "events.jsonl"

#: Default heartbeat interval — the liveness contract's unit.
DEFAULT_HEARTBEAT_S = 5.0

#: Minimum seconds between throttled ``progress`` events.
DEFAULT_PROGRESS_EVERY_S = 0.5

#: Minimum seconds between periodic registry snapshot-delta events.
DEFAULT_METRICS_EVERY_S = 5.0


class StreamCorrupt(ReproError):
    """The event spool is damaged in a way a crash cannot explain."""


def _default_run_id(kind: str) -> str:
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{kind}-{stamp}-{os.getpid()}"


class EventPublisher:
    """Fans run events out to the JSONL spool and in-process listeners.

    Thread-safe: the heartbeat thread, pool-completion callbacks, and
    the main dispatch loop all emit through one re-entrant lock.  A
    failing file sink degrades to listeners-only with a single warning
    — telemetry must never abort the scientific run it narrates.
    """

    def __init__(self, path: str | os.PathLike | None = None, *,
                 kind: str = "run",
                 run_id: str | None = None,
                 heartbeat_s: float = DEFAULT_HEARTBEAT_S,
                 meta: dict | None = None,
                 registry: typing.Any = None,
                 progress_every_s: float = DEFAULT_PROGRESS_EVERY_S,
                 metrics_every_s: float = DEFAULT_METRICS_EVERY_S) -> None:
        self.path = pathlib.Path(path) if path is not None else None
        self.kind = kind
        self.run_id = run_id or _default_run_id(kind)
        self.heartbeat_s = max(0.05, float(heartbeat_s))
        self.meta = dict(meta or {})
        self.registry = registry
        self.progress_every_s = progress_every_s
        self.metrics_every_s = metrics_every_s
        self._lock = threading.RLock()
        self._handle: typing.IO[bytes] | None = None
        self._listeners: list[typing.Callable[[dict], None]] = []
        self._seq = 0
        self._last_emit_ns = time.perf_counter_ns()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._pending_drain: int | None = None
        self._ended = False
        # Cumulative run counters fed by the telemetry bridge; shipped
        # whole in every progress event so any prefix is self-contained.
        self._counts = {
            "done": 0, "executed": 0, "cached": 0, "resumed": 0,
            "poisoned": 0, "retries": 0, "crashes": 0, "fallbacks": 0,
            "batches": 0, "events_processed": 0, "checkpoints": 0,
        }
        self._busy_s = 0.0
        self._workers = 0
        self._phase: str | None = None
        self._phase_total: int | None = None
        self._total_units: int | None = None
        self._dirty = False
        self._last_progress_ns = 0
        self._last_metrics_ns = time.perf_counter_ns()
        self._metrics_before: dict | None = None
        self._attached: list[typing.Any] = []

    # -- lifecycle ---------------------------------------------------------
    def open(self) -> "EventPublisher":
        """Write the header, open the spool, start the heartbeat."""
        with self._lock:
            if self.path is not None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "wb")
            if self.registry is not None:
                self._metrics_before = self.registry.snapshot()
            self._write({
                "type": "header",
                "schema": STREAM_SCHEMA_VERSION,
                "run_id": self.run_id,
                "kind": self.kind,
                "heartbeat_s": self.heartbeat_s,
                "pid": os.getpid(),
                "meta": self.meta,
            })
            if self._handle is not None:
                # One durability point: the header names the run; losing
                # it would orphan the whole spool.
                self._handle.flush()
                os.fsync(self._handle.fileno())
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._heartbeat_loop, name="obs-events-heartbeat",
            daemon=True)
        self._thread.start()
        return self

    def close(self, status: str | None = None, **fields: typing.Any) -> None:
        """Flush pending progress, optionally emit ``run_end``, stop."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        with self._lock:
            for telemetry in self._attached:
                try:
                    telemetry.listeners.remove(self._on_telemetry)
                except ValueError:  # pragma: no cover - already gone
                    pass
            self._attached = []
            self._emit_pending_drain()
            self._maybe_progress(force=True)
            if status is not None and not self._ended:
                self.emit("run_end", status=status, **fields)
            if self._handle is not None:
                try:
                    self._handle.flush()
                    os.fsync(self._handle.fileno())
                    self._handle.close()
                finally:
                    self._handle = None

    def __enter__(self) -> "EventPublisher":
        return self.open()

    def __exit__(self, *exc_info: typing.Any) -> None:
        self.close()

    # -- emission ----------------------------------------------------------
    def add_listener(self, listener: typing.Callable[[dict], None]) -> None:
        """Subscribe an in-process callback to every emitted event."""
        self._listeners.append(listener)

    def emit(self, etype: str, **fields: typing.Any) -> dict:
        """Append one event (spool + listeners) and return it."""
        with self._lock:
            self._seq += 1
            event = {
                "seq": self._seq,
                "type": etype,
                "wall": time.time(),
                "mono_ns": time.perf_counter_ns(),
                **fields,
            }
            self._last_emit_ns = event["mono_ns"]
            if etype == "run_end":
                self._ended = True
            self._write(event)
            for listener in list(self._listeners):
                try:
                    listener(event)
                except Exception:  # pragma: no cover - defensive
                    logger.warning("obs event listener failed",
                                   exc_info=True)
            return event

    def _write(self, record: dict) -> None:
        if self._handle is None:
            return
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":"), default=str)
        try:
            self._handle.write(line.encode("utf-8") + b"\n")
            # Flush (so tails see it promptly) but do not fsync: events
            # are telemetry, and per-record fsync would blow the <2%
            # overhead budget on fast sweeps.
            self._handle.flush()
        except OSError:
            logger.warning("obs event spool write failed; disabling "
                           "file sink", exc_info=True)
            try:
                self._handle.close()
            except OSError:  # pragma: no cover
                pass
            self._handle = None

    # -- run lifecycle events ----------------------------------------------
    def run_start(self, *, total: int | None = None,
                  unit: str = "tasks",
                  **fields: typing.Any) -> None:
        with self._lock:
            self._total_units = total
            self.emit("run_start", kind=self.kind, total=total,
                      unit=unit, **fields)

    def run_end(self, status: str = "ok", **fields: typing.Any) -> None:
        with self._lock:
            self._emit_pending_drain()
            self._maybe_progress(force=True)
            self.emit("run_end", status=status, **fields)

    def checkpoint(self, **fields: typing.Any) -> None:
        with self._lock:
            self._counts["checkpoints"] += 1
            self.emit("checkpoint",
                      total=self._counts["checkpoints"], **fields)

    def note_drain(self, signum: int) -> None:
        """Record a drain request from a signal handler.

        Handler-safe: only sets a field; the heartbeat thread (or the
        next emission) writes the actual ``drain`` event.
        """
        self._pending_drain = signum

    def _emit_pending_drain(self) -> None:
        if self._pending_drain is not None:
            signum, self._pending_drain = self._pending_drain, None
            self.emit("drain", signum=signum)

    # -- telemetry bridge --------------------------------------------------
    def attach(self, telemetry: typing.Any, *,
               track_phases: bool = True) -> "EventPublisher":
        """Subscribe to a :class:`~repro.exec.telemetry.RunTelemetry`.

        Batch completions, task outcomes, retries, crashes, and
        quarantines flow into the spool without the runner knowing the
        publisher exists.  ``track_phases=False`` suppresses
        ``phase_start``/``phase_end`` for callers whose unit of
        progress is not the runner's (soak emits ``round`` events and
        would otherwise open a phase per round).
        """
        self._track_phases = track_phases
        telemetry.listeners.append(self._on_telemetry)
        self._attached.append(telemetry)
        return self

    def _on_telemetry(self, kind: str, payload: typing.Any) -> None:
        with self._lock:
            self._emit_pending_drain()
            if kind == "start":
                self._workers = payload["workers"]
                self._phase_total = payload["num_tasks"]
                if getattr(self, "_track_phases", True):
                    self._phase = payload.get("phase") or self._phase
                    self.emit("phase_start", phase=self._phase,
                              total=payload["num_tasks"],
                              workers=payload["workers"])
            elif kind == "task":
                counts = self._counts
                counts["done"] += 1
                if payload.status == "poisoned":
                    counts["poisoned"] += 1
                    self.emit("quarantine", key=payload.key,
                              total=counts["poisoned"])
                elif payload.resumed:
                    counts["resumed"] += 1
                elif payload.cached:
                    counts["cached"] += 1
                else:
                    counts["executed"] += 1
                    counts["events_processed"] += payload.events_processed
                    self._busy_s += payload.wall_time_s
                self._dirty = True
                self._maybe_progress()
            elif kind == "batch":
                self._counts["batches"] += 1
                self._dirty = True
                self._maybe_progress()
            elif kind == "retry":
                self._counts["retries"] += 1
                self.emit("retry", key=payload["key"],
                          error=payload["error"],
                          backoff_s=payload["backoff_s"],
                          total=self._counts["retries"])
            elif kind == "crash":
                self._counts["crashes"] += 1
                self.emit("crash", key=payload["key"],
                          error=payload["error"],
                          total=self._counts["crashes"])
            elif kind == "fallback":
                self._counts["fallbacks"] += 1
                self.emit("fallback", error=payload["error"],
                          total=self._counts["fallbacks"])
            elif kind == "finish":
                self._maybe_progress(force=True)
                if getattr(self, "_track_phases", True):
                    self.emit("phase_end", phase=self._phase,
                              wall_time_s=payload.get("wall_time_s"))

    def set_phase(self, phase: str | None) -> None:
        """Name the next phase (e.g. the campaign scheme about to run)."""
        with self._lock:
            self._phase = phase

    def _maybe_progress(self, force: bool = False) -> None:
        now_ns = time.perf_counter_ns()
        if self._dirty and (
                force or (now_ns - self._last_progress_ns)
                >= self.progress_every_s * 1e9):
            self._dirty = False
            self._last_progress_ns = now_ns
            self.emit("progress", phase=self._phase,
                      phase_total=self._phase_total,
                      total=self._total_units,
                      workers=self._workers,
                      busy_s=round(self._busy_s, 6),
                      **self._counts)
        if (self.registry is not None
                and self._metrics_before is not None
                and (force or (now_ns - self._last_metrics_ns)
                     >= self.metrics_every_s * 1e9)):
            self._last_metrics_ns = now_ns
            after = self.registry.snapshot()
            from repro.obs.registry import snapshot_delta

            delta = snapshot_delta(self._metrics_before, after)
            if delta:
                self._metrics_before = after
                self.emit("metrics", delta=delta)

    def flush_progress(self) -> None:
        """Force out any pending progress/metrics events."""
        with self._lock:
            self._maybe_progress(force=True)

    # -- heartbeat ---------------------------------------------------------
    def _heartbeat_loop(self) -> None:
        # Tick at a quarter interval and emit whenever nothing has been
        # written for half an interval: a live writer's longest silent
        # gap is therefore ~0.75x heartbeat_s, so a reader observing a
        # gap past one full interval knows the writer is gone.
        tick = max(self.heartbeat_s / 4.0, 0.02)
        while not self._stop.wait(tick):
            with self._lock:
                self._emit_pending_drain()
                self._maybe_progress()
                gap_s = (time.perf_counter_ns()
                         - self._last_emit_ns) / 1e9
                if gap_s >= self.heartbeat_s / 2.0:
                    self.emit("heartbeat")


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------

class EventStreamReader:
    """Incremental, torn-tail-tolerant reader over an event spool.

    ``poll()`` returns the events appended since the previous call and
    never advances past an incomplete tail, so a live ``--follow`` tail
    and a post-mortem read share one code path.  An unparseable final
    line is presumed torn and left pending; if a later poll finds
    complete lines *after* it, the damage cannot be a crash artefact
    and :class:`StreamCorrupt` is raised — the same discipline as the
    soak journal.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = pathlib.Path(path)
        self.header: dict | None = None
        self.last_seq = 0
        #: Sequence gaps observed (count of missing events).
        self.dropped = 0
        self._offset = 0

    def poll(self) -> list[dict]:
        """Parse and return events appended since the last poll."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self._offset)
                raw = handle.read()
        except OSError:
            return []
        if not raw:
            return []
        events: list[dict] = []
        consumed = 0
        segments = raw.split(b"\n")[:-1]
        for index, line in enumerate(segments):
            try:
                record = json.loads(line.decode("utf-8"))
                if not isinstance(record, dict):
                    raise ValueError("event line is not an object")
            except (ValueError, UnicodeDecodeError) as error:
                if index == len(segments) - 1:
                    # Possibly a torn terminated line; leave the offset
                    # before it and re-judge on the next poll.
                    break
                raise StreamCorrupt(
                    f"{self.path}: unreadable event at byte "
                    f"{self._offset + consumed} ({error}) with "
                    f"records after it") from error
            consumed += len(line) + 1
            if self._offset == 0 and index == 0:
                if record.get("type") != "header":
                    raise StreamCorrupt(
                        f"{self.path}: first record is not a header")
                if record.get("schema") != STREAM_SCHEMA_VERSION:
                    raise StreamCorrupt(
                        f"{self.path}: schema {record.get('schema')!r} "
                        f"(expected {STREAM_SCHEMA_VERSION})")
                self.header = record
            else:
                seq = record.get("seq")
                if isinstance(seq, int):
                    if self.last_seq and seq > self.last_seq + 1:
                        self.dropped += seq - self.last_seq - 1
                    self.last_seq = max(self.last_seq, seq)
                events.append(record)
        self._offset += consumed
        return events


def read_events(path: str | os.PathLike
                ) -> tuple[dict | None, list[dict]]:
    """One-shot read: ``(header, events)`` for a spool on disk.

    A missing or empty file yields ``(None, [])``; a torn tail is
    ignored; mid-file damage raises :class:`StreamCorrupt`.
    """
    reader = EventStreamReader(path)
    events = reader.poll()
    return reader.header, events


def events_path(run_dir: str | os.PathLike) -> pathlib.Path:
    """Resolve the spool path for a run directory (or direct file).

    Accepts the ``--obs-out`` directory, a directory holding an ``obs``
    subdirectory, or a path straight to the JSONL file.
    """
    base = pathlib.Path(run_dir)
    if base.is_file():
        return base
    direct = base / EVENTS_FILENAME
    if direct.exists():
        return direct
    nested = base / "obs" / EVENTS_FILENAME
    if nested.exists():
        return nested
    raise FileNotFoundError(
        f"no event stream under {base} (looked for {direct} and "
        f"{nested})")
