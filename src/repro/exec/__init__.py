"""Execution layer: batched parallel dispatch, caching, telemetry.

Every paper artefact is a sweep over an embarrassingly parallel grid of
(technique x stress x configuration) points; this package is the
substrate those sweeps run on.  Five layers:

* :mod:`repro.exec.runner` — grid expansion, deterministic per-task
  seeding, and batched dispatch across one persistent warm process pool
  (adaptive batch sizing, completion-order result streaming, per-attempt
  deadlines accounted from dispatch, pool-side retries with seeded
  exponential backoff, serial fallback, and crash quarantine: a task
  that repeatedly kills its worker is recorded as *poisoned* instead of
  sinking the sweep).
* :mod:`repro.exec.worker` — the per-worker warm cache: an LRU keyed on
  content hashes that memoizes resolved task functions, compiled kernel
  arrays, variability models, and campaign populations across tasks and
  batches for the lifetime of the worker.
* :mod:`repro.exec.cache` — an on-disk JSON result cache keyed by a
  content hash of the task configuration plus the code version; entries
  carry a checksum, so truncated or corrupted files are detected,
  logged, deleted, and rebuilt instead of served.
* :mod:`repro.exec.checkpoint` — periodic persistence of completed
  outcomes, so a sweep killed mid-run resumes where it left off with
  byte-identical results.
* :mod:`repro.exec.telemetry` — per-task wall time, events processed,
  cache hit/miss counts, batch sizes, warm-cache hit rates,
  retries/backoff, crashes, and worker utilization, emitted as
  structured logging records and a machine-readable run summary.
"""

from repro.exec.cache import (
    ResultCache,
    decode_result,
    encode_result,
    result_checksum,
    stable_key,
)
from repro.exec.checkpoint import (
    SweepCheckpoint,
    atomic_write_json,
    compute_run_key,
)
from repro.exec.runner import (
    DispatchSizer,
    SweepDrained,
    SweepRunner,
    SweepRunResult,
    SweepTask,
    TaskOutcome,
    TaskPayload,
    derive_seed,
    exec_mp_context,
    expand_grid,
)
from repro.exec.telemetry import RunTelemetry
from repro.exec.worker import WARM, WarmCache

__all__ = [
    "DispatchSizer",
    "ResultCache",
    "RunTelemetry",
    "SweepCheckpoint",
    "SweepDrained",
    "SweepRunResult",
    "SweepRunner",
    "SweepTask",
    "TaskOutcome",
    "TaskPayload",
    "WARM",
    "WarmCache",
    "atomic_write_json",
    "compute_run_key",
    "decode_result",
    "derive_seed",
    "encode_result",
    "exec_mp_context",
    "expand_grid",
    "result_checksum",
    "stable_key",
]
