"""Execution layer: parallel sweep running, result caching, telemetry.

Every paper artefact is a sweep over an embarrassingly parallel grid of
(technique x stress x configuration) points; this package is the
substrate those sweeps run on.  Three layers:

* :mod:`repro.exec.runner` — grid expansion, deterministic per-task
  seeding, and execution across a process pool (with serial fallback,
  per-task timeout, and retry-once semantics).
* :mod:`repro.exec.cache` — an on-disk JSON result cache keyed by a
  content hash of the task configuration plus the code version.
* :mod:`repro.exec.telemetry` — per-task wall time, events processed,
  cache hit/miss counts, and worker utilization, emitted as structured
  logging records and a machine-readable run summary.
"""

from repro.exec.cache import ResultCache, decode_result, encode_result
from repro.exec.runner import (
    SweepRunner,
    SweepRunResult,
    SweepTask,
    TaskOutcome,
    TaskPayload,
    derive_seed,
    expand_grid,
)
from repro.exec.telemetry import RunTelemetry

__all__ = [
    "ResultCache",
    "RunTelemetry",
    "SweepRunResult",
    "SweepRunner",
    "SweepTask",
    "TaskOutcome",
    "TaskPayload",
    "decode_result",
    "derive_seed",
    "encode_result",
    "expand_grid",
]
