"""Execution layer: parallel sweep running, result caching, telemetry.

Every paper artefact is a sweep over an embarrassingly parallel grid of
(technique x stress x configuration) points; this package is the
substrate those sweeps run on.  Four layers:

* :mod:`repro.exec.runner` — grid expansion, deterministic per-task
  seeding, and execution across a process pool (with serial fallback,
  per-task timeout, retries with seeded exponential backoff, and
  crash quarantine: a task that repeatedly kills its worker is recorded
  as *poisoned* instead of sinking the sweep).
* :mod:`repro.exec.cache` — an on-disk JSON result cache keyed by a
  content hash of the task configuration plus the code version; entries
  carry a checksum, so truncated or corrupted files are detected,
  logged, deleted, and rebuilt instead of served.
* :mod:`repro.exec.checkpoint` — periodic persistence of completed
  outcomes, so a sweep killed mid-run resumes where it left off with
  byte-identical results.
* :mod:`repro.exec.telemetry` — per-task wall time, events processed,
  cache hit/miss counts, retries/backoff, crashes, and worker
  utilization, emitted as structured logging records and a
  machine-readable run summary.
"""

from repro.exec.cache import (
    ResultCache,
    decode_result,
    encode_result,
    result_checksum,
)
from repro.exec.checkpoint import SweepCheckpoint, compute_run_key
from repro.exec.runner import (
    SweepRunner,
    SweepRunResult,
    SweepTask,
    TaskOutcome,
    TaskPayload,
    derive_seed,
    expand_grid,
)
from repro.exec.telemetry import RunTelemetry

__all__ = [
    "ResultCache",
    "RunTelemetry",
    "SweepCheckpoint",
    "SweepRunResult",
    "SweepRunner",
    "SweepTask",
    "TaskOutcome",
    "TaskPayload",
    "compute_run_key",
    "decode_result",
    "derive_seed",
    "encode_result",
    "expand_grid",
    "result_checksum",
]
