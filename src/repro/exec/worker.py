"""Per-worker warm state: an LRU of expensive, reusable artefacts.

Every process — each pool worker and the serial parent alike — owns one
process-wide :class:`WarmCache`.  Task functions rebuild everything they
need from primitive parameters (that is what makes parallel runs
byte-identical to serial ones), but much of what they rebuild is
*content-determined*: a :class:`~repro.kernels.pipeline.CompiledStages`
compiled from the same stage parameters is the same object every time,
a variability model built from the same spec draws the same factors,
and a campaign population generated from the same config is the same
list.  The warm cache memoizes those artefacts across tasks in a batch
and across batches for the lifetime of the worker, keyed by a SHA-256
content hash of the inputs — so a hit can never change a result, only
skip redundant work.

Entries must therefore be **deterministically reconstructible and
safe to share**: either immutable after construction or memoizing pure
functions (every variability model's draws are pure in
``(seed, cycle, path)``).  Mutable simulation state never goes in here.

The cache capacity comes from ``REPRO_WARM_CACHE_SIZE`` (default 64
entries) and can be overridden per pool through the runner's worker
initializer.  Hit/miss counters are kept per *kind* (``task-func``,
``compiled``, ``variability``, ``population``, ``criticality``,
``trajectory``) so the exec layer can ship per-batch deltas back to
the parent's telemetry.  ``trajectory`` entries — fault-free campaign
background trajectories with their stride snapshots — follow the same
invalidation discipline as ``criticality``: the key is a content hash
of everything the trajectory depends on, so a changed configuration
can never alias a stale entry.
"""

from __future__ import annotations

import collections
import os
import typing

#: Environment variable overriding the default warm-cache capacity.
WARM_CACHE_ENV = "REPRO_WARM_CACHE_SIZE"

#: Default number of entries kept per process.
DEFAULT_WARM_CACHE_SIZE = 64


def default_capacity() -> int:
    """Capacity from the environment, falling back to the default."""
    raw = os.environ.get(WARM_CACHE_ENV, "")
    try:
        return int(raw)
    except ValueError:
        return DEFAULT_WARM_CACHE_SIZE


class WarmCache:
    """A small LRU of content-addressed artefacts plus hit counters.

    ``capacity <= 0`` disables retention entirely (every lookup builds
    and counts a miss) — useful for pinning down memory or for A/B
    measurements of the warm path.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is None:
            capacity = default_capacity()
        self.capacity = capacity
        self._entries: "collections.OrderedDict[tuple[str, str], typing.Any]" \
            = collections.OrderedDict()
        self._hits: dict[str, int] = {}
        self._misses: dict[str, int] = {}

    def configure(self, capacity: int) -> None:
        """Set the capacity, evicting LRU entries that no longer fit."""
        self.capacity = capacity
        self._shrink()

    def _shrink(self) -> None:
        limit = max(0, self.capacity)
        while len(self._entries) > limit:
            self._entries.popitem(last=False)

    def get_or_build(
        self,
        kind: str,
        key: str,
        builder: typing.Callable[[], typing.Any],
    ) -> typing.Any:
        """Return the cached artefact for ``(kind, key)``, building once.

        ``builder`` runs on a miss; its result is retained (LRU) and
        returned verbatim on subsequent hits.
        """
        full = (kind, key)
        if full in self._entries:
            self._entries.move_to_end(full)
            self._hits[kind] = self._hits.get(kind, 0) + 1
            return self._entries[full]
        self._misses[kind] = self._misses.get(kind, 0) + 1
        value = builder()
        if self.capacity > 0:
            self._entries[full] = value
            self._shrink()
        return value

    # -- stats -------------------------------------------------------------
    def counters(self) -> dict[str, list[int]]:
        """``{kind: [hits, misses]}`` snapshot (for delta computation)."""
        kinds = set(self._hits) | set(self._misses)
        return {kind: [self._hits.get(kind, 0), self._misses.get(kind, 0)]
                for kind in kinds}

    @staticmethod
    def delta(before: dict[str, list[int]],
              after: dict[str, list[int]]) -> dict[str, list[int]]:
        """Per-kind ``[hits, misses]`` accumulated between two snapshots."""
        out: dict[str, list[int]] = {}
        for kind, (hits, misses) in after.items():
            prev_hits, prev_misses = before.get(kind, [0, 0])
            dh, dm = hits - prev_hits, misses - prev_misses
            if dh or dm:
                out[kind] = [dh, dm]
        return out

    def stats_delta(self, before: dict[str, list[int]]) -> dict:
        return self.delta(before, self.counters())

    def clear(self) -> None:
        """Drop every entry and zero the counters."""
        self._entries.clear()
        self._hits.clear()
        self._misses.clear()

    def __len__(self) -> int:
        return len(self._entries)


#: The process-wide warm cache every call site binds to.
WARM = WarmCache()


def configure(capacity: int) -> None:
    """Worker-initializer hook: size this process's warm cache."""
    WARM.configure(capacity)
