"""On-disk result cache for sweep tasks.

Entries are JSON files keyed by a SHA-256 content hash of the task
configuration (experiment name, params, seed) plus the *code version*
(package version and a cache schema version), so upgrading the library
or changing any input silently invalidates stale entries.  Result values
are experiment dataclasses; they round-trip through a small tagged JSON
encoding that reconstructs the exact dataclass types on load.

Every entry carries a SHA-256 checksum of its canonical encoded result;
a truncated, corrupted, or tampered file fails verification on read and
is treated as a miss — logged, deleted, and rebuilt on the next store —
never as silently wrong data.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import logging
import os
import pathlib
import tempfile
import typing

from repro.errors import ConfigurationError

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.exec.runner import SweepTask

logger = logging.getLogger("repro.exec.cache")

#: Bump to invalidate every existing cache entry on disk (result layout
#: or semantics changed without a package-version bump).
#: 2: entries gained a result checksum for integrity verification.
CACHE_SCHEMA_VERSION = 2

#: Default cache location; overridable per-cache or via environment.
DEFAULT_CACHE_DIR = ".repro-cache"


def _code_version() -> str:
    from repro import __version__

    return f"{__version__}+schema{CACHE_SCHEMA_VERSION}"


def stable_key(*parts: typing.Any) -> str:
    """SHA-256 content hash of a canonical JSON encoding of ``parts``.

    The same construction as the result-cache key and the sweep run
    key: stable across processes, platforms, and Python versions, so it
    is safe to address shared state (e.g. the per-worker warm cache)
    by it.  Non-JSON values fall back to ``str()``.
    """
    payload = json.dumps(parts, sort_keys=True, separators=(",", ":"),
                         default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Tagged JSON encoding of experiment result dataclasses
# ---------------------------------------------------------------------------

def encode_result(value: typing.Any) -> typing.Any:
    """Encode a result value into JSON-able data.

    Dataclass instances become ``{"__dataclass__": "module:QualName",
    "fields": {...}}``; tuples are tagged so they survive the round trip
    as tuples; dicts must have string keys.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": (
                f"{type(value).__module__}:{type(value).__qualname__}"),
            "fields": {
                field.name: encode_result(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }
    if isinstance(value, tuple):
        return {"__tuple__": [encode_result(item) for item in value]}
    if isinstance(value, list):
        return [encode_result(item) for item in value]
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"cannot cache dict with non-string key {key!r}")
        return {key: encode_result(item) for key, item in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigurationError(
        f"cannot cache value of type {type(value).__name__}")


def decode_result(data: typing.Any) -> typing.Any:
    """Inverse of :func:`encode_result`."""
    if isinstance(data, dict):
        if "__dataclass__" in data:
            module_name, _, qualname = data["__dataclass__"].partition(":")
            cls: typing.Any = importlib.import_module(module_name)
            for part in qualname.split("."):
                cls = getattr(cls, part)
            if not dataclasses.is_dataclass(cls):
                raise ConfigurationError(
                    f"{data['__dataclass__']} is not a dataclass")
            fields = {key: decode_result(item)
                      for key, item in data["fields"].items()}
            return cls(**fields)
        if "__tuple__" in data:
            return tuple(decode_result(item) for item in data["__tuple__"])
        return {key: decode_result(item) for key, item in data.items()}
    if isinstance(data, list):
        return [decode_result(item) for item in data]
    return data


def result_checksum(encoded: typing.Any) -> str:
    """SHA-256 of the canonical JSON form of an encoded result."""
    payload = json.dumps(encoded, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# The cache proper
# ---------------------------------------------------------------------------

class ResultCache:
    """A directory of content-addressed task results."""

    def __init__(self, directory: str | os.PathLike | None = None, *,
                 version: str | None = None) -> None:
        if directory is None:
            directory = os.environ.get("REPRO_CACHE_DIR",
                                       DEFAULT_CACHE_DIR)
        self.directory = pathlib.Path(directory)
        self.version = version if version is not None else _code_version()

    # -- keys --------------------------------------------------------------
    def key_for(self, experiment: str, params: typing.Mapping,
                seed: int) -> str:
        """Content hash of one task configuration + code version."""
        payload = json.dumps(
            {
                "experiment": experiment,
                "params": params,
                "seed": seed,
                "version": self.version,
            },
            sort_keys=True, separators=(",", ":"), default=str,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.json"

    # -- storage -----------------------------------------------------------
    def get(self, key: str) -> tuple[bool, typing.Any]:
        """Return ``(hit, value)``; unreadable entries count as misses.

        A file that exists but cannot be parsed, or whose checksum does
        not match its payload (truncated write, disk corruption, manual
        tampering), is logged, deleted, and reported as a miss so the
        task recomputes and rebuilds the entry.
        """
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return False, None
        try:
            entry = json.loads(raw.decode("utf-8"))
            if not isinstance(entry, dict):
                raise ValueError("entry is not a JSON object")
            version = entry["version"]
            if version != self.version:
                # Legitimately stale (older code / schema); a plain
                # miss, not corruption — leave the file for inspection.
                return False, None
            checksum = entry["checksum"]
            result = entry["result"]
        except (ValueError, KeyError, TypeError) as error:
            self._discard_corrupt(path, f"unparseable entry: {error}")
            return False, None
        if result_checksum(result) != checksum:
            self._discard_corrupt(path, "checksum mismatch")
            return False, None
        return True, decode_result(result)

    def _discard_corrupt(self, path: pathlib.Path, reason: str) -> None:
        logger.warning(
            "cache entry %s corrupted (%s); deleting and recomputing",
            path.name, reason)
        try:
            path.unlink()
        except OSError:
            pass

    def put(self, key: str, value: typing.Any, *,
            experiment: str = "", meta: dict | None = None) -> None:
        """Store ``value`` under ``key`` (atomic rename, last-write-wins)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        encoded = encode_result(value)
        entry = {
            "version": self.version,
            "experiment": experiment,
            "result": encoded,
            "checksum": result_checksum(encoded),
            "meta": meta or {},
        }
        fd, tmp_name = tempfile.mkstemp(dir=self.directory,
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)
            os.replace(tmp_name, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- task-level convenience -------------------------------------------
    def get_task(self, task: "SweepTask") -> tuple[bool, typing.Any]:
        return self.get(self.key_for(task.experiment, task.params,
                                     task.seed))

    def put_task(self, task: "SweepTask", value: typing.Any,
                 meta: dict | None = None) -> None:
        self.put(self.key_for(task.experiment, task.params, task.seed),
                 value, experiment=task.experiment, meta=meta)

    # -- maintenance -------------------------------------------------------
    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))
