"""Periodic sweep checkpointing for crash-tolerant, resumable runs.

A :class:`SweepCheckpoint` persists completed task outcomes to one JSON
file as a sweep progresses, so a run killed mid-sweep — worker crash,
OOM, operator ^C, pre-empted node — can be re-launched with ``--resume``
and only re-execute what is missing.  The file is bound to the exact
run it came from by a *run key*: a SHA-256 over every task's
(experiment, params, seed, index) plus the cache code-version, so a
checkpoint from a different grid, seed, or library version is detected
and ignored (logged, never silently mixed in).

Resumed values round-trip through the same tagged JSON encoding as the
result cache (:func:`repro.exec.cache.encode_result`), which
reconstructs exact dataclasses — a resumed sweep is byte-identical to
an uninterrupted one.  Writes go through :func:`atomic_write_json`
(temp file in the target directory, ``fsync``, atomic rename, directory
``fsync`` — a SIGKILL at any instant leaves either the old or the new
complete document, never a torn one) and are throttled to every
``every`` completions plus one final flush, keeping checkpoint overhead
negligible for sweeps of thousands of tasks.  The soak driver's
checkpoints (:mod:`repro.soak.driver`) reuse the same helper.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pathlib
import tempfile
import typing

from repro.exec.cache import decode_result, encode_result

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.exec.runner import SweepTask, TaskOutcome

logger = logging.getLogger("repro.exec.checkpoint")

CHECKPOINT_SCHEMA_VERSION = 1


def atomic_write_json(path: pathlib.Path, data: typing.Any) -> None:
    """Durably replace ``path`` with the JSON encoding of ``data``.

    The sequence a kill must never be able to corrupt: write to a
    temporary file in the *same directory*, flush and ``fsync`` it (the
    bytes are on disk before the name exists), atomically ``rename``
    over the target, then ``fsync`` the directory so the rename itself
    is durable.  At every instant the target path holds either the old
    complete document or the new complete document — a SIGKILL mid-write
    leaves the temp file behind, never a torn target.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - directories not fsync-able
        pass
    finally:
        os.close(dir_fd)


def compute_run_key(tasks: "typing.Sequence[SweepTask]",
                    code_version: str) -> str:
    """Stable identity of one sweep: its exact task list + code version."""
    payload = json.dumps(
        {
            "version": code_version,
            "tasks": [
                [task.index, task.experiment, task.params, task.seed]
                for task in tasks
            ],
        },
        sort_keys=True, separators=(",", ":"), default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class SweepCheckpoint:
    """Append-style checkpoint of completed task outcomes.

    Args:
        path: Checkpoint file location.
        every: Flush to disk after this many newly recorded outcomes
            (the runner always flushes once more at the end of the run).
        resume: When False (the default), an existing file is ignored
            and overwritten — explicit opt-in keeps accidental reuse of
            a stale checkpoint from masking fresh results.
    """

    def __init__(self, path: str | os.PathLike, *, every: int = 8,
                 resume: bool = False) -> None:
        self.path = pathlib.Path(path)
        self.every = max(1, every)
        self.resume = resume
        self._run_key: str | None = None
        self._completed: dict[str, dict] = {}
        self._pending_writes = 0
        #: Called after every durable flush with the number of
        #: completed records now on disk — the obs event stream's
        #: ``checkpoint`` events hang off this.
        self.on_flush: typing.Callable[[int], None] | None = None

    # -- load --------------------------------------------------------------
    def load(self, tasks: "typing.Sequence[SweepTask]",
             code_version: str) -> dict[int, dict]:
        """Bind to this run and return resumable records by task index.

        Always computes and stores the run key (needed for writing);
        returns ``{}`` unless ``resume`` is set and the file on disk
        matches this exact run.
        """
        self._run_key = compute_run_key(tasks, code_version)
        self._completed = {}
        if not self.resume:
            return {}
        try:
            raw = self.path.read_text(encoding="utf-8")
        except OSError:
            return {}
        try:
            data = json.loads(raw)
            if not isinstance(data, dict):
                raise ValueError("checkpoint is not a JSON object")
            schema = data["schema_version"]
            run_key = data["run_key"]
            completed = data["completed"]
        except (ValueError, KeyError, TypeError) as error:
            logger.warning(
                "checkpoint %s is unreadable (%s); starting fresh",
                self.path, error)
            return {}
        if schema != CHECKPOINT_SCHEMA_VERSION:
            logger.warning(
                "checkpoint %s has schema %r (expected %r); ignoring",
                self.path, schema, CHECKPOINT_SCHEMA_VERSION)
            return {}
        if run_key != self._run_key:
            logger.warning(
                "checkpoint %s belongs to a different run (task grid, "
                "seed, or code version changed); ignoring", self.path)
            return {}
        self._completed = dict(completed)
        logger.info("resuming %d completed task(s) from %s",
                    len(self._completed), self.path)
        return {int(index): record
                for index, record in self._completed.items()}

    # -- record ------------------------------------------------------------
    def record(self, outcome: "TaskOutcome") -> None:
        """Add one completed outcome; flush when the batch is full."""
        self._completed[str(outcome.task.index)] = {
            "key": outcome.task.key,
            "status": outcome.status,
            "value": encode_result(outcome.value),
            "wall_time_s": outcome.wall_time_s,
            "events_processed": outcome.events_processed,
            "attempts": outcome.attempts,
            "worker_pid": outcome.worker_pid,
        }
        self._pending_writes += 1
        if self._pending_writes >= self.every:
            self.flush()

    def flush(self) -> None:
        """Durably write the current completion set (atomic + fsync)."""
        if self._run_key is None:
            raise RuntimeError("checkpoint used before load()")
        self._pending_writes = 0
        atomic_write_json(self.path, {
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "run_key": self._run_key,
            "completed": self._completed,
        })
        if self.on_flush is not None:
            try:
                self.on_flush(len(self._completed))
            except Exception:  # pragma: no cover - defensive
                logger.warning("checkpoint on_flush hook failed",
                               exc_info=True)

    # -- rehydration -------------------------------------------------------
    @staticmethod
    def outcome_from_record(task: "SweepTask",
                            record: typing.Mapping) -> "TaskOutcome":
        """Rebuild a :class:`TaskOutcome` from a checkpoint record."""
        from repro.exec.runner import TaskOutcome

        return TaskOutcome(
            task=task,
            value=decode_result(record["value"]),
            wall_time_s=float(record["wall_time_s"]),
            events_processed=int(record["events_processed"]),
            cached=False,
            attempts=int(record["attempts"]),
            worker_pid=int(record["worker_pid"]),
            status=str(record.get("status", "done")),
            resumed=True,
        )
