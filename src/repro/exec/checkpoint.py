"""Periodic sweep checkpointing for crash-tolerant, resumable runs.

A :class:`SweepCheckpoint` persists completed task outcomes to one JSON
file as a sweep progresses, so a run killed mid-sweep — worker crash,
OOM, operator ^C, pre-empted node — can be re-launched with ``--resume``
and only re-execute what is missing.  The file is bound to the exact
run it came from by a *run key*: a SHA-256 over every task's
(experiment, params, seed, index) plus the cache code-version, so a
checkpoint from a different grid, seed, or library version is detected
and ignored (logged, never silently mixed in).

Resumed values round-trip through the same tagged JSON encoding as the
result cache (:func:`repro.exec.cache.encode_result`), which
reconstructs exact dataclasses — a resumed sweep is byte-identical to
an uninterrupted one.  Writes are atomic (temp file + rename) and
throttled to every ``every`` completions plus one final flush, keeping
checkpoint overhead negligible for sweeps of thousands of tasks.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pathlib
import tempfile
import typing

from repro.exec.cache import decode_result, encode_result

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.exec.runner import SweepTask, TaskOutcome

logger = logging.getLogger("repro.exec.checkpoint")

CHECKPOINT_SCHEMA_VERSION = 1


def compute_run_key(tasks: "typing.Sequence[SweepTask]",
                    code_version: str) -> str:
    """Stable identity of one sweep: its exact task list + code version."""
    payload = json.dumps(
        {
            "version": code_version,
            "tasks": [
                [task.index, task.experiment, task.params, task.seed]
                for task in tasks
            ],
        },
        sort_keys=True, separators=(",", ":"), default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class SweepCheckpoint:
    """Append-style checkpoint of completed task outcomes.

    Args:
        path: Checkpoint file location.
        every: Flush to disk after this many newly recorded outcomes
            (the runner always flushes once more at the end of the run).
        resume: When False (the default), an existing file is ignored
            and overwritten — explicit opt-in keeps accidental reuse of
            a stale checkpoint from masking fresh results.
    """

    def __init__(self, path: str | os.PathLike, *, every: int = 8,
                 resume: bool = False) -> None:
        self.path = pathlib.Path(path)
        self.every = max(1, every)
        self.resume = resume
        self._run_key: str | None = None
        self._completed: dict[str, dict] = {}
        self._pending_writes = 0

    # -- load --------------------------------------------------------------
    def load(self, tasks: "typing.Sequence[SweepTask]",
             code_version: str) -> dict[int, dict]:
        """Bind to this run and return resumable records by task index.

        Always computes and stores the run key (needed for writing);
        returns ``{}`` unless ``resume`` is set and the file on disk
        matches this exact run.
        """
        self._run_key = compute_run_key(tasks, code_version)
        self._completed = {}
        if not self.resume:
            return {}
        try:
            raw = self.path.read_text(encoding="utf-8")
        except OSError:
            return {}
        try:
            data = json.loads(raw)
            if not isinstance(data, dict):
                raise ValueError("checkpoint is not a JSON object")
            schema = data["schema_version"]
            run_key = data["run_key"]
            completed = data["completed"]
        except (ValueError, KeyError, TypeError) as error:
            logger.warning(
                "checkpoint %s is unreadable (%s); starting fresh",
                self.path, error)
            return {}
        if schema != CHECKPOINT_SCHEMA_VERSION:
            logger.warning(
                "checkpoint %s has schema %r (expected %r); ignoring",
                self.path, schema, CHECKPOINT_SCHEMA_VERSION)
            return {}
        if run_key != self._run_key:
            logger.warning(
                "checkpoint %s belongs to a different run (task grid, "
                "seed, or code version changed); ignoring", self.path)
            return {}
        self._completed = dict(completed)
        logger.info("resuming %d completed task(s) from %s",
                    len(self._completed), self.path)
        return {int(index): record
                for index, record in self._completed.items()}

    # -- record ------------------------------------------------------------
    def record(self, outcome: "TaskOutcome") -> None:
        """Add one completed outcome; flush when the batch is full."""
        self._completed[str(outcome.task.index)] = {
            "key": outcome.task.key,
            "status": outcome.status,
            "value": encode_result(outcome.value),
            "wall_time_s": outcome.wall_time_s,
            "events_processed": outcome.events_processed,
            "attempts": outcome.attempts,
            "worker_pid": outcome.worker_pid,
        }
        self._pending_writes += 1
        if self._pending_writes >= self.every:
            self.flush()

    def flush(self) -> None:
        """Atomically write the current completion set to disk."""
        if self._run_key is None:
            raise RuntimeError("checkpoint used before load()")
        self._pending_writes = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        data = {
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "run_key": self._run_key,
            "completed": self._completed,
        }
        fd, tmp_name = tempfile.mkstemp(dir=self.path.parent,
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(data, handle)
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- rehydration -------------------------------------------------------
    @staticmethod
    def outcome_from_record(task: "SweepTask",
                            record: typing.Mapping) -> "TaskOutcome":
        """Rebuild a :class:`TaskOutcome` from a checkpoint record."""
        from repro.exec.runner import TaskOutcome

        return TaskOutcome(
            task=task,
            value=decode_result(record["value"]),
            wall_time_s=float(record["wall_time_s"]),
            events_processed=int(record["events_processed"]),
            cached=False,
            attempts=int(record["attempts"]),
            worker_pid=int(record["worker_pid"]),
            status=str(record.get("status", "done")),
            resumed=True,
        )
