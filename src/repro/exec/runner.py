"""Parallel sweep runner with batched, warm-worker dispatch.

A sweep is a list of independent :class:`SweepTask` grid points.  Each
task names a module-level *task function* by its dotted path (so it can
be resolved inside a worker process regardless of the multiprocessing
start method), carries a JSON-able parameter mapping, and gets a
deterministic seed derived from the sweep's root seed via SHA-256 — no
global RNG state is consulted anywhere, which is what makes a parallel
run byte-identical to a serial one.

Execution semantics:

* ``workers <= 1`` (the default) runs every task in-process, in order.
* ``workers > 1`` fans the cache misses out across one persistent
  ``concurrent.futures.ProcessPoolExecutor`` — created with an explicit
  multiprocessing context (:func:`exec_mp_context`) and a worker
  initializer that sizes the per-worker warm cache — and reused across
  :meth:`SweepRunner.run` calls, so multi-phase drivers (the campaign
  CLI runs one sweep per scheme) pay pool construction once.  If the
  pool cannot be created the runner falls back to serial execution.
* Cache-miss tasks are dispatched in **batches**: one submit/return
  round-trip executes a whole chunk of tasks, sized adaptively by
  :class:`DispatchSizer` so each batch targets ``batch_target_s`` of
  work (sized from observed task durations; cache hits never feed the
  sizer).  Results stream back in completion order — a slow batch no
  longer head-of-line-blocks recording, retries, or checkpointing —
  and are re-ordered in the parent, which is free because outcomes are
  keyed by task index.  Worker-side metric deltas, spans, and
  warm-cache stats ship once per batch instead of once per task.
* Inside each worker a process-wide LRU (:mod:`repro.exec.worker`)
  keyed on content hashes caches resolved task functions, variability
  models, compiled stage/edge arrays, and campaign populations across
  tasks in a batch and across batches.  A warm hit can only skip
  redundant construction of a deterministic artefact, never change a
  result — pinned by the batched-vs-serial byte-identity properties.
* ``task_timeout_s`` (``None`` = unlimited) budgets each *attempt* from
  the moment its batch is dispatched to a worker — queue wait is never
  charged, so tasks late in submission order cannot spuriously time out
  on a busy pool.  A batch of ``n`` tasks gets ``n`` budgets; retries
  are re-dispatched to the pool (with the existing seeded exponential
  backoff) so the other workers keep draining the sweep, and the serial
  in-parent path remains only as the fallback when no pool is
  available.  After ``retries`` additional attempts the run fails with
  :class:`~repro.errors.ExecutionError`.
* A worker *crash* (the pool reports ``BrokenProcessPool``) is handled
  separately from an ordinary exception: every task in flight is a
  suspect, and each suspect is re-run alone in a fresh single-worker
  pool so the crash is attributed precisely — batch-mates of a poisoned
  task are innocent and complete there.  A task that kills its isolated
  worker ``poison_after`` times is quarantined as *poisoned* (outcome
  value ``None``, status ``"poisoned"``) instead of being re-fanned-out
  forever or aborting the sweep; the main pool is then rebuilt and the
  sweep continues.
* With a :class:`~repro.exec.checkpoint.SweepCheckpoint` attached, every
  completed outcome is persisted the moment it arrives (completion
  order); a killed run re-launched with ``resume`` replays exactly the
  completed prefix and only executes what is missing.

Results come back in task order regardless of completion order.
"""

from __future__ import annotations

import collections
import concurrent.futures
import dataclasses
import hashlib
import heapq
import importlib
import itertools
import json
import math
import multiprocessing
import os
import time
import typing
import weakref

from concurrent.futures.process import BrokenProcessPool

from repro import obs
from repro.errors import ConfigurationError, ExecutionError
from repro.exec.cache import ResultCache, _code_version
from repro.exec.checkpoint import SweepCheckpoint
from repro.exec.telemetry import RunTelemetry
from repro.exec.worker import WARM
from repro.kernels.rng import key_id, mix32, split64, uniform01

#: Domain-separation salt for the backoff jitter stream.
_BACKOFF_SALT = key_id("exec-backoff")

#: Environment variable overriding the multiprocessing start method used
#: for every pool the exec layer builds.
MP_START_ENV = "REPRO_MP_START"

#: Task functions take the params mapping and return the result value —
#: or a :class:`TaskPayload` when they also want to report work metrics.
TaskFunction = typing.Callable[[dict], typing.Any]


def exec_mp_context(method: str | None = None):
    """The explicit multiprocessing context for exec-layer pools.

    Every ``ProcessPoolExecutor`` the runner constructs — the shared
    dispatch pool and the single-worker isolation pools — uses this one
    context instead of silently inheriting the platform default.  The
    choice is ``method`` (the runner's ``mp_start``), else
    ``REPRO_MP_START``, else ``fork`` where available (cheap warm-worker
    startup; pools are created before the runner spawns any threads)
    and ``spawn`` elsewhere.  The dispatch layer itself is spawn-safe —
    task functions resolve by dotted path, worker configuration travels
    through the initializer and inherited environment — which the test
    suite pins by running a sweep under ``mp_start="spawn"``.
    """
    name = method or os.environ.get(MP_START_ENV) or None
    if not name:
        name = ("fork" if "fork" in multiprocessing.get_all_start_methods()
                else "spawn")
    return multiprocessing.get_context(name)


def derive_seed(root_seed: int, *parts: typing.Any) -> int:
    """Derive a deterministic 63-bit seed from ``root_seed`` and a key.

    Uses SHA-256 over a canonical JSON encoding, so the result is stable
    across processes, platforms, and Python versions (unlike ``hash()``,
    which is salted per process).
    """
    payload = json.dumps([root_seed, *parts], sort_keys=True,
                         separators=(",", ":"), default=str)
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclasses.dataclass(frozen=True)
class SweepTask:
    """One independent grid point of a sweep.

    Attributes:
        experiment: Dotted path ``package.module:function`` of the task
            function; also the cache-key namespace.
        params: JSON-able keyword mapping handed to the task function.
        index: Position in the sweep (results are returned in this
            order).
        seed: Deterministic per-task seed (see :func:`derive_seed`).
        key: Stable human-readable identifier for logs and telemetry.
    """

    experiment: str
    params: dict
    index: int
    seed: int
    key: str

    def resolve(self) -> TaskFunction:
        """Import and return this task's function."""
        module_name, _, func_name = self.experiment.partition(":")
        if not func_name:
            raise ConfigurationError(
                f"task experiment must look like 'module:function', "
                f"got {self.experiment!r}"
            )
        module = importlib.import_module(module_name)
        try:
            return getattr(module, func_name)
        except AttributeError as error:
            raise ConfigurationError(
                f"no task function {func_name!r} in {module_name!r}"
            ) from error


@dataclasses.dataclass
class TaskPayload:
    """Optional rich return value of a task function.

    Lets a task report how much simulated work it did (e.g.
    ``Simulator.events_processed`` or pipeline cycles) alongside its
    result value.
    """

    value: typing.Any
    events_processed: int = 0


@dataclasses.dataclass
class TaskOutcome:
    """What happened to one task during a run.

    ``status`` is ``"done"`` for a computed (or cached/resumed) result
    and ``"poisoned"`` for a task quarantined after repeatedly killing
    its worker — poisoned outcomes carry ``value None`` and are never
    written to the cache.  ``resumed`` marks outcomes replayed from a
    sweep checkpoint rather than executed this run.
    """

    task: SweepTask
    value: typing.Any
    wall_time_s: float
    events_processed: int
    cached: bool
    attempts: int
    worker_pid: int
    status: str = "done"
    resumed: bool = False


@dataclasses.dataclass
class SweepRunResult:
    """Ordered outcomes plus the machine-readable run summary."""

    outcomes: list[TaskOutcome]
    summary: dict

    @property
    def values(self) -> list:
        return [outcome.value for outcome in self.outcomes]


class RemoteTaskError(ExecutionError):
    """An exception reported by a worker-side task, by repr.

    Worker exceptions cross the pool boundary as strings (their types
    may not be picklable); the parent re-wraps them so retry telemetry
    and the final :class:`ExecutionError` carry the original message.
    """


class SweepDrained(Exception):
    """A run stopped early because a graceful drain was requested.

    Raised by :meth:`SweepRunner.run` after :meth:`SweepRunner.
    request_drain` when some tasks were left unexecuted: queued work
    was dropped, in-flight batches were allowed to finish, every
    completed outcome was recorded (and checkpointed, when a checkpoint
    is attached), and :attr:`result` carries the partial
    :class:`SweepRunResult` with ``summary["drained"] = True``.
    Raising — rather than returning a short list — keeps callers that
    post-process a full grid from silently consuming a partial one.
    """

    def __init__(self, result: "SweepRunResult") -> None:
        completed = len(result.outcomes)
        super().__init__(f"sweep drained after {completed} task(s)")
        self.result = result


def task_key(experiment: str, point: typing.Mapping) -> str:
    """Render a stable human-readable task key for a grid point."""
    name = experiment.rpartition(":")[2].strip("_")
    inner = ",".join(f"{k}={point[k]}" for k in sorted(point))
    return f"{name}[{inner}]"


def expand_grid(
    experiment: str,
    axes: typing.Mapping[str, typing.Sequence],
    base: typing.Mapping | None = None,
    *,
    root_seed: int = 0,
) -> list[SweepTask]:
    """Expand a cartesian grid of axis values into independent tasks.

    ``axes`` iterates in insertion order (first axis outermost), so the
    task order matches the equivalent nested ``for`` loops.  Each task's
    seed derives from ``root_seed`` and the axis values alone — adding
    or removing other grid points never changes it.
    """
    if not axes:
        raise ConfigurationError("need at least one sweep axis")
    names = list(axes)
    tasks: list[SweepTask] = []
    for index, values in enumerate(itertools.product(
            *(axes[name] for name in names))):
        point = dict(zip(names, values))
        params = {**(dict(base) if base else {}), **point}
        tasks.append(SweepTask(
            experiment=experiment,
            params=params,
            index=index,
            seed=derive_seed(root_seed, experiment, sorted(point.items())),
            key=task_key(experiment, point),
        ))
    return tasks


def _worker_init(warm_capacity: int | None) -> None:
    """Pool-worker initializer: size this process's warm cache.

    Runs once per worker regardless of start method; everything else a
    worker needs (observability enablement, kernel mode) travels
    through the inherited environment.
    """
    if warm_capacity is not None:
        WARM.configure(warm_capacity)


def _resolve_warm(task: SweepTask) -> TaskFunction:
    """Resolve a task function through the process warm cache."""
    return WARM.get_or_build("task-func", task.experiment, task.resolve)


def _run_payload(task: SweepTask) -> dict:
    """Execute one task and package its result entry (no error guard)."""
    started = time.perf_counter()
    raw = _resolve_warm(task)(dict(task.params))
    wall = time.perf_counter() - started
    if isinstance(raw, TaskPayload):
        value, events = raw.value, raw.events_processed
    else:
        value, events = raw, 0
    return {
        "ok": True,
        "value": value,
        "wall_time_s": wall,
        "events_processed": events,
    }


def execute_task(payload: dict) -> dict:
    """Run one task (worker entry point; must stay module-level).

    Takes and returns plain dicts plus the (picklable) result value so
    the process-pool boundary stays simple.  Ships the task's metric
    deltas, spans, and warm-cache stats alongside the value; the parent
    merges metric deltas only for genuine workers (pid check) — in
    serial execution they already landed in the live registry.
    """
    task = SweepTask(**payload)
    token = obs.begin_capture()
    warm_before = WARM.counters()
    entry = _run_payload(task)
    result = {
        "value": entry["value"],
        "wall_time_s": entry["wall_time_s"],
        "events_processed": entry["events_processed"],
        "worker_pid": os.getpid(),
        "warm": WARM.stats_delta(warm_before),
    }
    if token is not None:
        result["obs"], result["obs_spans"] = obs.end_capture(token)
    return result


def execute_batch(payloads: list[dict]) -> dict:
    """Run a batch of tasks in one pool round-trip (worker entry point).

    Per-task failures are captured as ``{"ok": False, "error": ...}``
    entries rather than raised, so one bad task cannot take down its
    batch-mates; the parent applies the retry policy per task.  Metric
    deltas, spans, and warm-cache stats ship once for the whole batch.
    """
    token = obs.begin_capture()
    warm_before = WARM.counters()
    results: list[dict] = []
    for payload in payloads:
        task = SweepTask(**payload)
        try:
            results.append(_run_payload(task))
        except Exception as error:  # noqa: BLE001 — parent retries per task
            results.append({"ok": False, "error": repr(error)})
    out = {
        "worker_pid": os.getpid(),
        "results": results,
        "warm": WARM.stats_delta(warm_before),
    }
    if token is not None:
        out["obs"], out["obs_spans"] = obs.end_capture(token)
    return out


class DispatchSizer:
    """Adaptive batch size targeting a fixed wall time per batch.

    Tracks an exponential moving average of *executed* task durations
    (cache hits are served in the parent and never observed, so they
    cannot skew the estimate) and sizes the next batch so it should
    take about ``target_s``.  ``target_s <= 0`` disables batching —
    every dispatch carries exactly one task.
    """

    #: EMA weight of the newest executed-task duration.
    ALPHA = 0.4
    #: Floor for observed durations, so microsecond tasks don't explode
    #: the size estimate past ``max_batch`` worth of useful precision.
    MIN_TASK_S = 1e-6
    #: With no observations yet, assume the target splits into this
    #: many tasks — first batches are modest, then adapt.
    INITIAL_TASKS = 8

    def __init__(self, target_s: float, max_batch: int) -> None:
        self.target_s = target_s
        self.max_batch = max_batch
        self._ema_s = (target_s / self.INITIAL_TASKS
                       if target_s > 0 else 0.0)

    @property
    def observed_task_s(self) -> float:
        """Current per-task duration estimate (the EMA)."""
        return self._ema_s

    def observe(self, wall_s: float) -> None:
        """Feed one *executed* task duration into the estimate."""
        if self.target_s <= 0:
            return
        wall = max(float(wall_s), self.MIN_TASK_S)
        self._ema_s = (1.0 - self.ALPHA) * self._ema_s + self.ALPHA * wall

    def size(self) -> int:
        """Tasks to put in the next batch."""
        if self.target_s <= 0 or self._ema_s <= 0:
            return 1
        return max(1, min(self.max_batch,
                          int(self.target_s / self._ema_s)))


@dataclasses.dataclass
class _Flight:
    """One dispatched batch: its (task, attempt) pairs and deadline."""

    batch: list[tuple[SweepTask, int]]
    deadline: float | None


def _shutdown_pool(pool) -> None:
    """Best-effort executor shutdown (finalizer-safe, never raises)."""
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - interpreter-teardown races
        pass


class _Dispatcher:
    """One ``_run_pool`` invocation's streaming dispatch state machine.

    Keeps at most ``workers`` batches in flight so a submitted batch is
    picked up immediately — which is what lets per-attempt deadlines
    start at dispatch time without charging queue wait.  Completions
    are consumed in completion order (``concurrent.futures.wait``);
    failed tasks re-enter the queue as retry batches after their seeded
    backoff elapses, and timed-out batches are abandoned to the
    *ghosts* set: their worker still counts as busy until the future
    resolves, and a late success is adopted if the task has not been
    recorded by a retry in the meantime.
    """

    def __init__(self, runner: "SweepRunner",
                 record: typing.Callable[[TaskOutcome], None]) -> None:
        self.runner = runner
        self.record = record
        self.pending: collections.deque[tuple[SweepTask, int]] = \
            collections.deque()
        self.retries: list[tuple[float, int, SweepTask, int]] = []
        self.in_flight: dict[typing.Any, _Flight] = {}
        self.ghosts: dict[typing.Any, _Flight] = {}
        self.recorded: set[int] = set()
        self._seq = itertools.count()
        self._suspects: list[tuple[SweepTask, int]] = []

    def run(self, tasks: typing.Sequence[SweepTask]) -> None:
        self.pending.extend((task, 1) for task in tasks)
        while self.pending or self.retries or self.in_flight:
            if self.runner._drain_requested:
                # Graceful drain: drop everything not yet dispatched and
                # stop waiting on abandoned (timed-out) batches, but let
                # batches already on a worker finish and be recorded —
                # their results are about to arrive and recording them
                # keeps the checkpoint as complete as possible.
                self.pending.clear()
                self.retries.clear()
                self.ghosts.clear()
                if not self.in_flight:
                    break
            now = time.monotonic()
            self._promote_retries(now)
            broken = self._fill(now)
            if not broken:
                broken = self._collect()
            if broken:
                self._recover_from_broken_pool()
            self._expire(time.monotonic())

    # -- submission --------------------------------------------------------
    def _promote_retries(self, now: float) -> None:
        """Move backoff-expired retries to the front of the queue."""
        due: list[tuple[SweepTask, int]] = []
        while self.retries and self.retries[0][0] <= now:
            _, _, task, attempt = heapq.heappop(self.retries)
            if task.index not in self.recorded:
                due.append((task, attempt))
        self.pending.extendleft(reversed(due))

    def _free_slots(self) -> int:
        ghosts_busy = sum(1 for future in self.ghosts
                          if not future.done())
        return self.runner.workers - len(self.in_flight) - ghosts_busy

    def _fill(self, now: float) -> bool:
        """Dispatch batches onto free workers; True if the pool broke."""
        free = self._free_slots()
        while self.pending and free > 0:
            # Split what's left across the free workers, capped by the
            # sizer's wall-time target, so the tail of a sweep doesn't
            # pile onto one worker while others idle.
            limit = max(1, min(
                self.runner._sizer.size(),
                math.ceil(len(self.pending) / free)))
            batch: list[tuple[SweepTask, int]] = []
            while self.pending and len(batch) < limit:
                task, attempt = self.pending.popleft()
                if task.index not in self.recorded:
                    batch.append((task, attempt))
            if not batch:
                continue
            payloads = [dataclasses.asdict(task) for task, _ in batch]
            try:
                future = self.runner._pool.submit(execute_batch, payloads)
            except (BrokenProcessPool, RuntimeError):
                # Never dispatched — requeue untouched (not suspects,
                # no attempt charged) and let the recovery path rebuild
                # the pool.
                self.pending.extendleft(reversed(batch))
                return True
            deadline = None
            if self.runner.task_timeout_s is not None:
                deadline = (time.monotonic()
                            + self.runner.task_timeout_s * len(batch))
            self.in_flight[future] = _Flight(batch, deadline)
            free -= 1
        return False

    # -- completion --------------------------------------------------------
    def _collect(self) -> bool:
        """Wait for the next completion/deadline; True if pool broke."""
        waitables = list(self.in_flight) + list(self.ghosts)
        now = time.monotonic()
        if not waitables:
            if self.retries:
                time.sleep(max(0.0, self.retries[0][0] - now))
            return False
        bounds = [flight.deadline for flight in self.in_flight.values()
                  if flight.deadline is not None]
        if self.retries:
            bounds.append(self.retries[0][0])
        timeout = max(0.0, min(bounds) - now) if bounds else None
        done, _ = concurrent.futures.wait(
            waitables, timeout=timeout,
            return_when=concurrent.futures.FIRST_COMPLETED)
        broken = False
        for future in done:
            if future in self.ghosts:
                self._adopt_late(future)
                continue
            flight = self.in_flight.pop(future)
            error = future.exception()
            if isinstance(error, BrokenProcessPool):
                self._suspects.extend(flight.batch)
                broken = True
            elif error is not None:
                # Infrastructure failure (e.g. an unpicklable result):
                # charge every task in the batch one attempt.
                for task, attempt in flight.batch:
                    if task.index not in self.recorded:
                        self._after_failure(task, attempt, error)
            else:
                self._absorb(flight, future.result())
        return broken

    def _absorb(self, flight: _Flight, raw: dict) -> None:
        """Record one completed batch's outcomes and telemetry."""
        runner = self.runner
        runner._merge_worker_obs(raw)
        runner.telemetry.record_batch(size=len(flight.batch),
                                      warm=raw.get("warm"))
        for (task, attempt), entry in zip(flight.batch, raw["results"]):
            if task.index in self.recorded:
                continue
            if entry.get("ok"):
                self.recorded.add(task.index)
                self.record(TaskOutcome(
                    task=task, value=entry["value"],
                    wall_time_s=entry["wall_time_s"],
                    events_processed=entry["events_processed"],
                    cached=False, attempts=attempt,
                    worker_pid=raw["worker_pid"],
                ))
                runner._sizer.observe(entry["wall_time_s"])
            else:
                self._after_failure(task, attempt,
                                    RemoteTaskError(entry["error"]))

    def _adopt_late(self, future) -> None:
        """A timed-out batch finally resolved; adopt unclaimed results.

        The values are deterministic, so a late success is identical to
        what the scheduled retry would compute — adopting it just saves
        the re-execution.  Failures are ignored: the timeout already
        charged the attempt and queued the retry.
        """
        flight = self.ghosts.pop(future)
        if future.exception() is not None:
            return
        raw = future.result()
        self.runner._merge_worker_obs(raw)
        for (task, attempt), entry in zip(flight.batch, raw["results"]):
            if entry.get("ok") and task.index not in self.recorded:
                self.recorded.add(task.index)
                self.record(TaskOutcome(
                    task=task, value=entry["value"],
                    wall_time_s=entry["wall_time_s"],
                    events_processed=entry["events_processed"],
                    cached=False, attempts=attempt,
                    worker_pid=raw["worker_pid"],
                ))

    def _after_failure(self, task: SweepTask, attempt: int,
                       error: BaseException) -> None:
        """Apply the retry policy to one failed attempt."""
        runner = self.runner
        if attempt > runner.retries:
            raise ExecutionError(
                f"task {task.key} failed after {attempt} attempt(s): "
                f"{error}"
            ) from error
        delay = runner._backoff_delay_s(task, attempt)
        runner.telemetry.record_retry(task, error, backoff_s=delay)
        heapq.heappush(self.retries, (time.monotonic() + delay,
                                      next(self._seq), task, attempt + 1))

    # -- timeouts ----------------------------------------------------------
    def _expire(self, now: float) -> None:
        """Abandon batches whose per-attempt deadline has passed."""
        if self.runner.task_timeout_s is None:
            return
        for future, flight in list(self.in_flight.items()):
            if (flight.deadline is None or now < flight.deadline
                    or future.done()):
                continue
            del self.in_flight[future]
            if future.cancel():
                # Still queued (a wedged worker was hogging the slot):
                # it never dispatched, so requeue without charging the
                # attempt — that is the whole point of deadline-from-
                # dispatch accounting.
                self.pending.extendleft(reversed(flight.batch))
                continue
            self.ghosts[future] = flight
            budget = self.runner.task_timeout_s * len(flight.batch)
            error = TimeoutError(
                f"no result within {budget:.3f}s "
                f"(batch of {len(flight.batch)}, "
                f"{self.runner.task_timeout_s:.3f}s per task)")
            for task, attempt in flight.batch:
                if task.index not in self.recorded:
                    self._after_failure(task, attempt, error)

    # -- crash recovery ----------------------------------------------------
    def _recover_from_broken_pool(self) -> None:
        """Attribute the crash in isolation, rebuild the pool, go on."""
        suspects = list(self._suspects)
        self._suspects.clear()
        for flight in self.in_flight.values():
            suspects.extend(flight.batch)
        self.in_flight.clear()
        # Ghost batches died with the pool; their retries are already
        # queued (or their tasks recorded), so just drop the futures.
        self.ghosts.clear()
        self.runner._reset_pool()
        for task, _ in suspects:
            if task.index in self.recorded:
                continue
            self.recorded.add(task.index)
            self.record(self.runner._run_isolated(task))
        if (self.pending or self.retries) \
                and self.runner._ensure_pool() is None:
            self._drain_serial()

    def _drain_serial(self) -> None:
        """Final fallback: no pool can be built — finish in-parent."""
        leftovers = list(self.pending)
        self.pending.clear()
        while self.retries:
            _, _, task, attempt = heapq.heappop(self.retries)
            leftovers.append((task, attempt))
        for task, _ in sorted(leftovers, key=lambda item: item[0].index):
            if self.runner._drain_requested:
                return
            if task.index in self.recorded:
                continue
            self.recorded.add(task.index)
            self.record(self.runner._run_serial(task))


class SweepRunner:
    """Executes sweep tasks with caching, parallelism, and telemetry."""

    def __init__(
        self,
        *,
        workers: int = 1,
        cache: ResultCache | None = None,
        telemetry: RunTelemetry | None = None,
        task_timeout_s: float | None = None,
        retries: int = 1,
        backoff_base_s: float = 0.0,
        backoff_factor: float = 2.0,
        backoff_jitter: float = 0.5,
        poison_after: int = 2,
        checkpoint: SweepCheckpoint | None = None,
        batch_target_s: float = 0.25,
        max_batch: int = 64,
        warm_cache_size: int | None = None,
        mp_start: str | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if backoff_base_s < 0 or backoff_factor < 1:
            raise ConfigurationError(
                "backoff base must be >= 0 and factor >= 1")
        if not 0 <= backoff_jitter <= 1:
            raise ConfigurationError("backoff jitter must be in [0, 1]")
        if poison_after < 1:
            raise ConfigurationError("poison_after must be >= 1")
        if batch_target_s < 0:
            raise ConfigurationError("batch_target_s must be >= 0")
        if max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        self.workers = workers
        self.cache = cache
        self.telemetry = telemetry or RunTelemetry()
        self.task_timeout_s = task_timeout_s
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_factor = backoff_factor
        self.backoff_jitter = backoff_jitter
        self.poison_after = poison_after
        self.checkpoint = checkpoint
        self.batch_target_s = batch_target_s
        self.max_batch = max_batch
        self.warm_cache_size = warm_cache_size
        self.mp_start = mp_start
        #: Result of the most recent :meth:`run` (telemetry access for
        #: callers that only see the experiment's return value).
        self.last_run: SweepRunResult | None = None
        #: The adaptive sizer persists across runs, so a later sweep
        #: phase starts from the durations the previous phase observed.
        self._sizer = DispatchSizer(batch_target_s, max_batch)
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None
        self._pool_finalizer: weakref.finalize | None = None
        self._drain_requested = False

    # -- graceful drain ----------------------------------------------------
    @property
    def drain_requested(self) -> bool:
        """Whether :meth:`request_drain` has been called (and not cleared)."""
        return self._drain_requested

    def request_drain(self) -> None:
        """Ask the current (or next) :meth:`run` to stop gracefully.

        Safe to call from a signal handler: it only sets a flag.  The
        runner drops queued work, lets in-flight batches finish so their
        outcomes are recorded and checkpointed, then raises
        :class:`SweepDrained` with the partial result.  The flag is
        sticky across :meth:`run` calls — multi-phase drivers (campaign
        per-scheme sweeps, soak rounds) stop at the next phase boundary
        too — until :meth:`clear_drain`.
        """
        self._drain_requested = True

    def clear_drain(self) -> None:
        """Re-arm the runner after a drain (mostly for tests)."""
        self._drain_requested = False

    # -- pool lifecycle ----------------------------------------------------
    def _ensure_pool(self):
        """The persistent dispatch pool, created on first use.

        Reused across :meth:`run` calls until :meth:`close` (or a
        worker crash forces a rebuild).  Returns ``None`` — after
        recording the fallback — when no pool can be created.
        """
        if self._pool is not None:
            return self._pool
        try:
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=exec_mp_context(self.mp_start),
                initializer=_worker_init,
                initargs=(self.warm_cache_size,),
            )
        except (OSError, ValueError, ImportError) as error:
            self.telemetry.record_fallback(error)
            return None
        self._pool = pool
        self._pool_finalizer = weakref.finalize(self, _shutdown_pool,
                                                pool)
        return pool

    def _reset_pool(self) -> None:
        """Drop the current pool (crashed or being closed)."""
        if self._pool is None:
            return
        if self._pool_finalizer is not None:
            self._pool_finalizer.detach()
            self._pool_finalizer = None
        _shutdown_pool(self._pool)
        self._pool = None

    def close(self, *, wait: bool = False) -> None:
        """Shut the persistent worker pool down.

        ``wait=True`` blocks until the workers exit; the default lets
        them finish their current batch and exit on their own.
        """
        if self._pool is None:
            return
        if self._pool_finalizer is not None:
            self._pool_finalizer.detach()
            self._pool_finalizer = None
        pool, self._pool = self._pool, None
        try:
            pool.shutdown(wait=wait, cancel_futures=True)
        except Exception:  # pragma: no cover - teardown races
            pass

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution ---------------------------------------------------------
    def run(self, tasks: typing.Sequence[SweepTask]) -> SweepRunResult:
        """Run every task and return outcomes in task order."""
        with obs.trace_span("sweep.run", tasks=len(tasks),
                            workers=self.workers):
            return self._run(tasks)

    def _run(self, tasks: typing.Sequence[SweepTask]) -> SweepRunResult:
        self.telemetry.start(workers=self.workers, num_tasks=len(tasks))
        outcomes: dict[int, TaskOutcome] = {}

        resumed_records: dict[int, dict] = {}
        if self.checkpoint is not None:
            resumed_records = self.checkpoint.load(tasks, _code_version())

        misses: list[SweepTask] = []
        for task in tasks:
            record = resumed_records.get(task.index)
            if record is not None:
                outcome = SweepCheckpoint.outcome_from_record(task, record)
                outcomes[task.index] = outcome
                self.telemetry.record_task(outcome)
                continue
            hit, value = self._cache_get(task)
            if hit:
                outcome = TaskOutcome(
                    task=task, value=value, wall_time_s=0.0,
                    events_processed=0, cached=True, attempts=0,
                    worker_pid=os.getpid(),
                )
                outcomes[task.index] = outcome
                self.telemetry.record_task(outcome)
                if self.checkpoint is not None:
                    self.checkpoint.record(outcome)
            else:
                misses.append(task)

        # Executed outcomes are recorded the moment they arrive — in
        # completion order, not batch order — so a crash mid-sweep
        # leaves the checkpoint and cache holding every task finished
        # so far, even when its batch-mates were still running.
        def record(outcome: TaskOutcome) -> None:
            outcomes[outcome.task.index] = outcome
            self.telemetry.record_task(outcome)
            self._cache_put(outcome)
            if self.checkpoint is not None:
                self.checkpoint.record(outcome)

        try:
            if misses:
                if self.workers > 1:
                    # Crash-prone tasks must never execute in the parent
                    # process, so any multi-worker run uses the pool even
                    # for a single miss.
                    self._run_pool(misses, record)
                else:
                    for task in misses:
                        if self._drain_requested:
                            break
                        record(self._run_serial(task))
        finally:
            # Flush even when a task ultimately fails: everything that
            # completed before the failure stays resumable.
            if self.checkpoint is not None:
                self.checkpoint.flush()

        if any(task.index not in outcomes for task in tasks):
            # Only a requested drain leaves gaps (every other early exit
            # raises); surface the partial result as an exception so no
            # caller mistakes it for a full grid.
            ordered = [outcomes[task.index] for task in tasks
                       if task.index in outcomes]
            summary = self.telemetry.finish()
            summary["drained"] = True
            result = SweepRunResult(outcomes=ordered, summary=summary)
            self.last_run = result
            raise SweepDrained(result)

        ordered = [outcomes[task.index] for task in tasks]
        result = SweepRunResult(outcomes=ordered,
                                summary=self.telemetry.finish())
        self.last_run = result
        return result

    def run_values(self, tasks: typing.Sequence[SweepTask]) -> list:
        """Convenience wrapper: run and return just the values."""
        return self.run(tasks).values

    # -- internals ---------------------------------------------------------
    @staticmethod
    def _merge_worker_obs(raw: dict) -> None:
        """Adopt a genuine worker's metric deltas and span records.

        Serial (in-parent) execution already accumulated into the live
        registry, so merging again would double-count — the pid check
        tells the two apart."""
        if raw.get("worker_pid") == os.getpid():
            return
        if raw.get("obs"):
            obs.REGISTRY.merge(raw["obs"])
        if raw.get("obs_spans"):
            obs.TRACER.add_records(raw["obs_spans"])

    def _cache_get(self, task: SweepTask) -> tuple[bool, typing.Any]:
        if self.cache is None:
            return False, None
        return self.cache.get_task(task)

    def _cache_put(self, outcome: TaskOutcome) -> None:
        if (self.cache is not None and not outcome.cached
                and not outcome.resumed and outcome.status == "done"):
            self.cache.put_task(outcome.task, outcome.value, meta={
                "wall_time_s": outcome.wall_time_s,
                "events_processed": outcome.events_processed,
            })

    def _backoff_delay_s(self, task: SweepTask, attempt: int) -> float:
        """Backoff before retry ``attempt + 1``: exponential, with
        multiplicative jitter drawn deterministically from the task seed
        and attempt number (reproducible, but de-synchronised across
        tasks so retry storms don't stampede a shared resource)."""
        if self.backoff_base_s <= 0.0:
            return 0.0
        delay = self.backoff_base_s * self.backoff_factor ** max(
            0, attempt - 1)
        if self.backoff_jitter > 0.0:
            lo, hi = split64(task.seed)
            draw = uniform01(mix32(_BACKOFF_SALT, lo, hi, attempt))
            delay *= 1.0 - self.backoff_jitter + 2.0 * self.backoff_jitter * draw
        return delay

    def _run_serial(self, task: SweepTask, *, attempt_offset: int = 0,
                    max_attempts: int | None = None) -> TaskOutcome:
        payload = dataclasses.asdict(task)
        last_error: BaseException | None = None
        if max_attempts is None:
            max_attempts = self.retries + 1
        for attempt in range(1, max_attempts + 1):
            try:
                raw = execute_task(payload)
            except Exception as error:  # noqa: BLE001 — retried, re-raised
                last_error = error
                delay = 0.0
                if attempt < max_attempts:
                    delay = self._backoff_delay_s(
                        task, attempt_offset + attempt)
                self.telemetry.record_retry(task, error, backoff_s=delay)
                if delay > 0.0:
                    time.sleep(delay)
                continue
            self.telemetry.record_warm(raw.get("warm"))
            return TaskOutcome(
                task=task, value=raw["value"],
                wall_time_s=raw["wall_time_s"],
                events_processed=raw["events_processed"], cached=False,
                attempts=attempt_offset + attempt,
                worker_pid=raw["worker_pid"],
            )
        raise ExecutionError(
            f"task {task.key} failed after "
            f"{attempt_offset + max_attempts} attempt(s): {last_error}"
        ) from last_error

    def _run_pool(
        self,
        tasks: list[SweepTask],
        record: typing.Callable[[TaskOutcome], None],
    ) -> None:
        """Dispatch ``tasks`` over the warm pool in adaptive batches,
        recording each outcome as its batch completes."""
        if self._ensure_pool() is None:
            for task in tasks:
                record(self._run_serial(task))
            return
        _Dispatcher(self, record).run(tasks)

    def _run_isolated(self, task: SweepTask) -> TaskOutcome:
        """Re-run a crash suspect alone in fresh single-worker pools.

        In isolation a dead worker is definitely this task's doing;
        after ``poison_after`` such deaths the task is quarantined as
        *poisoned* rather than retried forever.  Tasks that merely
        shared a pool (or a batch) with the real crasher succeed here
        on the first attempt.
        """
        payload = dataclasses.asdict(task)
        crashes = 0
        attempt = 1  # the shared-pool attempt that sent us here
        while crashes < self.poison_after:
            attempt += 1
            try:
                pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=1,
                    mp_context=exec_mp_context(self.mp_start),
                    initializer=_worker_init,
                    initargs=(self.warm_cache_size,),
                )
            except (OSError, ValueError, ImportError) as error:
                # No isolation available; running a crash suspect in
                # the parent would risk the whole sweep — quarantine.
                self.telemetry.record_fallback(error)
                break
            with pool:
                future = pool.submit(execute_task, payload)
                try:
                    raw = future.result(timeout=self.task_timeout_s)
                except BrokenProcessPool as error:
                    crashes += 1
                    self.telemetry.record_crash(task, error)
                    if crashes >= self.poison_after:
                        break
                    delay = self._backoff_delay_s(task, attempt)
                    self.telemetry.record_retry(task, error,
                                                backoff_s=delay)
                    if delay > 0.0:
                        time.sleep(delay)
                    continue
                except Exception as error:  # noqa: BLE001 — retry policy
                    # Ordinary failure once isolated: hand the task to
                    # the normal in-parent retry loop (it did not kill
                    # this worker, so the parent is safe).
                    delay = (self._backoff_delay_s(task, attempt)
                             if self.retries >= 1 else 0.0)
                    self.telemetry.record_retry(task, error,
                                                backoff_s=delay)
                    if self.retries < 1:
                        raise ExecutionError(
                            f"task {task.key} failed: {error}"
                        ) from error
                    if delay > 0.0:
                        time.sleep(delay)
                    return self._run_serial(
                        task, attempt_offset=attempt,
                        max_attempts=self.retries)
                self._merge_worker_obs(raw)
                self.telemetry.record_warm(raw.get("warm"))
                return TaskOutcome(
                    task=task, value=raw["value"],
                    wall_time_s=raw["wall_time_s"],
                    events_processed=raw["events_processed"],
                    cached=False, attempts=attempt,
                    worker_pid=raw["worker_pid"],
                )
        return TaskOutcome(
            task=task, value=None, wall_time_s=0.0,
            events_processed=0, cached=False, attempts=attempt,
            worker_pid=os.getpid(), status="poisoned",
        )
