"""Parallel sweep runner.

A sweep is a list of independent :class:`SweepTask` grid points.  Each
task names a module-level *task function* by its dotted path (so it can
be resolved inside a worker process regardless of the multiprocessing
start method), carries a JSON-able parameter mapping, and gets a
deterministic seed derived from the sweep's root seed via SHA-256 — no
global RNG state is consulted anywhere, which is what makes a parallel
run byte-identical to a serial one.

Execution semantics:

* ``workers <= 1`` (the default) runs every task in-process, in order.
* ``workers > 1`` fans the cache misses out across a
  ``concurrent.futures.ProcessPoolExecutor``; if the pool cannot be
  created (restricted platforms) the runner silently falls back to
  serial execution.
* Each task is given ``task_timeout_s`` (``None`` = unlimited) and is
  retried once, serially in the parent, before the run fails with
  :class:`~repro.errors.ExecutionError`.

Results come back in task order regardless of completion order.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import importlib
import itertools
import json
import os
import time
import typing

from repro.errors import ConfigurationError, ExecutionError
from repro.exec.cache import ResultCache
from repro.exec.telemetry import RunTelemetry

#: Task functions take the params mapping and return the result value —
#: or a :class:`TaskPayload` when they also want to report work metrics.
TaskFunction = typing.Callable[[dict], typing.Any]


def derive_seed(root_seed: int, *parts: typing.Any) -> int:
    """Derive a deterministic 63-bit seed from ``root_seed`` and a key.

    Uses SHA-256 over a canonical JSON encoding, so the result is stable
    across processes, platforms, and Python versions (unlike ``hash()``,
    which is salted per process).
    """
    payload = json.dumps([root_seed, *parts], sort_keys=True,
                         separators=(",", ":"), default=str)
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclasses.dataclass(frozen=True)
class SweepTask:
    """One independent grid point of a sweep.

    Attributes:
        experiment: Dotted path ``package.module:function`` of the task
            function; also the cache-key namespace.
        params: JSON-able keyword mapping handed to the task function.
        index: Position in the sweep (results are returned in this
            order).
        seed: Deterministic per-task seed (see :func:`derive_seed`).
        key: Stable human-readable identifier for logs and telemetry.
    """

    experiment: str
    params: dict
    index: int
    seed: int
    key: str

    def resolve(self) -> TaskFunction:
        """Import and return this task's function."""
        module_name, _, func_name = self.experiment.partition(":")
        if not func_name:
            raise ConfigurationError(
                f"task experiment must look like 'module:function', "
                f"got {self.experiment!r}"
            )
        module = importlib.import_module(module_name)
        try:
            return getattr(module, func_name)
        except AttributeError as error:
            raise ConfigurationError(
                f"no task function {func_name!r} in {module_name!r}"
            ) from error


@dataclasses.dataclass
class TaskPayload:
    """Optional rich return value of a task function.

    Lets a task report how much simulated work it did (e.g.
    ``Simulator.events_processed`` or pipeline cycles) alongside its
    result value.
    """

    value: typing.Any
    events_processed: int = 0


@dataclasses.dataclass
class TaskOutcome:
    """What happened to one task during a run."""

    task: SweepTask
    value: typing.Any
    wall_time_s: float
    events_processed: int
    cached: bool
    attempts: int
    worker_pid: int


@dataclasses.dataclass
class SweepRunResult:
    """Ordered outcomes plus the machine-readable run summary."""

    outcomes: list[TaskOutcome]
    summary: dict

    @property
    def values(self) -> list:
        return [outcome.value for outcome in self.outcomes]


def task_key(experiment: str, point: typing.Mapping) -> str:
    """Render a stable human-readable task key for a grid point."""
    name = experiment.rpartition(":")[2].strip("_")
    inner = ",".join(f"{k}={point[k]}" for k in sorted(point))
    return f"{name}[{inner}]"


def expand_grid(
    experiment: str,
    axes: typing.Mapping[str, typing.Sequence],
    base: typing.Mapping | None = None,
    *,
    root_seed: int = 0,
) -> list[SweepTask]:
    """Expand a cartesian grid of axis values into independent tasks.

    ``axes`` iterates in insertion order (first axis outermost), so the
    task order matches the equivalent nested ``for`` loops.  Each task's
    seed derives from ``root_seed`` and the axis values alone — adding
    or removing other grid points never changes it.
    """
    if not axes:
        raise ConfigurationError("need at least one sweep axis")
    names = list(axes)
    tasks: list[SweepTask] = []
    for index, values in enumerate(itertools.product(
            *(axes[name] for name in names))):
        point = dict(zip(names, values))
        params = {**(dict(base) if base else {}), **point}
        tasks.append(SweepTask(
            experiment=experiment,
            params=params,
            index=index,
            seed=derive_seed(root_seed, experiment, sorted(point.items())),
            key=task_key(experiment, point),
        ))
    return tasks


def execute_task(payload: dict) -> dict:
    """Run one task (worker entry point; must stay module-level).

    Takes and returns plain dicts plus the (picklable) result value so
    the process-pool boundary stays simple.
    """
    task = SweepTask(**payload)
    started = time.perf_counter()
    raw = task.resolve()(dict(task.params))
    wall = time.perf_counter() - started
    if isinstance(raw, TaskPayload):
        value, events = raw.value, raw.events_processed
    else:
        value, events = raw, 0
    return {
        "value": value,
        "wall_time_s": wall,
        "events_processed": events,
        "worker_pid": os.getpid(),
    }


class SweepRunner:
    """Executes sweep tasks with caching, parallelism, and telemetry."""

    def __init__(
        self,
        *,
        workers: int = 1,
        cache: ResultCache | None = None,
        telemetry: RunTelemetry | None = None,
        task_timeout_s: float | None = None,
        retries: int = 1,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if retries < 0:
            raise ConfigurationError("retries must be >= 0")
        self.workers = workers
        self.cache = cache
        self.telemetry = telemetry or RunTelemetry()
        self.task_timeout_s = task_timeout_s
        self.retries = retries
        #: Result of the most recent :meth:`run` (telemetry access for
        #: callers that only see the experiment's return value).
        self.last_run: SweepRunResult | None = None

    # -- execution ---------------------------------------------------------
    def run(self, tasks: typing.Sequence[SweepTask]) -> SweepRunResult:
        """Run every task and return outcomes in task order."""
        self.telemetry.start(workers=self.workers, num_tasks=len(tasks))
        outcomes: dict[int, TaskOutcome] = {}

        misses: list[SweepTask] = []
        for task in tasks:
            hit, value = self._cache_get(task)
            if hit:
                outcome = TaskOutcome(
                    task=task, value=value, wall_time_s=0.0,
                    events_processed=0, cached=True, attempts=0,
                    worker_pid=os.getpid(),
                )
                outcomes[task.index] = outcome
                self.telemetry.record_task(outcome)
            else:
                misses.append(task)

        if misses:
            if self.workers > 1 and len(misses) > 1:
                executed = self._run_pool(misses)
            else:
                executed = [self._run_serial(task) for task in misses]
            for outcome in executed:
                outcomes[outcome.task.index] = outcome
                self.telemetry.record_task(outcome)
                self._cache_put(outcome)

        ordered = [outcomes[task.index] for task in tasks]
        result = SweepRunResult(outcomes=ordered,
                                summary=self.telemetry.finish())
        self.last_run = result
        return result

    def run_values(self, tasks: typing.Sequence[SweepTask]) -> list:
        """Convenience wrapper: run and return just the values."""
        return self.run(tasks).values

    # -- internals ---------------------------------------------------------
    def _cache_get(self, task: SweepTask) -> tuple[bool, typing.Any]:
        if self.cache is None:
            return False, None
        return self.cache.get_task(task)

    def _cache_put(self, outcome: TaskOutcome) -> None:
        if self.cache is not None and not outcome.cached:
            self.cache.put_task(outcome.task, outcome.value, meta={
                "wall_time_s": outcome.wall_time_s,
                "events_processed": outcome.events_processed,
            })

    def _run_serial(self, task: SweepTask, *, attempt_offset: int = 0,
                    max_attempts: int | None = None) -> TaskOutcome:
        payload = dataclasses.asdict(task)
        last_error: BaseException | None = None
        if max_attempts is None:
            max_attempts = self.retries + 1
        for attempt in range(1, max_attempts + 1):
            try:
                raw = execute_task(payload)
            except Exception as error:  # noqa: BLE001 — retried, re-raised
                last_error = error
                self.telemetry.record_retry(task, error)
                continue
            return TaskOutcome(
                task=task, value=raw["value"],
                wall_time_s=raw["wall_time_s"],
                events_processed=raw["events_processed"], cached=False,
                attempts=attempt_offset + attempt,
                worker_pid=raw["worker_pid"],
            )
        raise ExecutionError(
            f"task {task.key} failed after "
            f"{attempt_offset + max_attempts} attempt(s): {last_error}"
        ) from last_error

    def _run_pool(self, tasks: list[SweepTask]) -> list[TaskOutcome]:
        try:
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.workers, len(tasks)))
        except (OSError, ValueError, ImportError) as error:
            self.telemetry.record_fallback(error)
            return [self._run_serial(task) for task in tasks]

        outcomes: list[TaskOutcome] = []
        with pool:
            futures = {
                task.index: pool.submit(execute_task,
                                        dataclasses.asdict(task))
                for task in tasks
            }
            for task in tasks:
                future = futures[task.index]
                try:
                    raw = future.result(timeout=self.task_timeout_s)
                except Exception as error:  # noqa: BLE001 — retry serially
                    # One failure (crash, timeout, exception) falls back
                    # to an in-parent serial retry: guaranteed progress,
                    # no pool poisoning.
                    self.telemetry.record_retry(task, error)
                    if self.retries < 1:
                        raise ExecutionError(
                            f"task {task.key} failed: {error}"
                        ) from error
                    outcomes.append(self._run_serial(
                        task, attempt_offset=1,
                        max_attempts=self.retries))
                    continue
                outcomes.append(TaskOutcome(
                    task=task, value=raw["value"],
                    wall_time_s=raw["wall_time_s"],
                    events_processed=raw["events_processed"],
                    cached=False, attempts=1,
                    worker_pid=raw["worker_pid"],
                ))
        return outcomes
