"""Parallel sweep runner.

A sweep is a list of independent :class:`SweepTask` grid points.  Each
task names a module-level *task function* by its dotted path (so it can
be resolved inside a worker process regardless of the multiprocessing
start method), carries a JSON-able parameter mapping, and gets a
deterministic seed derived from the sweep's root seed via SHA-256 — no
global RNG state is consulted anywhere, which is what makes a parallel
run byte-identical to a serial one.

Execution semantics:

* ``workers <= 1`` (the default) runs every task in-process, in order.
* ``workers > 1`` fans the cache misses out across a
  ``concurrent.futures.ProcessPoolExecutor``; if the pool cannot be
  created (restricted platforms) the runner silently falls back to
  serial execution.
* Each task is given ``task_timeout_s`` (``None`` = unlimited) and up
  to ``retries`` additional attempts — separated by exponential backoff
  with *seeded* jitter (deterministic per task and attempt, so retry
  schedules are reproducible) — before the run fails with
  :class:`~repro.errors.ExecutionError`.
* A worker *crash* (the pool reports ``BrokenProcessPool``) is handled
  separately from an ordinary exception: every task in flight is a
  suspect, and each suspect is re-run alone in a fresh single-worker
  pool so the crash is attributed precisely.  A task that kills its
  isolated worker ``poison_after`` times is quarantined as *poisoned*
  (outcome value ``None``, status ``"poisoned"``) instead of being
  re-fanned-out forever or aborting the sweep.
* With a :class:`~repro.exec.checkpoint.SweepCheckpoint` attached, every
  completed outcome is periodically persisted; a killed run re-launched
  with ``resume`` replays completed tasks from the checkpoint and only
  executes what is missing.

Results come back in task order regardless of completion order.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import importlib
import itertools
import json
import os
import time
import typing

from concurrent.futures.process import BrokenProcessPool

from repro import obs
from repro.errors import ConfigurationError, ExecutionError
from repro.exec.cache import ResultCache, _code_version
from repro.exec.checkpoint import SweepCheckpoint
from repro.exec.telemetry import RunTelemetry
from repro.kernels.rng import key_id, mix32, split64, uniform01

#: Domain-separation salt for the backoff jitter stream.
_BACKOFF_SALT = key_id("exec-backoff")

#: Task functions take the params mapping and return the result value —
#: or a :class:`TaskPayload` when they also want to report work metrics.
TaskFunction = typing.Callable[[dict], typing.Any]


def derive_seed(root_seed: int, *parts: typing.Any) -> int:
    """Derive a deterministic 63-bit seed from ``root_seed`` and a key.

    Uses SHA-256 over a canonical JSON encoding, so the result is stable
    across processes, platforms, and Python versions (unlike ``hash()``,
    which is salted per process).
    """
    payload = json.dumps([root_seed, *parts], sort_keys=True,
                         separators=(",", ":"), default=str)
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclasses.dataclass(frozen=True)
class SweepTask:
    """One independent grid point of a sweep.

    Attributes:
        experiment: Dotted path ``package.module:function`` of the task
            function; also the cache-key namespace.
        params: JSON-able keyword mapping handed to the task function.
        index: Position in the sweep (results are returned in this
            order).
        seed: Deterministic per-task seed (see :func:`derive_seed`).
        key: Stable human-readable identifier for logs and telemetry.
    """

    experiment: str
    params: dict
    index: int
    seed: int
    key: str

    def resolve(self) -> TaskFunction:
        """Import and return this task's function."""
        module_name, _, func_name = self.experiment.partition(":")
        if not func_name:
            raise ConfigurationError(
                f"task experiment must look like 'module:function', "
                f"got {self.experiment!r}"
            )
        module = importlib.import_module(module_name)
        try:
            return getattr(module, func_name)
        except AttributeError as error:
            raise ConfigurationError(
                f"no task function {func_name!r} in {module_name!r}"
            ) from error


@dataclasses.dataclass
class TaskPayload:
    """Optional rich return value of a task function.

    Lets a task report how much simulated work it did (e.g.
    ``Simulator.events_processed`` or pipeline cycles) alongside its
    result value.
    """

    value: typing.Any
    events_processed: int = 0


@dataclasses.dataclass
class TaskOutcome:
    """What happened to one task during a run.

    ``status`` is ``"done"`` for a computed (or cached/resumed) result
    and ``"poisoned"`` for a task quarantined after repeatedly killing
    its worker — poisoned outcomes carry ``value None`` and are never
    written to the cache.  ``resumed`` marks outcomes replayed from a
    sweep checkpoint rather than executed this run.
    """

    task: SweepTask
    value: typing.Any
    wall_time_s: float
    events_processed: int
    cached: bool
    attempts: int
    worker_pid: int
    status: str = "done"
    resumed: bool = False


@dataclasses.dataclass
class SweepRunResult:
    """Ordered outcomes plus the machine-readable run summary."""

    outcomes: list[TaskOutcome]
    summary: dict

    @property
    def values(self) -> list:
        return [outcome.value for outcome in self.outcomes]


def task_key(experiment: str, point: typing.Mapping) -> str:
    """Render a stable human-readable task key for a grid point."""
    name = experiment.rpartition(":")[2].strip("_")
    inner = ",".join(f"{k}={point[k]}" for k in sorted(point))
    return f"{name}[{inner}]"


def expand_grid(
    experiment: str,
    axes: typing.Mapping[str, typing.Sequence],
    base: typing.Mapping | None = None,
    *,
    root_seed: int = 0,
) -> list[SweepTask]:
    """Expand a cartesian grid of axis values into independent tasks.

    ``axes`` iterates in insertion order (first axis outermost), so the
    task order matches the equivalent nested ``for`` loops.  Each task's
    seed derives from ``root_seed`` and the axis values alone — adding
    or removing other grid points never changes it.
    """
    if not axes:
        raise ConfigurationError("need at least one sweep axis")
    names = list(axes)
    tasks: list[SweepTask] = []
    for index, values in enumerate(itertools.product(
            *(axes[name] for name in names))):
        point = dict(zip(names, values))
        params = {**(dict(base) if base else {}), **point}
        tasks.append(SweepTask(
            experiment=experiment,
            params=params,
            index=index,
            seed=derive_seed(root_seed, experiment, sorted(point.items())),
            key=task_key(experiment, point),
        ))
    return tasks


def execute_task(payload: dict) -> dict:
    """Run one task (worker entry point; must stay module-level).

    Takes and returns plain dicts plus the (picklable) result value so
    the process-pool boundary stays simple.
    """
    task = SweepTask(**payload)
    # Workers inherit REPRO_OBS through the environment, so their
    # registries enable themselves at import; ship the metric deltas and
    # spans this task produced back across the pool boundary.  The
    # parent merges them only for genuine workers (pid check) — in
    # serial execution they already landed in the live registry.
    observing = obs.REGISTRY.enabled
    if observing:
        metrics_before = obs.REGISTRY.snapshot()
        spans_before = len(obs.TRACER.spans)
    started = time.perf_counter()
    raw = task.resolve()(dict(task.params))
    wall = time.perf_counter() - started
    if isinstance(raw, TaskPayload):
        value, events = raw.value, raw.events_processed
    else:
        value, events = raw, 0
    result = {
        "value": value,
        "wall_time_s": wall,
        "events_processed": events,
        "worker_pid": os.getpid(),
    }
    if observing:
        result["obs"] = obs.snapshot_delta(metrics_before,
                                           obs.REGISTRY.snapshot())
        result["obs_spans"] = [span.to_record() for span
                               in obs.TRACER.spans[spans_before:]]
    return result


class SweepRunner:
    """Executes sweep tasks with caching, parallelism, and telemetry."""

    def __init__(
        self,
        *,
        workers: int = 1,
        cache: ResultCache | None = None,
        telemetry: RunTelemetry | None = None,
        task_timeout_s: float | None = None,
        retries: int = 1,
        backoff_base_s: float = 0.0,
        backoff_factor: float = 2.0,
        backoff_jitter: float = 0.5,
        poison_after: int = 2,
        checkpoint: SweepCheckpoint | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if backoff_base_s < 0 or backoff_factor < 1:
            raise ConfigurationError(
                "backoff base must be >= 0 and factor >= 1")
        if not 0 <= backoff_jitter <= 1:
            raise ConfigurationError("backoff jitter must be in [0, 1]")
        if poison_after < 1:
            raise ConfigurationError("poison_after must be >= 1")
        self.workers = workers
        self.cache = cache
        self.telemetry = telemetry or RunTelemetry()
        self.task_timeout_s = task_timeout_s
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_factor = backoff_factor
        self.backoff_jitter = backoff_jitter
        self.poison_after = poison_after
        self.checkpoint = checkpoint
        #: Result of the most recent :meth:`run` (telemetry access for
        #: callers that only see the experiment's return value).
        self.last_run: SweepRunResult | None = None

    # -- execution ---------------------------------------------------------
    def run(self, tasks: typing.Sequence[SweepTask]) -> SweepRunResult:
        """Run every task and return outcomes in task order."""
        with obs.trace_span("sweep.run", tasks=len(tasks),
                            workers=self.workers):
            return self._run(tasks)

    def _run(self, tasks: typing.Sequence[SweepTask]) -> SweepRunResult:
        self.telemetry.start(workers=self.workers, num_tasks=len(tasks))
        outcomes: dict[int, TaskOutcome] = {}

        resumed_records: dict[int, dict] = {}
        if self.checkpoint is not None:
            resumed_records = self.checkpoint.load(tasks, _code_version())

        misses: list[SweepTask] = []
        for task in tasks:
            record = resumed_records.get(task.index)
            if record is not None:
                outcome = SweepCheckpoint.outcome_from_record(task, record)
                outcomes[task.index] = outcome
                self.telemetry.record_task(outcome)
                continue
            hit, value = self._cache_get(task)
            if hit:
                outcome = TaskOutcome(
                    task=task, value=value, wall_time_s=0.0,
                    events_processed=0, cached=True, attempts=0,
                    worker_pid=os.getpid(),
                )
                outcomes[task.index] = outcome
                self.telemetry.record_task(outcome)
                if self.checkpoint is not None:
                    self.checkpoint.record(outcome)
            else:
                misses.append(task)

        # Executed outcomes are recorded the moment they arrive — not
        # after the whole batch — so a crash mid-sweep leaves the
        # checkpoint and cache holding every task finished so far.
        def record(outcome: TaskOutcome) -> None:
            outcomes[outcome.task.index] = outcome
            self.telemetry.record_task(outcome)
            self._cache_put(outcome)
            if self.checkpoint is not None:
                self.checkpoint.record(outcome)

        if misses:
            if self.workers > 1:
                # Crash-prone tasks must never execute in the parent
                # process, so any multi-worker run uses the pool even
                # for a single miss.
                self._run_pool(misses, record)
            else:
                for task in misses:
                    record(self._run_serial(task))

        if self.checkpoint is not None:
            self.checkpoint.flush()

        ordered = [outcomes[task.index] for task in tasks]
        result = SweepRunResult(outcomes=ordered,
                                summary=self.telemetry.finish())
        self.last_run = result
        return result

    def run_values(self, tasks: typing.Sequence[SweepTask]) -> list:
        """Convenience wrapper: run and return just the values."""
        return self.run(tasks).values

    # -- internals ---------------------------------------------------------
    @staticmethod
    def _merge_worker_obs(raw: dict) -> None:
        """Adopt a genuine worker's metric deltas and span records.

        Serial (in-parent) execution already accumulated into the live
        registry, so merging again would double-count — the pid check
        tells the two apart."""
        if raw.get("worker_pid") == os.getpid():
            return
        if raw.get("obs"):
            obs.REGISTRY.merge(raw["obs"])
        if raw.get("obs_spans"):
            obs.TRACER.add_records(raw["obs_spans"])

    def _cache_get(self, task: SweepTask) -> tuple[bool, typing.Any]:
        if self.cache is None:
            return False, None
        return self.cache.get_task(task)

    def _cache_put(self, outcome: TaskOutcome) -> None:
        if (self.cache is not None and not outcome.cached
                and not outcome.resumed and outcome.status == "done"):
            self.cache.put_task(outcome.task, outcome.value, meta={
                "wall_time_s": outcome.wall_time_s,
                "events_processed": outcome.events_processed,
            })

    def _backoff_delay_s(self, task: SweepTask, attempt: int) -> float:
        """Backoff before retry ``attempt + 1``: exponential, with
        multiplicative jitter drawn deterministically from the task seed
        and attempt number (reproducible, but de-synchronised across
        tasks so retry storms don't stampede a shared resource)."""
        if self.backoff_base_s <= 0.0:
            return 0.0
        delay = self.backoff_base_s * self.backoff_factor ** max(
            0, attempt - 1)
        if self.backoff_jitter > 0.0:
            lo, hi = split64(task.seed)
            draw = uniform01(mix32(_BACKOFF_SALT, lo, hi, attempt))
            delay *= 1.0 - self.backoff_jitter + 2.0 * self.backoff_jitter * draw
        return delay

    def _run_serial(self, task: SweepTask, *, attempt_offset: int = 0,
                    max_attempts: int | None = None) -> TaskOutcome:
        payload = dataclasses.asdict(task)
        last_error: BaseException | None = None
        if max_attempts is None:
            max_attempts = self.retries + 1
        for attempt in range(1, max_attempts + 1):
            try:
                raw = execute_task(payload)
            except Exception as error:  # noqa: BLE001 — retried, re-raised
                last_error = error
                delay = 0.0
                if attempt < max_attempts:
                    delay = self._backoff_delay_s(
                        task, attempt_offset + attempt)
                self.telemetry.record_retry(task, error, backoff_s=delay)
                if delay > 0.0:
                    time.sleep(delay)
                continue
            return TaskOutcome(
                task=task, value=raw["value"],
                wall_time_s=raw["wall_time_s"],
                events_processed=raw["events_processed"], cached=False,
                attempts=attempt_offset + attempt,
                worker_pid=raw["worker_pid"],
            )
        raise ExecutionError(
            f"task {task.key} failed after "
            f"{attempt_offset + max_attempts} attempt(s): {last_error}"
        ) from last_error

    def _run_pool(
        self,
        tasks: list[SweepTask],
        record: typing.Callable[[TaskOutcome], None],
    ) -> None:
        """Run ``tasks`` in a worker pool, recording each outcome as it
        completes (in task order, so a crash leaves a clean prefix)."""
        try:
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.workers, len(tasks)))
        except (OSError, ValueError, ImportError) as error:
            self.telemetry.record_fallback(error)
            for task in tasks:
                record(self._run_serial(task))
            return

        suspects: list[SweepTask] = []
        with pool:
            futures = {
                task.index: pool.submit(execute_task,
                                        dataclasses.asdict(task))
                for task in tasks
            }
            for task in tasks:
                future = futures[task.index]
                try:
                    raw = future.result(timeout=self.task_timeout_s)
                except BrokenProcessPool:
                    # A worker died.  Every task still in flight fails
                    # with this error, but only one of them is guilty —
                    # re-run each alone so the crash is attributed to
                    # the task that actually causes it.
                    suspects.append(task)
                    continue
                except Exception as error:  # noqa: BLE001 — retry serially
                    # An ordinary failure (timeout, exception) falls
                    # back to an in-parent serial retry: guaranteed
                    # progress, no pool poisoning.
                    delay = (self._backoff_delay_s(task, 1)
                             if self.retries >= 1 else 0.0)
                    self.telemetry.record_retry(task, error,
                                                backoff_s=delay)
                    if self.retries < 1:
                        raise ExecutionError(
                            f"task {task.key} failed: {error}"
                        ) from error
                    if delay > 0.0:
                        time.sleep(delay)
                    record(self._run_serial(
                        task, attempt_offset=1,
                        max_attempts=self.retries))
                    continue
                self._merge_worker_obs(raw)
                record(TaskOutcome(
                    task=task, value=raw["value"],
                    wall_time_s=raw["wall_time_s"],
                    events_processed=raw["events_processed"],
                    cached=False, attempts=1,
                    worker_pid=raw["worker_pid"],
                ))
        for task in suspects:
            record(self._run_isolated(task))

    def _run_isolated(self, task: SweepTask) -> TaskOutcome:
        """Re-run a crash suspect alone in fresh single-worker pools.

        In isolation a dead worker is definitely this task's doing;
        after ``poison_after`` such deaths the task is quarantined as
        *poisoned* rather than retried forever.  Tasks that merely
        shared a pool with the real crasher succeed here on the first
        attempt.
        """
        payload = dataclasses.asdict(task)
        crashes = 0
        attempt = 1  # the shared-pool attempt that sent us here
        while crashes < self.poison_after:
            attempt += 1
            try:
                pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=1)
            except (OSError, ValueError, ImportError) as error:
                # No isolation available; running a crash suspect in
                # the parent would risk the whole sweep — quarantine.
                self.telemetry.record_fallback(error)
                break
            with pool:
                future = pool.submit(execute_task, payload)
                try:
                    raw = future.result(timeout=self.task_timeout_s)
                except BrokenProcessPool as error:
                    crashes += 1
                    self.telemetry.record_crash(task, error)
                    if crashes >= self.poison_after:
                        break
                    delay = self._backoff_delay_s(task, attempt)
                    self.telemetry.record_retry(task, error,
                                                backoff_s=delay)
                    if delay > 0.0:
                        time.sleep(delay)
                    continue
                except Exception as error:  # noqa: BLE001 — retry policy
                    # Ordinary failure once isolated: hand the task to
                    # the normal in-parent retry loop (it did not kill
                    # this worker, so the parent is safe).
                    delay = (self._backoff_delay_s(task, attempt)
                             if self.retries >= 1 else 0.0)
                    self.telemetry.record_retry(task, error,
                                                backoff_s=delay)
                    if self.retries < 1:
                        raise ExecutionError(
                            f"task {task.key} failed: {error}"
                        ) from error
                    if delay > 0.0:
                        time.sleep(delay)
                    return self._run_serial(
                        task, attempt_offset=attempt,
                        max_attempts=self.retries)
                self._merge_worker_obs(raw)
                return TaskOutcome(
                    task=task, value=raw["value"],
                    wall_time_s=raw["wall_time_s"],
                    events_processed=raw["events_processed"],
                    cached=False, attempts=attempt,
                    worker_pid=raw["worker_pid"],
                )
        return TaskOutcome(
            task=task, value=None, wall_time_s=0.0,
            events_processed=0, cached=False, attempts=attempt,
            worker_pid=os.getpid(), status="poisoned",
        )
