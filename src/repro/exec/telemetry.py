"""Run telemetry: structured logging plus a machine-readable summary.

Every sweep run records, per task: wall time, events processed, cache
hit/miss, attempts, and the worker that ran it.  The aggregate summary
adds run wall time, cache hit rate, and worker utilization (busy task
seconds divided by ``run wall time x workers`` — 1.0 means the pool
never idled).  Records are emitted through the ``repro.exec`` logger
with the raw fields attached under ``extra`` so log processors can
consume them without parsing message strings.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import pathlib
import time
import typing

from repro import obs

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.exec.runner import SweepTask, TaskOutcome

logger = logging.getLogger("repro.exec")

# Shared-registry mirrors of the summary's aggregates: record_* feeds
# both from the same call sites, so ``summary()`` and the obs exporters
# can never drift apart.  (``repro_exec_`` metrics depend on cache and
# checkpoint state, so they sit outside the determinism contract.)
_OBS_TASKS = obs.REGISTRY.counter(
    "repro_exec_tasks_total",
    "Sweep task outcomes by disposition",
    labelnames=("status",))
_OBS_EXECUTED = _OBS_TASKS.labels(status="executed")
_OBS_CACHED = _OBS_TASKS.labels(status="cached")
_OBS_RESUMED = _OBS_TASKS.labels(status="resumed")
_OBS_POISONED = _OBS_TASKS.labels(status="poisoned")
_OBS_RETRIES = obs.REGISTRY.counter(
    "repro_exec_retries_total", "Task retry attempts").labels()
_OBS_CRASHES = obs.REGISTRY.counter(
    "repro_exec_crashes_total", "Definite worker deaths").labels()
_OBS_FALLBACKS = obs.REGISTRY.counter(
    "repro_exec_serial_fallbacks_total",
    "Process-pool failures that fell back to serial execution").labels()
_OBS_EVENTS = obs.REGISTRY.counter(
    "repro_exec_events_processed_total",
    "Simulated-work units reported by executed tasks").labels()
_OBS_WORKERS = obs.REGISTRY.gauge(
    "repro_exec_workers", "Worker-pool size of the most recent sweep",
).labels()
_OBS_TASK_SECONDS = obs.REGISTRY.histogram(
    "repro_exec_task_seconds",
    "Wall time per executed (non-cached, non-resumed) task",
    buckets=(0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
             30.0, 60.0)).labels()
_OBS_BATCHES = obs.REGISTRY.counter(
    "repro_exec_batches_total",
    "Task batches dispatched to pool workers").labels()
_OBS_BATCH_TASKS = obs.REGISTRY.histogram(
    "repro_exec_batch_tasks",
    "Tasks per dispatched batch",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256)).labels()
_OBS_WARM = obs.REGISTRY.counter(
    "repro_exec_warm_cache_total",
    "Warm-cache lookups inside workers, by artefact kind and result",
    labelnames=("kind", "result"))


@dataclasses.dataclass
class TaskRecord:
    """Telemetry for one executed (or cache-served) task."""

    key: str
    index: int
    wall_time_s: float
    events_processed: int
    cached: bool
    attempts: int
    worker_pid: int
    status: str = "done"
    resumed: bool = False


class RunTelemetry:
    """Collects task records for one sweep run and summarises them."""

    def __init__(self) -> None:
        self.records: list[TaskRecord] = []
        self.retries: list[dict] = []
        self.fallbacks: list[str] = []
        self.crashes: list[dict] = []
        self.batch_sizes: list[int] = []
        self.warm: dict[str, dict[str, int]] = {}
        self.workers = 1
        self.num_tasks = 0
        self.kernel_mode: str | None = None
        self._started: float | None = None
        self._wall_time_s = 0.0
        #: Live observers: ``listener(kind, payload)`` called from the
        #: same sites that feed the summary, so a subscriber (the obs
        #: event publisher) sees exactly what the summary will say.
        #: Kinds: ``start`` (dict), ``task`` (:class:`TaskRecord`),
        #: ``batch``/``retry``/``crash``/``fallback`` (dict),
        #: ``finish`` (summary dict).  A listener that raises is
        #: logged and skipped — telemetry fan-out must never abort
        #: the run it narrates.
        self.listeners: list[typing.Callable[[str, typing.Any],
                                             None]] = []

    def _notify(self, kind: str, payload: typing.Any) -> None:
        for listener in list(self.listeners):
            try:
                listener(kind, payload)
            except Exception:  # pragma: no cover - defensive
                logger.warning("telemetry listener failed on %r", kind,
                               exc_info=True)

    # -- lifecycle ---------------------------------------------------------
    def start(self, *, workers: int, num_tasks: int) -> None:
        from repro.kernels import kernel_mode

        self.records = []
        self.retries = []
        self.fallbacks = []
        self.crashes = []
        self.batch_sizes = []
        self.warm = {}
        self.workers = workers
        self.num_tasks = num_tasks
        # Capture once: kernel_mode() reads the environment, which a
        # long-running process may mutate between run and summary.
        self.kernel_mode = kernel_mode()
        _OBS_WORKERS.set(workers)
        self._started = time.perf_counter()
        self._notify("start", {"workers": workers,
                               "num_tasks": num_tasks})
        logger.info(
            "sweep start: %d task(s) on %d worker(s)", num_tasks, workers,
            extra={"repro_sweep": {"tasks": num_tasks,
                                   "workers": workers}},
        )

    def record_task(self, outcome: "TaskOutcome") -> None:
        record = TaskRecord(
            key=outcome.task.key,
            index=outcome.task.index,
            wall_time_s=outcome.wall_time_s,
            events_processed=outcome.events_processed,
            cached=outcome.cached,
            attempts=outcome.attempts,
            worker_pid=outcome.worker_pid,
            status=outcome.status,
            resumed=outcome.resumed,
        )
        self.records.append(record)
        if record.status == "poisoned":
            verb = "poisoned"
            _OBS_POISONED.inc()
        elif record.resumed:
            verb = "resumed from checkpoint"
            _OBS_RESUMED.inc()
        elif record.cached:
            verb = "cache hit"
            _OBS_CACHED.inc()
        else:
            verb = "executed"
            _OBS_EXECUTED.inc()
            _OBS_EVENTS.inc(record.events_processed)
            _OBS_TASK_SECONDS.observe(record.wall_time_s)
        self._notify("task", record)
        logger.info(
            "task %s: %s in %.3fs (%d events, attempt %d, pid %d)",
            record.key, verb,
            record.wall_time_s, record.events_processed,
            record.attempts, record.worker_pid,
            extra={"repro_task": dataclasses.asdict(record)},
        )

    def record_batch(self, *, size: int,
                     warm: dict | None = None) -> None:
        """One batch round-trip completed (``size`` tasks dispatched)."""
        self.batch_sizes.append(size)
        _OBS_BATCHES.inc()
        _OBS_BATCH_TASKS.observe(size)
        self._notify("batch", {"size": size})
        logger.debug(
            "batch of %d task(s) returned", size,
            extra={"repro_batch": {"size": size, "warm": warm or {}}},
        )
        self.record_warm(warm)

    def record_warm(self, delta: dict | None) -> None:
        """Fold a worker's warm-cache ``{kind: [hits, misses]}`` delta."""
        if not delta:
            return
        for kind, (hits, misses) in delta.items():
            entry = self.warm.setdefault(kind, {"hits": 0, "misses": 0})
            entry["hits"] += hits
            entry["misses"] += misses
            if hits:
                _OBS_WARM.labels(kind=kind, result="hit").inc(hits)
            if misses:
                _OBS_WARM.labels(kind=kind, result="miss").inc(misses)

    def record_retry(self, task: "SweepTask", error: BaseException, *,
                     backoff_s: float = 0.0) -> None:
        self.retries.append({"key": task.key, "error": repr(error),
                             "backoff_s": backoff_s})
        _OBS_RETRIES.inc()
        self._notify("retry", self.retries[-1])
        logger.warning(
            "task %s failed (%s); retrying after %.3fs backoff",
            task.key, error, backoff_s,
            extra={"repro_retry": {"key": task.key,
                                   "error": repr(error),
                                   "backoff_s": backoff_s}},
        )

    def record_crash(self, task: "SweepTask",
                     error: BaseException) -> None:
        """One definite worker death attributed to ``task``."""
        self.crashes.append({"key": task.key, "error": repr(error)})
        _OBS_CRASHES.inc()
        self._notify("crash", self.crashes[-1])
        logger.warning(
            "task %s killed its worker (%s)", task.key, error,
            extra={"repro_crash": {"key": task.key,
                                   "error": repr(error)}},
        )

    def record_fallback(self, error: BaseException) -> None:
        self.fallbacks.append(repr(error))
        _OBS_FALLBACKS.inc()
        self._notify("fallback", {"error": repr(error)})
        logger.warning(
            "process pool unavailable (%s); falling back to serial",
            error,
            extra={"repro_fallback": {"error": repr(error)}},
        )

    def finish(self) -> dict:
        """Freeze the run and return the machine-readable summary."""
        if self._started is not None:
            self._wall_time_s = time.perf_counter() - self._started
            self._started = None
        summary = self.summary()
        self._notify("finish", summary)
        logger.info(
            "sweep done: %d task(s) in %.3fs — %d cache hit(s), "
            "%d miss(es), %.0f%% worker utilization",
            summary["tasks"], summary["wall_time_s"],
            summary["cache_hits"], summary["cache_misses"],
            100.0 * summary["worker_utilization"],
            extra={"repro_summary": summary},
        )
        return summary

    # -- aggregation -------------------------------------------------------
    def summary(self) -> dict:
        """Aggregate view of the run (JSON-able)."""
        if self.kernel_mode is None:  # summary before any start()
            from repro.kernels import kernel_mode

            self.kernel_mode = kernel_mode()
        executed = [r for r in self.records
                    if not r.cached and not r.resumed]
        busy = sum(r.wall_time_s for r in executed)
        wall = self._wall_time_s
        if self._started is not None:  # summary of a still-running sweep
            wall = time.perf_counter() - self._started
        utilization = (busy / (wall * self.workers)
                       if wall > 0 and executed else 0.0)
        return {
            "tasks": len(self.records),
            "workers": self.workers,
            "kernel_mode": self.kernel_mode,
            "wall_time_s": wall,
            "cache_hits": sum(1 for r in self.records if r.cached),
            "cache_misses": len(executed),
            "events_processed": sum(r.events_processed
                                    for r in self.records),
            "task_wall_time_s": {
                "total": busy,
                "max": max((r.wall_time_s for r in executed),
                           default=0.0),
                "mean": busy / len(executed) if executed else 0.0,
            },
            "worker_utilization": min(1.0, utilization),
            "batches": len(self.batch_sizes),
            "batch_tasks": {
                "max": max(self.batch_sizes, default=0),
                "mean": (sum(self.batch_sizes) / len(self.batch_sizes)
                         if self.batch_sizes else 0.0),
            },
            "warm_cache": {kind: dict(self.warm[kind])
                           for kind in sorted(self.warm)},
            "retries": list(self.retries),
            "backoff_s_total": sum(r.get("backoff_s", 0.0)
                                   for r in self.retries),
            "serial_fallbacks": list(self.fallbacks),
            "crashes": list(self.crashes),
            "poisoned": [r.key for r in self.records
                         if r.status == "poisoned"],
            "resumed_tasks": sum(1 for r in self.records if r.resumed),
            "per_task": [dataclasses.asdict(r) for r in self.records],
        }

    def write_summary(self, path: str | os.PathLike) -> None:
        """Write the summary JSON to ``path``."""
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.summary(), indent=2) + "\n",
                          encoding="utf-8")


def format_summary(summary: dict, *, top_n: int = 5) -> str:
    """Render a run summary for terminal output.

    Shows the aggregate counters plus the ``top_n`` slowest executed
    tasks, so per-task timings and cache behaviour are visible without
    opening the JSON.
    """
    lines = [
        f"tasks: {summary['tasks']}  "
        f"(cache hits: {summary['cache_hits']}, "
        f"misses: {summary['cache_misses']})",
        f"wall time: {summary['wall_time_s']:.3f}s on "
        f"{summary['workers']} worker(s), "
        f"utilization {100.0 * summary['worker_utilization']:.0f}%",
        f"events processed: {summary['events_processed']}  "
        f"task time total/mean/max: "
        f"{summary['task_wall_time_s']['total']:.3f}/"
        f"{summary['task_wall_time_s']['mean']:.3f}/"
        f"{summary['task_wall_time_s']['max']:.3f}s",
    ]
    if summary.get("batches"):
        lines.append(
            f"batches: {summary['batches']} "
            f"(mean {summary['batch_tasks']['mean']:.1f} tasks, "
            f"max {summary['batch_tasks']['max']})")
    warm = summary.get("warm_cache") or {}
    if warm:
        hits = sum(entry["hits"] for entry in warm.values())
        total = hits + sum(entry["misses"] for entry in warm.values())
        lines.append(
            f"warm cache: {hits}/{total} hit(s) across "
            f"{len(warm)} kind(s)")
    if summary["retries"]:
        lines.append(
            f"retries: {len(summary['retries'])} "
            f"(backoff total {summary.get('backoff_s_total', 0.0):.3f}s)")
    if summary.get("poisoned"):
        lines.append(
            f"poisoned: {len(summary['poisoned'])} "
            f"({', '.join(summary['poisoned'])})")
    if summary.get("resumed_tasks"):
        lines.append(f"resumed from checkpoint: "
                     f"{summary['resumed_tasks']}")
    executed = [r for r in summary["per_task"]
                if not r["cached"] and not r.get("resumed")]
    slowest = sorted(executed, key=lambda r: r["wall_time_s"],
                     reverse=True)[:top_n]
    for record in slowest:
        lines.append(
            f"  {record['wall_time_s']:8.3f}s  {record['key']}")
    return "\n".join(lines)
