"""Run telemetry: structured logging plus a machine-readable summary.

Every sweep run records, per task: wall time, events processed, cache
hit/miss, attempts, and the worker that ran it.  The aggregate summary
adds run wall time, cache hit rate, and worker utilization (busy task
seconds divided by ``run wall time x workers`` — 1.0 means the pool
never idled).  Records are emitted through the ``repro.exec`` logger
with the raw fields attached under ``extra`` so log processors can
consume them without parsing message strings.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import pathlib
import time
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.exec.runner import SweepTask, TaskOutcome

logger = logging.getLogger("repro.exec")


@dataclasses.dataclass
class TaskRecord:
    """Telemetry for one executed (or cache-served) task."""

    key: str
    index: int
    wall_time_s: float
    events_processed: int
    cached: bool
    attempts: int
    worker_pid: int
    status: str = "done"
    resumed: bool = False


class RunTelemetry:
    """Collects task records for one sweep run and summarises them."""

    def __init__(self) -> None:
        self.records: list[TaskRecord] = []
        self.retries: list[dict] = []
        self.fallbacks: list[str] = []
        self.crashes: list[dict] = []
        self.workers = 1
        self.num_tasks = 0
        self._started: float | None = None
        self._wall_time_s = 0.0

    # -- lifecycle ---------------------------------------------------------
    def start(self, *, workers: int, num_tasks: int) -> None:
        self.records = []
        self.retries = []
        self.fallbacks = []
        self.crashes = []
        self.workers = workers
        self.num_tasks = num_tasks
        self._started = time.perf_counter()
        logger.info(
            "sweep start: %d task(s) on %d worker(s)", num_tasks, workers,
            extra={"repro_sweep": {"tasks": num_tasks,
                                   "workers": workers}},
        )

    def record_task(self, outcome: "TaskOutcome") -> None:
        record = TaskRecord(
            key=outcome.task.key,
            index=outcome.task.index,
            wall_time_s=outcome.wall_time_s,
            events_processed=outcome.events_processed,
            cached=outcome.cached,
            attempts=outcome.attempts,
            worker_pid=outcome.worker_pid,
            status=outcome.status,
            resumed=outcome.resumed,
        )
        self.records.append(record)
        if record.status == "poisoned":
            verb = "poisoned"
        elif record.resumed:
            verb = "resumed from checkpoint"
        elif record.cached:
            verb = "cache hit"
        else:
            verb = "executed"
        logger.info(
            "task %s: %s in %.3fs (%d events, attempt %d, pid %d)",
            record.key, verb,
            record.wall_time_s, record.events_processed,
            record.attempts, record.worker_pid,
            extra={"repro_task": dataclasses.asdict(record)},
        )

    def record_retry(self, task: "SweepTask", error: BaseException, *,
                     backoff_s: float = 0.0) -> None:
        self.retries.append({"key": task.key, "error": repr(error),
                             "backoff_s": backoff_s})
        logger.warning(
            "task %s failed (%s); retrying after %.3fs backoff",
            task.key, error, backoff_s,
            extra={"repro_retry": {"key": task.key,
                                   "error": repr(error),
                                   "backoff_s": backoff_s}},
        )

    def record_crash(self, task: "SweepTask",
                     error: BaseException) -> None:
        """One definite worker death attributed to ``task``."""
        self.crashes.append({"key": task.key, "error": repr(error)})
        logger.warning(
            "task %s killed its worker (%s)", task.key, error,
            extra={"repro_crash": {"key": task.key,
                                   "error": repr(error)}},
        )

    def record_fallback(self, error: BaseException) -> None:
        self.fallbacks.append(repr(error))
        logger.warning(
            "process pool unavailable (%s); falling back to serial",
            error,
            extra={"repro_fallback": {"error": repr(error)}},
        )

    def finish(self) -> dict:
        """Freeze the run and return the machine-readable summary."""
        if self._started is not None:
            self._wall_time_s = time.perf_counter() - self._started
            self._started = None
        summary = self.summary()
        logger.info(
            "sweep done: %d task(s) in %.3fs — %d cache hit(s), "
            "%d miss(es), %.0f%% worker utilization",
            summary["tasks"], summary["wall_time_s"],
            summary["cache_hits"], summary["cache_misses"],
            100.0 * summary["worker_utilization"],
            extra={"repro_summary": summary},
        )
        return summary

    # -- aggregation -------------------------------------------------------
    def summary(self) -> dict:
        """Aggregate view of the run (JSON-able)."""
        from repro.kernels import kernel_mode

        executed = [r for r in self.records
                    if not r.cached and not r.resumed]
        busy = sum(r.wall_time_s for r in executed)
        wall = self._wall_time_s
        if self._started is not None:  # summary of a still-running sweep
            wall = time.perf_counter() - self._started
        utilization = (busy / (wall * self.workers)
                       if wall > 0 and executed else 0.0)
        return {
            "tasks": len(self.records),
            "workers": self.workers,
            "kernel_mode": kernel_mode(),
            "wall_time_s": wall,
            "cache_hits": sum(1 for r in self.records if r.cached),
            "cache_misses": len(executed),
            "events_processed": sum(r.events_processed
                                    for r in self.records),
            "task_wall_time_s": {
                "total": busy,
                "max": max((r.wall_time_s for r in executed),
                           default=0.0),
                "mean": busy / len(executed) if executed else 0.0,
            },
            "worker_utilization": min(1.0, utilization),
            "retries": list(self.retries),
            "backoff_s_total": sum(r.get("backoff_s", 0.0)
                                   for r in self.retries),
            "serial_fallbacks": list(self.fallbacks),
            "crashes": list(self.crashes),
            "poisoned": [r.key for r in self.records
                         if r.status == "poisoned"],
            "resumed_tasks": sum(1 for r in self.records if r.resumed),
            "per_task": [dataclasses.asdict(r) for r in self.records],
        }

    def write_summary(self, path: str | os.PathLike) -> None:
        """Write the summary JSON to ``path``."""
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.summary(), indent=2) + "\n",
                          encoding="utf-8")


def format_summary(summary: dict, *, top_n: int = 5) -> str:
    """Render a run summary for terminal output.

    Shows the aggregate counters plus the ``top_n`` slowest executed
    tasks, so per-task timings and cache behaviour are visible without
    opening the JSON.
    """
    lines = [
        f"tasks: {summary['tasks']}  "
        f"(cache hits: {summary['cache_hits']}, "
        f"misses: {summary['cache_misses']})",
        f"wall time: {summary['wall_time_s']:.3f}s on "
        f"{summary['workers']} worker(s), "
        f"utilization {100.0 * summary['worker_utilization']:.0f}%",
        f"events processed: {summary['events_processed']}  "
        f"task time total/mean/max: "
        f"{summary['task_wall_time_s']['total']:.3f}/"
        f"{summary['task_wall_time_s']['mean']:.3f}/"
        f"{summary['task_wall_time_s']['max']:.3f}s",
    ]
    if summary["retries"]:
        lines.append(
            f"retries: {len(summary['retries'])} "
            f"(backoff total {summary.get('backoff_s_total', 0.0):.3f}s)")
    if summary.get("poisoned"):
        lines.append(
            f"poisoned: {len(summary['poisoned'])} "
            f"({', '.join(summary['poisoned'])})")
    if summary.get("resumed_tasks"):
        lines.append(f"resumed from checkpoint: "
                     f"{summary['resumed_tasks']}")
    executed = [r for r in summary["per_task"] if not r["cached"]]
    slowest = sorted(executed, key=lambda r: r["wall_time_s"],
                     reverse=True)[:top_n]
    for record in slowest:
        lines.append(
            f"  {record['wall_time_s']:8.3f}s  {record['key']}")
    return "\n".join(lines)
