"""Tiny task functions for exercising the sweep runner.

Task functions must be importable by dotted path inside worker
processes, so the test suite's fixtures live here rather than in a test
module.  They are also handy smoke-test payloads for operators trying a
new deployment (``repro.exec.testing:echo_task`` costs microseconds).
"""

from __future__ import annotations

import os
import signal
import time

from repro.errors import ExecutionError
from repro.exec.runner import TaskPayload


def echo_task(params: dict) -> dict:
    """Return the params (plus the worker pid) — the no-op task."""
    return {**params, "pid": os.getpid()}


def square_task(params: dict) -> TaskPayload:
    """Square ``params['x']``, reporting one processed event."""
    return TaskPayload(value=params["x"] ** 2, events_processed=1)


def sleep_task(params: dict) -> float:
    """Sleep ``params['seconds']`` and return it (timeout tests)."""
    time.sleep(params["seconds"])
    return params["seconds"]


def flaky_task(params: dict) -> int:
    """Fail the first ``params['fail_times']`` attempts (retry tests).

    Attempts are counted in ``params['counter_path']`` so the count
    survives process boundaries.
    """
    path = params["counter_path"]
    try:
        with open(path, encoding="utf-8") as handle:
            attempts = int(handle.read() or 0)
    except FileNotFoundError:
        attempts = 0
    attempts += 1
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(str(attempts))
    if attempts <= params["fail_times"]:
        raise ExecutionError(f"flaky_task failing attempt {attempts}")
    return attempts


def kill_worker_task(params: dict) -> int:
    """SIGKILL the worker on the first ``params['kill_times']`` attempts.

    Exercises the crash-quarantine path: the process pool sees a dead
    worker (``BrokenProcessPool``), not an exception.  Attempts are
    counted in ``params['counter_path']`` so the count survives the
    worker deaths; once the quota is exhausted the task returns its
    attempt number.  Only meaningful under ``workers > 1`` — in a
    serial run it would kill the parent process.
    """
    path = params["counter_path"]
    try:
        with open(path, encoding="utf-8") as handle:
            attempts = int(handle.read() or 0)
    except FileNotFoundError:
        attempts = 0
    attempts += 1
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(str(attempts))
    if attempts <= params["kill_times"]:
        os.kill(os.getpid(), signal.SIGKILL)
    return attempts
