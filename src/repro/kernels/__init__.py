"""Vectorized Monte-Carlo kernels.

The simulators in :mod:`repro.pipeline` and :mod:`repro.timing.ssta`
draw millions of deterministic pseudo-random delay factors and
sensitization decisions.  This package provides the two engines behind
those draws:

* :mod:`repro.kernels.rng` — a seeded 32-bit integer mixer and an
  exact-arithmetic Gaussian built on it, implemented twice: once in
  pure Python (the *scalar* reference) and once over numpy arrays (the
  *vector* kernel).  Both paths are bit-identical by construction, so a
  simulation may freely mix blocked vector evaluation with per-cycle
  scalar bookkeeping and still produce one deterministic result.
* :mod:`repro.kernels.pipeline`, :mod:`repro.kernels.graph`, and
  :mod:`repro.kernels.ssta` — compiled array forms of the three hot
  Monte-Carlo loops (linear pipeline, whole-graph simulation, and
  statistical STA).

Mode selection: the vector kernels are used whenever numpy imports and
``REPRO_SCALAR_KERNELS`` is unset (or ``0``); setting
``REPRO_SCALAR_KERNELS=1`` forces every simulator down the pure-Python
reference path.  Results are identical either way — only wall time
changes — which the equivalence test suite and the CI perf-smoke job
both enforce.
"""

from __future__ import annotations

import os

try:  # pragma: no cover - exercised implicitly by every vector test
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - CI images always have numpy
    HAVE_NUMPY = False

#: Environment variable forcing the scalar reference implementations.
SCALAR_ENV = "REPRO_SCALAR_KERNELS"


def scalar_forced() -> bool:
    """Whether the escape hatch pins simulations to the scalar path."""
    return os.environ.get(SCALAR_ENV, "0") not in ("", "0")


def vectorized_enabled() -> bool:
    """Whether the numpy kernels should be used for new simulations."""
    return HAVE_NUMPY and not scalar_forced()


def kernel_mode() -> str:
    """``"vector"`` or ``"scalar"`` — recorded in telemetry and benches."""
    return "vector" if vectorized_enabled() else "scalar"


__all__ = [
    "HAVE_NUMPY",
    "SCALAR_ENV",
    "kernel_mode",
    "scalar_forced",
    "vectorized_enabled",
]
