"""Fault-lane batched window evaluation for snapshot-forked campaigns.

Snapshot forking (:mod:`repro.campaign.trajectory`) made each fault's
cost O(window); this module removes the remaining per-fault Python
walk.  Faults that share a fork window are near-identical perturbations
of one shared fault-free background, so a whole group is evaluated as
**one numpy batch with a lane axis**: per-lane ``(lanes, window_cycles,
columns)`` disturbance deltas ride on top of the shared background
rows, and a vectorized borrow/select/relay state machine — the array
form of the simulators' ``_simulate_cycle`` — advances every lane per
cycle step.

The batch is only entered when its equivalence to the per-fault forked
path is *provable*:

* the group's fork snapshot must be idle (zero borrow, zero relay
  selects) and the background screen must show no interesting cycle
  between the fork start and a lane's injection cycle — then the lane
  enters its window with exactly zero carried state, and the forked
  run's prefix contributes no events and no semantic counter
  increments;
* a lane's window must fit :data:`MAX_LANE_WINDOW` steps.

Lanes (or whole groups) that fail these checks drop to the existing
per-fault forked path, which is preserved as the executable spec — the
same screen-plus-scalar-replay discipline the cycle kernels use, now
applied along the fault dimension.  Inside the batch, every semantic
counter increment the scalar state machine would have made is
reproduced exactly (bulk ``inc`` per outcome class, per-event relay
depth observations), so :func:`repro.obs.semantic_snapshot` stays
bit-identical across evaluation paths.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro import obs
from repro.campaign.outcomes import (
    BENIGN,
    ESCAPED,
    FALSE_POSITIVE,
    MASKED_ED,
    MASKED_TB,
    RELAYED,
)

#: :func:`repro.campaign.outcomes.classify_flags`'s precedence ladder
#: as an indexable tuple — ``np.select`` resolves each lane to its
#: severity index, this maps the index back to the taxonomy class.
_LADDER = (ESCAPED, RELAYED, MASKED_ED, MASKED_TB, FALSE_POSITIVE,
           BENIGN)
from repro.kernels.graph import CompiledTopology
from repro.kernels.pipeline import CaptureParams, capture_block

#: Longest fork window (in cycles from the injection cycle to the
#: window end, inclusive) a lane may occupy in a batch.  Longer windows
#: — pathological relay horizons — replay through the forked path; the
#: batch buffers stay small and dense.
MAX_LANE_WINDOW = 64

#: Sentinel for "no evaluated arrival" lateness cells; large enough to
#: never win a max against a real lateness, small enough that adding a
#: borrow offset cannot overflow int64.
_BIG_NEG = -(2 ** 60)

# Lane-path internals (``repro_kernel_`` namespace: zero on scalar
# runs, excluded from cross-mode byte-identity checks).  ``batched``
# lanes went through the vectorized lane machine; ``replayed`` lanes
# dropped to the per-fault forked path (divergent window, noisy
# background, or non-idle fork state).
_OBS_LANES = obs.REGISTRY.counter(
    "repro_kernel_fault_lanes_total",
    "Campaign fault lanes by evaluation path",
    labelnames=("kernel", "path"))
_OBS_GROUP = obs.REGISTRY.histogram(
    "repro_kernel_lane_group_faults",
    "Fault lanes evaluated together per batched fork-window group",
    labelnames=("kernel",),
    buckets=(1, 2, 4, 8, 16, 32, 64))

# Semantic simulator counters, re-obtained from the registry (family
# registration is idempotent) so the lane machines can reproduce the
# exact increments the scalar state machine would have made.
_PIPE_OUTCOMES = obs.REGISTRY.counter(
    "repro_pipeline_outcomes_total",
    "Non-clean pipeline capture outcomes",
    labelnames=("outcome",))
_PIPE_MASKED = _PIPE_OUTCOMES.labels(outcome="masked")
_PIPE_MASKED_FLAGGED = _PIPE_OUTCOMES.labels(outcome="masked_flagged")
_PIPE_DETECTED = _PIPE_OUTCOMES.labels(outcome="detected")
_PIPE_PREDICTED = _PIPE_OUTCOMES.labels(outcome="predicted")
_PIPE_FAILED = _PIPE_OUTCOMES.labels(outcome="failed")
_GRAPH_MASKED = obs.REGISTRY.counter(
    "repro_graph_masked_total",
    "Masked graph captures by checking-period interval class",
    labelnames=("interval",))
_GRAPH_MASKED_TB = _GRAPH_MASKED.labels(interval="tb")
_GRAPH_MASKED_ED = _GRAPH_MASKED.labels(interval="ed")
_GRAPH_RELAYED = obs.REGISTRY.counter(
    "repro_graph_relayed_total",
    "Masked captures whose >=2-interval borrow proves an upstream "
    "relay increment").labels()
_GRAPH_ESCAPED = obs.REGISTRY.counter(
    "repro_graph_escaped_total",
    "Failed (unmasked) graph captures",
    labelnames=("protected",))
_GRAPH_ESCAPED_PROT = _GRAPH_ESCAPED.labels(protected="yes")
_GRAPH_ESCAPED_UNPROT = _GRAPH_ESCAPED.labels(protected="no")
_GRAPH_RELAY_DEPTH = obs.REGISTRY.histogram(
    "repro_graph_relay_depth_intervals",
    "Borrowed intervals per masked capture (select-chain depth)",
    buckets=(1, 2, 3, 4, 6, 8)).labels()


@dataclasses.dataclass(frozen=True)
class Lane:
    """One fault's window, as the lane machines consume it.

    ``cycle`` is the absolute injection cycle (the window start),
    ``steps`` the window length in cycles (``window_end - cycle + 1``),
    ``duration`` the leading fault-active cycles, and ``cols`` the
    perturbed column indices (stage or candidate-destination indices,
    per target).
    """

    cycle: int
    steps: int
    duration: int
    magnitude_ps: int
    cols: tuple[int, ...]


@dataclasses.dataclass(frozen=True)
class LaneOutcome:
    """Per-lane aggregation, mirroring ``outcome_from_events``."""

    classification: str
    events: int
    worst_lateness_ps: int
    max_borrowed_intervals: int


def _window_cycles(lanes: "typing.Sequence[Lane]", width: int,
                   num_rows: int) -> "np.ndarray":
    """``(L, W)`` absolute cycle index per lane step, clipped to the
    background rows (dead steps past a lane's window read a valid row
    whose values are masked out of every aggregate)."""
    starts = np.array([lane.cycle for lane in lanes],
                      dtype=np.int64)[:, None]
    return np.minimum(starts + np.arange(width, dtype=np.int64)[None, :],
                      num_rows - 1)


def _lane_deltas(lanes: "typing.Sequence[Lane]", width: int,
                 num_cols: int) -> "np.ndarray":
    """``(L, W, C)`` extra-delay deltas: each lane's magnitude on its
    perturbed columns for its fault-active steps, zero elsewhere."""
    delta = np.zeros((len(lanes), width, num_cols), dtype=np.int64)
    for index, lane in enumerate(lanes):
        if lane.cols:
            delta[index, :lane.duration, list(lane.cols)] = (
                lane.magnitude_ps)
    return delta


def _live_mask(lanes: "typing.Sequence[Lane]", width: int) -> "np.ndarray":
    """``(L, W)`` mask of steps inside each lane's own window."""
    steps = np.array([lane.steps for lane in lanes],
                     dtype=np.int64)[:, None]
    return np.arange(width, dtype=np.int64)[None, :] < steps


def _collect(lanes: "typing.Sequence[Lane]", event: "np.ndarray",
             lateness: "np.ndarray", masked: "np.ndarray",
             detected: "np.ndarray", predicted: "np.ndarray",
             flagged: "np.ndarray", failed: "np.ndarray",
             intervals: "np.ndarray") -> "list[LaneOutcome]":
    """Fold the per-capture arrays into one outcome per lane.

    ``event`` must already be masked to live steps; aggregation is
    order-free, exactly like ``outcome_from_events`` over the observer
    stream.
    """
    axes = (1, 2)
    events = event.sum(axes)
    worst = np.where(event, lateness, _BIG_NEG).max(axes)
    worst = np.where(events > 0, worst, 0)
    max_intervals = np.where(event, intervals, 0).max(axes)
    any_failed = (failed & event).any(axes)
    any_relayed = (masked & (intervals >= 2) & event).any(axes)
    any_masked_ed = (((masked & flagged) | detected) & event).any(axes)
    any_masked = (masked & event).any(axes)
    any_warned = ((predicted | flagged) & event).any(axes)
    # classify_flags, vectorized: one np.select down the same severity
    # ladder instead of a python call per lane.
    severity = np.select(
        [any_failed, any_relayed, any_masked_ed, any_masked, any_warned],
        [0, 1, 2, 3, 4], default=5)
    return [
        LaneOutcome(
            classification=_LADDER[severity[i]],
            events=int(events[i]),
            worst_lateness_ps=int(worst[i]),
            max_borrowed_intervals=int(max_intervals[i]),
        )
        for i in range(len(lanes))
    ]


class _LaneMachineBase:
    """Shared lane bookkeeping for both targets."""

    kernel: str = "abstract"

    def _note_batched(self, count: int) -> None:
        if obs.REGISTRY.enabled:
            _OBS_LANES.labels(kernel=self.kernel, path="batched").inc(count)
            _OBS_GROUP.labels(kernel=self.kernel).observe(count)

    def note_replayed(self, count: int) -> None:
        """Account lanes that dropped to the per-fault forked path."""
        if obs.REGISTRY.enabled:
            _OBS_LANES.labels(kernel=self.kernel,
                              path="replayed").inc(count)


class PipelineLaneMachine(_LaneMachineBase):
    """Vectorized borrow/select relay machine for the linear pipeline.

    The lane-axis form of ``PipelineSimulation._simulate_cycle``:
    boundary ``i`` launches into ``i+1`` (circularly) with the time it
    borrowed, and the TIMBER relay hands ``select_out`` one boundary
    downstream per cycle — both are ``np.roll`` along the stage axis.
    """

    kernel = "pipeline"

    def __init__(self, params: CaptureParams, stage_names:
                 "typing.Sequence[str]", period_ps: int) -> None:
        self.params = params
        self.stage_names = list(stage_names)
        self._col = {name: index
                     for index, name in enumerate(stage_names)}
        self.num_cols = len(self.stage_names)
        self.period_ps = period_ps

    @staticmethod
    def state_is_idle(state: "typing.Any") -> bool:
        """Does a snapshot carry zero borrow and zero relay state?"""
        borrow, relay = state
        if any(borrow):
            return False
        if relay is None:
            return True
        select_in, next_select_in = relay
        return not any(select_in) and not any(next_select_in)

    def lane_columns(self, site_names:
                     "typing.Iterable[str]") -> tuple[int, ...]:
        return tuple(self._col[name] for name in site_names)

    def evaluate(self, lanes: "typing.Sequence[Lane]",
                 rows: "typing.Any") -> "list[LaneOutcome]":
        """Advance every lane through its window in one batch.

        ``rows`` is the trajectory's ``(delays, interesting)`` pair;
        each lane reads its own window of background delay rows.
        """
        delays_all = rows[0]
        width = max(lane.steps for lane in lanes)
        count = len(lanes)
        cycles = _window_cycles(lanes, width, delays_all.shape[0])
        delays = delays_all[cycles] + _lane_deltas(lanes, width,
                                                   self.num_cols)
        live = _live_mask(lanes, width)
        shape = (count, width, self.num_cols)
        lateness = np.empty(shape, dtype=np.int64)
        masked = np.empty(shape, dtype=bool)
        detected = np.empty(shape, dtype=bool)
        predicted = np.empty(shape, dtype=bool)
        flagged = np.empty(shape, dtype=bool)
        failed = np.empty(shape, dtype=bool)
        intervals = np.empty(shape, dtype=np.int64)
        borrow = np.zeros((count, self.num_cols), dtype=np.int64)
        select_in = np.zeros((count, self.num_cols), dtype=np.int64)
        for w in range(width):
            late = (np.roll(borrow, 1, axis=1) + delays[:, w, :]
                    - self.period_ps)
            caps = capture_block(self.params, late, select_in)
            lateness[:, w] = late
            masked[:, w] = caps.masked
            detected[:, w] = caps.detected
            predicted[:, w] = caps.predicted
            flagged[:, w] = caps.flagged
            failed[:, w] = caps.failed
            intervals[:, w] = caps.borrowed_intervals
            borrow = caps.borrowed_ps
            if self.params.kind == "timber-ff":
                # select_out relays to the next boundary for the next
                # cycle (borrowed intervals on a mask, else zero).
                select_in = np.roll(caps.borrowed_intervals, 1, axis=1)
        event = ((masked | detected | predicted | flagged | failed)
                 & live[:, :, None])
        if obs.REGISTRY.enabled:
            self._apply_counters(event, masked, detected, predicted,
                                 flagged, failed)
            self._note_batched(count)
        return _collect(lanes, event, lateness, masked, detected,
                        predicted, flagged, failed, intervals)

    @staticmethod
    def _apply_counters(event, masked, detected, predicted, flagged,
                        failed) -> None:
        """Reproduce ``_account``'s per-capture increments in bulk.

        The forked run's prefix is provably clean (the batch
        precondition), so its increments over the whole window equal
        the lane's live events — accounted here class by class with
        ``_account``'s exact precedence (failed before masked, masked
        before detected/predicted).
        """
        _PIPE_FAILED.inc(int((failed & event).sum()))
        live_masked = masked & ~failed & event
        _PIPE_MASKED.inc(int(live_masked.sum()))
        _PIPE_MASKED_FLAGGED.inc(int((live_masked & flagged).sum()))
        _PIPE_DETECTED.inc(int((detected & ~failed & ~masked
                                & event).sum()))
        _PIPE_PREDICTED.inc(int((predicted & ~failed & ~masked
                                 & ~detected & event).sum()))


class GraphLaneMachine(_LaneMachineBase):
    """Vectorized arrival/capture/relay machine for the whole graph.

    The lane-axis form of ``GraphPipelineSimulation._simulate_cycle``:
    per-edge evaluation gates on carried launch offsets or
    sensitization, per-destination lateness is a segment max, protected
    endpoints capture with the scheme (relay select = max over relay
    sources), the rest capture plain.
    """

    kernel = "graph"

    def __init__(self, params: CaptureParams, topology: CompiledTopology,
                 dst_names: "typing.Sequence[str]",
                 period_ps: int) -> None:
        self.params = params
        self.topology = topology
        self._col = {name: index
                     for index, name in enumerate(dst_names)}
        self.num_cols = topology.num_dsts
        self.period_ps = period_ps
        self._plain = CaptureParams(kind="plain")

    @staticmethod
    def state_is_idle(state: "typing.Any") -> bool:
        """Does a snapshot carry zero borrow and zero relay selects?"""
        borrow, select_out = state
        return not borrow and not select_out

    def lane_columns(self, site_names:
                     "typing.Iterable[str]") -> tuple[int, ...]:
        # Faults on non-candidate destinations never get evaluated
        # (the scalar loop adds the extra only when an in-edge fired),
        # so those sites simply contribute no delta column.
        return tuple(self._col[name] for name in site_names
                     if name in self._col)

    def evaluate(self, lanes: "typing.Sequence[Lane]",
                 rows: "typing.Any") -> "list[LaneOutcome]":
        """Advance every lane through its window in one batch.

        ``rows`` is the trajectory's ``(sens, arrival, interesting)``
        triple; each lane reads its own window of background rows.
        """
        topo = self.topology
        sens_all, arrival_all = rows[0], rows[1]
        width = max(lane.steps for lane in lanes)
        count = len(lanes)
        cycles = _window_cycles(lanes, width, sens_all.shape[0])
        sens = sens_all[cycles]
        arrival = arrival_all[cycles]
        extra = _lane_deltas(lanes, width, self.num_cols)
        live = _live_mask(lanes, width)
        num_dsts = self.num_cols
        prot = topo.protected[None, :]
        shape = (count, width, num_dsts)
        lateness = np.empty(shape, dtype=np.int64)
        masked = np.empty(shape, dtype=bool)
        flagged = np.empty(shape, dtype=bool)
        failed = np.empty(shape, dtype=bool)
        failed_prot = np.empty(shape, dtype=bool)
        intervals = np.empty(shape, dtype=np.int64)
        never = np.zeros(shape, dtype=bool)
        # State columns are candidate destinations plus one sentinel
        # column (always zero) standing in for every other FF name.
        borrow = np.zeros((count, num_dsts + 1), dtype=np.int64)
        select = np.zeros((count, num_dsts + 1), dtype=np.int64)
        for w in range(width):
            offsets = borrow[:, topo.src_cols]
            evaluated = (offsets != 0) | sens[:, w, :]
            late_edge = np.where(evaluated,
                                 offsets + arrival[:, w, :]
                                 - self.period_ps,
                                 _BIG_NEG)
            evaluated_dst = topo.per_dst_any(evaluated)
            late = np.where(evaluated_dst,
                            topo.per_dst_max(late_edge) + extra[:, w, :],
                            _BIG_NEG)
            select_in = topo.relay_select_in(select)
            caps = capture_block(self.params, late, select_in)
            caps_plain = capture_block(self._plain, late)
            step_masked = caps.masked & prot
            step_failed_prot = caps.failed & prot
            step_failed = step_failed_prot | (caps_plain.failed & ~prot)
            lateness[:, w] = late
            masked[:, w] = step_masked
            flagged[:, w] = caps.flagged & prot
            failed[:, w] = step_failed
            failed_prot[:, w] = step_failed_prot
            step_intervals = np.where(step_masked,
                                      caps.borrowed_intervals, 0)
            intervals[:, w] = step_intervals
            borrow[:, :num_dsts] = np.where(step_masked,
                                            caps.borrowed_ps, 0)
            select[:, :num_dsts] = step_intervals
        # Every violating capture is an event (the graph observer has
        # no clean filter to apply — it only ever sees violations).
        event = (masked | failed) & live[:, :, None]
        if obs.REGISTRY.enabled:
            self._apply_counters(event, masked, flagged, failed_prot,
                                 failed, intervals)
            self._note_batched(count)
        return _collect(lanes, event, lateness, masked, never, never,
                        flagged, failed, intervals)

    @staticmethod
    def _apply_counters(event, masked, flagged, failed_prot, failed,
                        intervals) -> None:
        """Reproduce ``_simulate_cycle``'s semantic increments in bulk.

        Counter totals are order-free sums; the relay-depth histogram
        is observed per masked event exactly as the scalar loop does
        (events are few — the loop is over violations, not cycles).
        """
        live_masked = masked & event
        _GRAPH_MASKED_ED.inc(int((live_masked & flagged).sum()))
        _GRAPH_MASKED_TB.inc(int((live_masked & ~flagged).sum()))
        _GRAPH_RELAYED.inc(int((live_masked & (intervals >= 2)).sum()))
        _GRAPH_ESCAPED_PROT.inc(int((failed_prot & event).sum()))
        _GRAPH_ESCAPED_UNPROT.inc(int((failed & ~failed_prot
                                       & event).sum()))
        for depth in intervals[live_masked & (intervals > 0)].tolist():
            _GRAPH_RELAY_DEPTH.observe(depth)


def pipeline_machine(sim: "typing.Any") -> "PipelineLaneMachine | None":
    """A lane machine for a ``PipelineSimulation``, or ``None``.

    ``None`` when the configuration's dynamics the batch cannot model:
    an attached controller (period feedback), fail-fast semantics, or a
    capture policy without pure array semantics.
    """
    if sim.controller is not None or sim.fail_fast:
        return None
    params = CaptureParams.for_policy(sim.policy)
    if params is None:
        return None
    return PipelineLaneMachine(params,
                               [stage.name for stage in sim.stages],
                               sim.period_ps)


def graph_machine(sim: "typing.Any") -> "GraphLaneMachine | None":
    """A lane machine for a ``GraphPipelineSimulation``, or ``None``.

    ``None`` when a controller or workload trace is attached (period /
    threshold feedback the batch does not model).
    """
    if sim.controller is not None or sim.trace is not None:
        return None
    if not sim._rows:
        # No candidate endpoints: nothing for a lane delta to perturb
        # and nothing for reduceat segments to reduce over.
        return None
    params = (CaptureParams(kind="plain") if sim.scheme == "plain"
              else CaptureParams.from_checking_period(sim.scheme, sim.cp))
    dst_names = [ff for ff, _ in sim._rows]
    return GraphLaneMachine(params, CompiledTopology.from_sim(sim),
                            dst_names, sim.graph.period_ps)
