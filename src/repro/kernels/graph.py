"""Compiled array form of the whole-graph Monte-Carlo loop.

:class:`CompiledEdges` flattens a
:class:`~repro.pipeline.graph_sim.GraphPipelineSimulation`'s candidate
edges — the only ones that can ever violate — into delay / key / path
arrays and evaluates sensitization plus idle-state arrival for a block
of cycles at once.  The common all-clean cycle costs O(edges) numpy work
inside a block instead of O(cycles x edges) Python; the simulator keeps
dict-based borrow/relay bookkeeping only for the cycles whose screen
shows a potentially late edge, feeding those cycles the precomputed
sensitization and arrival rows so vector and scalar runs are bit-equal.
"""

from __future__ import annotations

import typing

import numpy as np

from repro import obs
from repro.kernels.rng import cycle_lanes, key_id, mix32_batch, split64

#: Domain-separation salt for the graph edge-sensitization stream (must
#: match the scalar draw in ``GraphPipelineSimulation``).
GRAPH_SENS_SALT = key_id("graph-sens")

# Vector-path internals; see the pipeline kernel's twin series for the
# screened/replayed semantics.  Replays are attributed by *reason*:
# ``screen`` = the block screen marked the cycle interesting;
# ``carryover`` = the screen cleared it but borrow/select_out state
# carried over from a violating predecessor forced a scalar replay
# anyway (incremented by the simulator's main loop — these cycles
# escape the screen and were previously invisible).
_OBS_SCREENED = obs.REGISTRY.counter(
    "repro_kernel_cycles_screened_total",
    "Cycles retired by the block screen without scalar replay",
    labelnames=("kernel",)).labels(kernel="graph")
_REPLAYED_FAMILY = obs.REGISTRY.counter(
    "repro_kernel_cycles_replayed_total",
    "Cycles replayed through the scalar state machine, by reason",
    labelnames=("kernel", "reason"))
_OBS_REPLAYED = _REPLAYED_FAMILY.labels(kernel="graph", reason="screen")
#: Cycles replayed despite a clean screen, because of borrow/select_out
#: carryover (bound here, incremented by the graph simulator).
REPLAYED_CARRYOVER = _REPLAYED_FAMILY.labels(kernel="graph",
                                             reason="carryover")
_OBS_BATCH = obs.REGISTRY.histogram(
    "repro_kernel_batch_cycles",
    "Block sizes fed to the screen (adaptive block sizer output)",
    labelnames=("kernel",),
    buckets=(64, 128, 256, 512, 1024, 2048, 4096, 8192),
).labels(kernel="graph")


def screen_block(
    sens: "np.ndarray",
    arrival: "np.ndarray",
    nominal_period_ps: int,
    forced: "np.ndarray | None" = None,
) -> "np.ndarray":
    """Per-cycle screen: which cycles have any idle-state violation?

    ``sens`` / ``arrival`` are the ``(C, E)`` blocks from
    :meth:`CompiledEdges.block`.  ``forced`` optionally ORs in cycles
    that must replay through the dict-based bookkeeping regardless of
    the screen — fault campaigns pin injected cycles this way, because
    the screen sees only the fault-free arrivals.
    """
    interesting = np.any(sens & (arrival > nominal_period_ps), axis=1)
    if forced is not None:
        interesting = interesting | forced
    if obs.REGISTRY.enabled:
        hot = int(interesting.sum())
        _OBS_REPLAYED.inc(hot)
        _OBS_SCREENED.inc(int(interesting.size) - hot)
        _OBS_BATCH.observe(int(interesting.size))
    return interesting


def background_rows(
    compiled: "CompiledEdges",
    variability: "typing.Any",
    num_cycles: int,
    nominal_period_ps: int,
    thresholds: "np.ndarray",
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Fault-free sens/arrival rows and screen verdicts per trajectory.

    The graph twin of :func:`repro.kernels.pipeline.background_rows`:
    one vectorized prefix-advance over ``[0, num_cycles)`` returning
    ``(sens, arrival, interesting)`` with row ``c`` holding absolute
    cycle ``c``'s per-edge decisions and the fault-free screen verdict.
    ``thresholds`` is the ``(num_cycles,)`` per-cycle sensitization
    threshold array (constant unless a workload trace scales it).
    Snapshot-forked campaign evaluations index these shared rows
    instead of re-running the block kernel per fault.
    """
    from repro.kernels.schedule import MAX_BLOCK

    sens_parts = []
    arrival_parts = []
    interesting_parts = []
    for pos in range(0, num_cycles, MAX_BLOCK):
        cycles = np.arange(pos, min(pos + MAX_BLOCK, num_cycles),
                           dtype=np.int64)
        sens, arrival = compiled.block(cycles, variability,
                                       thresholds[pos:pos + len(cycles)])
        sens_parts.append(sens)
        arrival_parts.append(arrival)
        interesting_parts.append(
            screen_block(sens, arrival, nominal_period_ps))
    return (np.concatenate(sens_parts),
            np.concatenate(arrival_parts),
            np.concatenate(interesting_parts))


class CompiledEdges:
    """Flat-array view of a graph simulator's candidate edges."""

    def __init__(
        self,
        entries: "typing.Sequence[tuple[int, str, str]]",
        seed: int,
    ) -> None:
        """``entries``: flat ``(delay_ps, sens_key, path_id)`` rows in
        the simulator's iteration order."""
        self.num_edges = len(entries)
        self.delays = np.array([delay for delay, _, _ in entries],
                               dtype=np.float64)[None, :]
        self.keys = np.array([key_id(key) for _, key, _ in entries],
                             dtype=np.uint32)[None, :]
        self.paths = [path for _, _, path in entries]
        self.seed_lo, self.seed_hi = split64(seed)

    @classmethod
    def for_entries(
        cls,
        entries: "typing.Sequence[tuple[int, str, str]]",
        seed: int,
    ) -> "CompiledEdges":
        """A compiled view for ``entries``, via the process warm cache.

        Compilation is pure in ``(entries, seed)`` and the arrays are
        immutable, so identically parameterised graph simulations share
        one compilation per worker across tasks and batches.
        """
        from repro.exec.cache import stable_key
        from repro.exec.worker import WARM

        key = stable_key("graph-edges", seed, [list(e) for e in entries])
        return WARM.get_or_build("compiled", key,
                                 lambda: cls(entries, seed))

    def block(
        self,
        cycles: "np.ndarray",
        variability: "typing.Any",
        thresholds: "np.ndarray",
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Sensitization mask and idle-state arrivals for a block.

        Returns ``(sens, arrival)``: a ``(C, E)`` bool array of
        sensitization decisions (hash < per-cycle threshold, matching
        the scalar compare) and a ``(C, E)`` int64 array of
        ``round(delay * factor)`` arrivals assuming a zero launch
        offset.  A cycle with borrowed launches adds the offset to the
        same ``arrival`` row, so the values are shared by both states.
        """
        c_lo, c_hi = cycle_lanes(cycles)
        digests = mix32_batch([
            GRAPH_SENS_SALT, self.seed_lo, self.seed_hi,
            c_lo[:, None], c_hi[:, None], self.keys,
        ])
        sens = digests.astype(np.int64) < thresholds[:, None]
        factor = variability.factor_batch(cycles, self.paths)
        arrival = np.rint(self.delays * factor).astype(np.int64)
        shape = (len(cycles), self.num_edges)
        return sens, np.broadcast_to(arrival, shape)


# ---------------------------------------------------------------------------
# Flat topology view (shared with the fault-lane batcher)
# ---------------------------------------------------------------------------

class CompiledTopology:
    """Segment layout of a graph simulator's candidate-edge rows.

    Flattens the ``(dst_ff, [edges])`` rows of a
    :class:`~repro.pipeline.graph_sim.GraphPipelineSimulation` into
    reduceat-ready arrays so per-destination maxima (arrival lateness,
    relay select inputs) collapse in one numpy call per cycle instead
    of a Python loop per edge.  Column ``num_dsts`` is a sentinel that
    always carries zero state — sources and relay inputs that are not
    candidate destinations map there, mirroring the scalar loop's
    ``dict.get(name, 0)``.
    """

    def __init__(
        self,
        dst_names: "typing.Sequence[str]",
        edge_src_names: "typing.Sequence[str]",
        edges_per_dst: "typing.Sequence[int]",
        protected: "typing.Sequence[bool]",
        relay_srcs_per_dst: "typing.Sequence[typing.Sequence[str]]",
    ) -> None:
        self.num_dsts = len(dst_names)
        self.num_edges = len(edge_src_names)
        col = {name: index for index, name in enumerate(dst_names)}
        sentinel = self.num_dsts
        self.src_cols = np.array(
            [col.get(src, sentinel) for src in edge_src_names],
            dtype=np.int64)
        self.dst_starts = np.cumsum([0] + list(edges_per_dst[:-1]),
                                    dtype=np.int64)
        self.protected = np.array(protected, dtype=bool)
        # Relay segments need at least one element for reduceat; empty
        # source lists are padded with the sentinel column (select 0).
        relay_cols: list[int] = []
        relay_starts: list[int] = []
        for srcs in relay_srcs_per_dst:
            relay_starts.append(len(relay_cols))
            cols = [col.get(src, sentinel) for src in srcs]
            relay_cols.extend(cols or [sentinel])
        self.relay_cols = np.array(relay_cols, dtype=np.int64)
        self.relay_starts = np.array(relay_starts, dtype=np.int64)

    @classmethod
    def from_sim(cls, sim: "typing.Any") -> "CompiledTopology":
        """Compile a ``GraphPipelineSimulation``'s candidate rows."""
        dst_names = [ff for ff, _ in sim._rows]
        return cls(
            dst_names=dst_names,
            edge_src_names=[edge.src for _, entries in sim._rows
                            for _, edge, _, _ in entries],
            edges_per_dst=[len(entries) for _, entries in sim._rows],
            protected=[ff in sim.protected for ff in dst_names],
            relay_srcs_per_dst=[sim._relay_srcs.get(ff, ())
                                for ff in dst_names],
        )

    def per_dst_max(self, per_edge: "np.ndarray") -> "np.ndarray":
        """Per-destination maximum over a ``(..., E)`` edge array."""
        return np.maximum.reduceat(per_edge, self.dst_starts, axis=-1)

    def per_dst_any(self, per_edge: "np.ndarray") -> "np.ndarray":
        """Per-destination OR over a ``(..., E)`` bool edge array."""
        return np.logical_or.reduceat(per_edge, self.dst_starts, axis=-1)

    def relay_select_in(self, select: "np.ndarray") -> "np.ndarray":
        """Per-destination relay input from a ``(..., F+1)`` select
        array (sentinel column included): the max select over each
        destination's relay sources, 0 when it has none."""
        return np.maximum.reduceat(select[..., self.relay_cols],
                                   self.relay_starts, axis=-1)
