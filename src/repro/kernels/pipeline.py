"""Compiled array form of the linear-pipeline Monte-Carlo loop.

:class:`CompiledStages` freezes a stage list into flat numpy arrays
(nominal delays, sensitization probabilities, per-stage seed/key lanes)
and evaluates the *data-independent* part of the simulation — which
nominal path each stage exercises and the variability-scaled delay — for
a whole block of cycles in a handful of vector operations.

Delays are everything the scalar loop computes outside of capture
bookkeeping, and they are produced with the exact arithmetic of
:meth:`repro.pipeline.stage.PipelineStage.delay_ps`: one float64
multiply and one half-even rounding per (cycle, stage), on top of the
bit-identical mixer draws.  The simulator screens each block against the
nominal period to find the cycles that could possibly capture anything
but CLEAN, bulk-accounts the rest, and replays only the interesting
cycles through the scalar state machine — reusing the same delay rows so
the result is bit-equal to a fully scalar run.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.kernels.rng import (
    cycle_lanes,
    key_id,
    mix32_batch,
    split64,
    uniform01_batch,
)
from repro.pipeline.stage import SENS_SALT

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.checking_period import CheckingPeriod
    from repro.pipeline.schemes import CapturePolicy
    from repro.pipeline.stage import PipelineStage
    from repro.variability.base import VariabilityModel

# Vector-path internals (``repro_kernel_`` namespace: zero on scalar
# runs, excluded from cross-mode byte-identity checks).  Screened =
# cycles the block screen retired without scalar replay; replayed =
# cycles the screen marked interesting (forced cycles included).
_OBS_SCREENED = obs.REGISTRY.counter(
    "repro_kernel_cycles_screened_total",
    "Cycles retired by the block screen without scalar replay",
    labelnames=("kernel",)).labels(kernel="pipeline")
_OBS_REPLAYED = obs.REGISTRY.counter(
    "repro_kernel_cycles_replayed_total",
    "Cycles replayed through the scalar state machine, by reason",
    labelnames=("kernel", "reason")).labels(kernel="pipeline",
                                            reason="screen")
_OBS_BATCH = obs.REGISTRY.histogram(
    "repro_kernel_batch_cycles",
    "Block sizes fed to the screen (adaptive block sizer output)",
    labelnames=("kernel",),
    buckets=(64, 128, 256, 512, 1024, 2048, 4096, 8192),
).labels(kernel="pipeline")


def screen_block(
    delays: "np.ndarray",
    period_ps: int,
    threshold_ps: int,
    forced: "np.ndarray | None" = None,
) -> "np.ndarray":
    """Per-cycle screen: which cycles could capture anything but CLEAN?

    ``delays`` is the ``(C, S)`` block from :meth:`CompiledStages.
    delay_block`; a cycle is *interesting* when any stage's idle-state
    lateness ``delay - period`` exceeds ``threshold_ps``.  ``forced``
    optionally ORs in cycles that must replay through the scalar state
    machine regardless of the screen — fault-injection campaigns use it
    to pin every injected cycle, since the screen sees only the
    fault-free delays.
    """
    interesting = np.any(delays - period_ps > threshold_ps, axis=1)
    if forced is not None:
        interesting = interesting | forced
    if obs.REGISTRY.enabled:
        hot = int(interesting.sum())
        _OBS_REPLAYED.inc(hot)
        _OBS_SCREENED.inc(int(interesting.size) - hot)
        _OBS_BATCH.observe(int(interesting.size))
    return interesting


def background_rows(
    compiled: "CompiledStages",
    variability: "VariabilityModel",
    num_cycles: int,
    period_ps: int,
    threshold_ps: int,
) -> "tuple[np.ndarray, np.ndarray]":
    """Fault-free delay rows and screen verdicts for a whole trajectory.

    One vectorized prefix-advance over ``[0, num_cycles)`` in
    fixed-size blocks: returns ``(delays, interesting)`` where row
    ``c`` of ``delays`` is the ``(S,)`` stage-delay vector of absolute
    cycle ``c`` (bit-equal to ``delay_ps``) and ``interesting[c]`` is
    the block screen's verdict on the *fault-free* cycle.  Snapshot-
    forked campaign evaluations share these rows across every fault of
    a configuration instead of re-evaluating their window per fault —
    a fork then only ORs its own forced cycles into the screen slice.
    """
    from repro.kernels.schedule import MAX_BLOCK

    delay_parts = []
    interesting_parts = []
    for pos in range(0, num_cycles, MAX_BLOCK):
        cycles = np.arange(pos, min(pos + MAX_BLOCK, num_cycles),
                           dtype=np.int64)
        delays = compiled.delay_block(cycles, variability)
        delay_parts.append(delays)
        interesting_parts.append(
            screen_block(delays, period_ps, threshold_ps))
    return (np.concatenate(delay_parts),
            np.concatenate(interesting_parts))


class CompiledStages:
    """Flat-array view of a pipeline's stages for blocked evaluation."""

    def __init__(self, stages: "typing.Sequence[PipelineStage]") -> None:
        self.names = [stage.name for stage in stages]
        self.critical = np.array(
            [stage.critical_delay_ps for stage in stages], dtype=np.float64)
        self.typical = np.array(
            [stage.typical_delay_ps for stage in stages], dtype=np.float64)
        self.prob = np.array(
            [stage.sensitization_prob for stage in stages],
            dtype=np.float64)[None, :]
        lanes = [split64(stage.seed) for stage in stages]
        self.seed_lo = np.array([lo for lo, _ in lanes],
                                dtype=np.uint32)[None, :]
        self.seed_hi = np.array([hi for _, hi in lanes],
                                dtype=np.uint32)[None, :]
        self.keys = np.array([key_id(stage.name) for stage in stages],
                             dtype=np.uint32)[None, :]

    @classmethod
    def for_stages(
        cls, stages: "typing.Sequence[PipelineStage]",
    ) -> "CompiledStages":
        """A compiled view for ``stages``, via the process warm cache.

        Compilation is a pure function of the stage parameters and the
        result is immutable, so identically parameterised pipelines —
        every task of a sweep grid point, across batches — share one
        compilation per worker instead of recompiling per task.
        """
        from repro.exec.cache import stable_key
        from repro.exec.worker import WARM

        key = stable_key("pipeline-stages", [
            (stage.name, stage.critical_delay_ps, stage.typical_delay_ps,
             stage.sensitization_prob, stage.seed)
            for stage in stages
        ])
        return WARM.get_or_build("compiled", key, lambda: cls(stages))

    def delay_block(
        self,
        cycles: "np.ndarray",
        variability: "VariabilityModel",
    ) -> "np.ndarray":
        """``(C, S)`` int64 stage delays, bit-equal to ``delay_ps``."""
        c_lo, c_hi = cycle_lanes(cycles)
        # Lane order mirrors PipelineStage.sensitized exactly.
        u = uniform01_batch(mix32_batch([
            SENS_SALT, self.seed_lo, self.seed_hi, self.keys,
            c_lo[:, None], c_hi[:, None],
        ]))
        nominal = np.where(u < self.prob, self.critical, self.typical)
        factor = variability.factor_batch(cycles, self.names)
        delays = np.rint(nominal * factor)
        return np.broadcast_to(delays.astype(np.int64),
                               (len(cycles), len(self.names)))


# ---------------------------------------------------------------------------
# Vectorized capture semantics (shared with the fault-lane batcher)
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class CaptureParams:
    """Flat parameters of one capture scheme, for array evaluation.

    The analytic counterpart of a :class:`~repro.pipeline.schemes.
    CapturePolicy` with the per-boundary state factored out: everything
    :func:`capture_block` needs to classify a whole array of latenesses
    with the exact element semantics of :mod:`repro.core.masking`.
    Only the schemes whose capture functions are pure in
    ``(lateness, select_in)`` compile — :meth:`for_policy` returns
    ``None`` for anything else (and for subclasses, which may override
    ``capture``), so callers fall back to the scalar state machine.
    """

    kind: str
    interval_ps: int = 0
    num_intervals: int = 0
    num_tb: int = 0
    checking_ps: int = 0
    tb_ps: int = 0
    window_ps: int = 0
    guard_ps: int = 0

    @classmethod
    def from_checking_period(cls, kind: str,
                             cp: "CheckingPeriod") -> "CaptureParams":
        """Params for the TIMBER schemes, from a checking period."""
        return cls(kind=kind, interval_ps=cp.interval_ps,
                   num_intervals=cp.num_intervals, num_tb=cp.num_tb,
                   checking_ps=cp.checking_ps, tb_ps=cp.tb_ps)

    @classmethod
    def for_policy(cls, policy: "CapturePolicy") -> "CaptureParams | None":
        from repro.pipeline.schemes import (
            CanaryPolicy,
            PlainPolicy,
            RazorPolicy,
            TimberFFPolicy,
            TimberLatchPolicy,
        )

        # Exact types only: a subclass may override ``capture`` with
        # semantics this block does not model.
        policy_type = type(policy)
        if policy_type is PlainPolicy:
            return cls(kind="plain")
        if policy_type is TimberFFPolicy:
            return cls.from_checking_period("timber-ff", policy.cp)
        if policy_type is TimberLatchPolicy:
            return cls.from_checking_period("timber-latch", policy.cp)
        if policy_type is RazorPolicy:
            return cls(kind="razor", window_ps=policy.window_ps)
        if policy_type is CanaryPolicy:
            return cls(kind="canary", guard_ps=policy.guard_ps)
        return None


@dataclasses.dataclass(frozen=True)
class CaptureArrays:
    """Per-element capture outcomes over an array of latenesses.

    The array projection of :class:`repro.core.masking.CaptureOutcome`;
    every field holds the same shape as the input lateness array.
    """

    masked: "np.ndarray"
    detected: "np.ndarray"
    predicted: "np.ndarray"
    flagged: "np.ndarray"
    failed: "np.ndarray"
    borrowed_ps: "np.ndarray"
    borrowed_intervals: "np.ndarray"

    @property
    def event(self) -> "np.ndarray":
        """The capture-observer condition: anything but CLEAN."""
        return (self.masked | self.detected | self.predicted
                | self.flagged | self.failed)


def capture_block(
    params: CaptureParams,
    lateness: "np.ndarray",
    select_in: "np.ndarray | None" = None,
) -> CaptureArrays:
    """Classify an array of latenesses under ``params``'s scheme.

    Element-for-element identical to the scalar capture functions in
    :mod:`repro.core.masking`; ``select_in`` is required for
    ``timber-ff`` (the relay input per element) and ignored elsewhere.
    """
    viol = lateness > 0
    false_ = np.zeros(lateness.shape, dtype=bool)
    zero = np.zeros(lateness.shape, dtype=np.int64)
    if params.kind == "plain":
        return CaptureArrays(masked=false_, detected=false_,
                             predicted=false_, flagged=false_,
                             failed=viol, borrowed_ps=zero,
                             borrowed_intervals=zero)
    if params.kind == "timber-ff":
        effective = np.minimum(select_in, params.num_intervals - 1)
        delta_ps = (effective + 1) * params.interval_ps
        masked = viol & (lateness <= delta_ps)
        intervals = np.where(masked, effective + 1, 0)
        return CaptureArrays(
            masked=masked, detected=false_, predicted=false_,
            flagged=masked & (intervals > params.num_tb),
            failed=viol & ~masked,
            borrowed_ps=np.where(masked, delta_ps, 0),
            borrowed_intervals=intervals)
    if params.kind == "timber-latch":
        masked = viol & (lateness <= params.checking_ps)
        failed = viol & ~masked
        return CaptureArrays(
            masked=masked, detected=false_, predicted=false_,
            flagged=(masked & (lateness > params.tb_ps)) | failed,
            failed=failed,
            borrowed_ps=np.where(masked, lateness, 0),
            borrowed_intervals=zero)
    if params.kind == "razor":
        detected = viol & (lateness <= params.window_ps)
        return CaptureArrays(
            masked=false_, detected=detected, predicted=false_,
            flagged=detected, failed=viol & ~detected,
            borrowed_ps=zero, borrowed_intervals=zero)
    if params.kind == "canary":
        predicted = ~viol & (lateness > -params.guard_ps)
        return CaptureArrays(
            masked=false_, detected=false_, predicted=predicted,
            flagged=predicted, failed=viol,
            borrowed_ps=zero, borrowed_intervals=zero)
    raise ConfigurationError(
        f"no vectorized capture semantics for {params.kind!r}")
