"""Blocked-cycle scheduling helpers for the vector simulators.

The pipeline and graph simulators evaluate delays for a *block* of
cycles at once, then walk the block: runs of provably-clean cycles are
accounted in bulk, and only the "interesting" cycles (some endpoint
might be late) drop to the scalar bookkeeping.  Two small pieces of
machinery are shared:

* :class:`BlockSizer` — adapts the block length to the observed density
  of interesting cycles, so an error storm does not waste large array
  evaluations that immediately degenerate to scalar stepping, while a
  quiet workload amortizes the numpy call overhead over big blocks.
* :func:`slow_cycles_between` — exact count of slowed cycles inside a
  bulk-skipped range, from the controller's (non-overlapping, sorted)
  slowdown windows, without calling ``period_at`` per cycle.
* :func:`block_spans` — the blocked walk over an arbitrary cycle window
  ``[start, stop)``, re-reading the sizer each step so snapshot-forked
  windows and full runs share one advance loop.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.controller import SlowdownWindow

#: Block-length bounds for the adaptive sizer.
MIN_BLOCK = 64
MAX_BLOCK = 8192

#: Interesting-cycle density above which blocks shrink (mostly-scalar
#: workload) and below which they grow (mostly-clean workload).
DENSE = 0.25
SPARSE = 0.02


class BlockSizer:
    """Adaptive block length for the blocked-cycle main loops."""

    def __init__(self, initial: int = 1024) -> None:
        self.size = max(MIN_BLOCK, min(MAX_BLOCK, initial))

    def update(self, interesting_fraction: float) -> None:
        """Adapt to the fraction of scalar-processed cycles last block."""
        if interesting_fraction > DENSE:
            self.size = max(MIN_BLOCK, self.size // 2)
        elif interesting_fraction < SPARSE:
            self.size = min(MAX_BLOCK, self.size * 2)


def block_spans(
    start: int,
    stop: int,
    sizer: BlockSizer,
) -> "typing.Iterator[tuple[int, int]]":
    """Yield ``(pos, count)`` blocks covering cycles ``[start, stop)``.

    The sizer is consulted lazily at each step, so ``sizer.update``
    calls made by the consumer between blocks take effect on the next
    span.  Both vector main loops — full runs from cycle 0 and windowed
    runs forked from a trajectory snapshot — advance through this one
    generator.
    """
    pos = start
    while pos < stop:
        count = min(sizer.size, stop - pos)
        yield pos, count
        pos += count


def slow_cycles_between(
    windows: "typing.Sequence[SlowdownWindow]",
    start: int,
    stop: int,
) -> int:
    """Cycles of ``[start, stop)`` covered by any slowdown window.

    ``notify_flag`` merges adjacent episodes, so the windows are sorted
    and disjoint and the overlaps simply add up.
    """
    total = 0
    for window in windows:
        lo = max(start, window.start_cycle)
        hi = min(stop, window.end_cycle)
        if hi > lo:
            total += hi - lo
    return total
