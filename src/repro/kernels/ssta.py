"""Levelized array form of Monte-Carlo statistical timing analysis.

:class:`CompiledNetlist` levelizes a netlist once — gates grouped so
that every gate's inputs are produced by strictly earlier levels — and
propagates a ``(trials, nets)`` int64 arrival matrix level by level:
a gather over a padded input-index matrix, a max-reduce, and one
variability-scaled delay add per level.  Per-endpoint violation
statistics come out of numpy reductions over the capture columns.

Arithmetic matches the scalar ``run_ssta`` loop operation for
operation: the same ``factor(trial, gate.name)`` draws (via the
bit-identical batch variability layer), the same float64 multiply and
half-even rounding, and exact int64 adds — so both paths produce
identical :class:`~repro.timing.ssta.SstaResult` contents.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.circuit.netlist import Netlist
    from repro.variability.base import VariabilityModel

#: Cap on elements of one (trials-chunk x nets) arrival matrix.
_CHUNK_ELEMENTS = 4_000_000


@dataclasses.dataclass(frozen=True)
class _Level:
    """One topological level: all gates whose inputs are already known."""

    names: list[str]
    out_index: "np.ndarray"  # (G,) int64
    in_index: "np.ndarray"  # (G, max_inputs) int64, dummy-padded
    delays: "np.ndarray"  # (G,) float64


@dataclasses.dataclass(frozen=True)
class SstaTotals:
    """Raw per-endpoint accumulators (positionally aligned with the
    netlist's capture-net list)."""

    violations: "np.ndarray"
    lateness_sum: "np.ndarray"
    max_lateness: "np.ndarray"
    any_violations: int


class CompiledNetlist:
    """Levelized netlist ready for blocked arrival propagation."""

    def __init__(self, netlist: "Netlist") -> None:
        order = netlist.topological_gates()
        index: dict[str, int] = {}

        def slot(net: str) -> int:
            return index.setdefault(net, len(index))

        self.launch_index = sorted({slot(n) for n in netlist.launch_nets})
        level_of: dict[str, int] = {}
        grouped: dict[int, list] = {}
        for gate in order:
            level = 1 + max((level_of.get(net, 0) for net in gate.inputs),
                            default=0)
            level_of[gate.output] = level
            grouped.setdefault(level, []).append(gate)
        # Register nets in deterministic order before sizing the matrix.
        for gate in order:
            for net in gate.inputs:
                slot(net)
            slot(gate.output)
        self.capture_index = [slot(n) for n in netlist.capture_nets]
        #: One extra always-zero column used to pad ragged input lists;
        #: arrivals are non-negative, so the pad never wins the max.
        self.dummy = len(index)
        self.num_slots = len(index) + 1
        self.levels: list[_Level] = []
        for level in sorted(grouped):
            gates = grouped[level]
            width = max(len(g.inputs) for g in gates)
            in_index = np.full((len(gates), width), self.dummy,
                               dtype=np.int64)
            for row, gate in enumerate(gates):
                for col, net in enumerate(gate.inputs):
                    in_index[row, col] = index[net]
            self.levels.append(_Level(
                names=[g.name for g in gates],
                out_index=np.array([index[g.output] for g in gates],
                                   dtype=np.int64),
                in_index=in_index,
                delays=np.array([g.delay_ps for g in gates],
                                dtype=np.float64),
            ))

    def propagate(
        self,
        variability: "VariabilityModel",
        trials: int,
        *,
        clk_to_q_ps: int,
        deadline_ps: int,
    ) -> SstaTotals:
        """Run all trials in memory-bounded chunks and accumulate."""
        captures = np.array(self.capture_index, dtype=np.int64)
        violations = np.zeros(len(captures), dtype=np.int64)
        lateness_sum = np.zeros(len(captures), dtype=np.int64)
        max_lateness = np.zeros(len(captures), dtype=np.int64)
        any_violations = 0
        chunk = max(1, _CHUNK_ELEMENTS // self.num_slots)
        for start in range(0, trials, chunk):
            stop = min(trials, start + chunk)
            trial_ids = np.arange(start, stop, dtype=np.int64)
            arrival = np.zeros((len(trial_ids), self.num_slots),
                               dtype=np.int64)
            arrival[:, self.launch_index] = clk_to_q_ps
            for level in self.levels:
                factor = variability.factor_batch(trial_ids, level.names)
                delays = np.rint(level.delays * factor).astype(np.int64)
                worst_in = arrival[:, level.in_index].max(axis=2)
                arrival[:, level.out_index] = worst_in + delays
            lateness = arrival[:, captures] - deadline_ps
            late = np.where(lateness > 0, lateness, 0)
            violated = late > 0
            violations += violated.sum(axis=0)
            lateness_sum += late.sum(axis=0)
            if len(trial_ids):
                max_lateness = np.maximum(max_lateness, late.max(axis=0))
            any_violations += int(violated.any(axis=1).sum())
        return SstaTotals(
            violations=violations,
            lateness_sum=lateness_sum,
            max_lateness=max_lateness,
            any_violations=any_violations,
        )
