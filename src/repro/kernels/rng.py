"""Deterministic draw primitives, scalar and vectorized, bit-identical.

Every stochastic decision in the simulators — sensitization, local
delay jitter, droop occurrence, process spread — reduces to hashing a
tuple of small integers (seed, cycle, path key, salt) into 32 bits and
mapping that to a uniform or Gaussian float.  This module implements
that pipeline twice:

* the *scalar* functions (:func:`mix32`, :func:`uniform01`,
  :func:`std_gauss`) in pure Python, and
* the *batch* functions (:func:`mix32_batch`, :func:`uniform01_batch`,
  :func:`std_gauss_batch`) over numpy ``uint32``/``float64`` arrays.

The two are bit-identical by construction, not by testing luck:

* the mixer is integer-only (xor / shift / wrapping 32-bit multiply),
  exact in both Python ints and ``uint32`` arrays;
* uniforms are the dyadic rationals ``(h + 0.5) / 2**32`` — exactly
  representable in a float64, so the int-to-float map never rounds;
* the Gaussian is an Irwin-Hall sum of 12 such uniforms minus 6.  Each
  partial sum needs at most 37 mantissa bits (33 fractional + 4
  integral), so *every* addition is exact and the result is independent
  of summation order — numpy's pairwise reduction and Python's running
  loop agree to the last bit.

String path identifiers are interned once to 32-bit ids with
:func:`key_id` (CRC-32, cached); the hot loops only ever mix integers.
"""

from __future__ import annotations

import functools
import typing
import zlib

try:  # pragma: no cover - absence exercised via REPRO_SCALAR_KERNELS
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

M32 = 0xFFFFFFFF
M64 = 0xFFFFFFFFFFFFFFFF

#: Murmur3-style finalizer constants (well-studied avalanche behaviour).
_SEED0 = 0x9E3779B9
_MUL1 = 0x85EBCA6B
_MUL2 = 0xC2B2AE35

#: Number of uniforms summed per Gaussian draw (variance = N / 12).
GAUSS_TERMS = 12


@functools.lru_cache(maxsize=65536)
def key_id(text: str) -> int:
    """Stable 32-bit id of a path/edge/gate name (CRC-32 of UTF-8)."""
    return zlib.crc32(text.encode("utf-8"))


def split64(value: int) -> tuple[int, int]:
    """Two 32-bit lanes of an arbitrary (possibly negative) seed."""
    value &= M64
    return value & M32, value >> 32


def mix32(*lanes: int) -> int:
    """Mix integer lanes into one well-scrambled 32-bit value."""
    h = _SEED0
    for lane in lanes:
        h ^= lane & M32
        h = (h * _MUL1) & M32
        h ^= h >> 13
        h = (h * _MUL2) & M32
        h ^= h >> 16
    return h


def uniform01(h: int) -> float:
    """Map a 32-bit hash to a uniform in (0, 1) — exactly representable."""
    return (h + 0.5) * 2.0**-32


def std_gauss(*lanes: int) -> float:
    """Standard-normal draw (Irwin-Hall, 12 terms) for the given lanes."""
    total = 0.0
    for term in range(GAUSS_TERMS):
        h = _SEED0
        for lane in (*lanes, term):
            h ^= lane & M32
            h = (h * _MUL1) & M32
            h ^= h >> 13
            h = (h * _MUL2) & M32
            h ^= h >> 16
        total += (h + 0.5) * 2.0**-32
    return total - 6.0


# ---------------------------------------------------------------------------
# numpy batch twins
# ---------------------------------------------------------------------------

LaneLike = typing.Union[int, "np.ndarray"]


def _require_numpy() -> None:
    if np is None:  # pragma: no cover - CI images always have numpy
        raise RuntimeError(
            "numpy is required for the vector kernels; set "
            "REPRO_SCALAR_KERNELS=1 to use the scalar reference path"
        )


def mix32_batch(lanes: typing.Sequence[LaneLike]) -> "np.ndarray":
    """Vector :func:`mix32` over broadcastable ``uint32`` lanes."""
    _require_numpy()
    with np.errstate(over="ignore"):
        h = np.uint32(_SEED0)
        mul1 = np.uint32(_MUL1)
        mul2 = np.uint32(_MUL2)
        for lane in lanes:
            if isinstance(lane, int):
                lane = np.uint32(lane & M32)
            elif lane.dtype != np.uint32:
                lane = lane.astype(np.uint32)
            h = h ^ lane
            h = h * mul1
            h = h ^ (h >> np.uint32(13))
            h = h * mul2
            h = h ^ (h >> np.uint32(16))
    return h


def uniform01_batch(h: "np.ndarray") -> "np.ndarray":
    """Vector :func:`uniform01`; exact, so bit-equal to the scalar."""
    return (h.astype(np.float64) + 0.5) * 2.0**-32


def std_gauss_batch(lanes: typing.Sequence[LaneLike]) -> "np.ndarray":
    """Vector :func:`std_gauss`; exact sums make order irrelevant."""
    _require_numpy()
    total: "np.ndarray | None" = None
    lanes = list(lanes)
    for term in range(GAUSS_TERMS):
        u = uniform01_batch(mix32_batch([*lanes, term]))
        total = u if total is None else total + u
    assert total is not None
    return total - 6.0


def cycle_lanes(cycles: "np.ndarray") -> tuple["np.ndarray", "np.ndarray"]:
    """Split a non-negative int64 cycle array into two uint32 lanes."""
    _require_numpy()
    cycles = np.asarray(cycles, dtype=np.int64)
    return ((cycles & M32).astype(np.uint32),
            ((cycles >> 32) & M32).astype(np.uint32))
