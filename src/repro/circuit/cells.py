"""Parametric standard-cell library.

The paper's overhead numbers are driven by *ratios* between cells (a TIMBER
flip-flop consumes about 2x the power of a conventional master-slave
flip-flop, a TIMBER latch about 1.5x).  This module provides a small,
self-consistent cell library in which every cell carries:

* a propagation delay per output transition (ps),
* a cell area in abstract area units (1.0 == one minimum-size inverter),
* leakage (static) power in abstract power units,
* dynamic energy per output toggle in abstract energy units.

Absolute values are representative of a 65 nm-class library; all reported
results are normalised so only the ratios matter, and the library can be
re-parametrised wholesale through :class:`CellLibrary`.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Sequence

from repro.circuit.logic import (
    Logic,
    logic_and,
    logic_mux,
    logic_not,
    logic_or,
    logic_xor,
)
from repro.errors import ConfigurationError

#: Signature of a combinational cell evaluation function.
EvalFn = Callable[[Sequence[Logic]], Logic]


@dataclasses.dataclass(frozen=True)
class Cell:
    """A combinational standard cell.

    Attributes:
        name: Library name, e.g. ``"NAND2"``.
        num_inputs: Number of data inputs the evaluation function expects.
        delay_ps: Pin-to-output propagation delay in picoseconds.
        area: Cell area in inverter-equivalents.
        leakage: Static power draw in abstract power units.
        toggle_energy: Dynamic energy per output transition.
        evaluate: Pure function from input logic values to output value.
    """

    name: str
    num_inputs: int
    delay_ps: int
    area: float
    leakage: float
    toggle_energy: float
    evaluate: EvalFn

    def __post_init__(self) -> None:
        if self.num_inputs < 1:
            raise ConfigurationError(f"cell {self.name}: needs >=1 input")
        if self.delay_ps < 0:
            raise ConfigurationError(f"cell {self.name}: negative delay")
        if self.area < 0 or self.leakage < 0 or self.toggle_energy < 0:
            raise ConfigurationError(f"cell {self.name}: negative cost")

    def output(self, inputs: Sequence[Logic]) -> Logic:
        """Evaluate the cell, validating the input arity."""
        if len(inputs) != self.num_inputs:
            raise ConfigurationError(
                f"cell {self.name} expects {self.num_inputs} inputs, "
                f"got {len(inputs)}"
            )
        return self.evaluate(inputs)


@dataclasses.dataclass(frozen=True)
class SequentialCellCosts:
    """Area/power characterisation of a sequential cell.

    Delay-side behaviour of sequential cells lives in
    :mod:`repro.sequential`; this record only carries the cost model used
    by the overhead analyses (Fig. 8).
    """

    name: str
    area: float
    leakage: float
    energy_per_cycle: float
    setup_ps: int
    hold_ps: int
    clk_to_q_ps: int


class CellLibrary:
    """A named collection of combinational and sequential cells."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._cells: dict[str, Cell] = {}
        self._sequential: dict[str, SequentialCellCosts] = {}

    # -- registration ---------------------------------------------------
    def add(self, cell: Cell) -> Cell:
        if cell.name in self._cells:
            raise ConfigurationError(f"duplicate cell {cell.name!r}")
        self._cells[cell.name] = cell
        return cell

    def add_sequential(self, costs: SequentialCellCosts) -> SequentialCellCosts:
        if costs.name in self._sequential:
            raise ConfigurationError(f"duplicate sequential cell {costs.name!r}")
        self._sequential[costs.name] = costs
        return costs

    # -- lookup ----------------------------------------------------------
    def __getitem__(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(
                f"cell {name!r} not in library {self.name!r}; "
                f"known: {sorted(self._cells)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def sequential(self, name: str) -> SequentialCellCosts:
        try:
            return self._sequential[name]
        except KeyError:
            raise KeyError(
                f"sequential cell {name!r} not in library {self.name!r}; "
                f"known: {sorted(self._sequential)}"
            ) from None

    @property
    def cell_names(self) -> list[str]:
        return sorted(self._cells)

    @property
    def sequential_names(self) -> list[str]:
        return sorted(self._sequential)


def _nand(inputs: Sequence[Logic]) -> Logic:
    return logic_not(logic_and(inputs))


def _nor(inputs: Sequence[Logic]) -> Logic:
    return logic_not(logic_or(inputs))


def _aoi21(inputs: Sequence[Logic]) -> Logic:
    # NOT((a AND b) OR c)
    return logic_not(logic_or([logic_and(inputs[:2]), inputs[2]]))


def _mux2(inputs: Sequence[Logic]) -> Logic:
    # inputs: (d0, d1, select)
    return logic_mux(inputs[2], inputs[0], inputs[1])


def default_library() -> CellLibrary:
    """Build the default 65 nm-class parametric library.

    Delay, area, and power values are loosely scaled from public 65 nm
    characterisation data; every reported experiment normalises against
    the conventional master-slave flip-flop (``DFF``), so the ratios
    below — in particular ``TIMBER_FF`` ~ 2x and ``TIMBER_LATCH`` ~ 1.5x
    the DFF energy, as stated in Sec. 6 of the paper — are what shape the
    results.
    """
    lib = CellLibrary("generic65")
    lib.add(Cell("INV", 1, 12, 1.0, 0.9, 1.0, lambda v: logic_not(v[0])))
    lib.add(Cell("BUF", 1, 20, 1.3, 1.1, 1.3, lambda v: v[0]))
    lib.add(Cell("NAND2", 2, 16, 1.4, 1.2, 1.5, _nand))
    lib.add(Cell("NAND3", 3, 20, 1.9, 1.6, 1.9, _nand))
    lib.add(Cell("NAND4", 4, 25, 2.4, 2.0, 2.3, _nand))
    lib.add(Cell("NOR2", 2, 18, 1.4, 1.2, 1.5, _nor))
    lib.add(Cell("NOR3", 3, 24, 1.9, 1.6, 1.9, _nor))
    lib.add(Cell("AND2", 2, 22, 1.8, 1.5, 1.8, lambda v: logic_and(v)))
    lib.add(Cell("OR2", 2, 24, 1.8, 1.5, 1.8, lambda v: logic_or(v)))
    lib.add(Cell("XOR2", 2, 30, 2.6, 2.2, 2.6, lambda v: logic_xor(v)))
    lib.add(Cell("XNOR2", 2, 30, 2.6, 2.2, 2.6,
                 lambda v: logic_not(logic_xor(v))))
    lib.add(Cell("AOI21", 3, 22, 2.0, 1.7, 2.0, _aoi21))
    lib.add(Cell("MUX2", 3, 26, 2.4, 2.0, 2.4, _mux2))
    # Delay buffer used for short-path (hold) padding.
    lib.add(Cell("DLY4", 1, 80, 2.0, 1.4, 1.8, lambda v: v[0]))

    # Sequential cost models.  The conventional DFF anchors the scale:
    # every overhead in Fig. 8 is a ratio against a design built from it.
    dff = SequentialCellCosts(
        name="DFF", area=6.0, leakage=4.0, energy_per_cycle=10.0,
        setup_ps=30, hold_ps=15, clk_to_q_ps=45,
    )
    lib.add_sequential(dff)
    # TIMBER flip-flop: two master latches + clock control; the paper
    # reports ~2x the total power of a conventional master-slave FF.
    lib.add_sequential(SequentialCellCosts(
        name="TIMBER_FF", area=11.5, leakage=8.2,
        energy_per_cycle=dff.energy_per_cycle * 2.0,
        setup_ps=30, hold_ps=15, clk_to_q_ps=50,
    ))
    # TIMBER latch: pulse-gated master/slave; ~1.5x the DFF power.
    lib.add_sequential(SequentialCellCosts(
        name="TIMBER_LATCH", area=9.0, leakage=6.2,
        energy_per_cycle=dff.energy_per_cycle * 1.5,
        setup_ps=30, hold_ps=15, clk_to_q_ps=50,
    ))
    # Razor flip-flop: main FF + shadow latch + comparator (~1.8x power,
    # consistent with the Razor literature the paper compares against).
    lib.add_sequential(SequentialCellCosts(
        name="RAZOR_FF", area=10.5, leakage=7.6,
        energy_per_cycle=dff.energy_per_cycle * 1.8,
        setup_ps=30, hold_ps=15, clk_to_q_ps=45,
    ))
    # Canary flip-flop: main FF + delay element + canary FF + comparator.
    lib.add_sequential(SequentialCellCosts(
        name="CANARY_FF", area=12.0, leakage=8.0,
        energy_per_cycle=dff.energy_per_cycle * 1.9,
        setup_ps=30, hold_ps=15, clk_to_q_ps=45,
    ))
    # Level-sensitive latch (half a DFF, used by structural models).
    lib.add_sequential(SequentialCellCosts(
        name="LATCH", area=3.2, leakage=2.1, energy_per_cycle=5.5,
        setup_ps=20, hold_ps=10, clk_to_q_ps=35,
    ))
    return lib
