"""Synthetic combinational-stage generators.

These builders produce netlists with controllable depth/width so that the
timing analyses and the event-driven simulator can be exercised on
realistic structures without an industrial netlist (see DESIGN.md,
substitution table).
"""

from __future__ import annotations

import random

from repro.circuit.cells import CellLibrary, default_library
from repro.circuit.netlist import Netlist
from repro.errors import ConfigurationError

#: Cells eligible for random combinational logic (2-input, invertible mix).
_RANDOM_CELLS = ("NAND2", "NOR2", "AND2", "OR2", "XOR2", "XNOR2")


def inverter_chain(
    length: int,
    *,
    name: str = "chain",
    library: CellLibrary | None = None,
) -> Netlist:
    """A registered inverter chain of ``length`` stages.

    Useful as a precise delay line: the total combinational delay is
    ``length * INV.delay_ps``.
    """
    if length < 1:
        raise ConfigurationError(f"chain length must be >=1, got {length}")
    lib = library or default_library()
    netlist = Netlist(name, lib)
    current = netlist.add_input("in", registered=True)
    for index in range(length):
        gate = netlist.add_gate(f"inv{index}", "INV", [current],
                                f"n{index}")
        current = gate.output
    netlist.add_output(current, registered=True)
    netlist.validate()
    return netlist


def random_stage(
    *,
    num_inputs: int,
    num_outputs: int,
    depth: int,
    width: int,
    seed: int,
    name: str = "stage",
    library: CellLibrary | None = None,
) -> Netlist:
    """A random layered combinational stage.

    The netlist has ``depth`` layers of ``width`` two-input gates; each
    gate draws its inputs from the previous layer (or the primary inputs
    for layer 0), guaranteeing a loop-free, fully-driven structure whose
    longest path has exactly ``depth`` gate levels.

    Args:
        num_inputs: Number of registered primary inputs.
        num_outputs: Number of registered primary outputs (taken from the
            last layer; must not exceed ``width``).
        depth: Number of gate layers (logic depth).
        width: Gates per layer.
        seed: RNG seed for reproducible structure.
        name: Netlist name.
        library: Cell library (default: :func:`default_library`).
    """
    if num_inputs < 2:
        raise ConfigurationError("need at least 2 primary inputs")
    if depth < 1 or width < 1:
        raise ConfigurationError("depth and width must be >=1")
    if num_outputs < 1 or num_outputs > width:
        raise ConfigurationError(
            f"num_outputs must be in [1, width]; got {num_outputs} "
            f"with width {width}"
        )
    rng = random.Random(seed)
    lib = library or default_library()
    netlist = Netlist(name, lib)

    previous = [
        netlist.add_input(f"pi{i}", registered=True) for i in range(num_inputs)
    ]
    for layer in range(depth):
        current: list[str] = []
        for column in range(width):
            cell = rng.choice(_RANDOM_CELLS)
            a, b = rng.sample(previous, 2) if len(previous) >= 2 else (
                previous[0], previous[0])
            gate = netlist.add_gate(
                f"g{layer}_{column}", cell, [a, b], f"w{layer}_{column}",
            )
            current.append(gate.output)
        previous = current
    for index in range(num_outputs):
        netlist.add_output(previous[index], registered=True)
    netlist.validate()
    return netlist


def padded_short_path(
    *,
    padding_cells: int,
    name: str = "padded",
    library: CellLibrary | None = None,
) -> Netlist:
    """A single short path padded with DLY4 delay buffers.

    Models the paper's hold-fix requirement: short paths must be padded so
    their delay exceeds hold time + checking period.  The returned
    netlist has exactly ``padding_cells`` DLY4 buffers between a launch
    and a capture register.
    """
    if padding_cells < 0:
        raise ConfigurationError("padding_cells must be >=0")
    lib = library or default_library()
    netlist = Netlist(name, lib)
    current = netlist.add_input("in", registered=True)
    for index in range(padding_cells):
        gate = netlist.add_gate(f"pad{index}", "DLY4", [current],
                                f"p{index}")
        current = gate.output
    if padding_cells == 0:
        # A zero-delay feedthrough still needs a buffer so the net is
        # distinguishable from its source for the simulator.
        gate = netlist.add_gate("feed", "BUF", [current], "p_out")
        current = gate.output
    netlist.add_output(current, registered=True)
    netlist.validate()
    return netlist
