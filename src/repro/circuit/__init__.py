"""Gate-level circuit substrate: logic values, cells, netlists, generators."""

from repro.circuit.logic import Logic, resolve_unknown
from repro.circuit.cells import Cell, CellLibrary, default_library
from repro.circuit.netlist import Gate, Net, Netlist
from repro.circuit.verilog import to_verilog, write_verilog
from repro.circuit.evaluate import (
    check_equivalence,
    evaluate,
    random_vectors,
)

__all__ = [
    "Logic",
    "resolve_unknown",
    "Cell",
    "CellLibrary",
    "default_library",
    "Gate",
    "Net",
    "Netlist",
    "to_verilog",
    "write_verilog",
    "check_equivalence",
    "evaluate",
    "random_vectors",
]
