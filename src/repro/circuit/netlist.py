"""Gate-level netlist representation.

A :class:`Netlist` is a directed graph of :class:`Gate` instances connected
by named :class:`Net` objects.  Sequential boundaries are marked by
*register ports*: a net can be declared a register output (launch point) or
a register input (capture point).  Static timing analysis
(:mod:`repro.timing.sta`) and the event-driven simulator
(:mod:`repro.sim.engine`) both operate on this structure.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Iterator

from repro.circuit.cells import Cell, CellLibrary
from repro.errors import NetlistError


@dataclasses.dataclass
class Net:
    """A named wire.

    Attributes:
        name: Unique net name within the netlist.
        driver: Name of the driving gate, or ``None`` for primary inputs
            and register outputs.
        sinks: Names of gates whose inputs this net feeds.
    """

    name: str
    driver: str | None = None
    sinks: list[str] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class Gate:
    """An instance of a library cell.

    Attributes:
        name: Unique instance name.
        cell: The library cell implementing this gate.
        inputs: Ordered input net names (arity must match the cell).
        output: Output net name.
        extra_delay_ps: Additional wire/derating delay for this instance.
    """

    name: str
    cell: Cell
    inputs: tuple[str, ...]
    output: str
    extra_delay_ps: int = 0

    @property
    def delay_ps(self) -> int:
        return self.cell.delay_ps + self.extra_delay_ps


class Netlist:
    """A combinational netlist with registered boundaries."""

    def __init__(self, name: str, library: CellLibrary) -> None:
        self.name = name
        self.library = library
        self._gates: dict[str, Gate] = {}
        self._nets: dict[str, Net] = {}
        self._primary_inputs: list[str] = []
        self._primary_outputs: list[str] = []
        self._launch_nets: list[str] = []
        self._capture_nets: list[str] = []

    # -- construction ----------------------------------------------------
    def add_input(self, net_name: str, *, registered: bool = False) -> str:
        """Declare a primary input net (optionally a register output)."""
        self._declare_net(net_name)
        self._primary_inputs.append(net_name)
        if registered:
            self._launch_nets.append(net_name)
        return net_name

    def add_output(self, net_name: str, *, registered: bool = False) -> str:
        """Declare an existing net as a primary output (optionally captured)."""
        if net_name not in self._nets:
            raise NetlistError(f"output {net_name!r} references unknown net")
        self._primary_outputs.append(net_name)
        if registered:
            self._capture_nets.append(net_name)
        return net_name

    def add_gate(
        self,
        name: str,
        cell_name: str,
        inputs: Iterable[str],
        output: str,
        *,
        extra_delay_ps: int = 0,
    ) -> Gate:
        """Instantiate ``cell_name`` as gate ``name``.

        Input nets must already exist; the output net is created.
        """
        if name in self._gates:
            raise NetlistError(f"duplicate gate {name!r}")
        cell = self.library[cell_name]
        input_names = tuple(inputs)
        if len(input_names) != cell.num_inputs:
            raise NetlistError(
                f"gate {name!r}: cell {cell_name} expects {cell.num_inputs} "
                f"inputs, got {len(input_names)}"
            )
        for net_name in input_names:
            if net_name not in self._nets:
                raise NetlistError(
                    f"gate {name!r} input references unknown net {net_name!r}"
                )
        if extra_delay_ps < 0:
            raise NetlistError(f"gate {name!r}: negative extra delay")
        self._declare_net(output, driver=name)
        gate = Gate(name, cell, input_names, output, extra_delay_ps)
        self._gates[name] = gate
        for net_name in input_names:
            self._nets[net_name].sinks.append(name)
        return gate

    def _declare_net(self, name: str, driver: str | None = None) -> None:
        if name in self._nets:
            if driver is not None and self._nets[name].driver is not None:
                raise NetlistError(f"net {name!r} has multiple drivers")
            if driver is not None:
                self._nets[name].driver = driver
            return
        self._nets[name] = Net(name, driver=driver)

    # -- queries -----------------------------------------------------------
    @property
    def gates(self) -> dict[str, Gate]:
        return dict(self._gates)

    @property
    def nets(self) -> dict[str, Net]:
        return dict(self._nets)

    @property
    def primary_inputs(self) -> list[str]:
        return list(self._primary_inputs)

    @property
    def primary_outputs(self) -> list[str]:
        return list(self._primary_outputs)

    @property
    def launch_nets(self) -> list[str]:
        """Nets driven by register outputs (path start points)."""
        return list(self._launch_nets)

    @property
    def capture_nets(self) -> list[str]:
        """Nets feeding register inputs (path end points)."""
        return list(self._capture_nets)

    def gate(self, name: str) -> Gate:
        try:
            return self._gates[name]
        except KeyError:
            raise NetlistError(f"unknown gate {name!r}") from None

    def net(self, name: str) -> Net:
        try:
            return self._nets[name]
        except KeyError:
            raise NetlistError(f"unknown net {name!r}") from None

    def fanout_gates(self, net_name: str) -> list[Gate]:
        return [self._gates[g] for g in self.net(net_name).sinks]

    def driver_gate(self, net_name: str) -> Gate | None:
        driver = self.net(net_name).driver
        return None if driver is None else self._gates[driver]

    def retarget_capture(self, old_net: str, new_net: str) -> None:
        """Move a register-input (capture) designation to another net.

        Used by hold fixing: the register that used to sample ``old_net``
        now samples ``new_net`` (the end of an inserted buffer chain).
        """
        if old_net not in self._capture_nets:
            raise NetlistError(f"{old_net!r} is not a capture net")
        if new_net not in self._nets:
            raise NetlistError(f"unknown net {new_net!r}")
        index = self._capture_nets.index(old_net)
        self._capture_nets[index] = new_net
        if old_net in self._primary_outputs:
            self._primary_outputs[self._primary_outputs.index(old_net)] = (
                new_net
            )

    # -- structure ---------------------------------------------------------
    def topological_gates(self) -> list[Gate]:
        """Gates in topological order; raises on combinational loops."""
        indegree: dict[str, int] = {}
        for gate in self._gates.values():
            indegree[gate.name] = sum(
                1 for net in gate.inputs if self._nets[net].driver is not None
            )
        ready = sorted(name for name, deg in indegree.items() if deg == 0)
        order: list[Gate] = []
        queue = list(ready)
        while queue:
            name = queue.pop()
            gate = self._gates[name]
            order.append(gate)
            for sink_name in self._nets[gate.output].sinks:
                indegree[sink_name] -= 1
                if indegree[sink_name] == 0:
                    queue.append(sink_name)
        if len(order) != len(self._gates):
            remaining = sorted(set(self._gates) - {g.name for g in order})
            raise NetlistError(
                f"combinational loop involving gates: {remaining[:8]}"
            )
        return order

    def validate(self) -> None:
        """Check structural invariants; raises :class:`NetlistError`."""
        for net in self._nets.values():
            driven = net.driver is not None or net.name in self._primary_inputs
            if not driven:
                raise NetlistError(f"net {net.name!r} has no driver")
        self.topological_gates()

    def stats(self) -> dict[str, float]:
        """Aggregate area/leakage over all gate instances."""
        area = sum(g.cell.area for g in self._gates.values())
        leakage = sum(g.cell.leakage for g in self._gates.values())
        return {
            "gates": float(len(self._gates)),
            "nets": float(len(self._nets)),
            "area": area,
            "leakage": leakage,
        }

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates.values())

    def __len__(self) -> int:
        return len(self._gates)
