"""Pure combinational evaluation and equivalence checking.

The event-driven simulator answers *when*; this module answers *what*:
settle a netlist on a single input vector by one topological pass, and
check two netlists functionally equivalent by random-vector simulation.
Used to verify that structural transformations — hold-buffer insertion,
capture retargeting — preserve logic function.
"""

from __future__ import annotations

import random
from collections.abc import Mapping

from repro.circuit.logic import Logic
from repro.circuit.netlist import Netlist
from repro.errors import ConfigurationError


def evaluate(netlist: Netlist,
             inputs: Mapping[str, int | Logic]) -> dict[str, Logic]:
    """Settled value of every net for one input vector.

    Args:
        netlist: Design to evaluate (validated by the caller or here).
        inputs: Value per primary input; missing inputs default to X.
    """
    values: dict[str, Logic] = {}
    for net in netlist.primary_inputs:
        provided = inputs.get(net, Logic.X)
        values[net] = Logic.from_value(provided)
    unknown = set(inputs) - set(netlist.primary_inputs)
    if unknown:
        raise ConfigurationError(
            f"not primary inputs: {sorted(unknown)}")
    for gate in netlist.topological_gates():
        values[gate.output] = gate.cell.output(
            [values[net] for net in gate.inputs])
    return values


def random_vectors(input_names: list[str], count: int, seed: int = 0,
                   ) -> list[dict[str, Logic]]:
    """Deterministic random binary vectors over ``input_names``."""
    if count < 1:
        raise ConfigurationError("need at least one vector")
    rng = random.Random(seed)
    return [
        {name: Logic(rng.getrandbits(1)) for name in input_names}
        for _ in range(count)
    ]


def check_equivalence(
    left: Netlist,
    right: Netlist,
    *,
    vectors: int = 256,
    seed: int = 0,
    output_map: Mapping[str, str] | None = None,
) -> tuple[bool, dict[str, Logic] | None]:
    """Random-vector equivalence check between two netlists.

    Args:
        left: Reference design.
        right: Design under check; must share ``left``'s primary inputs.
        vectors: Number of random binary vectors to simulate.
        seed: Vector RNG seed.
        output_map: Maps each of ``left``'s primary outputs to the
            corresponding net in ``right`` (identity by default) —
            needed after transformations that rename capture nets.

    Returns:
        ``(True, None)`` if all vectors agree, else ``(False, vector)``
        with the first failing input vector.
    """
    if set(left.primary_inputs) != set(right.primary_inputs):
        raise ConfigurationError(
            "designs have different primary inputs: "
            f"{sorted(set(left.primary_inputs) ^ set(right.primary_inputs))}"
        )
    mapping = dict(output_map or {})
    for output in left.primary_outputs:
        mapping.setdefault(output, output)
    for vector in random_vectors(left.primary_inputs, vectors, seed):
        left_values = evaluate(left, vector)
        right_values = evaluate(right, vector)
        for left_net, right_net in mapping.items():
            if left_values[left_net] is not right_values[right_net]:
                return False, vector
    return True, None
