"""Three-valued logic used by the event-driven simulator.

The simulator models digital values as ``0``, ``1``, or ``X`` (unknown).
``X`` propagates pessimistically through gates unless the gate output is
fully determined by its controlling inputs (e.g. a NAND with any input at
``0`` outputs ``1`` regardless of the others).  Metastability and
uninitialised state both surface as ``X``.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable


class Logic(enum.IntEnum):
    """A three-valued digital logic level."""

    ZERO = 0
    ONE = 1
    X = 2

    def __invert__(self) -> "Logic":
        if self is Logic.ZERO:
            return Logic.ONE
        if self is Logic.ONE:
            return Logic.ZERO
        return Logic.X

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return {Logic.ZERO: "0", Logic.ONE: "1", Logic.X: "X"}[self]

    @classmethod
    def from_value(cls, value: "int | bool | Logic | str") -> "Logic":
        """Coerce common representations (0/1/True/False/'X') to Logic."""
        if isinstance(value, Logic):
            return value
        if isinstance(value, bool):
            return cls.ONE if value else cls.ZERO
        if isinstance(value, int):
            if value in (0, 1):
                return cls(value)
            raise ValueError(f"cannot coerce integer {value} to Logic")
        if isinstance(value, str):
            table = {"0": cls.ZERO, "1": cls.ONE, "x": cls.X, "X": cls.X}
            if value in table:
                return table[value]
            raise ValueError(f"cannot coerce string {value!r} to Logic")
        raise TypeError(f"cannot coerce {type(value).__name__} to Logic")


def logic_and(inputs: Iterable[Logic]) -> Logic:
    """Three-valued AND: 0 dominates, X otherwise taints."""
    saw_x = False
    for value in inputs:
        if value is Logic.ZERO:
            return Logic.ZERO
        if value is Logic.X:
            saw_x = True
    return Logic.X if saw_x else Logic.ONE


def logic_or(inputs: Iterable[Logic]) -> Logic:
    """Three-valued OR: 1 dominates, X otherwise taints."""
    saw_x = False
    for value in inputs:
        if value is Logic.ONE:
            return Logic.ONE
        if value is Logic.X:
            saw_x = True
    return Logic.X if saw_x else Logic.ZERO


def logic_xor(inputs: Iterable[Logic]) -> Logic:
    """Three-valued XOR: any X makes the result X."""
    acc = 0
    for value in inputs:
        if value is Logic.X:
            return Logic.X
        acc ^= int(value)
    return Logic(acc)


def logic_not(value: Logic) -> Logic:
    return ~value


def logic_mux(select: Logic, when_zero: Logic, when_one: Logic) -> Logic:
    """Three-valued 2:1 mux.

    An ``X`` select still yields a defined output when both data inputs
    agree — this mirrors real transmission-gate muxes and matters for the
    TIMBER slave latch, which must not go unknown when both masters hold
    the same value.
    """
    if select is Logic.ZERO:
        return when_zero
    if select is Logic.ONE:
        return when_one
    if when_zero is when_one and when_zero is not Logic.X:
        return when_zero
    return Logic.X


def resolve_unknown(preferred: Logic, fallback: Logic) -> Logic:
    """Return ``preferred`` unless it is X, in which case ``fallback``."""
    return fallback if preferred is Logic.X else preferred
