"""Property-based tests for timing exceptions."""

from hypothesis import given, settings, strategies as st

from repro.timing.exceptions import (
    ExceptionKind,
    ExceptionSet,
    apply_exceptions,
    false_path,
    multicycle_path,
)
from repro.timing.graph import TimingGraph

names = st.sampled_from(["alu_a", "alu_b", "cfg_reg", "lsq_0", "rob_7"])


@st.composite
def graphs(draw):
    period = 1000
    graph = TimingGraph("g", period)
    for name in ("alu_a", "alu_b", "cfg_reg", "lsq_0", "rob_7"):
        graph.add_ff(name)
    count = draw(st.integers(min_value=1, max_value=25))
    for _ in range(count):
        src = draw(names)
        dst = draw(names)
        delay = draw(st.integers(min_value=0, max_value=period))
        graph.add_edge(src, dst, delay)
    return graph


@st.composite
def rule_sets(draw):
    rules = []
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        kind = draw(st.sampled_from(["false", "multi"]))
        src = draw(st.sampled_from(["*", "alu_*", "cfg_*", "lsq_0"]))
        dst = draw(st.sampled_from(["*", "rob_*", "alu_b"]))
        if kind == "false":
            rules.append(false_path(src, dst))
        else:
            cycles = draw(st.integers(min_value=2, max_value=4))
            rules.append(multicycle_path(cycles, src, dst))
    return ExceptionSet(rules)


@settings(max_examples=50, deadline=None)
@given(graphs(), rule_sets())
def test_folding_never_increases_delay_or_count(graph, rules):
    folded = apply_exceptions(graph, rules)
    assert folded.num_edges <= graph.num_edges
    original_max = max((e.delay_ps for e in graph.edges()), default=0)
    folded_max = max((e.delay_ps for e in folded.edges()), default=0)
    assert folded_max <= original_max


@settings(max_examples=50, deadline=None)
@given(graphs(), rule_sets(), st.floats(min_value=1, max_value=50))
def test_criticality_never_grows(graph, rules, percent):
    folded = apply_exceptions(graph, rules)
    assert folded.critical_endpoints(percent) <= \
        graph.critical_endpoints(percent)


@settings(max_examples=50, deadline=None)
@given(graphs(), rule_sets())
def test_classification_consistent_with_folding(graph, rules):
    folded_edges = {
        (e.src, e.dst, e.delay_ps) for e in
        apply_exceptions(graph, rules).edges()
    }
    for edge in graph.edges():
        kind, budget = rules.classify(edge)
        if kind is ExceptionKind.FALSE_PATH:
            continue  # removed: nothing to match
        expected = (-(-edge.delay_ps // budget)
                    if kind is ExceptionKind.MULTICYCLE
                    else edge.delay_ps)
        assert (edge.src, edge.dst, expected) in folded_edges


@settings(max_examples=50, deadline=None)
@given(graphs())
def test_empty_rules_are_identity(graph):
    folded = apply_exceptions(graph, ExceptionSet())
    assert sorted((e.src, e.dst, e.delay_ps) for e in folded.edges()) \
        == sorted((e.src, e.dst, e.delay_ps) for e in graph.edges())
